// Package sbwi is a from-scratch reproduction of "Simultaneous Branch
// and Warp Interweaving for Sustained GPU Performance" (Brunie,
// Collange, Diamos; ISCA 2012).
//
// The paper proposes two micro-architectural techniques that reclaim
// SIMD lanes lost to branch divergence on a Fermi-class GPU streaming
// multiprocessor:
//
//   - SBI (Simultaneous Branch Interweaving) co-issues instructions
//     from two divergent warp-splits of the same warp to disjoint
//     subsets of one 64-lane row, on top of thread-frontier (min-PC)
//     reconvergence with selective synchronization barriers and a
//     dependency-matrix scoreboard.
//   - SWI (Simultaneous Warp Interweaving) adds a cascaded secondary
//     scheduler that fills the lanes the primary instruction leaves
//     idle with a non-overlapping instruction from another warp, found
//     through a set-associative mask-subset lookup and helped by static
//     lane shuffling.
//
// This module implements the complete stack needed to evaluate both
// techniques: a SIMT mini-ISA with an assembler, control-flow analysis
// that places reconvergence annotations and thread-frontier SYNC
// barriers, a functional reference simulator, a cycle-level SM pipeline
// model with five architectures (Baseline, SBI, SWI, SBI+SWI, and the
// 64-wide thread-frontier reference), the paper's 21-kernel benchmark
// suite with bit-exact Go oracles (plus one synthetic store-saturation
// microbenchmark), and an experiment harness that regenerates every
// table and figure of the evaluation.
//
// # Quick start
//
// Simulation runs through a Device: an engine configured once with
// functional options, then used for any number of concurrent,
// cancellable runs.
//
//	prog, _ := sbwi.Assemble("scale", `
//		mov  r1, %tid
//		shl  r2, r1, 2
//		mov  r3, %p0
//		iadd r3, r3, r2
//		ld.g r4, [r3]
//		imul r4, r4, 3
//		st.g [r3], r4
//		exit
//	`)
//	tf, _ := sbwi.ThreadFrontier(prog) // SYNC-instrumented variant
//	dev, _ := sbwi.NewDevice(sbwi.WithArch(sbwi.SBISWI))
//	launch := sbwi.NewLaunch(tf, 4, 256, make([]byte, 4096))
//	res, _ := dev.Run(context.Background(), launch)
//	fmt.Printf("IPC %.2f\n", res.Stats.IPC())
//
// # Scaling out
//
// The device's execution model separates three independent axes:
//
//   - WithSMs(n) sets the modeled hardware width. Together with
//     WithGridPartition(true) it dispatches a launch's CTA waves across
//     n independent SM instances; Result.DeviceCycles reports the
//     modeled wall-clock under that packing.
//   - WithWorkers(n) bounds host parallelism — how many SM simulations
//     run concurrently on the host, across CTA waves and batch entries
//     alike.
//   - Device.RunSuite runs a whole benchmark batch through the worker
//     pool and validates every result against the benchmark's Go
//     oracle; the experiment harness (NewExperiments) is built on it,
//     so regenerating the paper's figures fans out across cores.
//
// Results are deterministic by construction: merged statistics are
// bit-identical for every SM and worker count under the default flat
// memory model (with the modeled hierarchy they stay worker-count- and
// repeat-run-stable but depend on the SM count; see Memory hierarchy),
// and grid partitioning asserts the launch write-sharing contract
// (CTAs may only write the same global location with the same value)
// instead of letting scheduling order pick a winner.
//
// # Streams: asynchronous launches
//
// Device.Run is synchronous. To pipeline independent work on one
// device, open streams — FIFO lanes in the CUDA mold:
//
//	s1, s2 := dev.NewStream(), dev.NewStream()
//	p1 := s1.Launch(ctx, a)      // enqueues, returns immediately
//	p2 := s1.Launch(ctx, b)      // runs after a (same stream = FIFO)
//	p3 := s2.Launch(ctx, c)      // runs concurrently with stream s1
//	ev := s1.Record()            // marks s1's position after a, b
//	s2.WaitEvent(ev)             // s2's later entries wait for it
//	res, err := p2.Wait()        // Pending: future with Wait / Done
//	err = dev.Synchronize(ctx)   // drain everything in flight
//
// The execution model:
//
//   - Launches within one stream execute in enqueue order; launches on
//     different streams run concurrently, admitted by the
//     device-global run queue — one bounded worker pool (WithWorkers)
//     with a single longest-job-first cost policy shared by streams,
//     Run calls and RunSuite batches. A RunQueue can be shared across
//     devices (NewRunQueue + WithRunQueue) to bound their combined
//     load; WithStreamQueueDepth bounds each stream's launch queue for
//     producer backpressure.
//   - Determinism: streams never change what a simulation computes.
//     Every launch's Stats are bit-identical to the synchronous
//     Device.Run path for any interleaving, stream count or worker
//     count (asserted under -race by the interleaving-determinism
//     test). Launches sharing a global memory image must be ordered by
//     one stream or by events, exactly as concurrent Run calls would.
//   - Failure: a failed or cancelled operation completes its Pending
//     with the error (a cancelled launch returns the context's error)
//     and poisons the stream — later FIFO entries fail fast with a
//     wrapping error, errors.Is still sees context.Canceled through
//     the wrap, and other streams are unaffected. Poison is sticky:
//     discard the stream and open a new one.
//
// Migration note: Device.Run is now literally sugar for a one-launch
// stream (NewStream().Launch(ctx, l).Wait()), so existing synchronous
// code keeps its exact numbers and its concurrency semantics —
// concurrent Run calls interleave with streams under the same
// admission queue.
//
// # Batch scheduling and memoization
//
// RunSuite is cost-aware: entries are claimed longest-job-first,
// weighted by measured modeled cycles once a cell has run in the
// process (before that, a static estimate calibrated per suite
// benchmark — measured cycles-per-thread × thread count — so even a
// cold batch orders by realistic relative cost), and each entry
// acquires a run-queue slot for its simulation, so a batch's
// wall-clock is no longer bound by whichever heavy kernel a naive
// schedule starts last and the batch shares the pool with concurrent
// streams. Two options extend it:
//
//   - WithAutoPartition(true) routes the batch's heavy tail — entries
//     whose static cost exceeds the batch mean and whose grids span
//     several CTA waves — through the wave-partitioned engine, so even
//     one dominant kernel spreads across workers. The decision is a
//     pure function of the batch (never of worker/SM counts or
//     measured timings): results stay bit-identical for every
//     parallelism setting, but auto-partitioned entries carry the
//     partitioned timing model's numbers, which is why the option is
//     off by default.
//   - WithSimCache(NewSimCache()) memoizes oracle-validated entries
//     across RunSuite passes and across devices sharing the cache. The
//     key digests the benchmark, the full configuration
//     (Config.Fingerprint covers every field reflectively — a cache
//     key that cannot go stale as Config grows), the partitioning
//     mode, the modeled memory system and, where it matters, the SM
//     count. What invalidates the cache is therefore exactly "any of
//     those changed"; worker counts never do, because they never
//     change results. Concurrent passes deduplicate in-flight cells.
//     Results served from the cache are shared and must be treated as
//     read-only.
//
// The experiments runner uses both layers implicitly: every figure's
// simulations go through one shared cache, and benchmark inputs and
// oracle images are memoized per benchmark, so a full experiments pass
// derives each (kernel, configuration) cell exactly once.
//
// # Trace replay
//
// Timing sweeps re-simulate the same kernel while only parameters that
// decide *when* things happen change — never what the threads compute.
// WithTraceReplay(true) exploits that: the first configuration to run
// a benchmark records a compact per-thread execution trace during one
// full oracle-validated simulation (one bit per conditional-branch
// execution, one effective address per global memory operation), and
// every later timing configuration replays the trace — the complete
// scheduling and timing machinery runs unchanged, but branch outcomes
// and addresses come from the table, so the replay never decodes
// operands, evaluates ALU lanes, or touches the global memory image.
// Replayed statistics are bit-identical to full simulation for every
// configuration in the trace's validity domain; Result.Replayed
// reports which path produced a result.
//
// The validity domain is policed, never assumed. Traces are cached by
// (benchmark, Config.FunctionalFingerprint) — the functional/timing
// split of the reflection-exhaustive fingerprint — and a record-time
// race analysis over the logged (block, barrier-epoch) access sets
// marks kernels whose per-thread behavior is timing-dependent (BFS's
// racy relaxation updates) as non-replayable: those fall back to full
// simulation with the reason logged once (WithReplayLog), and a replay
// whose streams desync at runtime fails loudly and falls back too.
// The memory-hierarchy and exec-latency experiments route through the
// engine; Device.RunTraceReplay is the one-launch entry point behind
// `sbwi run -trace-replay`.
//
// # Memory hierarchy
//
// By default every SM sees the paper's memory model: a private 48 KB
// L1 in front of a flat-latency, bandwidth-limited DRAM port — the
// configuration the reproduced figures assume. WithL2 and
// WithInterconnect replace the flat model with a modeled multi-SM
// hierarchy,
//
//	L1 (per SM) → NoC crossbar port → shared banked L2 → DRAM,
//
// where the crossbar charges per-port queueing and traversal latency
// (NoCConfig), and the L2 is set-associative, banked and MSHR-backed
// (L2Config) in front of the single shared DRAM port. Every run times
// that path inline: L1 misses and write-through stores enter the
// hierarchy at the cycle they leave their L1 and the returned ready
// time flows straight back into warp wake-up, so contention shapes
// issue timing as it happens. Partitioned runs interleave all CTA
// waves against one shared memory-system clock on a single driving
// goroutine (wave j on SM j mod N), making Result.DeviceCycles
// contention-aware — it grows as interconnect ports narrow — and all
// results (merged statistics, the Stats.Mem.L2 / Stats.Mem.NoC
// counters, Result.NoCPorts per-SM port breakdowns) bit-identical
// across host worker counts and repeat runs. They legitimately depend
// on the SM count, which decides how many waves share the hierarchy at
// once. Stores occupy a finite L1 write buffer until the L2 drains
// them, so store-saturated streams exert the same back-pressure as
// load streams. Both options are off by default, which keeps default
// runs cycle-exact with the seed reproduction; the "memory-hierarchy"
// experiment sweeps the port bandwidth on the bandwidth-bound suite
// kernels and reports the per-SM queueing skew.
//
// # Failure semantics
//
// Every failure is typed and contained. A panic in any device
// goroutine converts to a *PanicError failing only its owning launch,
// stream or suite entry — the device and its other streams stay
// usable. A simulation exceeding Config.MaxCycles fails with a
// *LivelockError, and WithLaunchTimeout(d) adds a host wall-clock
// watchdog producing a *TimeoutError (errors.Is(err,
// ErrLaunchTimeout)); both carry a partial-state snapshot of the stuck
// SM. The simulation cache never stores failed results, WithRetry(n)
// re-runs transiently failed suite entries with exponential backoff,
// and trace-replay failures fall back to full simulation with the
// reason logged. A failed stream operation poisons the entries
// enqueued after it on that stream (wrapping the original error);
// other streams are unaffected. The hardening is exercised by the
// seeded fault-injection plane in internal/faultinject and the chaos
// suite in internal/device; see the README's "Failure semantics"
// section.
//
// # Simulation speed
//
// The SM's scheduling loop is event-driven but cycle-exact: candidate
// eligibility is maintained incrementally at the events that change it
// (issues, barrier releases, block launch/retire) rather than re-derived
// from every warp context each cycle, spans in which no instruction can
// issue are fast-forwarded in one step, and the steady-state issue path
// performs no heap allocation. None of this changes any number — the
// modeled cycle count, every statistic and every PRNG tie-break are
// bit-identical to a naive per-cycle rescan, by construction (the
// incremental walk probes the same candidates in the same order) and
// pinned by the golden-stats fixture. See the README's Performance
// section for how to benchmark and profile.
//
// # Static analysis
//
// The invariants above — bit-identical statistics, a zero-allocation
// issue path, complete Merge aggregation — are additionally enforced
// at vet time by the repository's own analyzer suite (internal/lint,
// run as `go run ./cmd/sbwi-lint ./...` or as a `go vet -vettool`;
// `-json` emits machine-readable findings). The suite includes a
// flow-sensitive lock-discipline analyzer, lockcheck: struct fields
// annotated //sbwi:guardedby <mutexField> may only be accessed where
// a CFG dataflow analysis proves the named mutex held, so the mutex
// regime of the concurrent device stack is checked at vet time rather
// than sampled by the -race suites. The //sbwi: comment directives
// appearing in the sources (hotpath, unordered, alloc-ok,
// wallclock-ok, nomerge, unguarded, guardedby, nolock) belong to that
// suite; each waiver carries its one-line justification inline — a
// bare waiver is itself reported. See the README's "Static analysis"
// section for the analyzer catalogue and the directive table.
//
// # Migrating from the v0 API
//
// The original one-shot entry points — sbwi.Run and sbwi.Configure —
// were deprecated in the Device release and have now been removed:
//
//	res, err := sbwi.Run(sbwi.Configure(sbwi.SBI), l)   // removed
//
//	dev, err := sbwi.NewDevice(sbwi.WithArch(sbwi.SBI)) // current
//	res, err := dev.Run(ctx, l)
//
// A single-SM unpartitioned Device.Run is cycle-exact with the old
// sbwi.Run, so migrating changes no numbers. Config fields map to
// options (WithShuffle, WithAssoc, WithConstraints, WithTrace,
// WithSeed, ...); WithConfig bridges anything without a dedicated
// option. Verify likewise takes options now: Verify(l, WithArch(a)).
//
// See the examples directory for runnable programs and EXPERIMENTS.md
// for the paper-versus-measured record.
package sbwi
