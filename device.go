package sbwi

import (
	"repro/internal/device"
)

// Device is the primary entry point of the library: an N-SM simulation
// engine configured once with functional options and then used for any
// number of concurrent, cancellable runs.
//
//	dev, err := sbwi.NewDevice(
//		sbwi.WithArch(sbwi.SBISWI),
//		sbwi.WithSMs(16),
//		sbwi.WithGridPartition(true),
//	)
//	res, err := dev.Run(ctx, launch)
//
// A Device is immutable after construction and safe for concurrent
// use. Its entry points are
//
//	Run(ctx, *Launch) (*Result, error)            — one launch, synchronous
//	RunSuite(ctx, []*Benchmark) ([]*SuiteResult, error) — a batch
//	NewStream() *Stream                           — asynchronous FIFO launches
//	Synchronize(ctx) error                        — drain everything in flight
//
// all context-aware and admitted by the device's run queue (one
// bounded worker pool shared by streams, Run calls and suite batches).
// See the package documentation for the execution model and the
// determinism guarantees.
type Device = device.Device

// Stream is a FIFO lane of asynchronous work on a Device, mirroring
// the CUDA stream model: Launch enqueues without blocking and returns
// a *Pending future; launches within one stream execute in enqueue
// order, launches on different streams run concurrently on the
// device's worker pool, and Record/WaitEvent give cross-stream
// dependencies. A failed or cancelled operation poisons the stream's
// later entries (they fail fast, wrapping the original error); other
// streams are unaffected. Streams never change simulation results —
// every launch's Stats are bit-identical to the synchronous Run path
// for any interleaving.
type Stream = device.Stream

// Pending is the future of one asynchronous stream launch: Wait blocks
// for the result, Done returns a channel closed at completion for
// select loops. Cancellation rides the context given to Launch.
type Pending = device.Pending

// Event marks a point in a stream's FIFO order (Stream.Record):
// Event.Wait blocks the host until the recorded work completed, and
// Stream.WaitEvent makes another stream wait for it before running its
// later entries.
type Event = device.Event

// RunQueue is a device admission queue: a bounded pool of simulation
// slots granted longest-job-first. Every device has a private one
// sized by WithWorkers; build one explicitly (NewRunQueue) and pass it
// to several devices via WithRunQueue to bound their combined load by
// a single pool under one cost policy.
type RunQueue = device.RunQueue

// NewRunQueue builds an admission queue with the given number of
// concurrent simulation slots (<= 0 means GOMAXPROCS), for sharing
// across devices via WithRunQueue.
func NewRunQueue(workers int) *RunQueue { return device.NewRunQueue(workers) }

// SuiteResult is one benchmark's outcome within Device.RunSuite: the
// merged simulation result, or the error that stopped it (including
// oracle mismatches — RunSuite validates every final memory image
// against the benchmark's Go reference).
type SuiteResult = device.SuiteResult

// SimCache memoizes oracle-validated RunSuite simulations across
// passes and devices (attach one with WithSimCache). The cache key is
// sound — it digests the full configuration via Config.Fingerprint —
// and concurrent passes deduplicate in-flight work: the same cell is
// simulated once, everyone else waits for the result. Safe for
// concurrent use.
type SimCache = device.SimCache

// NewSimCache returns an empty simulation cache to share between
// devices via WithSimCache.
func NewSimCache() *SimCache { return device.NewSimCache() }

// NewDevice builds a simulation device. The zero option set models a
// single SBI+SWI SM with the paper's table-2 parameters; see the
// With... options for everything that can be tuned.
func NewDevice(opts ...Option) (*Device, error) { return device.New(opts...) }
