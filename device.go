package sbwi

import (
	"repro/internal/device"
)

// Device is the primary entry point of the library: an N-SM simulation
// engine configured once with functional options and then used for any
// number of concurrent, cancellable runs.
//
//	dev, err := sbwi.NewDevice(
//		sbwi.WithArch(sbwi.SBISWI),
//		sbwi.WithSMs(16),
//		sbwi.WithGridPartition(true),
//	)
//	res, err := dev.Run(ctx, launch)
//
// A Device is immutable after construction and safe for concurrent
// use. Its two entry points are
//
//	Run(ctx, *Launch) (*Result, error)            — one launch
//	RunSuite(ctx, []*Benchmark) ([]*SuiteResult, error) — a batch
//
// both context-aware and bounded by the device's worker pool. See the
// package documentation for the execution model and the determinism
// guarantees.
type Device = device.Device

// SuiteResult is one benchmark's outcome within Device.RunSuite: the
// merged simulation result, or the error that stopped it (including
// oracle mismatches — RunSuite validates every final memory image
// against the benchmark's Go reference).
type SuiteResult = device.SuiteResult

// SimCache memoizes oracle-validated RunSuite simulations across
// passes and devices (attach one with WithSimCache). The cache key is
// sound — it digests the full configuration via Config.Fingerprint —
// and concurrent passes deduplicate in-flight work: the same cell is
// simulated once, everyone else waits for the result. Safe for
// concurrent use.
type SimCache = device.SimCache

// NewSimCache returns an empty simulation cache to share between
// devices via WithSimCache.
func NewSimCache() *SimCache { return device.NewSimCache() }

// NewDevice builds a simulation device. The zero option set models a
// single SBI+SWI SM with the paper's table-2 parameters; see the
// With... options for everything that can be tuned.
func NewDevice(opts ...Option) (*Device, error) { return device.New(opts...) }
