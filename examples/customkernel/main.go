// Custom kernel development flow: write a block-level parallel
// reduction, validate it bit-for-bit against the functional reference
// on every architecture with sbwi.Verify, then measure it.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	sbwi "repro"
)

// Tree reduction over shared memory: each block sums 256 inputs into
// out[ctaid]. The stride loop is uniform; the "am I below the stride"
// gate diverges in the tail iterations — a classic mildly-irregular
// kernel.
const src = `
.shared 1024
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	shl  r8, r1, 2
	st.s [r8], r7
	bar
	mov  r9, 128
reduce:
	isetp.ge r10, r1, r9
	bra  r10, skip
	iadd r11, r1, r9
	shl  r11, r11, 2
	ld.s r12, [r11]
	ld.s r13, [r8]
	iadd r13, r13, r12
	st.s [r8], r13
skip:
	bar
	shr  r9, r9, 1
	isetp.gt r14, r9, 0
	bra  r14, reduce
	isetp.ne r15, r1, 0
	bra  r15, done
	ld.s r16, [r8]
	mov  r17, %p0
	shl  r18, r2, 2
	iadd r17, r17, r18
	st.g [r17], r16
done:
	exit
`

func main() {
	prog, err := sbwi.Assemble("reduce", src)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		log.Fatal(err)
	}

	const grid, block = 8, 256
	n := grid * block
	mkLaunch := func(p *sbwi.Program) *sbwi.Launch {
		global := make([]byte, (grid+n)*4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(global[(grid+i)*4:], uint32(i%7+1))
		}
		return sbwi.NewLaunch(p, grid, block, global, 0, uint32(grid*4))
	}

	// 1. Validate on every architecture before trusting any timing.
	for _, a := range sbwi.Architectures() {
		p := tf
		if a == sbwi.Baseline {
			p = prog
		}
		if err := sbwi.Verify(mkLaunch(p), sbwi.WithArch(a)); err != nil {
			log.Fatalf("validation failed: %v", err)
		}
	}
	fmt.Println("reduction kernel validated on all architectures")

	// 2. Measure.
	ctx := context.Background()
	fmt.Printf("%-10s %8s %8s %9s\n", "arch", "cycles", "IPC", "barriers")
	for _, a := range sbwi.Architectures() {
		p := tf
		if a == sbwi.Baseline {
			p = prog
		}
		dev, err := sbwi.NewDevice(sbwi.WithArch(a))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dev.Run(ctx, mkLaunch(p))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %8.2f %9d\n", a, res.Stats.Cycles, res.Stats.IPC(), res.Stats.BarrierWaits)
	}

	// 3. Inspect one result.
	dev, err := sbwi.NewDevice(sbwi.WithArch(sbwi.SBISWI))
	if err != nil {
		log.Fatal(err)
	}
	l := mkLaunch(tf)
	if _, err := dev.Run(ctx, l); err != nil {
		log.Fatal(err)
	}
	sum := binary.LittleEndian.Uint32(l.Global[0:4])
	fmt.Printf("block 0 sum = %d\n", sum)
}
