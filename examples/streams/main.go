// Streams: the asynchronous launch API. Three suite kernels are
// submitted across two concurrent streams — FIFO within a stream, an
// event edge between the streams — and the device is drained with
// Synchronize. The per-launch statistics are bit-identical to what
// synchronous Device.Run produces, whatever the interleaving.
package main

import (
	"context"
	"fmt"
	"log"

	sbwi "repro"
)

func main() {
	ctx := context.Background()

	// Two workers so the streams genuinely overlap on the host.
	dev, err := sbwi.NewDevice(sbwi.WithArch(sbwi.SBISWI), sbwi.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}

	launch := func(name string) *sbwi.Launch {
		b, ok := sbwi.BenchmarkByName(name)
		if !ok {
			log.Fatalf("benchmark %s missing", name)
		}
		l, err := b.NewLaunch(true) // thread-frontier variant for SBI+SWI
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	// Stream A: BFS then Histogram, strictly in that order (FIFO).
	// Stream B: Transpose, concurrent with everything on stream A.
	a, b := dev.NewStream(), dev.NewStream()
	bfs := a.Launch(ctx, launch("BFS"))
	histogram := a.Launch(ctx, launch("Histogram"))
	transpose := b.Launch(ctx, launch("Transpose"))

	// Cross-stream dependency: record stream A's position after both
	// launches, and make stream B wait for it before its next launch.
	done := a.Record()
	b.WaitEvent(done)
	tail := b.Launch(ctx, launch("MatrixMul")) // runs after BFS + Histogram completed

	// Futures resolve independently of submission order…
	for _, p := range []struct {
		name string
		pend *sbwi.Pending
	}{{"BFS", bfs}, {"Histogram", histogram}, {"Transpose", transpose}, {"MatrixMul", tail}} {
		res, err := p.pend.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %7d cycles  IPC %5.2f\n", p.name, res.Stats.Cycles, res.Stats.IPC())
	}
	// …and Synchronize drains whatever is still in flight.
	if err := dev.Synchronize(ctx); err != nil {
		log.Fatal(err)
	}

	// The determinism guarantee: a stream launch computes exactly what
	// the synchronous path computes.
	sync, err := dev.Run(ctx, launch("BFS"))
	if err != nil {
		log.Fatal(err)
	}
	async, err := bfs.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream BFS == synchronous BFS: %v\n", async.Stats == sync.Stats)
}
