// Lane shuffling study (paper table 1, figure 8b): a workload where
// the first threads of every warp carry more work — the correlated
// imbalance pattern of §4 — compared under every shuffling policy.
package main

import (
	"context"
	"fmt"
	"log"

	sbwi "repro"
)

// Thread t of every warp loops proportionally to (63 - t%64): low lanes
// work longest. Under Identity mapping every warp's busy threads sit in
// the same lanes, so SWI cannot pack two warps onto the row; XorRev
// spreads them.
const src = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	and  r5, r1, 63
	mov  r6, 64
	isub r6, r6, r5
	mov  r7, 0
	mov  r8, 0
work:
	imad r8, r8, 3, r4
	iadd r7, r7, 1
	isetp.lt r9, r7, r6
	bra  r9, work
	shl  r10, r4, 2
	mov  r11, %p0
	iadd r11, r11, r10
	st.g [r11], r8
	exit
`

func main() {
	prog, err := sbwi.Assemble("imbalance", src)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		log.Fatal(err)
	}

	policies := []sbwi.Shuffle{sbwi.Identity, sbwi.MirrorOdd, sbwi.MirrorHalf, sbwi.Xor, sbwi.XorRev}
	const grid, block = 16, 256

	fmt.Printf("%-12s %8s %8s %10s\n", "policy", "cycles", "IPC", "SWI pairs")
	var identity int64
	for _, pol := range policies {
		dev, err := sbwi.NewDevice(sbwi.WithArch(sbwi.SWI), sbwi.WithShuffle(pol))
		if err != nil {
			log.Fatal(err)
		}
		l := sbwi.NewLaunch(tf, grid, block, make([]byte, grid*block*4), 0)
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		if pol == sbwi.Identity {
			identity = s.Cycles
		}
		fmt.Printf("%-12s %8d %8.2f %10d   (%+.1f%% vs Identity)\n",
			pol, s.Cycles, s.IPC(), s.SWIPairs,
			100*(float64(identity)/float64(s.Cycles)-1))
	}
}
