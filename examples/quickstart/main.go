// Quickstart: assemble a small kernel, run it on the combined SBI+SWI
// architecture, and read the statistics.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	sbwi "repro"
)

const src = `
	// out[gid] = 3 * in[gid] + 1
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1     // gid
	shl  r5, r4, 2          // byte offset
	mov  r6, %p1            // input base
	iadd r6, r6, r5
	ld.g r7, [r6]
	imul r7, r7, 3
	iadd r7, r7, 1
	mov  r8, %p0            // output base
	iadd r8, r8, r5
	st.g [r8], r7
	exit
`

func main() {
	prog, err := sbwi.Assemble("saxpyish", src)
	if err != nil {
		log.Fatal(err)
	}
	// The SBI/SWI architectures execute the SYNC-instrumented variant.
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		log.Fatal(err)
	}

	const grid, block = 8, 256
	n := grid * block
	global := make([]byte, 2*n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(global[(n+i)*4:], uint32(i))
	}

	dev, err := sbwi.NewDevice(sbwi.WithArch(sbwi.SBISWI))
	if err != nil {
		log.Fatal(err)
	}
	launch := sbwi.NewLaunch(tf, grid, block, global, 0, uint32(n*4))
	res, err := dev.Run(context.Background(), launch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d threads in %d cycles: IPC %.2f\n",
		n, res.Stats.Cycles, res.Stats.IPC())
	fmt.Printf("issues: %d (%.0f%% from the secondary slot)\n",
		res.Stats.IssueSlots, 100*res.Stats.SecondaryShare())
	for i := 0; i < 4; i++ {
		v := binary.LittleEndian.Uint32(global[i*4:])
		fmt.Printf("out[%d] = %d\n", i, v)
	}
}
