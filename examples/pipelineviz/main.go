// Pipeline visualization (paper figure 2): the contents of the
// execution pipeline for an if/else block under classic SIMT, SBI,
// SWI, and their combination, rendered as lane-occupancy strips —
// '1' marks the primary instruction's lanes, '2' the secondary's,
// '.' an idle lane.
package main

import (
	"context"
	"fmt"
	"log"

	sbwi "repro"
)

const src = `
	mov  r1, %tid
	and  r2, r1, 1
	isetp.eq r3, r2, 0
	bra  r3, even
	imul r4, r1, 3
	iadd r4, r4, 1
	imul r4, r4, 5
	bra  join
even:
	iadd r4, r1, 100
	imul r4, r4, 7
	iadd r4, r4, 2
join:
	shl  r5, r1, 2
	mov  r6, %p0
	iadd r6, r6, r5
	st.g [r6], r4
	exit
`

func main() {
	prog, err := sbwi.Assemble("fig2", src)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		log.Fatal(err)
	}

	for _, a := range sbwi.Architectures() {
		p := tf
		if a == sbwi.Baseline {
			p = prog
		}
		dev, err := sbwi.NewDevice(sbwi.WithArch(a), sbwi.WithTrace(512))
		if err != nil {
			log.Fatal(err)
		}
		l := sbwi.NewLaunch(p, 1, 128, make([]byte, 128*4), 0)
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %d cycles, IPC %.1f ===\n", a, res.Stats.Cycles, res.Stats.IPC())
		fmt.Print(res.Trace.Lanes(dev.Config().WarpWidth))
		fmt.Println()
	}
	fmt.Println("Compare the strips: the baseline serializes the even/odd paths,")
	fmt.Println("SBI blends them ('1' and '2' in one row), and SWI fills idle")
	fmt.Println("lanes with other warps.")
}
