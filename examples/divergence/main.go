// Divergence study: a balanced if/else kernel (the case SBI is built
// for, paper §3) compared across all five architectures, with the
// divergence and co-issue statistics that explain the differences.
package main

import (
	"context"
	"fmt"
	"log"

	sbwi "repro"
)

// Every odd thread takes a multiply-heavy path; every even thread an
// add-heavy one. The two paths are balanced, so SBI can run them on
// disjoint halves of the 64-lane row simultaneously.
const src = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	and  r5, r1, 1
	isetp.eq r6, r5, 0
	mov  r7, 0
	mov  r8, 0
loop:
	bra  r6, even
	imul r9, r4, 3
	imad r9, r9, 5, r7
	imul r9, r9, 7
	iadd r7, r9, 11
	bra  next
even:
	iadd r9, r4, 100
	iadd r9, r9, r7
	shl  r10, r9, 1
	iadd r7, r9, r10
next:
	iadd r8, r8, 1
	isetp.lt r11, r8, 32
	bra  r11, loop
	shl  r12, r4, 2
	mov  r13, %p0
	iadd r13, r13, r12
	st.g [r13], r7
	exit
`

func main() {
	prog, err := sbwi.Assemble("balanced", src)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		log.Fatal(err)
	}

	const grid, block = 8, 256
	fmt.Printf("%-10s %8s %8s %10s %10s %9s\n", "arch", "cycles", "IPC", "divergences", "merges", "SBI pairs")
	base := int64(0)
	for _, a := range sbwi.Architectures() {
		p := tf
		if a == sbwi.Baseline {
			p = prog
		}
		dev, err := sbwi.NewDevice(sbwi.WithArch(a))
		if err != nil {
			log.Fatal(err)
		}
		l := sbwi.NewLaunch(p, grid, block, make([]byte, grid*block*4), 0)
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		if a == sbwi.Baseline {
			base = s.Cycles
		}
		fmt.Printf("%-10s %8d %8.2f %10d %10d %9d   (%.2fx)\n",
			a, s.Cycles, s.IPC(), s.Divergences, s.Merges, s.SBIPairs,
			float64(base)/float64(s.Cycles))
	}
	fmt.Println("\nThe balanced branch keeps both warp-splits runnable, so SBI")
	fmt.Println("co-issues them to disjoint lane subsets and recovers the loss.")
}
