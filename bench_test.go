package sbwi

// One testing.B benchmark per table and figure of the paper's
// evaluation (§5). Each iteration regenerates the experiment from
// scratch (fresh runner, no memoization across iterations) and reports
// the headline metric the paper quotes, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.
// EXPERIMENTS.md records the paper-versus-measured comparison.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/area"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/sm"
)

// gmeanCell extracts the last row's cell value (the experiments put
// their summary means there).
func lastRowCell(t *experiments.Table, col int) float64 {
	return t.Rows[len(t.Rows)-1].Cells[col].Val
}

// BenchmarkFig7aRegular regenerates figure 7(a): IPC of the ten
// regular applications on all five architectures. Reported metrics are
// the geometric-mean speedups over the baseline (paper: SBI +15%,
// SWI +25%).
func BenchmarkFig7aRegular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 1), "SBI-speedup")
		b.ReportMetric(lastRowCell(t, 2), "SWI-speedup")
		b.ReportMetric(lastRowCell(t, 3), "both-speedup")
	}
}

// BenchmarkFig7bIrregular regenerates figure 7(b): IPC of the
// irregular applications — the paper's eleven plus the synthetic
// WriteStorm anchor (paper: SBI +41%, SWI +33%, both +40%; TMD
// excluded from the means).
func BenchmarkFig7bIrregular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 1), "SBI-speedup")
		b.ReportMetric(lastRowCell(t, 2), "SWI-speedup")
		b.ReportMetric(lastRowCell(t, 3), "both-speedup")
	}
}

// BenchmarkFig8aConstraints regenerates figure 8(a): the selective
// synchronization constraints' effect on SBI and SBI+SWI (paper:
// negligible IPC effect on SBI, SortingNetworks +2.4% on SBI+SWI,
// issued instructions reduced).
func BenchmarkFig8aConstraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 0), "SBI-constrained-speedup")
		b.ReportMetric(lastRowCell(t, 1), "both-constrained-speedup")
	}
}

// BenchmarkFig8bLaneShuffle regenerates figure 8(b): lane-shuffling
// policies under SWI on the irregular suite (paper: XorRev best,
// gmean +1.4% irregular).
func BenchmarkFig8bLaneShuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 3), "XorRev-speedup")
	}
}

// BenchmarkFig9Associativity regenerates figure 9: SWI lookup
// associativity (paper: direct-mapped keeps >=85% of fully-associative
// performance on irregular applications).
func BenchmarkFig9Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 3), "direct-mapped-ratio")
	}
}

// BenchmarkTable2Parameters renders the configuration table.
func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Storage computes the storage-requirement table from
// the parameterized bit-count model.
func BenchmarkTable3Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3().Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4Area computes the area table (paper: overheads 3.0%,
// 2.9%, 3.7% of a 15.6 mm^2 SM).
func BenchmarkTable4Area(b *testing.B) {
	g, k := area.PaperGeometry(), area.PaperCoefficients()
	for i := 0; i < b.N; i++ {
		t := experiments.Table4()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
		_, frac := area.Overhead(g, k, area.SBISWI)
		b.ReportMetric(frac*100, "SBI+SWI-overhead-%")
	}
}

// BenchmarkFig2PipelineTrace exercises the figure-2 trace pipeline on
// the toy if/else kernel across all architectures.
func BenchmarkFig2PipelineTrace(b *testing.B) {
	prog, err := Assemble("fig2", `
	mov  r1, %tid
	and  r2, r1, 1
	isetp.eq r3, r2, 0
	bra  r3, even
	imul r4, r1, 3
	bra  join
even:
	iadd r4, r1, 100
join:
	shl  r5, r1, 2
	mov  r6, %p0
	iadd r6, r6, r5
	st.g [r6], r4
	exit
`)
	if err != nil {
		b.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range Architectures() {
			p := tf
			if a == Baseline {
				p = prog
			}
			cfg := sm.Configure(a)
			cfg.TraceCap = 256
			l := NewLaunch(p, 1, 128, make([]byte, 128*4), 0)
			res, err := sm.Run(cfg, l)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Trace.Lanes(cfg.WarpWidth)) == 0 {
				b.Fatal("empty trace")
			}
		}
	}
}

// BenchmarkAblationScoreboard compares the dependency-matrix
// scoreboard against the exact-mask oracle and the per-warp rule
// (design-choice study beyond the paper's figures).
func BenchmarkAblationScoreboard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.AblationScoreboard()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 2), "per-warp-vs-matrix")
	}
}

// BenchmarkAblationMemSplit evaluates the DWS-style memory-divergence
// splitting extension on SBI+SWI.
func BenchmarkAblationMemSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		t, err := r.AblationMemSplit()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowCell(t, 0), "split-speedup")
	}
}

// BenchmarkSuiteRunner compares the serial seed-style suite loop (one
// sm.Run per benchmark, oracle-checked, in order) against the device
// batch runner, which dispatches the same oracle-checked simulations
// longest-job-first across the worker pool and routes the heavy tail
// through the wave-partitioned engine (WithAutoPartition). The suite
// is tail-bound by a handful of heavy kernels, so the batch runner's
// wall-clock approaches max(heaviest wave, total/workers) rather than
// dropping linearly with the core count; the device-parallel-w1/w4/wN
// axis makes the worker scaling visible in bench output. Per-kernel
// statistics stay bit-identical to the serial loop except for the
// auto-partitioned tail entries, which carry the partitioned timing
// model's numbers (deterministic for every worker count). No
// simulation cache is attached: every iteration simulates for real.
func BenchmarkSuiteRunner(b *testing.B) {
	suite := Benchmarks()
	b.Run("serial-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bench := range suite {
				l, err := bench.NewLaunch(true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sm.Run(sm.Configure(sm.ArchSBI), l); err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(l.Global, bench.Expected()) {
					b.Fatalf("%s diverged from reference", bench.Name)
				}
			}
		}
	})
	runDevice := func(b *testing.B, opts ...Option) {
		b.Helper()
		dev, err := NewDevice(append([]Option{WithArch(SBI), WithAutoPartition(true)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			results, err := dev.RunSuite(context.Background(), suite)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Bench.Name, r.Err)
				}
			}
		}
	}
	b.Run("device-parallel", func(b *testing.B) { runDevice(b) })
	workerAxis := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		workerAxis = append(workerAxis, n)
	}
	for _, w := range workerAxis {
		b.Run(fmt.Sprintf("device-parallel-w%d", w), func(b *testing.B) {
			runDevice(b, WithWorkers(w))
		})
	}
}

// BenchmarkTraceReplay prices the record-once / replay-per-point
// engine on the memory-hierarchy sweep shape: the bandwidth-bound
// benchmarks partitioned across 4 SMs behind the shared L2, one fresh
// interconnect-bandwidth sweep point per iteration (every iteration
// gets a distinct bandwidth — a repeated point would be a pure
// result-cache hit and measure nothing). full-sim-per-point
// re-simulates the functional layer at every point; replay-per-point
// serves every point from the traces one pre-recorded run produced,
// still running the complete scheduling/timing machinery — only branch
// outcomes and effective addresses come from the table; record-once
// prices the recording run itself. The suite is the replayable subset
// of the memory-hierarchy benchmarks (BFS is outside the validity
// domain and runs full simulations in both modes, so it would only
// dilute the comparison).
func BenchmarkTraceReplay(b *testing.B) {
	var suite []*kernels.Benchmark
	for _, name := range []string{"Transpose", "Histogram"} {
		bench, ok := kernels.ByName(name)
		if !ok {
			b.Fatal("missing", name)
		}
		suite = append(suite, bench)
	}
	point := func(i int, extra ...Option) []Option {
		nc := DefaultNoCConfig()
		nc.BytesPerCycle = 2 + float64(i)
		return append([]Option{
			WithArch(SBISWI),
			WithSMs(4),
			WithGridPartition(true),
			WithL2(DefaultL2Config()),
			WithInterconnect(nc),
		}, extra...)
	}
	run := func(b *testing.B, opts []Option) {
		b.Helper()
		dev, err := NewDevice(opts...)
		if err != nil {
			b.Fatal(err)
		}
		results, err := dev.RunSuite(context.Background(), suite)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Bench.Name, r.Err)
			}
		}
	}
	b.Run("full-sim-per-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, point(i))
		}
	})
	b.Run("replay-per-point", func(b *testing.B) {
		cache := NewSimCache()
		run(b, point(0, WithSimCache(cache), WithTraceReplay(true)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, point(1+i, WithSimCache(cache), WithTraceReplay(true)))
		}
	})
	b.Run("record-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, point(i, WithSimCache(NewSimCache()), WithTraceReplay(true)))
		}
	})
}

// BenchmarkKernel provides per-kernel micro-benchmarks of the cycle
// simulator itself (simulation throughput, not modeled IPC), one
// representative kernel per class.
func BenchmarkKernel(b *testing.B) {
	for _, name := range []string{"MatrixMul", "Mandelbrot", "TMD2"} {
		bench, ok := kernels.ByName(name)
		if !ok {
			b.Fatal("missing", name)
		}
		for _, a := range []sm.Arch{sm.ArchBaseline, sm.ArchSBISWI} {
			b.Run(name+"/"+a.String(), func(b *testing.B) {
				var instrs uint64
				for i := 0; i < b.N; i++ {
					l, err := bench.NewLaunch(a != sm.ArchBaseline)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sm.Run(sm.Configure(a), l)
					if err != nil {
						b.Fatal(err)
					}
					instrs += res.Stats.ThreadInstrs
				}
				b.ReportMetric(float64(instrs)/float64(b.N)/b.Elapsed().Seconds()*float64(b.N), "thread-instrs/s")
			})
		}
	}
}
