package sbwi

import (
	"context"
	"strings"
	"testing"
)

const scaleSrc = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	shl  r5, r4, 2
	mov  r6, %p0
	iadd r6, r6, r5
	ld.g r7, [r6]
	imul r7, r7, 3
	st.g [r6], r7
	exit
`

func TestQuickstartFlow(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]byte, 4*256*4)
	for i := range global {
		global[i] = byte(i)
	}
	dev, err := NewDevice(WithArch(SBISWI))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaunch(tf, 4, 256, global, 0)
	res, err := dev.Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPC() <= 0 {
		t.Errorf("IPC = %f", res.Stats.IPC())
	}
}

func TestNewLaunchRejectsExcessParams(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]uint32, 17)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewLaunch must panic on more than 16 params instead of dropping them")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "17 kernel parameters") {
			t.Errorf("panic message = %v", r)
		}
	}()
	NewLaunch(prog, 1, 32, nil, params...)
}

func TestNewLaunchKeepsAllParams(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]uint32, 16)
	for i := range params {
		params[i] = uint32(i + 1)
	}
	l := NewLaunch(prog, 1, 32, nil, params...)
	for i, v := range params {
		if l.Params[i] != v {
			t.Errorf("param %d = %d, want %d", i, l.Params[i], v)
		}
	}
}

func TestVerifyAcrossArchitectures(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Architectures() {
		p := tf
		if a == Baseline {
			p = prog
		}
		global := make([]byte, 2*256*4)
		for i := range global {
			global[i] = byte(i * 3)
		}
		l := NewLaunch(p, 2, 256, global, 0)
		if err := Verify(l, WithArch(a)); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestVerifyCatchesBadKernel(t *testing.T) {
	// A racy kernel whose outcome depends on warp interleaving: every
	// thread writes its gid to word 0. The reference (32-wide, serial
	// warp order) and a 64-wide machine disagree.
	src := `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p0
	st.g [r5], r4
	exit
`
	prog, err := Assemble("racy", src)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaunch(tf, 4, 256, make([]byte, 64), 0)
	// The race may or may not produce a difference, but Verify must
	// never panic and must accept a deterministic single-thread launch.
	_ = Verify(l, WithArch(SWI))

	one := NewLaunch(tf, 1, 1, make([]byte, 64), 0)
	if err := Verify(one, WithArch(SWI)); err != nil {
		t.Errorf("single-thread launch must verify: %v", err)
	}
}

func TestBenchmarksExposed(t *testing.T) {
	// The paper's 21 kernels plus the synthetic WriteStorm anchor.
	if len(Benchmarks()) != 22 {
		t.Errorf("suite size = %d", len(Benchmarks()))
	}
	b, ok := BenchmarkByName("MatrixMul")
	if !ok {
		t.Fatal("MatrixMul missing")
	}
	l, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(WithArch(SWI))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPC() <= 0 {
		t.Error("no work simulated")
	}
}

func TestExperimentsExposed(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 13 { // 5 figures + 3 tables + 4 ablations + memory-hierarchy
		t.Errorf("experiments = %v", names)
	}
	r := NewExperiments()
	tab, err := r.Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Text(), "Overhead") {
		t.Error("table4 text incomplete")
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble("bad", "floop r1, r2\nexit"); err == nil {
		t.Error("unknown mnemonic must fail")
	}
	if _, err := Assemble("empty", ""); err == nil {
		t.Error("empty program must fail")
	}
}

func TestTraceFromFacade(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	tf, _ := ThreadFrontier(prog)
	dev, err := NewDevice(WithArch(SBI), WithTrace(32))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaunch(tf, 1, 64, make([]byte, 64*4), 0)
	res, err := dev.Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("no trace")
	}
	if res.Trace.Lanes(64) == "" {
		t.Error("empty lane rendering")
	}
}
