// Command sbwi-bench regenerates the paper's evaluation: every figure
// and table of §5. Simulations fan out across the host's cores through
// the device engine's suite runner.
//
// Usage:
//
//	sbwi-bench                 # run everything, print text tables
//	sbwi-bench -exp fig7b      # one experiment
//	sbwi-bench -exp fig9 -csv  # CSV output
//	sbwi-bench -workers 4      # bound the simulation worker pool
//	sbwi-bench -v              # per-simulation progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	sbwi "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(sbwi.ExperimentNames(), ", ")+", or all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("workers", 0, "host worker-pool bound (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "log each simulation to stderr")
	flag.Parse()

	r := sbwi.NewExperiments()
	r.Workers = *workers
	if *verbose {
		r.Progress = os.Stderr
	}

	names := sbwi.ExperimentNames()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		t, err := r.Run(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbwi-bench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Text())
		}
	}
}
