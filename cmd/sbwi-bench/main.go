// Command sbwi-bench regenerates the paper's evaluation: every figure
// and table of §5. Simulations fan out across the host's cores through
// the device engine's suite runner.
//
// Usage:
//
//	sbwi-bench                 # run everything, print text tables
//	sbwi-bench -exp fig7b      # one experiment
//	sbwi-bench -exp fig9 -csv  # CSV output
//	sbwi-bench -workers 4      # bound the simulation worker pool
//	sbwi-bench -v              # per-simulation progress on stderr
//
// For diagnosing simulator hot-path regressions without editing tests:
//
//	sbwi-bench -exp fig7b -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	sbwi "repro"
)

func main() {
	// run carries the real logic so its defers — in particular
	// pprof.StopCPUProfile — flush before os.Exit on the error path: a
	// profile of a failing run is exactly when the flag matters.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sbwi-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(sbwi.ExperimentNames(), ", ")+", or all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	workers := flag.Int("workers", 0, "host worker-pool bound (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "log each simulation to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulations to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the simulations to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	r := sbwi.NewExperiments()
	r.Workers = *workers
	if *verbose {
		r.Progress = os.Stderr
	}

	names := sbwi.ExperimentNames()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		t, err := r.Run(name)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Text())
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the retained-heap picture
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
