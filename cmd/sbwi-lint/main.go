// Command sbwi-lint runs the repository's static-analysis suite
// (internal/lint): mapiter, hotalloc, mergefields, walltime, goguard
// and lockcheck.
//
// Two modes:
//
//   - Standalone: `sbwi-lint [packages]` (default ./...) loads the
//     packages itself — including _test.go files — and prints every
//     finding, sorted globally by position so repeated runs diff
//     cleanly; `-json` switches the output to a machine-readable
//     array (file/line/column/analyzer/message). Exit status 1 if
//     anything was reported.
//
//   - Vet tool: `go vet -vettool=$(which sbwi-lint) ./...` — the
//     binary speaks cmd/go's unitchecker protocol (-V=full version
//     handshake, then one invocation per package with a vet.cfg JSON
//     file), so the suite composes with go vet's caching and package
//     graph. Exit status 2 when a package has findings.
//
// Run `sbwi-lint -help` for flags; see internal/lint's package
// documentation (or the README "Static analysis" section) for the
// analyzer catalogue and the //sbwi: directive language.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// cmd/go probes `vettool -flags` for a JSON description of the
	// tool's analyzer flags before the first real run; this suite
	// exposes none through vet (use -analyzers in standalone mode).
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	versionFlag := flag.String("V", "", "print version and exit (go tool protocol; use -V=full)")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := flag.Bool("json", false, "standalone mode: print findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sbwi-lint [flags] [package ...]\n   or: go vet -vettool=$(which sbwi-lint) ./...\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}
	os.Exit(standalone(args, analyzers, *asJSON))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbwi-lint:", err)
	os.Exit(1)
}

// printVersion implements the `-V=full` handshake cmd/go uses to
// derive a tool ID for vet result caching. The content hash of the
// binary makes edited analyzers invalidate stale cached findings.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "devel"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version sbwi-lint-%s\n", name, id)
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := lint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// standalone loads patterns with the internal loader and reports
// findings on stdout — all packages collected first, then sorted
// globally by position, so the output is independent of package load
// order and repeated runs diff cleanly.
func standalone(patterns []string, analyzers []*lint.Analyzer, asJSON bool) int {
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fatal(err)
	}
	var diags []lint.Diagnostic
	seen := make(map[string]bool) // a file can appear in several package variants
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, analyzers) {
			if key := d.String(); !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	lint.SortDiagnostics(diags)
	if asJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sbwi-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the JSON payload cmd/go writes for each package when
// this binary runs as a vettool (mirrors x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a vet.cfg file.
func unitcheck(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("%s: %v", cfgFile, err))
	}

	// cmd/go requires the facts output to exist even when empty; this
	// suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visited only for facts
	}
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0 // synthesized test-main package
	}

	fset := token.NewFileSet()
	files, err := lint.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fatal(err)
	}
	resolve := func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			return mapped
		}
		return path
	}
	imp := importer.ForCompiler(fset, "gc", lint.ExportLookup(cfg.PackageFile, resolve))
	pkg, err := lint.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}

	diags := lint.RunAnalyzers(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
