// Command sbwi runs kernels on the simulated SM architectures.
//
// Usage:
//
//	sbwi list
//	sbwi run -kernel MatrixMul [-arch SBI+SWI] [-all] [-json] [-timeout 30s]
//	sbwi run -kernel BFS -sms 4 -partition
//	sbwi run -kernel Transpose -sms 4 -partition -l2 [-noc-bw 8] [-noc-lat 20]
//	sbwi run -kernel Histogram -streams 8 -workers 4
//	sbwi run -kernel Transpose -trace-replay [-json]
//	sbwi run -file kernel.asm -grid 4 -block 256 -global 65536 [-param N]...
//	sbwi disasm -kernel BFS [-tf]
//	sbwi pipeline-demo
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sbwi "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(os.Args[2:])
	case "disasm":
		err = disasm(os.Args[2:])
	case "pipeline-demo":
		err = pipelineDemo()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbwi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sbwi <command> [flags]

commands:
  list           list the built-in benchmark suite
  run            simulate a built-in kernel or an .asm file
  disasm         print a kernel's assembled (optionally SYNC-instrumented) code
  pipeline-demo  render the figure-2 pipeline comparison`)
	os.Exit(2)
}

func list() error {
	fmt.Printf("%-22s %-9s %6s %6s\n", "kernel", "class", "grid", "block")
	for _, b := range sbwi.Benchmarks() {
		class := "irregular"
		if b.Regular {
			class = "regular"
		}
		fmt.Printf("%-22s %-9s %6d %6d\n", b.Name, class, b.Grid, b.Block)
	}
	return nil
}

func parseArch(s string) (sbwi.Arch, error) {
	for _, a := range sbwi.Architectures() {
		if strings.EqualFold(a.String(), s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown architecture %q (have Baseline, SBI, SWI, SBI+SWI, Warp64)", s)
}

type uintList []uint32

func (p *uintList) String() string { return fmt.Sprint(*p) }
func (p *uintList) Set(s string) error {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return err
	}
	*p = append(*p, uint32(v))
	return nil
}

// runReport is the -json output for one simulation. The L2/NoC
// convenience fields summarize Stats.Mem.L2 and Stats.Mem.NoC, and
// NoCPorts carries the per-SM port breakdown (Result.NoCPorts); all of
// them stay zero/absent unless the shared memory system is modeled
// (-l2/-noc-bw). With -streams N, Streams reports the
// concurrent-launch count and the stats are stream 0's (the tool
// verifies all N are bit-identical).
type runReport struct {
	Kernel  string `json:"kernel"`
	Arch    string `json:"arch"`
	SMs     int    `json:"sms"`
	Streams int    `json:"streams,omitempty"`

	// Replayed reports whether the statistics came from a trace replay
	// (-trace-replay, and the kernel passed the record-time race
	// analysis) rather than a full simulation. Always emitted, so sweep
	// tooling can tell the two apart.
	Replayed bool `json:"replayed"`

	IPC            float64         `json:"ipc"`
	DeviceCycles   int64           `json:"deviceCycles"`
	L2HitRate      float64         `json:"l2HitRate"`
	NoCQueueCycles uint64          `json:"nocQueueCycles"`
	NoCPorts       []sbwi.NoCStats `json:"nocPorts,omitempty"`
	Stats          *sbwi.Stats     `json:"stats"`

	// Error reports a failed simulation (watchdog timeout, livelock,
	// cancellation); the numeric fields are zero and Stats is null. In
	// -json mode a failing architecture yields a report with this field
	// instead of aborting the whole run, so -all sweeps keep their
	// surviving columns.
	Error string `json:"error,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	kernel := fs.String("kernel", "", "built-in benchmark name (see `sbwi list`)")
	file := fs.String("file", "", "assemble and run this .asm file instead")
	archName := fs.String("arch", "SBI+SWI", "architecture")
	all := fs.Bool("all", false, "run on every architecture")
	sms := fs.Int("sms", 1, "number of simulated SMs")
	partition := fs.Bool("partition", false, "partition the grid across the SMs (CTA waves)")
	workers := fs.Int("workers", 0, "host worker-pool bound (0 = GOMAXPROCS)")
	streams := fs.Int("streams", 1, "submit the launch N times across N concurrent streams (asynchronous launch mode; stats must come out bit-identical)")
	l2 := fs.Bool("l2", false, "model the shared L2 + interconnect behind the L1s")
	traceReplay := fs.Bool("trace-replay", false, "record the run's per-thread trace, then replay it and return the replayed (bit-identical) statistics; kernels with timing-dependent functional behavior fall back to the full simulation")
	nocBW := fs.Float64("noc-bw", 0, "interconnect port bandwidth in bytes/cycle (>0 implies -l2; 0 leaves it unset)")
	nocLat := fs.Int64("noc-lat", -1, "interconnect traversal latency in cycles (>=0 implies -l2; -1 leaves it unset)")
	jsonOut := fs.Bool("json", false, "emit the merged statistics as JSON")
	timeout := fs.Duration("timeout", 0, "wall-clock watchdog per launch (e.g. 30s; 0 disables); an exceeded launch aborts with a partial-state diagnostic")
	grid := fs.Int("grid", 4, "grid dimension (with -file)")
	block := fs.Int("block", 256, "block dimension (with -file)")
	globalBytes := fs.Int("global", 1<<16, "global memory bytes (with -file)")
	var params uintList
	fs.Var(&params, "param", "kernel parameter (repeatable, with -file)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	archs := []sbwi.Arch{}
	if *all {
		archs = sbwi.Architectures()
	} else {
		a, err := parseArch(*archName)
		if err != nil {
			return err
		}
		archs = append(archs, a)
	}

	name := *kernel
	if name == "" {
		name = *file
	}

	if *nocBW < 0 {
		return fmt.Errorf("-noc-bw %g: port bandwidth must be positive (0 leaves it unset)", *nocBW)
	}
	if *nocLat < -1 {
		return fmt.Errorf("-noc-lat %d: traversal latency must be non-negative (-1 leaves it unset)", *nocLat)
	}
	memsys := *l2 || *nocBW > 0 || *nocLat >= 0
	if *streams < 1 {
		return fmt.Errorf("-streams %d: need at least one stream", *streams)
	}
	if *traceReplay && *streams > 1 {
		return fmt.Errorf("-trace-replay runs record+replay on one launch; it cannot be combined with -streams %d", *streams)
	}
	var reports []runReport
	if !*jsonOut {
		fmt.Printf("%-10s %10s %8s %10s %10s %8s %8s\n",
			"arch", "cycles", "IPC", "issues", "secondary", "diverge", "merges")
	}
	for _, a := range archs {
		opts := []sbwi.Option{
			sbwi.WithArch(a),
			sbwi.WithSMs(*sms),
			sbwi.WithGridPartition(*partition),
			sbwi.WithWorkers(*workers),
			sbwi.WithLaunchTimeout(*timeout),
		}
		if memsys {
			ncfg := sbwi.DefaultNoCConfig()
			if *nocBW > 0 {
				ncfg.BytesPerCycle = *nocBW
			}
			if *nocLat >= 0 {
				ncfg.Latency = *nocLat
			}
			opts = append(opts, sbwi.WithL2(sbwi.DefaultL2Config()), sbwi.WithInterconnect(ncfg))
		}
		dev, err := sbwi.NewDevice(opts...)
		if err != nil {
			return err
		}
		// makeLaunch builds a fresh launch per call: concurrent stream
		// submissions must not share a mutable global image.
		makeLaunch := func() (*sbwi.Launch, error) {
			switch {
			case *kernel != "":
				b, ok := sbwi.BenchmarkByName(*kernel)
				if !ok {
					return nil, fmt.Errorf("unknown kernel %q", *kernel)
				}
				return b.NewLaunch(a != sbwi.Baseline)
			case *file != "":
				src, err := os.ReadFile(*file)
				if err != nil {
					return nil, err
				}
				prog, err := sbwi.Assemble(*file, string(src))
				if err != nil {
					return nil, err
				}
				p := prog
				if a != sbwi.Baseline {
					if p, err = sbwi.ThreadFrontier(prog); err != nil {
						return nil, err
					}
				}
				if max := len(sbwi.Launch{}.Params); len(params) > max {
					return nil, fmt.Errorf("%d -param flags exceed the ISA's %d kernel parameters (%%p0..%%p%d)",
						len(params), max, max-1)
				}
				return sbwi.NewLaunch(p, *grid, *block, make([]byte, *globalBytes), params...), nil
			default:
				return nil, fmt.Errorf("need -kernel or -file")
			}
		}
		var res *sbwi.Result
		if *traceReplay {
			var l *sbwi.Launch
			if l, err = makeLaunch(); err == nil {
				res, err = dev.RunTraceReplay(context.Background(), l)
			}
		} else {
			res, err = runStreams(dev, makeLaunch, *streams)
		}
		if err != nil {
			if *jsonOut {
				reports = append(reports, runReport{Kernel: name, Arch: a.String(), SMs: *sms, Error: err.Error()})
				continue
			}
			return err
		}
		stats := &res.Stats
		if *jsonOut {
			r := runReport{
				Kernel: name, Arch: a.String(), SMs: *sms, Replayed: res.Replayed,
				IPC: stats.IPC(), DeviceCycles: res.DeviceCycles(),
				L2HitRate:      stats.Mem.L2.HitRate(),
				NoCQueueCycles: stats.Mem.NoC.QueueCycles,
				NoCPorts:       res.NoCPorts,
				Stats:          stats,
			}
			if *streams > 1 {
				r.Streams = *streams
			}
			reports = append(reports, r)
			continue
		}
		fmt.Printf("%-10s %10d %8.2f %10d %10d %8d %8d\n",
			a, stats.Cycles, stats.IPC(), stats.IssueSlots, stats.SecondaryIssues,
			stats.Divergences, stats.Merges)
		if *streams > 1 {
			fmt.Printf("%-10s   %d concurrent streams, per-launch stats bit-identical\n", "", *streams)
		}
		if *traceReplay {
			mode := "full simulation (kernel outside the replay validity domain)"
			if res.Replayed {
				mode = "trace replay, bit-identical to the recording run"
			}
			fmt.Printf("%-10s   %s\n", "", mode)
		}
		if memsys {
			l2s := &stats.Mem.L2
			fmt.Printf("%-10s   l2 hits %d misses %d (%.0f%%)  noc queue %d cycles (max %d)  device cycles %d\n",
				"", l2s.Hits, l2s.Misses, 100*l2s.HitRate(),
				stats.Mem.NoC.QueueCycles, stats.Mem.NoC.MaxQueueDelay, res.DeviceCycles())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

// runStreams simulates the launch: synchronously for n == 1, otherwise
// as n concurrent single-launch streams — each with its own fresh
// global image — verifying that every stream's statistics come out
// bit-identical (the stream API's determinism guarantee) and returning
// stream 0's result.
func runStreams(dev *sbwi.Device, makeLaunch func() (*sbwi.Launch, error), n int) (*sbwi.Result, error) {
	ctx := context.Background()
	if n == 1 {
		l, err := makeLaunch()
		if err != nil {
			return nil, err
		}
		return dev.Run(ctx, l)
	}
	pend := make([]*sbwi.Pending, n)
	for i := range pend {
		l, err := makeLaunch()
		if err != nil {
			return nil, err
		}
		pend[i] = dev.NewStream().Launch(ctx, l)
	}
	if err := dev.Synchronize(ctx); err != nil {
		return nil, err
	}
	first, err := pend[0].Wait()
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		res, err := pend[i].Wait()
		if err != nil {
			return nil, fmt.Errorf("stream %d: %w", i, err)
		}
		if res.Stats != first.Stats {
			return nil, fmt.Errorf("stream %d produced different statistics than stream 0 — determinism violation", i)
		}
	}
	return first, nil
}

func disasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	kernel := fs.String("kernel", "", "built-in benchmark name")
	tf := fs.Bool("tf", false, "show the SYNC-instrumented thread-frontier variant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, ok := sbwi.BenchmarkByName(*kernel)
	if !ok {
		return fmt.Errorf("unknown kernel %q", *kernel)
	}
	p, err := b.Program(*tf)
	if err != nil {
		return err
	}
	fmt.Print(p.Disassemble())
	return nil
}

// pipelineDemo renders the figure-2 comparison: the same two-warp
// if/else kernel on classic SIMT, SBI, SWI, and SBI+SWI, as per-cycle
// lane-occupancy strips ('1' = primary issue, '2' = secondary).
func pipelineDemo() error {
	const src = `
	mov  r1, %tid
	and  r2, r1, 1
	isetp.eq r3, r2, 0
	bra  r3, even
	imul r4, r1, 3
	iadd r4, r4, 1
	bra  join
even:
	iadd r4, r1, 100
	imul r4, r4, 7
join:
	shl  r5, r1, 2
	mov  r6, %p0
	iadd r6, r6, r5
	st.g [r6], r4
	exit
`
	prog, err := sbwi.Assemble("fig2", src)
	if err != nil {
		return err
	}
	tf, err := sbwi.ThreadFrontier(prog)
	if err != nil {
		return err
	}
	for _, a := range sbwi.Architectures() {
		p := tf
		if a == sbwi.Baseline {
			p = prog
		}
		dev, err := sbwi.NewDevice(sbwi.WithArch(a), sbwi.WithTrace(256))
		if err != nil {
			return err
		}
		l := sbwi.NewLaunch(p, 1, 128, make([]byte, 128*4), 0)
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			return err
		}
		cfg := dev.Config()
		fmt.Printf("--- %s (IPC %.1f, %d cycles) ---\n", a, res.Stats.IPC(), res.Stats.Cycles)
		fmt.Print(res.Trace.Lanes(cfg.WarpWidth))
		if res.Trace.Dropped > 0 {
			fmt.Printf("(trace capacity reached: %d later issue events not shown)\n", res.Trace.Dropped)
		}
		fmt.Println()
	}
	return nil
}
