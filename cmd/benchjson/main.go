// Command benchjson runs `go test -bench` and distills the output into
// a machine-readable JSON baseline: median ns/op, B/op and allocs/op
// per benchmark. The bench CI job uses it to write BENCH_<PR>.json
// files at the repository root, so every PR leaves a perf trajectory
// point the next one can be compared against (benchstat-style, but
// dependency-free and diffable in review).
//
// With -compare the freshly measured medians are additionally checked
// against a checked-in baseline: any benchmark regressing by more than
// -max-regress percent in ns/op fails the run with a non-zero exit, so
// the bench CI workflow catches hot-path regressions instead of just
// archiving them. Benchmarks present on only one side are reported but
// never fail the comparison (axes come and go across PRs).
//
// Baselines record the host they were measured on (CPU count and
// GOMAXPROCS). When the comparing host's core count differs from the
// baseline's, the worker-scaling axes — benchmarks whose names contain
// "parallel" — are skipped with a warning instead of gated: their
// ns/op measures how the worker pool maps onto the host's cores, so a
// 1-core baseline read on an 8-core runner would flag a phantom
// regression (or mask a real one) on every parallel axis.
//
// Usage:
//
//	go run ./cmd/benchjson -bench SuiteRunner -count 6 -o BENCH_PR7.json .
//	go run ./cmd/benchjson -bench SuiteRunner -compare BENCH_PR7.json -max-regress 10 .
//	go run ./cmd/benchjson -bench CycleLoop ./internal/sm
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's summarized result.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Report is the file layout of BENCH_*.json. NumCPU and GOMAXPROCS
// pin the host the numbers were measured on; -compare uses them to
// decide whether worker-scaling axes are comparable at all (zero in a
// baseline means a pre-PR7 file recorded before the fields existed,
// treated as an unknown — and therefore mismatched — host).
type Report struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu,omitempty"`
	GOMAXPROCS int              `json:"gomaxprocs,omitempty"`
	Bench      string           `json:"bench"`
	Count      int              `json:"count"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// "BenchmarkSuiteRunner/serial-seed-8  2  73 ns/op  17 B/op  21 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	count := flag.Int("count", 6, "go test -count (median is reported)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to compare the measured medians against")
	maxRegress := flag.Float64("max-regress", 10, "fail when any common benchmark's ns/op regresses by more than this percent (with -compare)")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"."}
	}

	args := append([]string{
		"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count),
	}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %v: %v\n", args, err)
		os.Exit(1)
	}

	samples := map[string][][3]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var bpo, apo float64
		if m[3] != "" {
			bpo, _ = strconv.ParseFloat(m[3], 64)
			apo, _ = strconv.ParseFloat(m[4], 64)
		}
		samples[m[1]] = append(samples[m[1]], [3]float64{ns, bpo, apo})
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results matched; raw output follows")
		os.Stderr.Write(raw)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Count:      *count,
		Benchmarks: make(map[string]Entry, len(samples)),
	}
	for name, runs := range samples {
		rep.Benchmarks[name] = Entry{
			NsPerOp:     median(runs, 0),
			BytesPerOp:  median(runs, 1),
			AllocsPerOp: median(runs, 2),
			Samples:     len(runs),
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *compare != "" {
		if !compareBaseline(&rep, *compare, *maxRegress) {
			os.Exit(1)
		}
	}
}

// compareBaseline checks the measured report against a baseline file,
// printing one line per common benchmark, and reports whether every
// common benchmark stayed within maxRegress percent of its baseline
// ns/op.
func compareBaseline(rep *Report, path string, maxRegress float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", path, err)
		return false
	}

	// Worker-scaling axes only compare across hosts with the same core
	// count: their ns/op is a property of the pool-to-core mapping, not
	// of the code alone. A baseline without the host fields (pre-PR7)
	// counts as an unknown, mismatched host.
	hostMatch := base.NumCPU == rep.NumCPU && base.GOMAXPROCS == rep.GOMAXPROCS
	if !hostMatch {
		fmt.Fprintf(os.Stderr,
			"benchjson: warning: baseline host (%d CPUs, GOMAXPROCS %d) differs from this host (%d, %d); skipping worker-scaling (\"parallel\") axes\n",
			base.NumCPU, base.GOMAXPROCS, rep.NumCPU, rep.GOMAXPROCS)
	}

	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	ok := true
	fmt.Printf("compare against %s (max ns/op regression %.0f%%):\n", path, maxRegress)
	for _, name := range names {
		got := rep.Benchmarks[name]
		want, in := base.Benchmarks[name]
		if !in {
			fmt.Printf("  %-50s %12.0f ns/op  (new, no baseline)\n", name, got.NsPerOp)
			continue
		}
		if !hostMatch && strings.Contains(name, "parallel") {
			fmt.Printf("  %-50s %12.0f -> %12.0f ns/op  skipped (host core count differs)\n",
				name, want.NsPerOp, got.NsPerOp)
			continue
		}
		delta := 100 * (got.NsPerOp - want.NsPerOp) / want.NsPerOp
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("  %-50s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, want.NsPerOp, got.NsPerOp, delta, verdict)
	}
	for name := range base.Benchmarks {
		if _, in := rep.Benchmarks[name]; !in {
			fmt.Printf("  %-50s (in baseline, not measured)\n", name)
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regressed beyond %.0f%% against %s\n", maxRegress, path)
	}
	return ok
}

// median returns the median of one column across runs.
func median(runs [][3]float64, col int) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = r[col]
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
