// Command benchjson runs `go test -bench` and distills the output into
// a machine-readable JSON baseline: median ns/op, B/op and allocs/op
// per benchmark. The bench CI job uses it to write BENCH_<PR>.json
// files at the repository root, so every PR leaves a perf trajectory
// point the next one can be compared against (benchstat-style, but
// dependency-free and diffable in review).
//
// Usage:
//
//	go run ./cmd/benchjson -bench SuiteRunner -count 6 -o BENCH_PR3.json .
//	go run ./cmd/benchjson -bench CycleLoop ./internal/sm
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Entry is one benchmark's summarized result.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// Report is the file layout of BENCH_*.json.
type Report struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Bench      string           `json:"bench"`
	Count      int              `json:"count"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// "BenchmarkSuiteRunner/serial-seed-8  2  73 ns/op  17 B/op  21 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	count := flag.Int("count", 6, "go test -count (median is reported)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"."}
	}

	args := append([]string{
		"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count),
	}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %v: %v\n", args, err)
		os.Exit(1)
	}

	samples := map[string][][3]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var bpo, apo float64
		if m[3] != "" {
			bpo, _ = strconv.ParseFloat(m[3], 64)
			apo, _ = strconv.ParseFloat(m[4], 64)
		}
		samples[m[1]] = append(samples[m[1]], [3]float64{ns, bpo, apo})
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results matched; raw output follows")
		os.Stderr.Write(raw)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Count:      *count,
		Benchmarks: make(map[string]Entry, len(samples)),
	}
	for name, runs := range samples {
		rep.Benchmarks[name] = Entry{
			NsPerOp:     median(runs, 0),
			BytesPerOp:  median(runs, 1),
			AllocsPerOp: median(runs, 2),
			Samples:     len(runs),
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// median returns the median of one column across runs.
func median(runs [][3]float64, col int) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = r[col]
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
