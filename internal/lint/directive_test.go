package lint

import "testing"

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		name, arg string
		ok        bool
	}{
		{"//sbwi:unordered keys are sorted before use", "unordered", "keys are sorted before use", true},
		{"//sbwi:alloc-ok", "alloc-ok", "", true},
		{"//sbwi:hotpath", "hotpath", "", true},
		{"// sbwi:unordered spaced marker is not a directive", "", "", false},
		{"// plain comment", "", "", false},
		{"//sbwi:", "", "", false},
	}
	for _, c := range cases {
		name, arg, ok := parseDirective(c.text)
		if name != c.name || arg != c.arg || ok != c.ok {
			t.Errorf("parseDirective(%q) = %q, %q, %v; want %q, %q, %v",
				c.text, name, arg, ok, c.name, c.arg, c.ok)
		}
	}
}

func TestDeterminismCritical(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sm", true},
		{"repro/internal/sm_test", true}, // external test package variant
		{"repro/internal/device", true},
		{"repro/internal/mem", true},
		{"repro/internal/noc", true},
		{"repro/internal/exec", true},
		{"repro/internal/lint", false},
		{"repro/cmd/sbwi-bench", false},
		{"example.com/other/internal/sm", true},
		{"example.com/smells", false},
	}
	for _, c := range cases {
		if got := DeterminismCritical(c.path); got != c.want {
			t.Errorf("DeterminismCritical(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestByNameCoversAll(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v; want the registered analyzer", a.Name, got)
		}
	}
	if got := ByName("nosuch"); got != nil {
		t.Errorf("ByName(nosuch) = %v, want nil", got)
	}
}
