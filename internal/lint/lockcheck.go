package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces the mutex discipline the runtime -race chaos
// suites can only sample: a struct field annotated
//
//	//sbwi:guardedby mu
//
// (in the field's doc or same-line comment; mu names a sibling
// sync.Mutex or sync.RWMutex field) may only be read or written at
// program points where a flow-sensitive forward dataflow analysis over
// the function's CFG (cfg.go, dataflow.go) proves the named mutex
// held. The proof is a must-hold analysis: facts meet by intersection
// at branch joins, so a lock taken on only one arm of an if does not
// cover the code after the join. Lock/Unlock and RLock/RUnlock calls
// are the transfer events; a deferred Unlock keeps the lock held
// through every path to return (defer-scoped critical section); a
// write while only the read half of an RWMutex is held is a violation
// in its own right.
//
// Pre-publication access is exempt through an escape heuristic: a
// local built in-function from &T{...}, T{...} or new(T) is
// considered unpublished for the whole function, so constructors
// initialize fields without ceremony. (The heuristic deliberately
// stays "fresh" even after the value escapes into another function —
// a constructor that spawns goroutines on its half-built value is a
// bug this analyzer does not chase.) Everything else outside the
// provable discipline is waived with `//sbwi:nolock <why>` on the
// access line (a locked-helper whose caller holds the mutex, say), or
// on the field declaration itself when the field is deliberately
// outside the mutex regime (channel happens-before publication,
// single-goroutine confinement, a foreign struct's mutex the
// annotation language cannot name). Like every sbwi directive, a bare
// waiver does not suppress — it is itself reported.
//
// Known limits, all conservative for this codebase: the lock and the
// access must name the same base variable through a chain of field
// selections (aliases made by reassignment are not tracked, and an
// access whose base the analysis cannot resolve is reported, not
// assumed safe); function literals are analyzed as their own
// functions starting lock-free; cross-package access to an annotated
// field is invisible (all annotated fields here are unexported, so
// package-local analysis is complete).
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "requires every access to a //sbwi:guardedby field to hold the named mutex, " +
		"proven by flow-sensitive dataflow (waive with //sbwi:nolock <why>)",
	Run: runLockCheck,
}

func runLockCheck(pass *Pass) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		dirs := directivesOf(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			// Function literals are analyzed as their own functions
			// (the enclosing analysis never descends into them); the
			// continued inspection below reaches nested literals.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeLockFunc(pass, dirs, guarded, n.Body)
				}
			case *ast.FuncLit:
				analyzeLockFunc(pass, dirs, guarded, n.Body)
			}
			return true
		})
	}
}

// guardInfo is one annotated field's contract.
type guardInfo struct {
	guard string // sibling mutex field name
	rw    bool   // the guard is a sync.RWMutex
}

// collectGuarded builds the package-wide registry of annotated fields
// and reports malformed annotations (bare directive, unknown or
// non-mutex guard field).
func collectGuarded(pass *Pass) map[*types.Var]guardInfo {
	out := make(map[*types.Var]guardInfo)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			styp, _ := pass.TypeOf(st).(*types.Struct)
			for _, f := range st.Fields.List {
				if arg, present := fieldDirective(f, DirNoLock); present && arg == "" {
					pass.Reportf(f.Pos(),
						"//sbwi:%s on a field declaration needs a one-line justification for why the field is outside the lock discipline", DirNoLock)
				}
				arg, present := fieldDirective(f, DirGuardedBy)
				if !present {
					continue
				}
				if arg == "" {
					pass.Reportf(f.Pos(), "//sbwi:%s needs the name of the guarding mutex field", DirGuardedBy)
					continue
				}
				if styp == nil {
					continue // type error elsewhere; nothing to resolve against
				}
				guard := fieldByName(styp, arg)
				if guard == nil {
					pass.Reportf(f.Pos(), "//sbwi:%s %s: the struct has no field named %s", DirGuardedBy, arg, arg)
					continue
				}
				rw, isMutex := mutexKind(guard.Type())
				if !isMutex {
					pass.Reportf(f.Pos(), "//sbwi:%s %s: field %s is %s, not a sync.Mutex or sync.RWMutex",
						DirGuardedBy, arg, arg, guard.Type())
					continue
				}
				for _, name := range f.Names {
					if v, isVar := pass.Info.Defs[name].(*types.Var); isVar {
						out[v] = guardInfo{guard: arg, rw: rw}
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldDirective scans a struct field's doc and same-line comments for
// the named directive. Fields use their attached comment groups rather
// than the line-based directive index so an annotation can never bleed
// onto the next field.
func fieldDirective(f *ast.Field, name string) (arg string, present bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if n, a, ok := parseDirective(c.Text); ok && n == name {
				return a, true
			}
		}
	}
	return "", false
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// mutexKind classifies a guard field's type: sync.Mutex, sync.RWMutex,
// or a pointer to either.
func mutexKind(t types.Type) (rw, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// lockID names one trackable mutex: a base variable plus a chain of
// field selections ("" for the variable itself, ".mu", ".dev.diagMu").
type lockID struct {
	root types.Object
	path string
}

// lockMode is how strongly a mutex is held; modeRead < modeExcl, and
// the join keeps the weaker of two modes.
type lockMode uint8

const (
	modeRead lockMode = 1 // RLock held (RWMutex read half)
	modeExcl lockMode = 2 // Lock held (exclusive)
)

// lockSet is the dataflow fact: the locks provably held, by mode.
// Values are immutable — transfer copies on write.
type lockSet map[lockID]lockMode

// joinLocks is the must-hold meet: a lock survives a join only if held
// on both edges, at the weaker of the two modes.
func joinLocks(a, b lockSet) lockSet {
	out := make(lockSet)
	for id, ma := range a {
		if mb, held := b[id]; held {
			m := ma
			if mb < m {
				m = mb
			}
			out[id] = m
		}
	}
	return out
}

func equalLocks(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for id, m := range a {
		if b[id] != m {
			return false
		}
	}
	return true
}

// analyzeLockFunc runs the must-hold fixpoint over one function body,
// then re-walks every reachable block with reporting enabled.
func analyzeLockFunc(pass *Pass, dirs *fileDirectives, guarded map[*types.Var]guardInfo, body *ast.BlockStmt) {
	sc := &lockScanner{
		pass:    pass,
		dirs:    dirs,
		guarded: guarded,
		fresh:   collectFresh(pass, body),
	}
	g := NewCFG(body)
	in := Fixpoint(g, ForwardAnalysis[lockSet]{
		Entry:    lockSet{},
		Join:     joinLocks,
		Equal:    equalLocks,
		Transfer: sc.transfer,
	})
	sc.report = true
	for _, blk := range g.Blocks {
		f, reachable := in[blk]
		if !reachable {
			continue
		}
		for _, n := range blk.Nodes {
			f = sc.transfer(n, f)
		}
	}
}

// collectFresh applies the escape heuristic: locals whose every
// initializing assignment is a freshly allocated value (&T{...},
// T{...}, new(T)) are pre-publication — no other goroutine can reach
// them — so guarded-field access through them is exempt. A variable
// that is ever assigned anything else is tainted and never fresh.
func collectFresh(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	tainted := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr, define bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if define {
			obj = pass.Info.Defs[id]
		} else {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if isFreshExpr(pass, rhs) {
			fresh[obj] = true
		} else {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				mark(n.Lhs[i], n.Rhs[i], n.Tok == token.DEFINE)
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				// var c T: a zero value is as unpublished as &T{}.
				for _, name := range n.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						fresh[obj] = true
					}
				}
				return true
			}
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				mark(name, n.Values[i], true)
			}
		}
		return true
	})
	for obj := range tainted {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether e evaluates to a freshly allocated
// value no other goroutine can have seen yet.
func isFreshExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "new"
	}
	return false
}

// accessKind distinguishes reads from write-class accesses (stores,
// ++/--, compound assignment, address-taking).
type accessKind uint8

const (
	accRead accessKind = iota
	accWrite
)

// lockScanner is the shared transfer/report engine: it threads a
// lockSet through one node's lock events and, during the report pass,
// checks every guarded-field access against the fact at that point.
type lockScanner struct {
	pass    *Pass
	dirs    *fileDirectives
	guarded map[*types.Var]guardInfo
	fresh   map[types.Object]bool

	fact   lockSet
	report bool
}

// transfer is the ForwardAnalysis.Transfer hook.
func (s *lockScanner) transfer(n ast.Node, in lockSet) lockSet {
	s.fact = in
	s.scanNode(n)
	return s.fact
}

func (s *lockScanner) hold(id lockID, m lockMode) {
	nf := make(lockSet, len(s.fact)+1)
	for k, v := range s.fact {
		nf[k] = v
	}
	nf[id] = m
	s.fact = nf
}

func (s *lockScanner) drop(id lockID) {
	if _, held := s.fact[id]; !held {
		return
	}
	nf := make(lockSet, len(s.fact))
	for k, v := range s.fact {
		if k != id {
			nf[k] = v
		}
	}
	s.fact = nf
}

// scanNode dispatches one CFG node — a statement or a control
// expression — into ordered sub-expression scans.
func (s *lockScanner) scanNode(n ast.Node) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		s.scanExpr(n.X, accRead)
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			s.scanExpr(r, accRead)
		}
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				_ = id // a bare identifier LHS defines or rebinds a variable: no guarded access
				continue
			}
			s.scanExpr(l, accWrite)
		}
	case *ast.IncDecStmt:
		s.scanExpr(n.X, accWrite)
	case *ast.SendStmt:
		s.scanExpr(n.Chan, accRead)
		s.scanExpr(n.Value, accRead)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			s.scanExpr(r, accRead)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, accRead)
					}
				}
			}
		}
	case *ast.DeferStmt:
		s.scanDeferred(n.Call)
	case *ast.GoStmt:
		// The call operands are evaluated at the go statement; the
		// body runs on another goroutine and is analyzed separately
		// (FuncLit) or out of scope.
		s.scanDeferred(n.Call)
	case *ast.RangeStmt:
		// Header only, by the cfg.go convention: X evaluated, Key and
		// Value assigned. The body lives in successor blocks.
		s.scanExpr(n.X, accRead)
		if n.Tok != token.DEFINE {
			for _, kv := range []ast.Expr{n.Key, n.Value} {
				if kv == nil {
					continue
				}
				if id, ok := ast.Unparen(kv).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if _, ok := ast.Unparen(kv).(*ast.Ident); ok {
					continue
				}
				s.scanExpr(kv, accWrite)
			}
		}
	case ast.Expr:
		// if/for conditions, switch tags, case expressions.
		s.scanExpr(n, accRead)
	}
}

// scanDeferred handles the call of a defer or go statement: a deferred
// mutex operation has no effect at its syntactic position (a deferred
// Unlock means the lock stays held to function exit), while any other
// deferred call still evaluates its operands here and now.
func (s *lockScanner) scanDeferred(call *ast.CallExpr) {
	if _, _, isLock := s.lockOp(call); isLock {
		return
	}
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
		s.scanExpr(call.Fun, accRead)
	}
	for _, a := range call.Args {
		s.scanExpr(a, accRead)
	}
}

// scanExpr walks one expression in evaluation-ish (lexical) order,
// applying lock events and checking guarded accesses. kind is the
// access class the surrounding context imposes on e.
func (s *lockScanner) scanExpr(e ast.Expr, kind accessKind) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		s.scanExpr(e.X, kind)
	case *ast.SelectorExpr:
		s.checkAccess(e, kind)
		// Writing through a value-typed intermediate field mutates
		// that field's memory too; a pointer hop resets to a read.
		baseKind := accRead
		if kind == accWrite && !isPointerType(s.pass.TypeOf(e.X)) {
			baseKind = accWrite
		}
		s.scanExpr(e.X, baseKind)
	case *ast.StarExpr:
		s.scanExpr(e.X, accRead) // deref-write stores through the pointer; the pointer is read
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			s.scanExpr(e.X, accWrite) // address taken: assume the alias may write
		} else {
			s.scanExpr(e.X, accRead)
		}
	case *ast.IndexExpr:
		s.scanExpr(e.X, kind)
		s.scanExpr(e.Index, accRead)
	case *ast.IndexListExpr:
		s.scanExpr(e.X, kind)
		for _, i := range e.Indices {
			s.scanExpr(i, accRead)
		}
	case *ast.SliceExpr:
		s.scanExpr(e.X, kind)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				s.scanExpr(idx, accRead)
			}
		}
	case *ast.CallExpr:
		s.scanCall(e)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, accRead)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, accRead)
		s.scanExpr(e.Y, accRead)
	case *ast.KeyValueExpr:
		s.scanExpr(e.Key, accRead)
		s.scanExpr(e.Value, accRead)
	case *ast.CompositeLit:
		isStruct := false
		if t := s.pass.TypeOf(e); t != nil {
			_, isStruct = t.Underlying().(*types.Struct)
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !isStruct {
					s.scanExpr(kv.Key, accRead) // map/array keys are expressions
				}
				s.scanExpr(kv.Value, accRead)
				continue
			}
			s.scanExpr(el, accRead)
		}
	case *ast.FuncLit:
		// Analyzed as its own function; see runLockCheck.
	}
}

// scanCall applies a mutex operation's transfer effect, or scans an
// ordinary call's operands.
func (s *lockScanner) scanCall(call *ast.CallExpr) {
	if id, op, isLock := s.lockOp(call); isLock {
		switch op {
		case "Lock":
			s.hold(id, modeExcl)
		case "RLock":
			s.hold(id, modeRead)
		case "Unlock", "RUnlock":
			s.drop(id)
		}
		return
	}
	s.scanExpr(call.Fun, accRead)
	for _, a := range call.Args {
		s.scanExpr(a, accRead)
	}
}

// lockOp recognizes a call of sync.Mutex/RWMutex Lock, Unlock, RLock
// or RUnlock on a trackable receiver chain. A lock operation on an
// unresolvable receiver is still reported as a lock op (so defer can
// skip it) but carries a zero id and no transfer effect.
func (s *lockScanner) lockOp(call *ast.CallExpr) (id lockID, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockID{}, "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockID{}, "", false
	}
	fn, isFn := s.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockID{}, "", false
	}
	root, path, resolved := s.chain(sel.X)
	if !resolved {
		return lockID{}, op, true
	}
	return lockID{root: root, path: path}, op, true
}

// chain resolves an expression to (base variable, field-selection
// path): q → (q, ""), q.mu → (q, ".mu"), s.dev.diagMu →
// (s, ".dev.diagMu"). Only plain variables and field selections
// resolve; anything passing through a call, index or conversion does
// not name a stable location the analysis can match.
func (s *lockScanner) chain(e ast.Expr) (root types.Object, path string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.pass.Info.Uses[e]
		if obj == nil {
			obj = s.pass.Info.Defs[e]
		}
		if v, isVar := obj.(*types.Var); isVar {
			return v, "", true
		}
	case *ast.SelectorExpr:
		if selv := s.pass.Info.Selections[e]; selv == nil || selv.Kind() != types.FieldVal {
			return nil, "", false
		}
		base, p, resolved := s.chain(e.X)
		if !resolved {
			return nil, "", false
		}
		return base, p + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return s.chain(e.X)
	}
	return nil, "", false
}

// checkAccess verifies one selector against the current fact if it
// selects a guarded field.
func (s *lockScanner) checkAccess(sel *ast.SelectorExpr, kind accessKind) {
	selection := s.pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	field, isVar := selection.Obj().(*types.Var)
	if !isVar {
		return
	}
	gi, isGuarded := s.guarded[field]
	if !isGuarded {
		return
	}
	root, path, resolved := s.chain(sel.X)
	if resolved && s.fresh[root] {
		return // pre-publication: the base cannot be shared yet
	}
	var held lockMode
	lockName := gi.guard
	if resolved {
		held = s.fact[lockID{root: root, path: path + "." + gi.guard}]
		lockName = types.ExprString(sel.X) + "." + gi.guard
	}
	expr := types.ExprString(sel)
	switch {
	case kind == accWrite && held == modeRead:
		s.reportAccess(sel.Pos(),
			"write to %s while %s is only read-locked (RLock); writes need the exclusive Lock", expr, lockName)
	case held == 0 && !resolved:
		s.reportAccess(sel.Pos(),
			"access to %s (//sbwi:%s %s) through a base the analysis cannot resolve; hold %s over a named variable or waive with //sbwi:%s <why>",
			expr, DirGuardedBy, gi.guard, gi.guard, DirNoLock)
	case held == 0:
		verb := "read of"
		if kind == accWrite {
			verb = "write to"
		}
		s.reportAccess(sel.Pos(),
			"%s %s without holding %s (//sbwi:%s %s; waive with //sbwi:%s <why>)",
			verb, expr, lockName, DirGuardedBy, gi.guard, DirNoLock)
	}
}

func (s *lockScanner) reportAccess(pos token.Pos, format string, args ...any) {
	if !s.report {
		return
	}
	if s.pass.suppress(s.dirs, DirNoLock, pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

func isPointerType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
