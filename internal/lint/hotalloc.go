package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc checks functions annotated `//sbwi:hotpath` (in their doc
// comment) for allocation-causing constructs. The simulator's
// steady-state issue path is required to run allocation-free —
// TestSteadyStateZeroAllocs pins 0 allocs/cycle at runtime — but that
// test only measures the configurations it runs; a new map literal on
// a rarely-taken branch of the hot loop slips through until a profile
// regresses. This analyzer rejects the construct at vet time instead.
//
// Flagged constructs: map/slice composite literals, make and new,
// append (may grow), capturing closures, go statements, calls into
// fmt, string concatenation and string<->[]byte/[]rune conversions,
// and concrete values converted to interface types (boxing).
//
// Constructs that are allocation-free in context — an append into a
// preallocated scratch buffer, a closure the escape analyzer keeps on
// the stack — are waived with `//sbwi:alloc-ok <justification>` on the
// offending line; the zero-alloc runtime test remains the
// cross-check that the justification holds.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-causing constructs in //sbwi:hotpath functions " +
		"(suppress with //sbwi:alloc-ok <why> when provably allocation-free in context)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		if pass.isTestFile(file) {
			continue
		}
		dirs := directivesOf(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, DirHotpath) {
				continue
			}
			c := &hotallocChecker{pass: pass, dirs: dirs, fn: fd.Name.Name}
			sig, _ := pass.TypeOf(fd.Name).(*types.Signature)
			c.checkBody(fd.Body, sig)
		}
	}
}

type hotallocChecker struct {
	pass *Pass
	dirs *fileDirectives
	fn   string
}

func (c *hotallocChecker) report(pos token.Pos, format string, args ...any) {
	if c.pass.suppress(c.dirs, DirAllocOK, pos) {
		return
	}
	args = append(args, c.fn)
	c.pass.Reportf(pos, format+" in //sbwi:hotpath function %s", args...)
}

// checkBody walks one function body; sig is that function's signature
// (needed to judge boxing at return statements). Nested function
// literals are flagged once, then walked with their own signature.
func (c *hotallocChecker) checkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := c.capturedVar(n); capt != "" {
				c.report(n.Pos(), "closure captures %q and may be heap-allocated", capt)
			}
			litSig, _ := c.pass.TypeOf(n).(*types.Signature)
			c.checkBody(n.Body, litSig)
			return false
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypeOf(n)) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(c.pass.TypeOf(n.Lhs[0])) {
				c.report(n.Pos(), "string concatenation allocates")
			}
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n, sig)
		}
		return true
	})
}

func (c *hotallocChecker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	}
}

func (c *hotallocChecker) checkCall(call *ast.CallExpr) {
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new may heap-allocate")
			case "append":
				c.report(call.Pos(), "append may grow and allocate")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	tfun := c.pass.TypeOf(call.Fun)
	sig, ok := tfun.(*types.Signature)
	if !ok {
		return
	}

	// Calls into fmt allocate (formatting state, boxing, output).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := c.pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.report(call.Pos(), "call to fmt.%s allocates", obj.Name())
			return
		}
	}

	// Boxing: a concrete argument passed to an interface parameter.
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBoxed(arg, pt, "argument")
	}
}

func (c *hotallocChecker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case types.IsInterface(to.Underlying()):
		c.checkBoxed(call.Args[0], to, "conversion operand")
	case isString(to) && isByteOrRuneSlice(from):
		c.report(call.Pos(), "slice-to-string conversion allocates")
	case isByteOrRuneSlice(to) && isString(from):
		c.report(call.Pos(), "string-to-slice conversion allocates")
	}
}

func (c *hotallocChecker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value form: no conversion happens per operand
	}
	for i, lhs := range as.Lhs {
		c.checkBoxed(as.Rhs[i], c.pass.TypeOf(lhs), "assigned value")
	}
}

func (c *hotallocChecker) checkValueSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		c.checkBoxed(vs.Values[i], c.pass.TypeOf(name), "assigned value")
	}
}

func (c *hotallocChecker) checkReturn(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		c.checkBoxed(res, sig.Results().At(i).Type(), "returned value")
	}
}

// checkBoxed reports expr if assigning it to a destination of type dst
// boxes a concrete value into an interface.
func (c *hotallocChecker) checkBoxed(expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := c.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return // nil or already an interface: no box
	}
	c.report(expr.Pos(), "%s of concrete type %s boxed into %s may allocate",
		what,
		types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(dst, types.RelativeTo(c.pass.Pkg)))
}

// capturedVar returns the name of a variable the function literal
// captures from an enclosing scope, or "" if it captures nothing.
// Package-level variables are shared, not captured.
func (c *hotallocChecker) capturedVar(lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != c.pass.Pkg {
			return true
		}
		if v.Parent() == c.pass.Pkg.Scope() {
			return true // package-level: shared, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
