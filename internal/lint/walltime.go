package lint

import (
	"go/ast"
	"go/types"
)

// WallTime forbids wall-clock readings and process-global randomness
// in simulation-core packages. Modeled cycles must be a pure function
// of the configuration and the launch: a time.Now that reaches a
// cost estimate, a timeout that truncates a run, or a draw from the
// (randomly seeded since Go 1.20) global math/rand source would make
// two identical submissions diverge — a bug no golden fixture can pin
// because the fixture itself was recorded under one particular clock.
// Explicitly seeded private PRNGs (rand.New(rand.NewSource(42))) are
// fine and are not flagged.
//
// _test.go files are exempt: benchmarks and timeout plumbing
// legitimately read the wall clock. A non-test use that cannot reach
// modeled state (logging, profiling hooks) is waived with
// `//sbwi:wallclock-ok <justification>`.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbids wall-clock time and process-global randomness in simulation-core packages " +
		"(suppress with //sbwi:wallclock-ok <why> when the value cannot reach modeled state)",
	Run: runWallTime,
}

// wallClockFuncs are the forbidden package-level functions, keyed by
// package path.
var wallClockFuncs = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "blocks on the wall clock",
		"After":     "fires on the wall clock",
		"Tick":      "fires on the wall clock",
		"NewTimer":  "fires on the wall clock",
		"NewTicker": "fires on the wall clock",
		"AfterFunc": "fires on the wall clock",
	},
	"math/rand": {
		"Seed":        "reseeds the process-global source",
		"Int":         "draws from the process-global source",
		"Intn":        "draws from the process-global source",
		"Int31":       "draws from the process-global source",
		"Int31n":      "draws from the process-global source",
		"Int63":       "draws from the process-global source",
		"Int63n":      "draws from the process-global source",
		"Uint32":      "draws from the process-global source",
		"Uint64":      "draws from the process-global source",
		"Float32":     "draws from the process-global source",
		"Float64":     "draws from the process-global source",
		"NormFloat64": "draws from the process-global source",
		"ExpFloat64":  "draws from the process-global source",
		"Perm":        "draws from the process-global source",
		"Shuffle":     "draws from the process-global source",
	},
}

func runWallTime(pass *Pass) {
	if !DeterminismCritical(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		if pass.isTestFile(file) {
			continue
		}
		dirs := directivesOf(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified calls (time.Now): methods with the
			// same name on an explicitly seeded *rand.Rand are fine.
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, ok := pass.Info.Uses[x].(*types.PkgName); !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			funcs := wallClockFuncs[obj.Pkg().Path()]
			if funcs == nil {
				return true
			}
			why, banned := funcs[obj.Name()]
			if !banned {
				return true
			}
			if pass.suppress(dirs, DirWallclockOK, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s %s; wall-clock state must not leak into modeled cycles in simulation-core package %s (use a seeded private PRNG or annotate //sbwi:wallclock-ok <why>)",
				obj.Pkg().Path(), obj.Name(), why, pass.Path)
			return true
		})
	}
}
