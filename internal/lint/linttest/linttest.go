// Package linttest is the test harness for the internal/lint
// analyzers, modeled on golang.org/x/tools' analysistest but built on
// the standard library only: a testdata directory holds one package
// whose files carry `// want "regexp"` comments on the lines where
// the analyzer must report, and Run asserts the findings match the
// expectations exactly — no missing, no unexpected.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// expectation is one `// want` assertion.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run type-checks the single package in dir as import path pkgpath,
// applies the analyzer, and compares the findings with the `// want`
// comments in the sources.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgpath string) {
	t.Helper()

	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no Go files under %s (%v)", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
	}

	pkg, err := lint.Check(fset, pkgpath, files, testImporter(t, fset, files), "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})

	wants := parseWants(t, fset, files)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected finding: %s [%s]", posOf(d), d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched `want %s`", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func posOf(d lint.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
}

// claim marks the first unused expectation matching the diagnostic.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// parseWants extracts the `// want "re" ["re" ...]` expectations.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted decodes the sequence of double-quoted Go string literals
// after a want marker.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want patterns must be double-quoted strings, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// testImporter resolves the testdata package's imports (standard
// library only) through freshly listed gc export data.
func testImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	seen := map[string]bool{}
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		sort.Strings(paths)
		args := append([]string{"list", "-e", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, paths...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			t.Fatalf("go list %v: %v", paths, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if path, file, ok := strings.Cut(line, "\t"); ok && file != "" {
				exports[path] = file
			}
		}
	}
	return importer.ForCompiler(fset, "gc", lint.ExportLookup(exports, nil))
}
