package lint_test

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestAnalyzerCorpusCoverage asserts every analyzer registered in
// lint.All() ships a want-comment corpus under testdata/<name>/ with
// at least one Go file — a future analyzer cannot land untested.
func TestAnalyzerCorpusCoverage(t *testing.T) {
	for _, a := range lint.All() {
		dir := filepath.Join("testdata", a.Name)
		goFiles := 0
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				goFiles++
			}
			return nil
		})
		if err != nil {
			t.Errorf("analyzer %q has no corpus directory %s: %v", a.Name, dir, err)
			continue
		}
		if goFiles == 0 {
			t.Errorf("analyzer %q corpus %s contains no Go files", a.Name, dir)
		}
	}
}
