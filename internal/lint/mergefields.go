package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MergeFields verifies that every field of a struct with a Merge
// method is read inside that Merge method. The simulator aggregates
// per-wave and per-SM statistics exclusively through Merge
// (sm.Stats, mem.Stats, mem.L2Stats, noc.Stats): a counter added to
// the struct but forgotten in Merge silently reports 0 in every
// partitioned or multi-SM run while looking correct single-SM — the
// exact bug class internal/statcheck probes at runtime, caught here
// before any test runs and on structs no statcheck test covers.
//
// A field deliberately excluded from merging (an identifier, a
// non-additive snapshot) is waived with `//sbwi:nomerge
// <justification>` on the field's declaration line.
//
// Test fixtures are exempt (_test.go files routinely define
// deliberately-broken Merge methods to exercise checkers).
var MergeFields = &Analyzer{
	Name: "mergefields",
	Doc: "every field of a struct with a Merge method must be read by that Merge method " +
		"(suppress per field with //sbwi:nomerge <why>)",
	Run: runMergeFields,
}

func runMergeFields(pass *Pass) {
	// Find Merge method declarations: func (s *T) Merge(o *T) or the
	// value-receiver equivalents.
	for _, file := range pass.Files {
		if pass.isTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Merge" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			recv := derefNamed(sig.Recv().Type())
			if recv == nil {
				continue
			}
			st, ok := recv.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if sig.Params().Len() != 1 || derefNamed(sig.Params().At(0).Type()) != recv {
				continue // not the T-with-T merge shape this check is about
			}
			checkMerge(pass, fd, recv, st)
		}
	}
}

// checkMerge reports fields of st that fd's body never selects.
func checkMerge(pass *Pass, fd *ast.FuncDecl, recv *types.Named, st *types.Struct) {
	read := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if f, ok := s.Obj().(*types.Var); ok {
			read[f] = true
		}
		return true
	})

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" || read[f] {
			continue
		}
		// The field's declaration file may differ from the Merge
		// method's; resolve directives against the field's file.
		dirs := directivesForPos(pass, f.Pos())
		if dirs != nil && pass.suppress(dirs, DirNoMerge, f.Pos()) {
			continue
		}
		pass.Reportf(f.Pos(),
			"field %s.%s is never read by (*%s).Merge — merged aggregates silently drop it (fold it in or annotate //sbwi:nomerge <why>)",
			recv.Obj().Name(), f.Name(), recv.Obj().Name())
	}
}

// directivesForPos scans the file containing pos, or nil if the
// position is outside this package's files.
func directivesForPos(pass *Pass, pos token.Pos) *fileDirectives {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return directivesOf(pass.Fset, f)
		}
	}
	return nil
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
