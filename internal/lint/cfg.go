package lint

// cfg.go — basic-block control-flow graphs over go/ast function
// bodies, the reusable substrate for flow-sensitive analyzers
// (lockcheck today; ctx-propagation and channel-close discipline are
// natural successors). The builder is purely syntactic: it needs no
// type information and handles the full statement language —
// if/else, for, range, switch (expression and type, with
// fallthrough), select, labeled break/continue, goto, and defer.
//
// Conventions a consumer must know:
//
//   - Block.Nodes holds statements and control expressions in
//     execution order. Composite statements are never stored whole;
//     only their leaf pieces appear (an *ast.IfStmt contributes its
//     Cond expression, an *ast.SwitchStmt its Tag, and so on), so a
//     consumer never sees the same sub-statement in two blocks. The
//     one exception is *ast.RangeStmt: the loop-head block stores the
//     RangeStmt itself standing for its header only (X evaluated,
//     Key/Value assigned) — consumers must not descend into its Body,
//     which is laid out in successor blocks.
//   - Function literals are opaque expressions: the builder never
//     enters them. A flow-sensitive analyzer analyzes each *ast.FuncLit
//     body as its own function with a fresh CFG.
//   - defer statements appear as ordinary *ast.DeferStmt nodes at
//     their syntactic position; modeling their function-exit effect is
//     the analyzer's choice (lockcheck treats a deferred Unlock as "the
//     lock stays held through every path to return").
//   - A terminating statement (return, panic(...), goto) ends its
//     block with no fall-through successor; return links to the
//     synthetic Exit block. Unreachable code after a terminator lands
//     in a fresh block with no predecessors, which the fixpoint driver
//     naturally never visits.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block execution starts in.
	Entry *Block
	// Exit is the synthetic sink every return (and the fall off the
	// end of the body) flows to. It holds no nodes.
	Exit *Block
	// Blocks lists every block, Entry and Exit included, in creation
	// order — a deterministic order suitable for reporting passes.
	Blocks []*Block
}

// A Block is a maximal straight-line run of statements: control enters
// at the first node and leaves after the last, to one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.linkTo(b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			link(g.from, t)
		}
	}
	return b.cfg
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label string // the construct's label, "" if unlabeled
	brk   *Block // break target (the construct's join block)
	cont  *Block // continue target; nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil directly after a
	// terminating statement (the following code is unreachable).
	cur *Block
	// label is a pending statement label, consumed by the next
	// loop/switch/select so labeled break/continue resolve to it.
	label string
	// scopes is the stack of enclosing breakable constructs.
	scopes []scope
	// fallthroughs stacks each switch clause's fallthrough target
	// (the next clause's body block; nil in the last clause).
	fallthroughs []*Block
	labels       map[string]*Block
	gotos        []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// linkTo ends the current block with an edge to target (skipped for a
// nil target, e.g. a stray break outside any breakable construct in
// code that would not compile) and marks the following code
// unreachable.
func (b *cfgBuilder) linkTo(target *Block) {
	if b.cur != nil && target != nil {
		link(b.cur, target)
	}
	b.cur = nil
}

// current materializes the block under construction; after a
// terminator it starts a fresh predecessor-less (unreachable) block.
func (b *cfgBuilder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// startBlock begins a new block reachable from the current one.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		link(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.current()
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending statement label.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) pushScope(s scope) { b.scopes = append(b.scopes, s) }
func (b *cfgBuilder) popScope()         { b.scopes = b.scopes[:len(b.scopes)-1] }

// breakTarget resolves a break statement: the innermost breakable
// scope, or the one carrying the label.
func (b *cfgBuilder) breakTarget(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if label == "" || s.label == label {
			return s.brk
		}
	}
	return nil
}

// continueTarget resolves a continue statement: the innermost loop, or
// the loop carrying the label.
func (b *cfgBuilder) continueTarget(label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if s.cont == nil {
			continue // switch/select: continue passes through
		}
		if label == "" || s.label == label {
			return s.cont
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// A label starts its own block so goto has a landing site.
		target := b.startBlock()
		b.labels[s.Label.Name] = target
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.linkTo(b.cfg.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.linkTo(b.breakTarget(labelName(s)))
		case token.CONTINUE:
			b.linkTo(b.continueTarget(labelName(s)))
		case token.GOTO:
			from := b.current()
			b.gotos = append(b.gotos, pendingGoto{from: from, label: labelName(s)})
			b.cur = nil
		case token.FALLTHROUGH:
			var t *Block
			if n := len(b.fallthroughs); n > 0 {
				t = b.fallthroughs[n-1]
			}
			b.linkTo(t)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.current()
		b.cur = nil
		join := b.newBlock()

		thenB := b.newBlock()
		link(head, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.linkTo(join)

		if s.Else != nil {
			elseB := b.newBlock()
			link(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.linkTo(join)
		} else {
			link(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		join := b.newBlock()
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		body := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, join)
		}

		b.pushScope(scope{label: lbl, brk: join, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkTo(cont)
		b.popScope()

		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.linkTo(head)
		}
		b.cur = join

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		head := b.startBlock()
		b.add(s) // header only: X evaluated, Key/Value assigned
		join := b.newBlock()
		body := b.newBlock()
		link(head, body)
		link(head, join)

		b.pushScope(scope{label: lbl, brk: join, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkTo(head)
		b.popScope()
		b.cur = join

	case *ast.SwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(lbl, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.stmt(s.Assign)
		b.switchClauses(lbl, s.Body.List, false)

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		head := b.current()
		b.cur = nil
		join := b.newBlock()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			link(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.pushScope(scope{label: lbl, brk: join})
			b.stmtList(cc.Body)
			b.popScope()
			b.linkTo(join)
		}
		// Without a default clause a select blocks until a case is
		// ready, so join is reachable only through the clauses. (An
		// empty select blocks forever: join keeps no predecessors.)
		b.cur = join

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil // terminates this path
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Send, Decl, Defer, Go: straight-line.
		b.add(s)
	}
}

// switchClauses lays out the case clauses of a switch or type switch:
// every clause body is a successor of the current head block, with
// fallthrough edges between consecutive expression-switch clauses and
// a head→join edge when no default clause exists.
func (b *cfgBuilder) switchClauses(lbl string, clauses []ast.Stmt, allowFallthrough bool) {
	head := b.current()
	b.cur = nil
	join := b.newBlock()

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if c.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		link(head, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var ft *Block
		if allowFallthrough && i+1 < len(clauses) {
			ft = bodies[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, ft)
		b.pushScope(scope{label: lbl, brk: join})
		b.stmtList(cc.Body)
		b.popScope()
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		b.linkTo(join)
	}
	if !hasDefault {
		link(head, join)
	}
	b.cur = join
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// isPanicCall reports whether e is a direct call of the panic builtin.
// (A shadowed local named panic is syntactically indistinguishable
// here; treating it as terminating only prunes edges, which for a
// must-hold analysis is the conservative direction.)
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// dump renders the graph structure for tests and debugging: one line
// per non-empty-or-linked block, nodes as bare ast type names.
func (c *CFG) dump() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		if len(blk.Nodes) == 0 && len(blk.Succs) == 0 && blk != c.Entry && blk != c.Exit {
			continue
		}
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %s", nodeName(n))
		}
		if len(blk.Succs) > 0 {
			succs := make([]int, len(blk.Succs))
			for i, s := range blk.Succs {
				succs[i] = s.Index
			}
			sort.Ints(succs)
			sb.WriteString(" ->")
			for _, i := range succs {
				fmt.Fprintf(&sb, " b%d", i)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeName(n ast.Node) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
}
