package lint

import (
	"go/ast"
	"strings"
)

// GoGuard enforces the device layer's panic-isolation contract: every
// goroutine the device package spawns must run under the guarded
// panic wrapper, so a panicking simulation fails only its owning
// launch's future instead of crashing the whole process. A raw `go`
// statement is exactly the hole that contract cannot tolerate — a
// panic on an unguarded goroutine bypasses every recover boundary the
// stream/suite plumbing installs and takes the process down.
//
// The check is structural: the spawned expression must be a call of
// the closure returned by guarded, i.e. `go guarded(op, catch, fn)()`.
// The near-miss `go guarded(op, catch, fn)` — spawning the wrapper
// constructor itself, which builds the protected closure and then
// discards it without ever running fn — gets its own diagnostic,
// because it type-checks and "works" right up until the first panic.
//
// _test.go files are exempt: test helper goroutines fail the test via
// the testing package's own machinery. A non-test goroutine that
// genuinely cannot panic (or whose panic must propagate) is waived
// with `//sbwi:unguarded <justification>`.
var GoGuard = &Analyzer{
	Name: "goguard",
	Doc: "requires every go statement in the device package to invoke the guarded panic wrapper " +
		"(suppress with //sbwi:unguarded <why> when the goroutine cannot panic)",
	Run: runGoGuard,
}

// guardWrapperName is the device package's panic-isolation wrapper
// (internal/device/guard.go).
const guardWrapperName = "guarded"

// deviceLayer reports whether the package at path is the device
// layer whose goroutines must be panic-guarded. External test
// packages ("…/device_test") inherit the obligation.
func deviceLayer(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/device" || strings.HasSuffix(path, "/internal/device")
}

func runGoGuard(pass *Pass) {
	if !deviceLayer(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		if pass.isTestFile(file) {
			continue
		}
		dirs := directivesOf(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if isGuardCall(ast.Unparen(g.Call.Fun)) {
				return true // go guarded(...)(): the contract's shape
			}
			if pass.suppress(dirs, DirUnguarded, g.Pos()) {
				return true
			}
			if isGuardIdent(ast.Unparen(g.Call.Fun)) {
				pass.Reportf(g.Pos(),
					"go %s(...) spawns the wrapper without invoking it — the protected closure is built and discarded; call it: go %s(...)()",
					guardWrapperName, guardWrapperName)
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine in device package %s must run under the panic guard: go %s(op, catch, fn)() (or waive with //sbwi:unguarded <why>)",
				pass.Path, guardWrapperName)
			return true
		})
	}
}

// isGuardCall reports whether e is a call of the guard wrapper —
// the inner call of `go guarded(...)()`.
func isGuardCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && isGuardIdent(ast.Unparen(call.Fun))
}

// isGuardIdent reports whether e names the package-local guard
// wrapper function.
func isGuardIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == guardWrapperName
}
