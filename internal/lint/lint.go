// Package lint implements the sbwi-lint static-analysis suite: custom
// analyzers that enforce, at vet time, the invariants the simulator's
// runtime test suites only catch late and only on exercised paths.
//
// The suite ships six analyzers (see their files for details):
//
//   - mapiter: no map iteration in determinism-critical packages
//     without an //sbwi:unordered justification.
//   - hotalloc: no allocation-causing constructs inside functions
//     annotated //sbwi:hotpath.
//   - mergefields: every field of a struct with a Merge method must be
//     read by that Merge method.
//   - walltime: no wall-clock or process-global randomness in
//     simulation-core packages.
//   - goguard: every goroutine the device package spawns must run
//     under the guarded panic wrapper.
//   - lockcheck: struct fields annotated //sbwi:guardedby <mutexField>
//     are only read or written where a flow-sensitive dataflow
//     analysis proves the named mutex held (cfg.go + dataflow.go are
//     the reusable CFG/fixpoint substrate it runs on).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is self-contained: the module has
// no external dependencies, so the suite is built on go/ast, go/types
// and the gc export-data importer only.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test suites.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces and how to suppress a finding.
	Doc string

	// Run performs the check over one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	// Path is the canonical import path with any test-variant suffix
	// ("pkg [pkg.test]") stripped.
	Path string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, HotAlloc, MergeFields, WallTime, GoGuard, LockCheck}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to pkg and returns the findings
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// criticalSuffixes lists the determinism-critical packages: per-launch
// statistics must be bit-identical across SM/worker/stream counts, so
// nothing order- or clock-dependent may leak into these packages.
var criticalSuffixes = []string{
	"internal/sm",
	"internal/device",
	"internal/mem",
	"internal/noc",
	"internal/exec",
}

// DeterminismCritical reports whether the package at path is one of
// the determinism-critical simulation-core packages. External test
// packages ("…/sm_test") inherit the criticality of the package under
// test.
func DeterminismCritical(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, s := range criticalSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Directives supported in source comments. Suppression directives
// require a one-line justification after the directive word; a bare
// directive does not suppress (the analyzer reports the missing
// justification instead), so every waiver is self-documenting.
const (
	// DirHotpath marks a function (in its doc comment) as part of the
	// zero-alloc hot path; hotalloc checks its body.
	DirHotpath = "hotpath"

	// DirUnordered justifies a map iteration whose consumer is
	// order-insensitive (mapiter suppression).
	DirUnordered = "unordered"

	// DirAllocOK justifies an allocation-looking construct on the hot
	// path, e.g. an append into a preallocated scratch buffer
	// (hotalloc suppression).
	DirAllocOK = "alloc-ok"

	// DirWallclockOK justifies a wall-clock reference in a
	// simulation-core package (walltime suppression).
	DirWallclockOK = "wallclock-ok"

	// DirNoMerge justifies a struct field deliberately not folded by
	// the struct's Merge method (mergefields suppression).
	DirNoMerge = "nomerge"

	// DirUnguarded justifies a device-package goroutine that runs
	// outside the guarded panic wrapper (goguard suppression).
	DirUnguarded = "unguarded"

	// DirGuardedBy marks a struct field (in the field's doc or
	// same-line comment) as protected by the named sibling mutex
	// field; lockcheck then requires every access to happen where the
	// mutex is provably held.
	DirGuardedBy = "guardedby"

	// DirNoLock waives lockcheck: on an access line, it justifies one
	// access to a guarded field outside the proven-held discipline
	// (e.g. a locked-helper whose caller holds the mutex); on a field
	// declaration, it documents why a shared mutable field is
	// deliberately outside the mutex regime altogether (channel
	// happens-before, single-goroutine confinement, a foreign struct's
	// mutex).
	DirNoLock = "nolock"
)

const directivePrefix = "//sbwi:"

// fileDirectives indexes every //sbwi: directive in a file by the line
// it appears on.
type fileDirectives struct {
	// byLine maps line -> directive name -> argument (justification).
	byLine map[int]map[string]string
}

// directivesOf scans all comments of file.
func directivesOf(fset *token.FileSet, file *ast.File) *fileDirectives {
	d := &fileDirectives{byLine: make(map[int]map[string]string)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m := d.byLine[line]
			if m == nil {
				m = make(map[string]string)
				d.byLine[line] = m
			}
			m[name] = arg
		}
	}
	return d
}

// parseDirective splits "//sbwi:name justification…" into its parts.
func parseDirective(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(arg), name != ""
}

// at returns the directive's argument if name appears on line or on
// the line directly above (a comment on its own line annotating the
// statement below).
func (d *fileDirectives) at(name string, line int) (arg string, present bool) {
	for _, l := range [2]int{line, line - 1} {
		if m, ok := d.byLine[l]; ok {
			if a, ok := m[name]; ok {
				return a, true
			}
		}
	}
	return "", false
}

// suppress decides whether a finding on line is waived by the named
// directive. A directive without a justification does not suppress;
// instead the analyzer reports that the waiver itself is incomplete,
// keeping every suppression self-documenting.
func (p *Pass) suppress(d *fileDirectives, name string, pos token.Pos) bool {
	line := p.Fset.Position(pos).Line
	arg, present := d.at(name, line)
	if !present {
		return false
	}
	if arg == "" {
		p.Reportf(pos, "//sbwi:%s directive needs a one-line justification to suppress this finding", name)
		return true
	}
	return true
}

// hasDirective reports whether a function's doc comment carries the
// named marker directive (e.g. //sbwi:hotpath).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if n, _, ok := parseDirective(c.Text); ok && n == name {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos lies in a _test.go file.
func (p *Pass) isTestFile(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}
