package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags `for … range` over a map in a determinism-critical
// package. Go randomizes map iteration order per run, so any map walk
// whose effect can reach modeled state, merged statistics, scheduling
// decisions or output ordering makes per-launch results
// host-execution dependent — the exact property the golden-stats and
// cross-worker determinism suites exist to protect. Those runtime
// suites only catch an order leak when a randomized iteration happens
// to land in a different order on an exercised path; this analyzer
// rejects the construct outright at vet time.
//
// Iterations whose consumer is provably order-insensitive (counting,
// set-membership collection that is sorted before use, …) are waived
// with an `//sbwi:unordered <justification>` comment on the range
// statement or the line above it.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration in determinism-critical packages " +
		"(suppress with //sbwi:unordered <why> when the consumer is order-insensitive)",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	if !DeterminismCritical(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		dirs := directivesOf(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.suppress(dirs, DirUnordered, rs.Pos()) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic iteration order in determinism-critical package %s; iterate sorted keys or annotate //sbwi:unordered <why>",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), pass.Path)
			return true
		})
	}
}
