package lint_test

import (
	"bytes"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint"
)

func diag(file string, line, col int, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestJSONRoundTrip checks WriteJSON → ReadJSON preserves every wire
// field and imposes the canonical order regardless of input order.
func TestJSONRoundTrip(t *testing.T) {
	in := []lint.Diagnostic{
		diag("b.go", 10, 2, "lockcheck", `read of c.n without holding c.mu`),
		diag("a.go", 3, 7, "mapiter", "map iteration in a determinism-critical package"),
		diag("a.go", 3, 7, "hotalloc", "allocation on the hot path"),
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := lint.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	want := []lint.Diagnostic{in[2], in[1], in[0]} // a.go hotalloc < a.go mapiter < b.go
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch\ngot:  %v\nwant: %v", got, want)
	}
}

// TestJSONStableOutput checks two permutations of the same findings
// serialize byte-identically — the property CI diffing relies on.
func TestJSONStableOutput(t *testing.T) {
	a := diag("x.go", 1, 1, "walltime", "wall clock in simulation core")
	b := diag("x.go", 5, 1, "goguard", "goroutine must run under the panic guard")
	var fwd, rev bytes.Buffer
	if err := lint.WriteJSON(&fwd, []lint.Diagnostic{a, b}); err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteJSON(&rev, []lint.Diagnostic{b, a}); err != nil {
		t.Fatal(err)
	}
	if fwd.String() != rev.String() {
		t.Errorf("output depends on input order:\n%s\nvs\n%s", fwd.String(), rev.String())
	}
}

// TestJSONEmpty checks no findings encode as an empty array, not
// null — consumers iterate without a nil check.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty findings encode as %q, want []", s)
	}
	got, err := lint.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d findings from empty array", len(got))
	}
}
