package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses body as the body of a parameterless function and
// builds its CFG. The tests below pin the exact block layout via
// dump(), so they double as documentation of the builder's
// conventions (entry=b0, exit=b1, blocks in creation order).
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return NewCFG(fn.Body)
}

func checkCFG(t *testing.T, body, want string) {
	t.Helper()
	g := buildCFG(t, body)
	got := strings.TrimSpace(g.dump())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG mismatch\nbody:\n%s\ngot:\n%s\nwant:\n%s", body, got, want)
	}
}

func TestCFGGoto(t *testing.T) {
	// goto jumps over the fallthrough path; the branch block after the
	// goto keeps no fall-through successor of its own.
	checkCFG(t, `
	x := 1
	if x > 0 {
		goto done
	}
	x = 2
done:
	x = 3
`, `
b0: AssignStmt BinaryExpr -> b2 b3
b1:
b2: AssignStmt -> b4
b3: -> b4
b4: AssignStmt -> b1
`)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	// break outer exits both loops to the outer join (b4); continue
	// outer targets the outer post block (b5). The inner loop's own
	// join (b8) is unreachable — no predecessors — exactly as the
	// fixpoint driver expects for paths only labeled branches leave.
	checkCFG(t, `
outer:
	for i := 0; i < 3; i++ {
		for {
			if i == 1 {
				continue outer
			}
			break outer
		}
	}
	println()
`, `
b0: -> b2
b1:
b2: AssignStmt -> b3
b3: BinaryExpr -> b4 b6
b4: ExprStmt -> b1
b5: IncDecStmt -> b3
b6: -> b7
b7: -> b9
b8: -> b5
b9: BinaryExpr -> b10 b11
b10: -> b4
b11: -> b5
`)
}

func TestCFGSelect(t *testing.T) {
	// A select without a default has no head→join edge: it blocks
	// until one of the comm clauses is ready.
	checkCFG(t, `
	var ch, ch2 chan int
	select {
	case v := <-ch:
		_ = v
	case ch2 <- 1:
	}
	println()
`, `
b0: DeclStmt -> b3 b4
b1:
b2: ExprStmt -> b1
b3: AssignStmt AssignStmt -> b2
b4: SendStmt -> b2
`)
}

func TestCFGEmptySelect(t *testing.T) {
	// select{} blocks forever: the join block keeps no predecessors,
	// so everything after it (including Exit) is unreachable.
	checkCFG(t, `
	println()
	select {}
`, `
b0: ExprStmt
b1:
b2: -> b1
`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// fallthrough links a clause body straight into the next clause's
	// body block; without a default the head also edges to the join.
	checkCFG(t, `
	x := 0
	switch x {
	case 0:
		x = 1
		fallthrough
	case 1:
		x = 2
	}
	println(x)
`, `
b0: AssignStmt Ident -> b2 b3 b4
b1:
b2: ExprStmt -> b1
b3: BasicLit AssignStmt -> b4
b4: BasicLit AssignStmt -> b2
`)
}

func TestCFGRangeHeader(t *testing.T) {
	// The loop-head block stores the RangeStmt itself, standing for
	// the header only; the body is laid out in its own block.
	checkCFG(t, `
	var xs []int
	s := 0
	for _, v := range xs {
		s += v
	}
	println(s)
`, `
b0: DeclStmt AssignStmt -> b2
b1:
b2: RangeStmt -> b3 b4
b3: ExprStmt -> b1
b4: AssignStmt -> b2
`)
}

func TestCFGPanicTerminates(t *testing.T) {
	// panic ends its path; the statement after it lands in a fresh
	// predecessor-less block the fixpoint driver never visits.
	checkCFG(t, `
	panic("boom")
	println()
`, `
b0: ExprStmt
b1:
b2: ExprStmt -> b1
`)
}

func TestCFGRangeBodyNotDuplicated(t *testing.T) {
	// Structural guarantee behind the header-only convention: the
	// range body's statements appear in exactly one block, and never
	// in the block holding the RangeStmt.
	g := buildCFG(t, `
	var xs []int
	for _, v := range xs {
		_ = v
	}
`)
	seen := 0
	for _, blk := range g.Blocks {
		hasRange := false
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				hasRange = true
			}
			if a, ok := n.(*ast.AssignStmt); ok && len(a.Lhs) == 1 {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					seen++
					if hasRange {
						t.Errorf("range body statement stored in the header block")
					}
				}
			}
		}
	}
	if seen != 1 {
		t.Errorf("range body statement appears in %d blocks, want 1", seen)
	}
}
