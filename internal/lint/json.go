package lint

// json.go — the machine-readable interchange form of findings, used
// by `sbwi-lint -json` so CI and editors can consume the suite's
// output without scraping the text format.

import (
	"encoding/json"
	"go/token"
	"io"
)

// jsonDiagnostic is the wire form of one finding. The byte offset of
// the position is deliberately absent: it depends on line-ending
// normalization and is useless to consumers keyed by file:line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits the findings as an indented JSON array in the
// canonical order (file, line, column, analyzer), so repeated runs
// and different load orders produce byte-identical output. An empty
// or nil slice encodes as [].
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	sorted := make([]Diagnostic, len(diags))
	copy(sorted, diags)
	SortDiagnostics(sorted)
	out := make([]jsonDiagnostic, len(sorted))
	for i, d := range sorted {
		out[i] = jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON decodes a WriteJSON array back into diagnostics. Only the
// fields the wire form carries survive the round trip (the position's
// byte offset comes back zero).
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	var in []jsonDiagnostic
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	out := make([]Diagnostic, len(in))
	for i, jd := range in {
		out[i] = Diagnostic{
			Pos:      token.Position{Filename: jd.File, Line: jd.Line, Column: jd.Column},
			Analyzer: jd.Analyzer,
			Message:  jd.Message,
		}
	}
	return out, nil
}
