package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one parsed and type-checked unit ready for analysis.
type Package struct {
	// Path is the canonical import path ("repro/internal/sm"), with
	// any test-variant suffix stripped.
	Path string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check type-checks already-parsed files as package path using imp to
// resolve imports, and returns the analysis-ready package.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH)),
	}
	canonical := CanonicalPath(path)
	tpkg, err := conf.Check(canonical, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: canonical, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// CanonicalPath strips the test-variant suffix go list attaches to
// packages recompiled for a test binary ("pkg [other.test]").
func CanonicalPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// ExportLookup returns a go/importer "gc" lookup function resolving
// import paths through resolve (source path -> canonical listed path)
// and exports (canonical path -> export-data file). resolve may be
// nil, in which case paths resolve to themselves.
func ExportLookup(exports map[string]string, resolve func(string) string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if resolve != nil {
			path = resolve(path)
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// listPackage mirrors the subset of `go list -json` the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	ForTest    string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// goList runs `go list` in dir and decodes the JSON package stream.
func goList(dir string, extra []string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages lists patterns in dir (module root or below), compiles
// export data for the full dependency closure, and parses and
// type-checks every matched package of the main module — including the
// test-augmented and external-test variants, so _test.go files are
// analyzed too. Synthesized test-main packages are skipped.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, []string{"-export", "-test", "-deps"}, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	augmented := make(map[string]bool) // canonical paths with an in-package test variant
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && CanonicalPath(p.ImportPath) == p.ForTest {
			augmented[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.Module == nil || !p.Module.Main || p.Standard {
			continue // analyze only this module's packages
		}
		if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test-main package
		}
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue // the test variant supersedes the plain package
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		files, err := ParseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		// Resolve the package under test to its augmented variant so
		// external test packages see the test-extended API.
		forTest := p.ForTest
		resolve := func(path string) string {
			if forTest != "" {
				if variant := path + " [" + forTest + ".test]"; exports[variant] != "" {
					return variant
				}
			}
			return path
		}
		imp := importer.ForCompiler(fset, "gc", ExportLookup(exports, resolve))
		goVersion := ""
		if p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := Check(fset, p.ImportPath, files, imp, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ParseFiles parses each file (joined onto dir when relative) with
// comments retained — the directive scanner needs them.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
