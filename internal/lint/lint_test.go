package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The corpora under testdata/ are type-checked under fake import
// paths so the path-sensitive analyzers see them as the package kind
// they target. Each corpus mixes positive findings (`// want`),
// justified suppressions (clean), bare suppressions (reported), and
// clean control cases.

func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIter, "testdata/mapiter/critical", "example.com/sim/internal/sm")
}

// TestMapIterNonCritical checks the same construct is ignored outside
// determinism-critical packages.
func TestMapIterNonCritical(t *testing.T) {
	linttest.Run(t, lint.MapIter, "testdata/mapiter/clean", "example.com/sim/internal/cli")
}

func TestWallTime(t *testing.T) {
	linttest.Run(t, lint.WallTime, "testdata/walltime/core", "example.com/sim/internal/device")
}

func TestGoGuard(t *testing.T) {
	linttest.Run(t, lint.GoGuard, "testdata/goguard/device", "example.com/sim/internal/device")
}

// TestGoGuardNonDevice checks raw go statements are ignored outside
// the device layer.
func TestGoGuardNonDevice(t *testing.T) {
	linttest.Run(t, lint.GoGuard, "testdata/goguard/clean", "example.com/sim/internal/cli")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "testdata/hotalloc/hot", "example.com/sim/hot")
}

func TestMergeFields(t *testing.T) {
	linttest.Run(t, lint.MergeFields, "testdata/mergefields/stats", "example.com/sim/stats")
}

func TestLockCheck(t *testing.T) {
	linttest.Run(t, lint.LockCheck, "testdata/lockcheck/guarded", "example.com/sim/internal/device")
}

// TestLockCheckClean checks disciplined annotated code and
// unannotated code both produce no findings (lockcheck is
// annotation-driven, in every package).
func TestLockCheckClean(t *testing.T) {
	linttest.Run(t, lint.LockCheck, "testdata/lockcheck/clean", "example.com/sim/internal/cli")
}
