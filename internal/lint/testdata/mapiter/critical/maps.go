// Package sm is the mapiter corpus. The test loads it under an import
// path ending in internal/sm, so the analyzer treats it as
// determinism-critical. The Report function is the class of true
// positive the runtime determinism suites cannot catch: the iteration
// sits on a diagnostic path no golden-stats test exercises, yet its
// order would leak into user-visible output.
package sm

import (
	"sort"
	"strconv"
)

// Counters is a named map type; iteration over it is flagged too.
type Counters map[string]int

// Sum ranges a plain map with no waiver: flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// SumNamed ranges a named map type: flagged.
func SumNamed(c Counters) int {
	total := 0
	for _, v := range c { // want "range over map"
		total += v
	}
	return total
}

// Report builds an error report by walking a map: flagged — the
// runtime suites never diff this string, but users would see it
// reorder between runs.
func Report(failed map[string]error) string {
	out := ""
	for name, err := range failed { // want "range over map"
		out += name + ": " + err.Error() + "\n"
	}
	return out
}

// SumJustified carries a justification: suppressed.
func SumJustified(m map[string]int) int {
	total := 0
	for _, v := range m { //sbwi:unordered addition is commutative
		total += v
	}
	return total
}

// SumBare has a justification-free waiver: the waiver itself is
// reported instead of silently suppressing.
func SumBare(m map[string]int) int {
	total := 0
	//sbwi:unordered
	for _, v := range m { // want "needs a one-line justification"
		total += v
	}
	return total
}

// Keys is the sorted-iteration pattern the analyzer pushes toward.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //sbwi:unordered keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SumSlice iterates a slice: ordered, fine.
func SumSlice(s []int) string {
	total := 0
	for _, v := range s {
		total += v
	}
	return strconv.Itoa(total)
}
