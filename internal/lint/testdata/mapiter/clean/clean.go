// Package other is loaded under a non-critical import path: map
// iteration is not the analyzer's business here.
package other

// Sum may range the map freely.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
