package cli

func work() {}

// spawnRaw is fine here: only the device layer owes the panic guard.
func spawnRaw() {
	go work()
}
