package device

// guarded mirrors the production panic-guard wrapper: it builds the
// protected closure the goroutine must actually invoke.
func guarded(op string, catch func(any), fn func()) func() {
	return func() {
		defer func() {
			if v := recover(); v != nil && catch != nil {
				catch(v)
			}
		}()
		fn()
	}
}

func work() {}

// spawnGuarded is the contract's shape: wrapper built and invoked.
func spawnGuarded() {
	go guarded("work", nil, work)()
}

// spawnGuardedParen still invokes the wrapper, through parentheses.
func spawnGuardedParen() {
	go (guarded("work", nil, work))()
}

func spawnRaw() {
	go work() // want "must run under the panic guard"
}

func spawnClosure() {
	go func() { work() }() // want "must run under the panic guard"
}

// spawnUninvoked builds the protected closure and discards it: the
// goroutine runs the constructor, never fn under recover.
func spawnUninvoked() {
	go guarded("work", nil, work) // want "spawns the wrapper without invoking it"
}

// spawnWaived documents why this goroutine may run unguarded.
func spawnWaived() {
	//sbwi:unguarded closes over nothing and cannot panic
	go work()
}

// spawnBareDirective carries the directive without a justification:
// the waiver itself is reported as incomplete.
func spawnBareDirective() {
	//sbwi:unguarded
	go work() // want "needs a one-line justification"
}
