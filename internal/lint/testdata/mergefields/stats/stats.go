// Package stats is the mergefields corpus. The Dropped field is the
// true positive runtime tests miss: a single-SM run reports it
// correctly, and only a merged multi-SM aggregate — compared against
// nothing — silently zeroes it.
package stats

// Sub is a nested aggregate with a complete Merge: clean.
type Sub struct {
	Hits   uint64
	Misses uint64
}

// Merge folds o into s.
func (s *Sub) Merge(o *Sub) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// Stats drops a field in its Merge: flagged at the field.
type Stats struct {
	Cycles int64
	Peak   int

	Dropped uint64 // want "never read by"

	// ID names the originating run; folding two IDs together would be
	// meaningless, so it carries a waiver.
	ID string //sbwi:nomerge identifier of the first shard, not an aggregate

	Sub Sub
}

// Merge folds o into s but forgets Dropped.
func (s *Stats) Merge(o *Stats) {
	s.Cycles += o.Cycles
	if o.Peak > s.Peak {
		s.Peak = o.Peak
	}
	s.Sub.Merge(&o.Sub)
}

// Gauge has a value-receiver Merge: same contract applies.
type Gauge struct {
	Max  int
	Name string // want "never read by"
}

// Merge keeps the larger reading.
func (g Gauge) Merge(o Gauge) Gauge {
	if o.Max > g.Max {
		g.Max = o.Max
	}
	return g
}

// Other has a Merge whose signature is not the aggregate shape
// (parameter is not the receiver type): ignored.
type Other struct{ N int }

// Merge here is an unrelated accumulator API.
func (x *Other) Merge(delta int) { x.N += delta }
