// Benchmarks and test plumbing legitimately read the wall clock:
// _test.go files are exempt from walltime.
package device

import "time"

// Timestamp would be flagged in a non-test file.
func Timestamp() int64 { return time.Now().UnixNano() }
