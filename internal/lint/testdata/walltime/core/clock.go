// Package device is the walltime corpus; the test loads it under an
// import path ending in internal/device, a simulation-core package.
// The Estimate function is the true positive the runtime suites miss:
// a wall-clock-derived cost estimate produces plausible, test-passing
// numbers that silently differ between two identical submissions.
package device

import (
	"math/rand"
	"time"
)

// Estimate derives a cost from the wall clock: flagged.
func Estimate() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Elapsed measures wall time: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Backoff sleeps on the wall clock: flagged.
func Backoff() {
	time.Sleep(time.Millisecond) // want "time.Sleep blocks on the wall clock"
}

// Jitter draws from the process-global source (randomly seeded since
// Go 1.20): flagged.
func Jitter() int {
	return rand.Intn(4) // want "math/rand.Intn draws from the process-global source"
}

// SeededDraw uses an explicitly seeded private source: deterministic,
// fine.
func SeededDraw() int {
	return rand.New(rand.NewSource(42)).Intn(4)
}

// Profiled is waived: the reading feeds a profiling hook, not modeled
// state.
func Profiled() int64 {
	return time.Now().UnixNano() //sbwi:wallclock-ok profiling hook; never reaches modeled cycles
}

// Budget does duration arithmetic without reading a clock: fine.
func Budget(d time.Duration) time.Duration { return 2 * d }
