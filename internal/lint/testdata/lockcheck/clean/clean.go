// Package clean is the lockcheck negative control: disciplined use of
// an annotated field produces no findings, and a struct without
// annotations is entirely ignored — lockcheck is annotation-driven,
// not heuristic.
package clean

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int //sbwi:guardedby mu
}

func (g *gauge) Add(d int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += d
}

func (g *gauge) Get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// plain has a mutex but no annotations: nothing is enforced.
type plain struct {
	mu sync.Mutex
	n  int
}

func (p *plain) bump() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

func (p *plain) sneak() {
	p.n++ // unannotated: lockcheck stays silent
}
