// Package guarded is the lockcheck corpus: every flavor of
// //sbwi:guardedby discipline — held and unheld access, the must-hold
// meet at branch joins, defer-scoped unlocks, RLock-write violations,
// justified and bare waivers, and the pre-publication escape hatch.
package guarded

import "sync"

// counter is the canonical guarded struct.
type counter struct {
	mu sync.Mutex
	n  int //sbwi:guardedby mu
}

// stats exercises the RWMutex read/write split.
type stats struct {
	mu   sync.RWMutex
	hits int //sbwi:guardedby mu
}

func held(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func unheldRead(c *counter) int {
	return c.n // want "read of c.n without holding c.mu"
}

func unheldWrite(c *counter) {
	c.n = 1 // want "write to c.n without holding c.mu"
}

func unlockThenAccess(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "write to c.n without holding c.mu"
}

// branchJoin locks on only one arm, so after the join the must-hold
// meet has dropped the lock.
func branchJoin(c *counter, b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to c.n without holding c.mu"
	if b {
		c.mu.Unlock()
	}
}

// bothArms locks on every path into the join: the meet keeps it.
func bothArms(c *counter, b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// deferScoped holds the lock through every path to return, including
// the early one.
func deferScoped(c *counter, b bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b {
		c.n++
		return c.n
	}
	return c.n
}

func rlockRead(s *stats) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

func rlockWrite(s *stats) {
	s.mu.RLock()
	s.hits++ // want "write to s.hits while s.mu is only read-locked"
	s.mu.RUnlock()
}

func exclWrite(s *stats) {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

// addLocked is a locked helper: its caller-holds contract is a
// justified waiver, which suppresses silently.
func addLocked(c *counter, d int) {
	c.n += d //sbwi:nolock caller holds c.mu (see held call sites)
}

// bareWaiver carries the directive with no justification: the waiver
// itself is reported instead of suppressing.
func bareWaiver(c *counter) {
	//sbwi:nolock
	c.n++ // want "needs a one-line justification"
}

// newCounter initializes a freshly allocated value: pre-publication,
// no other goroutine can reach it, so no lock ceremony.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// newStats covers the new(T) and var T spellings of freshness.
func newStats() *stats {
	s := new(stats)
	s.hits = 1
	var t stats
	t.hits = s.hits
	return s
}

// tainted loses freshness the moment the variable is rebound to a
// value that may be shared.
func tainted(shared *counter) {
	c := &counter{}
	c = shared
	c.n++ // want "write to c.n without holding c.mu"
}

func lookup() *counter { return nil }

// unresolvable accesses the field through a call result: no named
// base to match a lock against, so the analysis reports it.
func unresolvable() int {
	return lookup().n // want "cannot resolve"
}

// closures are analyzed as their own functions and start lock-free:
// the enclosing Lock does not cover the deferred body, which may run
// on another goroutine long after the unlock.
func closureStartsLockFree(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() {
		c.n++ // want "write to c.n without holding c.mu"
	}
	f()
}

// wrapper reaches a guarded field through a nested field path: the
// lock and the access must agree on the whole chain.
type wrapper struct {
	dev counter
}

func nested(w *wrapper) {
	w.dev.mu.Lock()
	w.dev.n++
	w.dev.mu.Unlock()
}

func loopHeld(c *counter, xs []int) {
	c.mu.Lock()
	for _, x := range xs {
		c.n += x
	}
	c.mu.Unlock()
}

// loopReleased releases inside the loop body, so nothing is provably
// held after the loop (or at its head).
func loopReleased(c *counter, xs []int) {
	for range xs {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want "write to c.n without holding c.mu"
}

// badBare: the annotation itself is malformed.
type badBare struct {
	mu sync.Mutex
	//sbwi:guardedby
	n int // want "needs the name of the guarding mutex field"
}

// badUnknown names a guard field that does not exist.
type badUnknown struct {
	mu sync.Mutex
	//sbwi:guardedby lock
	n int // want "no field named lock"
}

// badNonMutex names a sibling that is not a mutex.
type badNonMutex struct {
	mu int
	//sbwi:guardedby mu
	n int // want "not a sync.Mutex or sync.RWMutex"
}

// published documents a field deliberately outside the mutex regime:
// a justified field-level waiver is documentation, not a finding.
type published struct {
	done chan struct{}
	//sbwi:nolock written once before done closes; readers gate on <-done
	res int
}

func (p *published) publish(v int) {
	p.res = v
	close(p.done)
}

// badFieldWaiver is a field-level waiver with no justification.
type badFieldWaiver struct {
	//sbwi:nolock
	res int // want "needs a one-line justification for why the field is outside the lock discipline"
}
