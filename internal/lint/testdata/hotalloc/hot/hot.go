// Package hot is the hotalloc corpus. The step function is the true
// positive the runtime allocation test misses: TestSteadyStateZeroAllocs
// pins one workload, so an allocation on a branch that workload never
// takes (here: every construct below) ships silently.
package hot

import "fmt"

// Sink keeps boxed values alive.
var Sink any

// Consume takes an interface argument.
func Consume(v any) {}

// step is annotated as hot: every allocating construct is flagged.
//
//sbwi:hotpath
func step(xs []int, s string, n int) []int {
	buf := make([]int, n) // want "make allocates"
	_ = buf
	p := new(int) // want "new may heap-allocate"
	_ = p
	lit := []int{1, 2, 3} // want "slice literal allocates"
	_ = lit
	table := map[string]int{"a": 1} // want "map literal allocates"
	_ = table
	xs = append(xs, n)            // want "append may grow"
	msg := fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
	msg += s                      // want "string concatenation allocates"
	b := []byte(s)                // want "conversion allocates"
	_ = b
	Sink = n            // want "boxed into"
	Consume(n)          // want "boxed into"
	go helper(n)        // want "go statement allocates"
	f := func() { n++ } // want "captures"
	f()
	return xs
}

// boxedReturn returns a concrete value through an interface result:
// flagged.
//
//sbwi:hotpath
func boxedReturn(n int) any {
	return n // want "boxed into"
}

// stepClean shows the allowed shapes: scratch-buffer append with a
// justified waiver, a non-capturing closure, and plain arithmetic.
//
//sbwi:hotpath
func stepClean(xs []int, n int) int {
	xs = append(xs, n) //sbwi:alloc-ok fills a scratch buffer preallocated by the caller
	double := func(v int) int { return 2 * v }
	return double(xs[0]) + n
}

// stepBare carries a justification-free waiver: the waiver itself is
// reported.
//
//sbwi:hotpath
func stepBare(xs []int, n int) []int {
	//sbwi:alloc-ok
	return append(xs, n) // want "needs a one-line justification"
}

// cold is not annotated: the same constructs pass without comment.
func cold(n int) []int {
	buf := make([]int, n)
	Sink = buf
	return append(buf, n)
}

func helper(int) {}
