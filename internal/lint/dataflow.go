package lint

// dataflow.go — a forward dataflow fixpoint driver over the cfg.go
// graphs. The framework is deliberately small: an analysis supplies a
// join-semilattice of facts (Join, Equal) and a per-node transfer
// function, and Fixpoint iterates to the least fixed point with a
// worklist. Facts are treated as immutable values: Transfer and Join
// must return fresh (or shared-unchanged) facts, never mutate an
// argument in place — one fact may be the stored input of several
// blocks at once.
//
// For a must-style analysis (lockcheck: "which locks are provably
// held here") the join is an intersection, so the fact at every block
// entry shrinks monotonically from the first value that reaches it —
// the chain is finite and the iteration terminates.

import "go/ast"

// A ForwardAnalysis defines a forward dataflow problem over one
// function's CFG with facts of type F.
type ForwardAnalysis[F any] struct {
	// Entry is the fact holding at function entry.
	Entry F
	// Join combines the facts of two predecessor edges at a merge
	// point. It must be commutative, associative and idempotent, and
	// must not mutate its arguments.
	Join func(a, b F) F
	// Equal reports whether two facts are the same lattice element;
	// the iteration stops requeueing a block once its entry fact
	// stabilizes.
	Equal func(a, b F) bool
	// Transfer produces the fact after executing node n given the
	// fact before it. It must not mutate in.
	Transfer func(n ast.Node, in F) F
}

// Fixpoint runs the analysis to its least fixed point and returns the
// entry fact of every reachable block. Unreachable blocks are absent
// from the result; a reporting pass iterates cfg.Blocks (a
// deterministic order) and skips blocks without an entry.
func Fixpoint[F any](g *CFG, a ForwardAnalysis[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = a.Entry

	queued := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	queued[g.Entry.Index] = true

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false

		out := in[blk]
		for _, n := range blk.Nodes {
			out = a.Transfer(n, out)
		}
		for _, s := range blk.Succs {
			prev, seen := in[s]
			next := out
			if seen {
				next = a.Join(prev, out)
			}
			if seen && a.Equal(prev, next) {
				continue
			}
			in[s] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
