package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepoLintClean runs the full analyzer suite over every package in
// the module and asserts zero unsuppressed findings — the same gate CI
// applies through `go vet -vettool=sbwi-lint ./...`. A finding here
// means either a real regression or a waiver missing its
// justification; fix the code or annotate it, never this test.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}

	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)

	pkgs, err := lint.LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}

	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, lint.All()) {
			if s := d.String(); !seen[s] {
				seen[s] = true
				t.Errorf("unsuppressed finding: %s", s)
			}
		}
	}
}
