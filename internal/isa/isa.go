// Package isa defines the SIMT mini instruction set executed by the
// simulator.
//
// The ISA is a register-to-register load/store architecture with 32
// general-purpose 32-bit registers per thread. It is deliberately small
// but expressive enough to write the control-flow and memory-access
// patterns of the paper's benchmark suites: integer and floating-point
// arithmetic (MAD class), transcendental functions (SFU class), global
// and shared memory accesses (LSU class), and control flow including the
// thread-frontier SYNC instruction introduced by the paper.
//
// Program counters are instruction indices, not byte addresses. This
// matches the paper's use of PC ordering for thread-frontier scheduling
// while keeping the assembler and simulator simple.
package isa

import "fmt"

// Reg identifies a general-purpose register. RegNone marks an unused
// operand slot.
type Reg uint8

// NumRegs is the number of general-purpose registers per thread.
const NumRegs = 32

// RegNone marks an absent register operand.
const RegNone Reg = 0xFF

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	if r == RegNone {
		return "-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Opcode enumerates the operations of the mini-ISA.
type Opcode uint8

// Opcodes, grouped by execution unit class.
const (
	OpNop Opcode = iota

	// MAD class: integer.
	OpIAdd  // rd = ra + rb
	OpISub  // rd = ra - rb
	OpIMul  // rd = ra * rb (low 32 bits)
	OpIMad  // rd = ra * rb + rc
	OpIMin  // rd = min(ra, rb) signed
	OpIMax  // rd = max(ra, rb) signed
	OpIDiv  // rd = ra / rb signed (0 if rb == 0)
	OpIMod  // rd = ra % rb signed (0 if rb == 0)
	OpAnd   // rd = ra & rb
	OpOr    // rd = ra | rb
	OpXor   // rd = ra ^ rb
	OpNot   // rd = ^ra
	OpShl   // rd = ra << (rb & 31)
	OpShr   // rd = ra >> (rb & 31) logical
	OpSar   // rd = ra >> (rb & 31) arithmetic
	OpISetp // rd = (ra <cmp> rb) ? 1 : 0, signed compare
	OpSelp  // rd = rc != 0 ? ra : rb
	OpMov   // rd = ra, or rd = imm, or rd = special

	// MAD class: floating point (IEEE-754 binary32 carried in registers).
	OpFAdd  // rd = ra + rb
	OpFSub  // rd = ra - rb
	OpFMul  // rd = ra * rb
	OpFMad  // rd = ra * rb + rc
	OpFMin  // rd = min(ra, rb)
	OpFMax  // rd = max(ra, rb)
	OpFSetp // rd = (ra <cmp> rb) ? 1 : 0, float compare
	OpFAbs  // rd = |ra|
	OpFNeg  // rd = -ra
	OpI2F   // rd = float(int32(ra))
	OpF2I   // rd = int32(trunc(float(ra)))

	// SFU class: transcendental / special functions.
	OpRcp  // rd = 1/ra
	OpRsq  // rd = 1/sqrt(ra)
	OpSqrt // rd = sqrt(ra)
	OpSin  // rd = sin(ra)
	OpCos  // rd = cos(ra)
	OpEx2  // rd = 2**ra
	OpLg2  // rd = log2(ra)

	// LSU class: memory. Addresses are byte addresses; accesses are
	// 4-byte words. Effective address = ra + imm.
	OpLdG // rd = global[ra+imm]
	OpStG // global[ra+imm] = rc (data register in SrcC)
	OpLdS // rd = shared[ra+imm]
	OpStS // shared[ra+imm] = rc

	// CTRL class: control flow. These occupy an issue slot but no
	// back-end execution unit.
	OpBra  // if ra != 0 (or unconditionally when SrcA == RegNone) goto Target
	OpSync // thread-frontier reconvergence barrier; Target = PCdiv
	OpBar  // block-wide barrier
	OpExit // thread terminates

	opcodeCount
)

// CmpOp is the comparison selector for OpISetp / OpFSetp.
type CmpOp uint8

// Comparison conditions.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// Special enumerates special values readable with "mov rd, %name".
type Special uint8

// Special registers.
const (
	SpecNone   Special = iota
	SpecTid            // thread index within the block
	SpecNTid           // block dimension (threads per block)
	SpecCtaid          // block index within the grid
	SpecNCta           // grid dimension (number of blocks)
	SpecParam0         // kernel parameter 0
	// Params 1..15 follow SpecParam0 contiguously.
)

// NumParams is the number of kernel parameters addressable as specials.
const NumParams = 16

// SpecParam returns the Special naming kernel parameter i.
func SpecParam(i int) Special {
	if i < 0 || i >= NumParams {
		panic(fmt.Sprintf("isa: parameter index %d out of range", i))
	}
	return SpecParam0 + Special(i)
}

// IsParam reports whether s names a kernel parameter, and which one.
func (s Special) IsParam() (int, bool) {
	if s >= SpecParam0 && s < SpecParam0+NumParams {
		return int(s - SpecParam0), true
	}
	return 0, false
}

func (s Special) String() string {
	switch s {
	case SpecNone:
		return "%none"
	case SpecTid:
		return "%tid"
	case SpecNTid:
		return "%ntid"
	case SpecCtaid:
		return "%ctaid"
	case SpecNCta:
		return "%ncta"
	}
	if i, ok := s.IsParam(); ok {
		return fmt.Sprintf("%%p%d", i)
	}
	return fmt.Sprintf("%%spec(%d)", uint8(s))
}

// Unit is the execution unit class an opcode dispatches to.
type Unit uint8

// Unit classes. CTRL instructions are handled by the scheduler front-end
// and occupy no back-end unit.
const (
	UnitMAD Unit = iota
	UnitSFU
	UnitLSU
	UnitCTRL
)

func (u Unit) String() string {
	switch u {
	case UnitMAD:
		return "MAD"
	case UnitSFU:
		return "SFU"
	case UnitLSU:
		return "LSU"
	case UnitCTRL:
		return "CTRL"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Instruction is one decoded instruction. The zero value is a NOP.
type Instruction struct {
	Op   Opcode
	Cmp  CmpOp // comparison selector for OpISetp/OpFSetp
	Dst  Reg
	SrcA Reg
	SrcB Reg
	SrcC Reg

	// Imm is the immediate operand. For ALU ops with HasImm set it
	// replaces SrcB; for memory ops it is the byte offset added to SrcA.
	Imm    uint32
	HasImm bool

	// Spec is the special value read by "mov rd, %special".
	Spec Special

	// Target is the branch target PC for OpBra and the divergence-point
	// PC (PCdiv) payload for OpSync.
	Target int

	// RecPC is the reconvergence PC (immediate postdominator) attached to
	// conditional branches by the CFG analysis; -1 when not applicable.
	// The baseline stack mechanism pushes it on divergence.
	RecPC int

	// Line is the 1-based source line, for diagnostics.
	Line int
}

var opInfo = [opcodeCount]struct {
	name string
	unit Unit
	// operand counts drive the disassembler and assembler checks
	hasDst           bool
	srcs             int  // number of register sources (before imm substitution)
	writesMem        bool // store: data register lives in SrcC
	isMem            bool
	isBranch, isSync bool
}{
	OpNop:   {name: "nop", unit: UnitCTRL},
	OpIAdd:  {name: "iadd", unit: UnitMAD, hasDst: true, srcs: 2},
	OpISub:  {name: "isub", unit: UnitMAD, hasDst: true, srcs: 2},
	OpIMul:  {name: "imul", unit: UnitMAD, hasDst: true, srcs: 2},
	OpIMad:  {name: "imad", unit: UnitMAD, hasDst: true, srcs: 3},
	OpIMin:  {name: "imin", unit: UnitMAD, hasDst: true, srcs: 2},
	OpIMax:  {name: "imax", unit: UnitMAD, hasDst: true, srcs: 2},
	OpIDiv:  {name: "idiv", unit: UnitMAD, hasDst: true, srcs: 2},
	OpIMod:  {name: "imod", unit: UnitMAD, hasDst: true, srcs: 2},
	OpAnd:   {name: "and", unit: UnitMAD, hasDst: true, srcs: 2},
	OpOr:    {name: "or", unit: UnitMAD, hasDst: true, srcs: 2},
	OpXor:   {name: "xor", unit: UnitMAD, hasDst: true, srcs: 2},
	OpNot:   {name: "not", unit: UnitMAD, hasDst: true, srcs: 1},
	OpShl:   {name: "shl", unit: UnitMAD, hasDst: true, srcs: 2},
	OpShr:   {name: "shr", unit: UnitMAD, hasDst: true, srcs: 2},
	OpSar:   {name: "sar", unit: UnitMAD, hasDst: true, srcs: 2},
	OpISetp: {name: "isetp", unit: UnitMAD, hasDst: true, srcs: 2},
	OpSelp:  {name: "selp", unit: UnitMAD, hasDst: true, srcs: 3},
	OpMov:   {name: "mov", unit: UnitMAD, hasDst: true, srcs: 1},
	OpFAdd:  {name: "fadd", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFSub:  {name: "fsub", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFMul:  {name: "fmul", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFMad:  {name: "fmad", unit: UnitMAD, hasDst: true, srcs: 3},
	OpFMin:  {name: "fmin", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFMax:  {name: "fmax", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFSetp: {name: "fsetp", unit: UnitMAD, hasDst: true, srcs: 2},
	OpFAbs:  {name: "fabs", unit: UnitMAD, hasDst: true, srcs: 1},
	OpFNeg:  {name: "fneg", unit: UnitMAD, hasDst: true, srcs: 1},
	OpI2F:   {name: "i2f", unit: UnitMAD, hasDst: true, srcs: 1},
	OpF2I:   {name: "f2i", unit: UnitMAD, hasDst: true, srcs: 1},
	OpRcp:   {name: "rcp", unit: UnitSFU, hasDst: true, srcs: 1},
	OpRsq:   {name: "rsq", unit: UnitSFU, hasDst: true, srcs: 1},
	OpSqrt:  {name: "sqrt", unit: UnitSFU, hasDst: true, srcs: 1},
	OpSin:   {name: "sin", unit: UnitSFU, hasDst: true, srcs: 1},
	OpCos:   {name: "cos", unit: UnitSFU, hasDst: true, srcs: 1},
	OpEx2:   {name: "ex2", unit: UnitSFU, hasDst: true, srcs: 1},
	OpLg2:   {name: "lg2", unit: UnitSFU, hasDst: true, srcs: 1},
	OpLdG:   {name: "ld.g", unit: UnitLSU, hasDst: true, srcs: 1, isMem: true},
	OpStG:   {name: "st.g", unit: UnitLSU, srcs: 1, writesMem: true, isMem: true},
	OpLdS:   {name: "ld.s", unit: UnitLSU, hasDst: true, srcs: 1, isMem: true},
	OpStS:   {name: "st.s", unit: UnitLSU, srcs: 1, writesMem: true, isMem: true},
	OpBra:   {name: "bra", unit: UnitCTRL, isBranch: true},
	OpSync:  {name: "sync", unit: UnitCTRL, isSync: true},
	OpBar:   {name: "bar", unit: UnitCTRL},
	OpExit:  {name: "exit", unit: UnitCTRL},
}

// Name returns the assembler mnemonic of op.
func (op Opcode) Name() string {
	if int(op) < len(opInfo) && opInfo[op].name != "" {
		return opInfo[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

func (op Opcode) String() string { return op.Name() }

// Unit returns the execution unit class of op.
func (op Opcode) Unit() Unit {
	if int(op) < len(opInfo) {
		return opInfo[op].unit
	}
	return UnitCTRL
}

// IsMemory reports whether op is a load or store.
func (op Opcode) IsMemory() bool { return int(op) < len(opInfo) && opInfo[op].isMem }

// IsLoad reports whether op reads memory into a register.
func (op Opcode) IsLoad() bool { return op == OpLdG || op == OpLdS }

// IsStore reports whether op writes memory.
func (op Opcode) IsStore() bool { return op == OpStG || op == OpStS }

// IsGlobal reports whether op accesses global memory (as opposed to the
// block-local shared memory).
func (op Opcode) IsGlobal() bool { return op == OpLdG || op == OpStG }

// IsBranch reports whether op is a (possibly conditional) branch.
func (op Opcode) IsBranch() bool { return op == OpBra }

// HasDst reports whether op writes a destination register.
func (op Opcode) HasDst() bool { return int(op) < len(opInfo) && opInfo[op].hasDst }

// NumSrcs returns the number of register source operands of op,
// not counting the store-data register.
func (op Opcode) NumSrcs() int {
	if int(op) < len(opInfo) {
		return opInfo[op].srcs
	}
	return 0
}

// Conditional reports whether i is a conditional branch (one whose
// outcome can diverge across threads).
func (i *Instruction) Conditional() bool {
	return i.Op == OpBra && i.SrcA != RegNone
}

// SrcRegs appends the register sources actually read by i to dst and
// returns it. The store-data register (SrcC of stores) and the branch
// predicate are included; RegNone slots and immediate-substituted slots
// are excluded.
func (i *Instruction) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r.Valid() {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case OpBra:
		add(i.SrcA)
	case OpStG, OpStS:
		add(i.SrcA) // address
		add(i.SrcC) // data
	case OpMov:
		if !i.HasImm && i.Spec == SpecNone {
			add(i.SrcA)
		}
	default:
		n := i.Op.NumSrcs()
		if n >= 1 {
			add(i.SrcA)
		}
		if n >= 2 && !i.HasImm {
			add(i.SrcB)
		}
		if n >= 3 {
			add(i.SrcC)
		}
	}
	return dst
}

// String renders i in assembler syntax.
func (i *Instruction) String() string {
	switch i.Op {
	case OpNop:
		return "nop"
	case OpBar:
		return "bar"
	case OpExit:
		return "exit"
	case OpSync:
		return fmt.Sprintf("sync @%d", i.Target)
	case OpBra:
		if i.SrcA == RegNone {
			return fmt.Sprintf("bra @%d", i.Target)
		}
		return fmt.Sprintf("bra %s, @%d", i.SrcA, i.Target)
	case OpMov:
		switch {
		case i.Spec != SpecNone:
			return fmt.Sprintf("mov %s, %s", i.Dst, i.Spec)
		case i.HasImm:
			return fmt.Sprintf("mov %s, %d", i.Dst, int32(i.Imm))
		default:
			return fmt.Sprintf("mov %s, %s", i.Dst, i.SrcA)
		}
	case OpLdG, OpLdS:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), i.Dst, memRef(i.SrcA, int32(i.Imm)))
	case OpStG, OpStS:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), memRef(i.SrcA, int32(i.Imm)), i.SrcC)
	case OpISetp, OpFSetp:
		b := i.SrcB.String()
		if i.HasImm {
			b = fmt.Sprintf("%d", int32(i.Imm))
		}
		return fmt.Sprintf("%s.%s %s, %s, %s", i.Op.Name(), i.Cmp, i.Dst, i.SrcA, b)
	}
	// Generic ALU rendering.
	s := i.Op.Name() + " " + i.Dst.String()
	n := i.Op.NumSrcs()
	if n >= 1 {
		s += ", " + i.SrcA.String()
	}
	if n >= 2 {
		if i.HasImm {
			s += fmt.Sprintf(", %d", int32(i.Imm))
		} else {
			s += ", " + i.SrcB.String()
		}
	}
	if n >= 3 {
		s += ", " + i.SrcC.String()
	}
	return s
}

// memRef renders a memory operand in assembler-parsable form.
func memRef(addr Reg, off int32) string {
	if off < 0 {
		return fmt.Sprintf("[%s%d]", addr, off)
	}
	return fmt.Sprintf("[%s+%d]", addr, off)
}

// OpcodeByName maps an assembler mnemonic (without condition suffix) to
// its opcode. The second result is false for unknown mnemonics.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, opcodeCount)
	for op := Opcode(0); op < opcodeCount; op++ {
		if n := opInfo[op].name; n != "" {
			m[n] = op
		}
	}
	return m
}()

// Program is an assembled kernel: a flat instruction sequence plus
// metadata. PCs index Code.
type Program struct {
	Name      string
	Code      []Instruction
	Labels    map[string]int // label name -> PC
	SharedMem int            // bytes of shared memory per block
	// SyncInserted records whether thread-frontier SYNC instructions
	// have been inserted (by the cfg package).
	SyncInserted bool
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at pc. It panics if pc is out of range;
// the simulator treats PCs past the end as implicit EXIT before calling.
func (p *Program) At(pc int) *Instruction { return &p.Code[pc] }

// Disassemble renders the whole program with PCs and labels.
func (p *Program) Disassemble() string {
	byPC := make(map[int][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var out []byte
	for pc := range p.Code {
		for _, l := range sortedStrings(byPC[pc]) {
			out = append(out, (l + ":\n")...)
		}
		out = append(out, fmt.Sprintf("%4d:  %s\n", pc, p.Code[pc].String())...)
	}
	return string(out)
}

func sortedStrings(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// Validate checks structural invariants of the program: branch and sync
// targets in range, register operands valid, and a terminating
// instruction present on every path end (the last instruction must be an
// unconditional branch or exit).
func (p *Program) Validate() error {
	n := len(p.Code)
	if n == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	for pc := range p.Code {
		ins := &p.Code[pc]
		if ins.Op >= opcodeCount {
			return fmt.Errorf("isa: %s pc %d: invalid opcode %d", p.Name, pc, ins.Op)
		}
		if ins.Op == OpBra {
			if ins.Target < 0 || ins.Target >= n {
				return fmt.Errorf("isa: %s pc %d: branch target %d out of range", p.Name, pc, ins.Target)
			}
		}
		if ins.Op == OpSync {
			if ins.Target < 0 || ins.Target >= n {
				return fmt.Errorf("isa: %s pc %d: sync PCdiv %d out of range", p.Name, pc, ins.Target)
			}
		}
		if ins.Op.HasDst() && !ins.Dst.Valid() {
			return fmt.Errorf("isa: %s pc %d: missing destination register", p.Name, pc)
		}
	}
	last := &p.Code[n-1]
	if last.Op != OpExit && !(last.Op == OpBra && last.SrcA == RegNone) {
		return fmt.Errorf("isa: %s: control can fall off the end (last op %s)", p.Name, last.Op)
	}
	return nil
}
