package isa

import (
	"strings"
	"testing"
)

func TestOpcodeUnits(t *testing.T) {
	cases := []struct {
		op   Opcode
		unit Unit
	}{
		{OpIAdd, UnitMAD}, {OpIMad, UnitMAD}, {OpFMad, UnitMAD},
		{OpISetp, UnitMAD}, {OpMov, UnitMAD}, {OpSelp, UnitMAD},
		{OpRcp, UnitSFU}, {OpSin, UnitSFU}, {OpSqrt, UnitSFU},
		{OpEx2, UnitSFU}, {OpLg2, UnitSFU},
		{OpLdG, UnitLSU}, {OpStG, UnitLSU}, {OpLdS, UnitLSU}, {OpStS, UnitLSU},
		{OpBra, UnitCTRL}, {OpSync, UnitCTRL}, {OpBar, UnitCTRL}, {OpExit, UnitCTRL},
		{OpNop, UnitCTRL},
	}
	for _, c := range cases {
		if got := c.op.Unit(); got != c.unit {
			t.Errorf("%s: unit = %s, want %s", c.op, got, c.unit)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !OpLdG.IsMemory() || !OpLdG.IsLoad() || OpLdG.IsStore() || !OpLdG.IsGlobal() {
		t.Error("OpLdG predicates wrong")
	}
	if !OpStS.IsMemory() || OpStS.IsLoad() || !OpStS.IsStore() || OpStS.IsGlobal() {
		t.Error("OpStS predicates wrong")
	}
	if OpIAdd.IsMemory() || OpIAdd.IsBranch() {
		t.Error("OpIAdd predicates wrong")
	}
	if !OpBra.IsBranch() {
		t.Error("OpBra should be a branch")
	}
	if !OpIMad.HasDst() || OpStG.HasDst() || OpBra.HasDst() {
		t.Error("HasDst wrong")
	}
	if OpIMad.NumSrcs() != 3 || OpIAdd.NumSrcs() != 2 || OpNot.NumSrcs() != 1 {
		t.Error("NumSrcs wrong")
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		name := op.Name()
		got, ok := OpcodeByName(name)
		if !ok {
			t.Fatalf("OpcodeByName(%q) not found", name)
		}
		if got != op {
			t.Fatalf("OpcodeByName(%q) = %v, want %v", name, got, op)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want []Reg
	}{
		{Instruction{Op: OpIAdd, Dst: 0, SrcA: 1, SrcB: 2, SrcC: RegNone}, []Reg{1, 2}},
		{Instruction{Op: OpIAdd, Dst: 0, SrcA: 1, SrcB: RegNone, HasImm: true}, []Reg{1}},
		{Instruction{Op: OpIMad, Dst: 0, SrcA: 1, SrcB: 2, SrcC: 3}, []Reg{1, 2, 3}},
		{Instruction{Op: OpStG, SrcA: 4, SrcC: 5, Dst: RegNone, SrcB: RegNone}, []Reg{4, 5}},
		{Instruction{Op: OpLdG, Dst: 2, SrcA: 4, SrcB: RegNone, SrcC: RegNone}, []Reg{4}},
		{Instruction{Op: OpBra, SrcA: 7, Dst: RegNone, SrcB: RegNone, SrcC: RegNone}, []Reg{7}},
		{Instruction{Op: OpBra, SrcA: RegNone, Dst: RegNone, SrcB: RegNone, SrcC: RegNone}, nil},
		{Instruction{Op: OpMov, Dst: 1, SrcA: RegNone, HasImm: true, SrcB: RegNone, SrcC: RegNone}, nil},
		{Instruction{Op: OpMov, Dst: 1, SrcA: 3, SrcB: RegNone, SrcC: RegNone}, []Reg{3}},
		{Instruction{Op: OpMov, Dst: 1, Spec: SpecTid, SrcA: RegNone, SrcB: RegNone, SrcC: RegNone}, nil},
	}
	for i, c := range cases {
		got := c.ins.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("case %d (%s): SrcRegs = %v, want %v", i, c.ins.String(), got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: SrcRegs = %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: OpIAdd, Dst: 3, SrcA: 1, SrcB: 2}, "iadd r3, r1, r2"},
		{Instruction{Op: OpIAdd, Dst: 3, SrcA: 1, HasImm: true, Imm: 0xFFFFFFFF}, "iadd r3, r1, -1"},
		{Instruction{Op: OpLdG, Dst: 3, SrcA: 1, Imm: 16}, "ld.g r3, [r1+16]"},
		{Instruction{Op: OpStG, SrcA: 1, SrcC: 2, Imm: 4}, "st.g [r1+4], r2"},
		{Instruction{Op: OpBra, SrcA: 5, Target: 12}, "bra r5, @12"},
		{Instruction{Op: OpBra, SrcA: RegNone, Target: 12}, "bra @12"},
		{Instruction{Op: OpSync, Target: 7}, "sync @7"},
		{Instruction{Op: OpISetp, Cmp: CmpLT, Dst: 1, SrcA: 2, SrcB: 3}, "isetp.lt r1, r2, r3"},
		{Instruction{Op: OpMov, Dst: 1, Spec: SpecTid}, "mov r1, %tid"},
		{Instruction{Op: OpExit}, "exit"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSpecialParams(t *testing.T) {
	p5 := SpecParam(5)
	i, ok := p5.IsParam()
	if !ok || i != 5 {
		t.Fatalf("SpecParam(5).IsParam() = %d,%v", i, ok)
	}
	if _, ok := SpecTid.IsParam(); ok {
		t.Error("tid special should not be a param")
	}
	if p5.String() != "%p5" {
		t.Errorf("param string = %q", p5.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("SpecParam(99) should panic")
		}
	}()
	SpecParam(99)
}

func TestProgramValidate(t *testing.T) {
	good := &Program{
		Name: "ok",
		Code: []Instruction{
			{Op: OpMov, Dst: 0, HasImm: true, SrcA: RegNone},
			{Op: OpExit},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	empty := &Program{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}

	fallOff := &Program{
		Name: "fall",
		Code: []Instruction{{Op: OpIAdd, Dst: 0, SrcA: 0, SrcB: 0}},
	}
	if err := fallOff.Validate(); err == nil || !strings.Contains(err.Error(), "fall off") {
		t.Errorf("fall-off-the-end not detected: %v", err)
	}

	badTarget := &Program{
		Name: "bt",
		Code: []Instruction{
			{Op: OpBra, SrcA: RegNone, Target: 99},
			{Op: OpExit},
		},
	}
	if err := badTarget.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestConditional(t *testing.T) {
	cond := Instruction{Op: OpBra, SrcA: 3}
	if !cond.Conditional() {
		t.Error("predicated bra should be conditional")
	}
	uncond := Instruction{Op: OpBra, SrcA: RegNone}
	if uncond.Conditional() {
		t.Error("unpredicated bra should not be conditional")
	}
	alu := Instruction{Op: OpIAdd, SrcA: 1}
	if alu.Conditional() {
		t.Error("iadd is not conditional")
	}
}

func TestDisassembleRoundTripLabels(t *testing.T) {
	p := &Program{
		Name: "d",
		Code: []Instruction{
			{Op: OpMov, Dst: 0, HasImm: true, Imm: 1, SrcA: RegNone},
			{Op: OpBra, SrcA: RegNone, Target: 0},
		},
		Labels: map[string]int{"loop": 0},
	}
	d := p.Disassemble()
	if !strings.Contains(d, "loop:") || !strings.Contains(d, "mov r0, 1") {
		t.Errorf("disassembly missing content:\n%s", d)
	}
}
