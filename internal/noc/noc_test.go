package noc

import "testing"

func TestValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{Latency: -1, BytesPerCycle: 1},
		{Latency: 0, BytesPerCycle: 0},
		{Latency: 0, BytesPerCycle: -4},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v must be rejected", c)
		}
	}
}

func TestUncontendedSendIsPureLatency(t *testing.T) {
	x := New(Config{Latency: 20, BytesPerCycle: 32}, 2)
	if got := x.Send(0, 100, 128); got != 120 {
		t.Errorf("delivery = %d, want 120", got)
	}
	s := x.PortStats(0)
	if s.Requests != 1 || s.Bytes != 128 || s.QueueCycles != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPortQueueing(t *testing.T) {
	// 128-byte requests at 16 B/cycle occupy a port for 8 cycles: three
	// back-to-back requests at the same cycle queue 0, 8, 16 cycles.
	x := New(Config{Latency: 5, BytesPerCycle: 16}, 1)
	wantDeliver := []int64{5, 13, 21}
	for i, want := range wantDeliver {
		if got := x.Send(0, 0, 128); got != want {
			t.Errorf("request %d delivered at %d, want %d", i, got, want)
		}
	}
	s := x.Stats()
	if s.QueueCycles != 8+16 {
		t.Errorf("QueueCycles = %d, want 24", s.QueueCycles)
	}
	if s.MaxQueueDelay != 16 {
		t.Errorf("MaxQueueDelay = %d, want 16", s.MaxQueueDelay)
	}
}

func TestFractionalBandwidthRoundsUp(t *testing.T) {
	// 128 bytes at 48 B/cycle occupy the port for 2.67 cycles; the next
	// request must wait a whole 3 cycles, matching the ceil convention
	// of the DRAM-port models.
	x := New(Config{Latency: 0, BytesPerCycle: 48}, 1)
	x.Send(0, 0, 128)
	if got := x.Send(0, 0, 128); got != 3 {
		t.Errorf("second delivery = %d, want 3 (port free at 2.67 rounds up)", got)
	}
	if s := x.Stats(); s.QueueCycles != 3 {
		t.Errorf("QueueCycles = %d, want 3", s.QueueCycles)
	}
}

func TestPortsAreIndependent(t *testing.T) {
	x := New(Config{Latency: 1, BytesPerCycle: 1}, 2)
	x.Send(0, 0, 128) // port 0 busy until cycle 128
	if got := x.Send(1, 0, 128); got != 1 {
		t.Errorf("port 1 delivery = %d, want 1 (no cross-port interference)", got)
	}
	if got := x.Send(0, 0, 128); got != 129 {
		t.Errorf("port 0 second delivery = %d, want 129", got)
	}
}

func TestNarrowerPortIsMonotone(t *testing.T) {
	// The same request stream through a narrower port must never be
	// delivered earlier — the property the device's bandwidth-sweep
	// acceptance test relies on.
	stream := []struct {
		now   int64
		bytes int
	}{{0, 128}, {2, 128}, {4, 128}, {40, 128}, {41, 128}}
	var prev []int64
	for _, bw := range []float64{64, 16, 4, 1} {
		x := New(Config{Latency: 10, BytesPerCycle: bw}, 1)
		var got []int64
		for _, r := range stream {
			got = append(got, x.Send(0, r.now, r.bytes))
		}
		for i := range got {
			if prev != nil && got[i] < prev[i] {
				t.Errorf("bw %g: request %d delivered at %d, earlier than %d at wider port",
					bw, i, got[i], prev[i])
			}
		}
		prev = got
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Requests: 1, Bytes: 128, QueueCycles: 3, MaxQueueDelay: 3}
	b := Stats{Requests: 2, Bytes: 256, QueueCycles: 10, MaxQueueDelay: 7}
	a.Merge(&b)
	want := Stats{Requests: 3, Bytes: 384, QueueCycles: 13, MaxQueueDelay: 7}
	if a != want {
		t.Errorf("merged = %+v, want %+v", a, want)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero ports must panic")
		}
	}()
	New(Default(), 0)
}
