// Package noc models the on-chip interconnect between the per-SM L1
// caches and the shared L2: a crossbar with one request port per SM.
// Each port is a bandwidth-limited queue — a request occupies its port
// for BlockBytes/BytesPerCycle cycles and is delivered to the L2 side
// a fixed wire latency after it wins the port — so a burst of misses
// from one SM queues behind itself while different SMs' ports operate
// independently, which is exactly the first-order behavior of a
// crossbar with per-port injection buffers. The reply network is not
// modeled separately: replies are assumed to mirror the request path,
// and their latency is folded into the single Latency parameter.
//
// The model is deterministic and single-threaded by design: a Crossbar
// must only be driven from one goroutine (the device interleaves all
// waves' traffic on one shared-clock driver), so there are no locks
// to make timing depend on the host scheduler.
package noc

import (
	"fmt"
	"math"
)

// Config sets the interconnect timing parameters.
type Config struct {
	// Latency is the one-way request latency in cycles from an SM port
	// to the L2 side once the request has won its port (wire + router
	// pipeline; the reply path is folded in).
	Latency int64

	// BytesPerCycle is the injection bandwidth of one SM port. A
	// 128-byte request occupies the port for 128/BytesPerCycle cycles;
	// later requests from the same port queue behind it.
	BytesPerCycle float64
}

// Default returns an interconnect sized so that a single SM's miss
// stream is rarely port-limited (32 B/cycle ≈ the L1's fill bandwidth),
// with a 20-cycle traversal — NoC effects then appear under real
// multi-SM pressure or when an experiment narrows the port.
func Default() Config {
	return Config{Latency: 20, BytesPerCycle: 32}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("noc: negative latency %d", c.Latency)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("noc: port bandwidth %g must be positive", c.BytesPerCycle)
	}
	return nil
}

// Stats counts interconnect events. Counters add under Merge;
// MaxQueueDelay takes the maximum.
type Stats struct {
	Requests    uint64 // requests injected across all ports
	Bytes       uint64 // payload bytes injected
	QueueCycles uint64 // total cycles requests waited for their port

	// MaxQueueDelay is the worst single-request port wait observed.
	MaxQueueDelay int64
}

// Merge folds another interconnect's statistics into s.
func (s *Stats) Merge(o *Stats) {
	s.Requests += o.Requests
	s.Bytes += o.Bytes
	s.QueueCycles += o.QueueCycles
	if o.MaxQueueDelay > s.MaxQueueDelay {
		s.MaxQueueDelay = o.MaxQueueDelay
	}
}

// Link is one bandwidth-limited channel with a fixed post-queue
// latency: a reservation occupies the link for bytes/bytesPerCycle
// cycles and completes latency cycles after it wins the link, rounded
// up to a whole cycle. It is the single service-queue primitive behind
// crossbar ports, L2 banks and DRAM ports, so all three levels share
// one reservation and rounding rule.
type Link struct {
	bytesPerCycle float64
	latency       int64
	free          float64 // time the link next accepts a reservation
}

// NewLink builds a link; bytesPerCycle must be positive.
func NewLink(bytesPerCycle float64, latency int64) Link {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("noc: link bandwidth %g must be positive", bytesPerCycle))
	}
	return Link{bytesPerCycle: bytesPerCycle, latency: latency}
}

// Reserve books one transfer starting no earlier than now and returns
// the cycle it completes: the service start (queued behind earlier
// reservations, rounded up to a whole cycle) plus the link latency.
func (l *Link) Reserve(now int64, bytes int) int64 {
	start := float64(now)
	if l.free > start {
		start = l.free
	}
	l.free = start + float64(bytes)/l.bytesPerCycle
	return int64(math.Ceil(start)) + l.latency
}

// Crossbar is the interconnect instance: per-port links plus per-port
// statistics. Not safe for concurrent use; see the package comment.
type Crossbar struct {
	cfg   Config
	ports []Link
	stats []Stats // per-port counters
}

// New builds a crossbar with ports request ports. It panics on a
// non-positive port count or an invalid configuration (internal wiring
// errors, not user input — the device validates options at New).
func New(cfg Config, ports int) *Crossbar {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if ports <= 0 {
		panic(fmt.Sprintf("noc: port count %d must be positive", ports))
	}
	links := make([]Link, ports)
	for i := range links {
		links[i] = NewLink(cfg.BytesPerCycle, cfg.Latency)
	}
	return &Crossbar{
		cfg:   cfg,
		ports: links,
		stats: make([]Stats, ports),
	}
}

// Config returns the crossbar's configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Ports returns the number of request ports.
func (x *Crossbar) Ports() int { return len(x.ports) }

// Send injects a request of the given payload size on a port at cycle
// now and returns the cycle it is delivered at the L2 side: the port
// queue wait, plus the traversal latency. The port stays busy for
// bytes/BytesPerCycle cycles.
func (x *Crossbar) Send(port int, now int64, bytes int) int64 {
	st := &x.stats[port]
	st.Requests++
	st.Bytes += uint64(bytes)

	deliver := x.ports[port].Reserve(now, bytes)
	if wait := deliver - x.cfg.Latency - now; wait > 0 {
		st.QueueCycles += uint64(wait)
		if wait > st.MaxQueueDelay {
			st.MaxQueueDelay = wait
		}
	}
	return deliver
}

// PortStats returns a copy of one port's counters.
func (x *Crossbar) PortStats(port int) Stats { return x.stats[port] }

// Stats returns the counters aggregated across all ports.
func (x *Crossbar) Stats() Stats {
	var out Stats
	for i := range x.stats {
		out.Merge(&x.stats[i])
	}
	return out
}
