package kernels

import "repro/internal/isa"

// The regular suite (figure 7a): kernels whose warps stay converged —
// uniform loops, branch-free predication, or negligible border
// divergence — so their performance is bounded by issue bandwidth and
// unit throughput rather than divergence handling.

// newThreeDFD ports the SDK 3DFD stencil: a radius-2 finite difference
// with clamped borders (branch-free via imin/imax), unit-stride loads.
func newThreeDFD() *Benchmark {
	const grid, block = 24, 256
	n := grid * block
	b := &Benchmark{
		Name: "3DFD", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	isub r10, r5, 1
	isub r7, r4, 1
	imax r7, r7, 0
	isub r8, r4, 2
	imax r8, r8, 0
	iadd r9, r4, 1
	imin r9, r9, r10
	iadd r11, r4, 2
	imin r11, r11, r10
	mov  r12, %p1
	shl  r13, r4, 2
	iadd r13, r12, r13
	ld.g r14, [r13]
	shl  r13, r7, 2
	iadd r13, r12, r13
	ld.g r15, [r13]
	shl  r13, r8, 2
	iadd r13, r12, r13
	ld.g r16, [r13]
	shl  r13, r9, 2
	iadd r13, r12, r13
	ld.g r17, [r13]
	shl  r13, r11, 2
	iadd r13, r12, r13
	ld.g r18, [r13]
	fmul r22, r14, 0.5
	fadd r23, r15, r17
	fmad r22, r23, 0.25, r22
	fadd r23, r16, r18
	fmad r22, r23, 0.125, r22
	mov  r24, %p0
	shl  r25, r4, 2
	iadd r24, r24, r25
	st.g [r24], r22
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * n)
		r := newRng(3)
		for i := 0; i < n; i++ {
			g.putF(n+i, r.unitFloat())
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		in := func(i int) float32 { return g.getF(n + imaxi(0, imini(i, n-1))) }
		for i := 0; i < n; i++ {
			acc := fmul(in(i), 0.5)
			acc = fmad(fadd(in(i-1), in(i+1)), 0.25, acc)
			acc = fmad(fadd(in(i-2), in(i+2)), 0.125, acc)
			g.putF(i, acc)
		}
	}
	return b
}

// newBackprop ports the Rodinia backprop forward pass: a uniform
// 16-iteration weighted reduction per output unit followed by a
// sigmoid-like activation on the SFU.
func newBackprop() *Benchmark {
	const grid, block, hidden = 10, 256, 16
	n := grid * block
	b := &Benchmark{
		Name: "Backprop", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	mov  r6, %p1
	mov  r7, %p2
	mov  r8, 0
	mov  r9, 0.0
loop:
	imad r10, r8, r5, r4
	shl  r10, r10, 2
	iadd r10, r6, r10
	ld.g r11, [r10]
	shl  r12, r8, 2
	iadd r12, r7, r12
	ld.g r13, [r12]
	fmad r9, r11, r13, r9
	iadd r8, r8, 1
	isetp.lt r14, r8, 16
	bra  r14, loop
	fneg r15, r9
	ex2  r16, r15
	fadd r16, r16, 1.0
	rcp  r18, r16
	mov  r19, %p0
	shl  r20, r4, 2
	iadd r19, r19, r20
	st.g [r19], r18
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(n + hidden*n + hidden)
		r := newRng(7)
		for i := 0; i < hidden*n; i++ {
			g.putF(n+i, r.unitFloat())
		}
		for j := 0; j < hidden; j++ {
			g.putF(n+hidden*n+j, r.unitFloat())
		}
		return g, params(0, uint32(n*4), uint32((n+hidden*n)*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < n; i++ {
			acc := float32(0)
			for j := 0; j < hidden; j++ {
				acc = fmad(g.getF(n+j*n+i), g.getF(n+hidden*n+j), acc)
			}
			g.putF(i, frcp(fadd(fex2(-acc), 1.0)))
		}
	}
	return b
}

// newBinomialOptions ports the SDK binomial pricer's backward
// induction: a register-resident uniform loop of MAD-class work.
func newBinomialOptions() *Benchmark {
	const grid, block, steps = 8, 256, 40
	n := grid * block
	b := &Benchmark{
		Name: "BinomialOptions", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r6, %p1
	shl  r7, r4, 2
	iadd r6, r6, r7
	ld.g r9, [r6]
	mov  r8, 0
loop:
	fmul r10, r9, 1.03
	fadd r10, r10, -0.015
	fmax r9, r10, 0.4
	fmul r11, r9, r9
	fmad r9, r11, 0.001, r9
	iadd r8, r8, 1
	isetp.lt r12, r8, 40
	bra  r12, loop
	mov  r13, %p0
	shl  r14, r4, 2
	iadd r13, r13, r14
	st.g [r13], r9
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * n)
		r := newRng(11)
		for i := 0; i < n; i++ {
			g.putF(n+i, fadd(r.unitFloat(), 0.5))
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < n; i++ {
			x := g.getF(n + i)
			for s := 0; s < steps; s++ {
				x = fmax(fadd(fmul(x, 1.03), -0.015), 0.4)
				x = fmad(fmul(x, x), 0.001, x)
			}
			g.putF(i, x)
		}
	}
	return b
}

// newBlackScholes ports the SDK option pricer: straight-line FP with a
// heavy transcendental (SFU) mix and zero divergence.
func newBlackScholes() *Benchmark {
	const grid, block = 24, 256
	n := grid * block
	b := &Benchmark{
		Name: "BlackScholes", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	mov  r6, %p2
	shl  r7, r4, 2
	iadd r5, r5, r7
	iadd r6, r6, r7
	ld.g r8, [r5]
	ld.g r9, [r6]
	lg2  r10, r8
	lg2  r11, r9
	fsub r12, r10, r11
	fadd r13, r8, r9
	sqrt r14, r13
	rcp  r15, r14
	fmul r16, r12, r15
	fneg r17, r16
	ex2  r18, r17
	fadd r18, r18, 1.0
	rcp  r19, r18
	fmul r20, r14, 0.2
	fsub r21, r16, r20
	fneg r22, r21
	ex2  r23, r22
	fadd r23, r23, 1.0
	rcp  r24, r23
	fmul r25, r8, r19
	fmul r26, r9, r24
	fsub r27, r25, r26
	mov  r28, %p0
	shl  r29, r4, 2
	iadd r28, r28, r29
	st.g [r28], r27
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(3 * n)
		r := newRng(13)
		for i := 0; i < n; i++ {
			g.putF(n+i, fadd(fmul(r.unitFloat(), 90), 10))
			g.putF(2*n+i, fadd(fmul(r.unitFloat(), 90), 10))
		}
		return g, params(0, uint32(n*4), uint32(2*n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < n; i++ {
			s, k := g.getF(n+i), g.getF(2*n+i)
			d := fsub(flg2(s), flg2(k))
			sq := fsqrt(fadd(s, k))
			d1 := fmul(d, frcp(sq))
			cdf1 := frcp(fadd(fex2(-d1), 1.0))
			d2 := fsub(d1, fmul(sq, 0.2))
			cdf2 := frcp(fadd(fex2(-d2), 1.0))
			g.putF(i, fsub(fmul(s, cdf1), fmul(k, cdf2)))
		}
	}
	return b
}

// newDWTHaar1D ports the SDK Haar wavelet step: each thread transforms
// four pairs into approximation and detail coefficients.
func newDWTHaar1D() *Benchmark {
	const grid, block, perThread = 12, 256, 4
	n := grid * block
	pairs := n * perThread
	b := &Benchmark{
		Name: "DWTHaar1D", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p0
	mov  r6, %p1
	mov  r7, %p2
	mov  r8, 0
loop:
	shl  r9, r4, 2
	iadd r9, r9, r8
	shl  r10, r9, 3
	iadd r10, r6, r10
	ld.g r11, [r10]
	ld.g r12, [r10+4]
	fadd r13, r11, r12
	fmul r13, r13, 0.70710678
	fsub r14, r11, r12
	fmul r14, r14, 0.70710678
	shl  r15, r9, 2
	iadd r16, r5, r15
	st.g [r16], r13
	iadd r16, r7, r15
	st.g [r16], r14
	iadd r8, r8, 1
	isetp.lt r17, r8, 4
	bra  r17, loop
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2*pairs + pairs + pairs)
		r := newRng(17)
		for i := 0; i < 2*pairs; i++ {
			g.putF(i, r.unitFloat())
		}
		return g, params(uint32(2*pairs*4), 0, uint32(3*pairs*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < pairs; i++ {
			a, d := g.getF(2*i), g.getF(2*i+1)
			g.putF(2*pairs+i, fmul(fadd(a, d), 0.70710678))
			g.putF(3*pairs+i, fmul(fsub(a, d), 0.70710678))
		}
	}
	return b
}

// newFastWalshTransform ports the SDK butterfly: log2(block) uniform
// steps over shared memory with XOR-indexed partners and barriers.
func newFastWalshTransform() *Benchmark {
	const grid, block = 12, 256
	n := grid * block
	b := &Benchmark{
		Name: "FastWalshTransform", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 1024
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	shl  r8, r1, 2
	st.s [r8], r7
	bar
	mov  r9, 1
step:
	xor  r10, r1, r9
	shl  r11, r10, 2
	ld.s r12, [r11]
	ld.s r13, [r8]
	and  r14, r1, r9
	isetp.eq r15, r14, 0
	fadd r16, r13, r12
	fsub r17, r12, r13
	selp r18, r16, r17, r15
	bar
	st.s [r8], r18
	bar
	shl  r9, r9, 1
	isetp.lt r19, r9, 256
	bra  r19, step
	ld.s r20, [r8]
	mov  r21, %p0
	shl  r22, r4, 2
	iadd r21, r21, r22
	st.g [r21], r20
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * n)
		r := newRng(19)
		for i := 0; i < n; i++ {
			g.putF(n+i, fsub(r.unitFloat(), 0.5))
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		sh := make([]float32, block)
		for blk := 0; blk < grid; blk++ {
			for t := 0; t < block; t++ {
				sh[t] = g.getF(n + blk*block + t)
			}
			for stride := 1; stride < block; stride <<= 1 {
				next := make([]float32, block)
				for t := 0; t < block; t++ {
					a, bb := sh[t], sh[t^stride]
					if t&stride == 0 {
						next[t] = fadd(a, bb)
					} else {
						next[t] = fsub(bb, a)
					}
				}
				copy(sh, next)
			}
			for t := 0; t < block; t++ {
				g.putF(blk*block+t, sh[t])
			}
		}
	}
	return b
}

// newHotspot ports the Rodinia thermal stencil: interior threads run a
// clamped 3-point update with a power term; the two border threads take
// a short branch (negligible divergence, as in the original).
func newHotspot() *Benchmark {
	const grid, block = 16, 256
	n := grid * block
	b := &Benchmark{
		Name: "Hotspot", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	isub r6, r5, 1
	mov  r7, %p1
	mov  r8, %p2
	shl  r9, r4, 2
	iadd r10, r7, r9
	ld.g r11, [r10]
	isetp.eq r12, r4, 0
	isetp.eq r13, r4, r6
	or   r14, r12, r13
	bra  r14, border
	ld.g r15, [r10-4]
	ld.g r16, [r10+4]
	iadd r17, r8, r9
	ld.g r18, [r17]
	fadd r19, r15, r16
	fmul r20, r11, 2.0
	fsub r19, r19, r20
	fmul r19, r19, 0.1
	fadd r19, r11, r19
	fmad r19, r18, 0.05, r19
	bra  store
border:
	mov  r19, r11
store:
	mov  r21, %p0
	iadd r21, r21, r9
	st.g [r21], r19
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(3 * n)
		r := newRng(23)
		for i := 0; i < n; i++ {
			g.putF(n+i, fadd(fmul(r.unitFloat(), 40), 300))
			g.putF(2*n+i, r.unitFloat())
		}
		return g, params(0, uint32(n*4), uint32(2*n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < n; i++ {
			t := g.getF(n + i)
			if i == 0 || i == n-1 {
				g.putF(i, t)
				continue
			}
			d := fsub(fadd(g.getF(n+i-1), g.getF(n+i+1)), fmul(t, 2.0))
			out := fadd(t, fmul(d, 0.1))
			out = fmad(g.getF(2*n+i), 0.05, out)
			g.putF(i, out)
		}
	}
	return b
}

// newMatrixMul ports the SDK tiled matrix multiply: 16x16 shared-memory
// tiles, two barriers per tile, a fully uniform inner product.
func newMatrixMul() *Benchmark {
	const dim, tile = 32, 16
	const grid, block = (dim / tile) * (dim / tile), tile * tile
	b := &Benchmark{
		Name: "MatrixMul", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 2048
	mov  r1, %tid
	and  r2, r1, 15
	shr  r3, r1, 4
	mov  r4, %ctaid
	and  r5, r4, 1
	shr  r6, r4, 1
	shl  r7, r6, 4
	iadd r7, r7, r3
	shl  r8, r5, 4
	iadd r8, r8, r2
	mov  r9, 0.0
	mov  r10, 0
tileloop:
	shl  r11, r10, 4
	iadd r12, r11, r2
	imad r13, r7, 32, r12
	shl  r13, r13, 2
	mov  r14, %p1
	iadd r13, r14, r13
	ld.g r15, [r13]
	iadd r16, r11, r3
	imad r17, r16, 32, r8
	shl  r17, r17, 2
	mov  r18, %p2
	iadd r17, r18, r17
	ld.g r19, [r17]
	shl  r20, r1, 2
	st.s [r20], r15
	iadd r21, r20, 1024
	st.s [r21], r19
	bar
	mov  r22, 0
inner:
	shl  r23, r3, 4
	iadd r23, r23, r22
	shl  r23, r23, 2
	ld.s r24, [r23]
	shl  r25, r22, 4
	iadd r25, r25, r2
	shl  r25, r25, 2
	iadd r25, r25, 1024
	ld.s r26, [r25]
	fmad r9, r24, r26, r9
	iadd r22, r22, 1
	isetp.lt r27, r22, 16
	bra  r27, inner
	bar
	iadd r10, r10, 1
	isetp.lt r28, r10, 2
	bra  r28, tileloop
	imad r29, r7, 32, r8
	shl  r29, r29, 2
	mov  r30, %p0
	iadd r29, r30, r29
	st.g [r29], r9
	exit
`,
	}
	words := dim * dim
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(3 * words)
		r := newRng(29)
		for i := 0; i < 2*words; i++ {
			g.putF(words+i, fsub(r.unitFloat(), 0.5))
		}
		return g, params(0, uint32(words*4), uint32(2*words*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for row := 0; row < dim; row++ {
			for col := 0; col < dim; col++ {
				acc := float32(0)
				for k := 0; k < dim; k++ {
					acc = fmad(g.getF(words+row*dim+k), g.getF(2*words+k*dim+col), acc)
				}
				g.putF(row*dim+col, acc)
			}
		}
	}
	return b
}

// newMonteCarlo ports the SDK Monte Carlo pricer: a uniform per-thread
// simulation loop mixing an integer RNG with SFU exponentials.
func newMonteCarlo() *Benchmark {
	const grid, block, paths = 6, 256, 24
	n := grid * block
	b := &Benchmark{
		Name: "MonteCarlo", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	mov  r8, 0
	mov  r9, 0.0
loop:
	shl  r10, r7, 13
	xor  r7, r7, r10
	shr  r10, r7, 17
	xor  r7, r7, r10
	shl  r10, r7, 5
	xor  r7, r7, r10
	shr  r11, r7, 8
	i2f  r12, r11
	fmul r12, r12, 0.000000059604645
	fadd r12, r12, -0.5
	fmul r13, r12, 0.3
	ex2  r14, r13
	fmul r15, r14, 100.0
	fadd r16, r15, -95.0
	fmax r16, r16, 0.0
	fadd r9, r9, r16
	iadd r8, r8, 1
	isetp.lt r17, r8, 24
	bra  r17, loop
	fmul r9, r9, 0.041666668
	mov  r18, %p0
	iadd r18, r18, r6
	st.g [r18], r9
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * n)
		r := newRng(31)
		for i := 0; i < n; i++ {
			g.put(n+i, r.next()|1)
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for i := 0; i < n; i++ {
			state := g.get(n + i)
			acc := float32(0)
			for p := 0; p < paths; p++ {
				state ^= state << 13
				state ^= state >> 17
				state ^= state << 5
				u := fadd(fmul(float32(int32(state>>8)), 0.000000059604645), -0.5)
				s := fmul(fex2(fmul(u, 0.3)), 100.0)
				acc = fadd(acc, fmax(fadd(s, -95.0), 0.0))
			}
			g.putF(i, fmul(acc, 0.041666668))
		}
	}
	return b
}

// newTranspose ports the SDK shared-tile transpose: coalesced loads,
// a barrier, then transposed stores.
func newTranspose() *Benchmark {
	const dim, tile = 96, 16
	const grid, block = (dim / tile) * (dim / tile), tile * tile
	words := dim * dim
	b := &Benchmark{
		Name: "Transpose", Regular: true, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 1024
	mov  r1, %tid
	and  r2, r1, 15
	shr  r3, r1, 4
	mov  r4, %ctaid
	imod r5, r4, 6
	idiv r6, r4, 6
	shl  r7, r6, 4
	shl  r8, r5, 4
	iadd r9, r7, r3
	iadd r10, r8, r2
	imad r11, r9, 96, r10
	shl  r11, r11, 2
	mov  r12, %p1
	iadd r11, r12, r11
	ld.g r13, [r11]
	shl  r14, r1, 2
	st.s [r14], r13
	bar
	iadd r15, r8, r3
	iadd r16, r7, r2
	imad r17, r15, 96, r16
	shl  r17, r17, 2
	mov  r18, %p0
	iadd r17, r18, r17
	shl  r19, r2, 4
	iadd r19, r19, r3
	shl  r19, r19, 2
	ld.s r20, [r19]
	st.g [r17], r20
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * words)
		r := newRng(37)
		for i := 0; i < words; i++ {
			g.putF(words+i, r.unitFloat())
		}
		return g, params(0, uint32(words*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for row := 0; row < dim; row++ {
			for col := 0; col < dim; col++ {
				g.putF(col*dim+row, g.getF(words+row*dim+col))
			}
		}
	}
	return b
}

// params packs parameter values.
func params(vs ...uint32) [isa.NumParams]uint32 {
	var p [isa.NumParams]uint32
	copy(p[:], vs)
	return p
}

func imini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func imaxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
