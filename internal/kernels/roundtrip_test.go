package kernels

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Every suite kernel must survive a disassemble→reassemble round trip
// with identical instruction encodings (modulo labels, which the
// disassembler renders as addresses). This exercises the full
// mnemonic/operand surface the suite uses.
func TestDisassembleRoundTrip(t *testing.T) {
	for _, b := range All() {
		p, err := b.Program(false)
		if err != nil {
			t.Fatal(err)
		}
		dis := p.Disassemble()
		if dis == "" {
			t.Fatalf("%s: empty disassembly", b.Name)
		}
		// Rebuild a source from the disassembly: strip PCs, convert
		// "@N" targets into labels.
		src := rebuildSource(dis)
		p2, err := asm.Assemble(b.Name, src)
		if err != nil {
			t.Fatalf("%s: reassembly failed: %v\n%s", b.Name, err, src)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("%s: length %d -> %d after round trip", b.Name, p.Len(), p2.Len())
		}
		for pc := range p.Code {
			a, bb := p.Code[pc], p2.Code[pc]
			// RecPC/Line are metadata the round trip does not carry.
			a.RecPC, bb.RecPC = -1, -1
			a.Line, bb.Line = 0, 0
			if a != bb {
				t.Fatalf("%s: pc %d differs after round trip:\n  %v\n  %v", b.Name, pc, &a, &bb)
			}
		}
	}
}

// rebuildSource converts "  12:  bra r3, @5"-style disassembly into
// assemblable source with generated labels.
func rebuildSource(dis string) string {
	var out strings.Builder
	out.WriteString(".shared 65536\n") // superset; size not compared
	for _, line := range strings.Split(dis, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			continue // label line from the original program
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			continue
		}
		pc := strings.TrimSpace(line[:colon])
		body := strings.TrimSpace(line[colon+1:])
		body = strings.ReplaceAll(body, "@", "L")
		out.WriteString("L" + pc + ": " + body + "\n")
	}
	return out.String()
}

// The shared-memory directive must be preserved by Program.
func TestSharedMemoryDeclared(t *testing.T) {
	withShared := map[string]bool{
		"FastWalshTransform": true, "MatrixMul": true, "Transpose": true,
		"ConvolutionSeparable": true, "Needleman-Wunsch": true, "SortingNetworks": true,
	}
	for _, b := range All() {
		p, err := b.Program(false)
		if err != nil {
			t.Fatal(err)
		}
		if withShared[b.Name] && p.SharedMem == 0 {
			t.Errorf("%s: expected shared memory", b.Name)
		}
		if !withShared[b.Name] && p.SharedMem != 0 {
			t.Errorf("%s: unexpected shared memory %d", b.Name, p.SharedMem)
		}
	}
}

// The suite must collectively exercise every unit class and the major
// control-flow constructs, or the evaluation would silently lose
// coverage when kernels are edited.
func TestSuiteInstructionCoverage(t *testing.T) {
	units := map[isa.Unit]bool{}
	ops := map[isa.Opcode]bool{}
	for _, b := range All() {
		p, err := b.Program(true)
		if err != nil {
			t.Fatal(err)
		}
		for pc := range p.Code {
			ins := &p.Code[pc]
			units[ins.Op.Unit()] = true
			ops[ins.Op] = true
		}
	}
	for _, u := range []isa.Unit{isa.UnitMAD, isa.UnitSFU, isa.UnitLSU, isa.UnitCTRL} {
		if !units[u] {
			t.Errorf("suite never uses unit %v", u)
		}
	}
	for _, op := range []isa.Opcode{
		isa.OpBra, isa.OpSync, isa.OpBar, isa.OpExit,
		isa.OpLdG, isa.OpStG, isa.OpLdS, isa.OpStS,
		isa.OpFMad, isa.OpIMad, isa.OpSelp, isa.OpISetp, isa.OpFSetp,
		isa.OpRcp, isa.OpSqrt, isa.OpEx2, isa.OpLg2, isa.OpI2F,
	} {
		if !ops[op] {
			t.Errorf("suite never uses %v", op)
		}
	}
}
