package kernels

import (
	"bytes"
	"testing"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/sm"
)

func TestSuiteComposition(t *testing.T) {
	if got := len(Regular()); got != 10 {
		t.Errorf("regular suite has %d kernels, want 10", got)
	}
	// The paper's eleven plus the synthetic WriteStorm anchor.
	if got := len(Irregular()); got != 12 {
		t.Errorf("irregular suite has %d kernels, want 12", got)
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
	if _, ok := ByName("BFS"); !ok {
		t.Error("ByName(BFS) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

// Every kernel's functional simulation must match its Go reference
// bit for bit, for both program variants (plain and SYNC-instrumented).
func TestReferenceOracle(t *testing.T) {
	for _, b := range All() {
		for _, tf := range []bool{false, true} {
			name := b.Name
			if tf {
				name += "/tf"
			}
			t.Run(name, func(t *testing.T) {
				l, err := b.NewLaunch(tf)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := exec.RunReference(l, 32); err != nil {
					t.Fatal(err)
				}
				want := b.Expected()
				if !bytes.Equal(l.Global, want) {
					t.Fatalf("%s: functional simulation diverges from Go reference", b.Name)
				}
			})
		}
	}
}

// The frontier-layout property must hold for every kernel except TMD1,
// whose violation is the point of the benchmark.
func TestFrontierLayout(t *testing.T) {
	for _, b := range All() {
		p, err := b.Program(false)
		if err != nil {
			t.Fatal(err)
		}
		v := cfg.ValidateFrontierLayout(p)
		if b.FrontierLayout && len(v) > 0 {
			t.Errorf("%s: unexpected layout violations: %v", b.Name, v)
		}
		if !b.FrontierLayout && len(v) == 0 {
			t.Errorf("%s: expected layout violations, found none", b.Name)
		}
	}
}

// TMD1 and TMD2 must compute the same function.
func TestTMDVariantsAgree(t *testing.T) {
	t1, _ := ByName("TMD1")
	t2, _ := ByName("TMD2")
	e1, e2 := t1.Expected(), t2.Expected()
	if !bytes.Equal(e1, e2) {
		t.Fatal("TMD1 and TMD2 references disagree")
	}
	l1, err := t1.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.RunReference(l1, 32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l1.Global, e1) {
		t.Fatal("TMD1 run diverges from TMD2 reference")
	}
}

// SortingNetworks must actually sort each block's segment ascending.
func TestSortingNetworksSorts(t *testing.T) {
	b, _ := ByName("SortingNetworks")
	out := image(b.Expected())
	const elems = 256
	for blk := 0; blk < b.Grid; blk++ {
		for i := 1; i < elems; i++ {
			if out.getI(blk*elems+i-1) > out.getI(blk*elems+i) {
				t.Fatalf("block %d not ascending at %d", blk, i)
			}
		}
	}
}

// BFS must have expanded the frontier: some unvisited node gains the
// next level.
func TestBFSExpands(t *testing.T) {
	b, _ := ByName("BFS")
	g, _ := b.Setup(b)
	before := image(g)
	out := image(b.Expected())
	n := b.Grid * b.Block
	expanded := 0
	for v := 0; v < n; v++ {
		if before.getI(v) == -1 && out.getI(v) == 2 {
			expanded++
		}
	}
	if expanded == 0 {
		t.Error("BFS expanded nothing")
	}
}

// Setup must be deterministic: two images must be identical.
func TestSetupDeterministic(t *testing.T) {
	for _, b := range All() {
		g1, p1 := b.Setup(b)
		g2, p2 := b.Setup(b)
		if !bytes.Equal(g1, g2) || p1 != p2 {
			t.Errorf("%s: non-deterministic setup", b.Name)
		}
	}
}

// Every kernel on the cycle simulator must match the reference, across
// all five architectures. This is the end-to-end gate for the whole
// stack (assembler, CFG analysis, reconvergence, scheduling, memory).
func TestCycleSimMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite cycle simulation")
	}
	for _, b := range All() {
		want := b.Expected()
		for _, a := range sm.Architectures() {
			t.Run(b.Name+"/"+a.String(), func(t *testing.T) {
				l, err := b.NewLaunch(a != sm.ArchBaseline)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sm.Run(sm.Configure(a), l)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(l.Global, want) {
					t.Fatalf("%s on %s: wrong results", b.Name, a)
				}
				if res.Stats.IPC() <= 0 {
					t.Errorf("%s on %s: IPC %f", b.Name, a, res.Stats.IPC())
				}
			})
		}
	}
}

// The irregular suite must actually diverge and the regular suite must
// stay (nearly) converged, per the paper's classification.
func TestDivergenceClassification(t *testing.T) {
	for _, b := range All() {
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sm.Run(sm.Configure(sm.ArchSBI), l)
		if err != nil {
			t.Fatal(err)
		}
		perBlock := float64(res.Stats.Divergences) / float64(b.Grid)
		if !b.Regular && res.Stats.Divergences == 0 {
			t.Errorf("%s is classified irregular but never diverged", b.Name)
		}
		if b.Regular && perBlock > 64 {
			t.Errorf("%s is classified regular but diverged %.0f times per block", b.Name, perBlock)
		}
	}
}

// Golden cycle counts: lock the timing model's output on a few
// kernel/architecture pairs so accidental changes to scheduling,
// latency or memory modeling are caught. Update deliberately when the
// model changes, never silently.
func TestGoldenCycleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden timing check")
	}
	golden := []struct {
		kernel string
		arch   sm.Arch
		cycles int64
	}{
		{"MatrixMul", sm.ArchBaseline, 8886},
		{"MatrixMul", sm.ArchSBI, 8386},
		{"MatrixMul", sm.ArchSWI, 7236},
		{"MatrixMul", sm.ArchSBISWI, 7218},
		{"MatrixMul", sm.ArchWarp64, 8894},
		{"Mandelbrot", sm.ArchBaseline, 11758},
		{"Mandelbrot", sm.ArchSBI, 11472},
		{"Mandelbrot", sm.ArchSWI, 9156},
		{"Mandelbrot", sm.ArchSBISWI, 9342},
		{"Mandelbrot", sm.ArchWarp64, 12222},
		{"TMD1", sm.ArchBaseline, 14525},
		{"TMD1", sm.ArchSBI, 25910},
		{"TMD2", sm.ArchBaseline, 14019},
		{"TMD2", sm.ArchSBI, 12827},
		{"LUD", sm.ArchSWI, 7143},
	}
	for _, g := range golden {
		b, ok := ByName(g.kernel)
		if !ok {
			t.Fatalf("missing %s", g.kernel)
		}
		l, err := b.NewLaunch(g.arch != sm.ArchBaseline)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sm.Run(sm.Configure(g.arch), l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Cycles != g.cycles {
			t.Errorf("%s on %s: %d cycles, golden %d", g.kernel, g.arch, res.Stats.Cycles, g.cycles)
		}
	}
}
