package kernels

import "repro/internal/isa"

// The Table Maker's Dilemma kernels (Fortin et al.) exercise
// unstructured control flow: a candidate-search loop whose body has two
// overlapping conditional regions sharing a tail block (reached both by
// skipping from the loop header and by falling out of the second
// region). Stack-based reconvergence must execute the shared tail once
// per incoming path, while thread-frontier reconvergence merges the
// paths at the tail's PC and executes it once (§5.1).
//
// TMD2 lays the blocks out in thread-frontier (ascending-PC) order.
// TMD1 implements the same function with the shared tail and loop tail
// hoisted above the loop header — the one improper layout the paper
// found in a real CUDA binary — which both defeats the min-PC
// scheduling heuristic and voids the selective-synchronization
// constraints (the SYNC insertion pass skips the violating region).

const tmdGrid, tmdBlock, tmdIters = 8, 256, 16

// tmd2Source is in frontier order: header, region A, region B, shared
// tail t2, loop tail t1, store.
const tmd2Source = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	mov  r8, 0
	mov  r9, 0
start:
	imul r10, r7, 40503
	imad r10, r8, 30029, r10
	and  r11, r10, 7
	isetp.eq r12, r11, 0
	bra  r12, t2
	shl  r13, r10, 3
	iadd r10, r10, r13
	and  r14, r10, 48
	isetp.eq r15, r14, 0
	bra  r15, t1
	xor  r10, r10, 23333
	iadd r10, r10, r7
t2:
	shr  r16, r10, 9
	xor  r10, r10, r16
	imad r10, r10, 5, r8
t1:
	iadd r9, r9, r10
	iadd r8, r8, 1
	isetp.lt r17, r8, 16
	and  r18, r10, 63
	isetp.ne r19, r18, 21
	and  r20, r17, r19
	bra  r20, start
	mov  r21, %p0
	iadd r21, r21, r6
	st.g [r21], r9
	exit
`

// tmd1Source computes the same function with t2 and t1 hoisted above
// the loop header: every branch into them is backward, violating the
// frontier-layout property.
const tmd1Source = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	mov  r8, 0
	mov  r9, 0
	bra  start
t2:
	shr  r16, r10, 9
	xor  r10, r10, r16
	imad r10, r10, 5, r8
t1:
	iadd r9, r9, r10
	iadd r8, r8, 1
	isetp.lt r17, r8, 16
	and  r18, r10, 63
	isetp.ne r19, r18, 21
	and  r20, r17, r19
	bra  r20, start
	mov  r21, %p0
	iadd r21, r21, r6
	st.g [r21], r9
	exit
start:
	imul r10, r7, 40503
	imad r10, r8, 30029, r10
	and  r11, r10, 7
	isetp.eq r12, r11, 0
	bra  r12, t2
	shl  r13, r10, 3
	iadd r10, r10, r13
	and  r14, r10, 48
	isetp.eq r15, r14, 0
	bra  r15, t1
	xor  r10, r10, 23333
	iadd r10, r10, r7
	bra  t2
`

func newTMD(name, src string, frontier bool) *Benchmark {
	n := tmdGrid * tmdBlock
	b := &Benchmark{
		Name: name, Regular: false, Grid: tmdGrid, Block: tmdBlock,
		Source: src, FrontierLayout: frontier,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * n)
		r := newRng(71)
		for i := 0; i < n; i++ {
			g.put(n+i, r.next())
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for t := 0; t < n; t++ {
			x := g.get(n + t)
			acc := uint32(0)
			for i := uint32(0); i < tmdIters; i++ {
				y := x*40503 + i*30029
				if y&7 == 0 {
					y = tmdTail(y, i)
				} else {
					y += y << 3
					if y&48 != 0 {
						y ^= 23333
						y += x
						y = tmdTail(y, i)
					}
				}
				acc += y
				if y&63 == 21 {
					break
				}
			}
			g.put(t, acc)
		}
	}
	return b
}

// tmdTail is the shared tail block t2 (f3 in the CFG discussion).
func tmdTail(y, i uint32) uint32 {
	y ^= y >> 9
	return y*5 + i
}

func newTMD1() *Benchmark { return newTMD("TMD1", tmd1Source, false) }
func newTMD2() *Benchmark { return newTMD("TMD2", tmd2Source, true) }
