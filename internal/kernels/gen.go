package kernels

import "math"

// rng is a deterministic xorshift32 used by input generators and by
// kernels whose reference implementations need the same stream.
type rng uint32

func newRng(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint32 {
	v := uint32(*r)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*r = rng(v)
	return v
}

// unitFloat returns a float32 in [0, 1).
func (r *rng) unitFloat() float32 {
	return float32(r.next()>>8) * (1.0 / (1 << 24))
}

// image is a convenience wrapper over a little-endian global-memory
// byte image, addressed in 4-byte words.
type image []byte

func newImage(words int) image { return make(image, words*4) }

func (g image) put(word int, v uint32) {
	g[word*4] = byte(v)
	g[word*4+1] = byte(v >> 8)
	g[word*4+2] = byte(v >> 16)
	g[word*4+3] = byte(v >> 24)
}

func (g image) get(word int) uint32 {
	return uint32(g[word*4]) | uint32(g[word*4+1])<<8 | uint32(g[word*4+2])<<16 | uint32(g[word*4+3])<<24
}

func (g image) putF(word int, v float32) { g.put(word, math.Float32bits(v)) }
func (g image) getF(word int) float32    { return math.Float32frombits(g.get(word)) }

func (g image) putI(word int, v int32) { g.put(word, uint32(v)) }
func (g image) getI(word int) int32    { return int32(g.get(word)) }

// The float helpers below mirror the exact rounding shapes of
// exec.EvalALU so the Go references and the simulators agree bit for
// bit. Explicit float32 conversions forbid operation fusing (Go spec).

func fadd(a, b float32) float32 { return float32(a) + float32(b) }
func fsub(a, b float32) float32 { return float32(a) - float32(b) }
func fmul(a, b float32) float32 { return float32(a) * float32(b) }

// fmad mirrors OpFMad: round the product to float32, then add.
func fmad(a, b, c float32) float32 { return float32(a*b) + c }

func fmin(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) }
func fmax(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) }
func frcp(a float32) float32    { return float32(1.0 / float64(a)) }
func frsq(a float32) float32    { return float32(1.0 / math.Sqrt(float64(a))) }
func fsqrt(a float32) float32   { return float32(math.Sqrt(float64(a))) }
func fex2(a float32) float32    { return float32(math.Exp2(float64(a))) }
func flg2(a float32) float32    { return float32(math.Log2(float64(a))) }

func imin(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func imax(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
