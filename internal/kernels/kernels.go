// Package kernels provides the benchmark suite of the paper's
// evaluation (§5): mini-ISA ports of ten regular and eleven irregular
// kernels from the CUDA SDK, Rodinia, and the Table Maker's Dilemma
// application, each with a deterministic input generator and a pure-Go
// reference implementation used as a functional oracle. One synthetic
// store-saturation microbenchmark (WriteStorm) rides along in the
// irregular set as a regression anchor for the shared-memory-system
// model.
//
// The ports reproduce each benchmark's control-flow and memory-access
// structure (the properties SBI/SWI react to) rather than its full
// numerics; DESIGN.md §6 records the correspondence.
package kernels

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name    string
	Regular bool // paper criterion: average IPC >= 30 at 64-wide warps
	Source  string

	Grid  int // thread blocks
	Block int // threads per block

	// Setup returns the initial global-memory image and the kernel
	// parameters (byte offsets of the buffers).
	Setup func(b *Benchmark) ([]byte, [isa.NumParams]uint32)

	// Reference mutates global to the expected post-kernel state; it is
	// the functional oracle for both simulators.
	Reference func(b *Benchmark, global []byte, params [isa.NumParams]uint32)

	// FrontierLayout is false for TMD1, whose blocks are deliberately
	// laid out against thread-frontier order (§5.1).
	FrontierLayout bool

	// mu guards the lazily built caches below: suite entries are shared
	// package state, and the device's batch runner assembles and
	// oracle-checks benchmarks from concurrent goroutines. Each cache
	// value is immutable once memoized, so a reference obtained under
	// the lock stays valid after releasing it.
	mu sync.Mutex
	// plain is RecPC-annotated, no SYNCs (baseline stack).
	plain *isa.Program //sbwi:guardedby mu
	// tf is SYNC-instrumented (thread-frontier designs).
	tf *isa.Program //sbwi:guardedby mu
	// pristine is the memoized Setup image (do not mutate).
	pristine []byte //sbwi:guardedby mu
	// params are the memoized Setup parameters.
	params [isa.NumParams]uint32 //sbwi:guardedby mu
	// expected is the memoized oracle image (do not mutate).
	expected []byte //sbwi:guardedby mu
}

// Program returns the assembled kernel: the SYNC-instrumented
// thread-frontier variant or the plain annotated one. Programs are
// assembled on first use and cached; Program is safe for concurrent
// use.
func (b *Benchmark) Program(threadFrontier bool) (*isa.Program, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.plain == nil {
		p, err := asm.Assemble(b.Name, b.Source)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", b.Name, err)
		}
		if err := cfg.AnnotateReconvergence(p); err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", b.Name, err)
		}
		tf, err := cfg.InsertSyncs(p)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", b.Name, err)
		}
		b.plain, b.tf = p, tf
	}
	if threadFrontier {
		return b.tf, nil
	}
	return b.plain, nil
}

// setup returns the benchmark's pristine pre-launch image (shared —
// callers must copy before mutating) and kernel parameters. The input
// generators are deterministic, so Setup runs once per benchmark and
// the image is memoized; repeated launches across experiment passes
// copy from the cache instead of regenerating the inputs. Safe for
// concurrent use: the memoization fills under b.mu, and the returned
// image is immutable once memoized.
func (b *Benchmark) setup() ([]byte, [isa.NumParams]uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pristine == nil {
		b.pristine, b.params = b.Setup(b)
		if b.pristine == nil {
			b.pristine = []byte{} // distinguish "memoized empty" from "not yet run"
		}
	}
	return b.pristine, b.params
}

// NewLaunch builds a fresh launch (new memory image) for the benchmark.
func (b *Benchmark) NewLaunch(threadFrontier bool) (*exec.Launch, error) {
	p, err := b.Program(threadFrontier)
	if err != nil {
		return nil, err
	}
	pristine, params := b.setup()
	global := append([]byte(nil), pristine...)
	return &exec.Launch{
		Prog:     p,
		GridDim:  b.Grid,
		BlockDim: b.Block,
		Params:   params,
		Global:   global,
	}, nil
}

// Expected returns the expected final global image for a fresh launch.
// The oracle runs once per benchmark (over a copy of the memoized
// pristine image) and the result is memoized — callers compare against
// it and must not mutate it. Safe for concurrent use.
func (b *Benchmark) Expected() []byte {
	// Fetch the pristine image through the self-locking setup first;
	// b.mu is not reentrant, and running the oracle outside the
	// memoization lock would let two racers both fill b.expected.
	pristine, params := b.setup()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.expected == nil {
		global := append([]byte(nil), pristine...)
		b.Reference(b, global, params)
		b.expected = global
	}
	return b.expected
}

// All returns the full suite in the paper's figure-7 order (regular
// then irregular).
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	out = append(out, Regular()...)
	out = append(out, Irregular()...)
	return out
}

// Regular returns the regular-application suite (figure 7a).
func Regular() []*Benchmark { return pick(true) }

// Irregular returns the irregular-application suite (figure 7b).
func Irregular() []*Benchmark { return pick(false) }

func pick(regular bool) []*Benchmark {
	var out []*Benchmark
	for _, b := range registry {
		if b.Regular == regular {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// registry lists the suite in the paper's figure-7 order.
var registry = buildRegistry()

func buildRegistry() []*Benchmark {
	bs := []*Benchmark{
		// Regular (figure 7a).
		newThreeDFD(),
		newBackprop(),
		newBinomialOptions(),
		newBlackScholes(),
		newDWTHaar1D(),
		newFastWalshTransform(),
		newHotspot(),
		newMatrixMul(),
		newMonteCarlo(),
		newTranspose(),
		// Irregular (figure 7b).
		newBFS(),
		newConvolutionSeparable(),
		newEigenvalues(),
		newHistogram(),
		newLUD(),
		newMandelbrot(),
		newNeedlemanWunsch(),
		newSortingNetworks(),
		newSRAD(),
		newTMD1(),
		newTMD2(),
		// Synthetic additions (not in the paper's figure 7).
		newWriteStorm(),
	}
	for _, b := range bs {
		if b.Setup == nil || b.Reference == nil || b.Source == "" || b.Grid <= 0 || b.Block <= 0 {
			panic(fmt.Sprintf("kernels: %s incompletely defined", b.Name))
		}
	}
	return bs
}
