package kernels

import "repro/internal/isa"

// The irregular suite (figure 7b): kernels with data-dependent branch
// divergence, unbalanced if-blocks, variable-trip loops, and scattered
// memory access — the workloads SBI and SWI are built for.

// newBFS ports the Rodinia breadth-first search frontier expansion: an
// unbalanced active-node gate, a data-dependent neighbor loop, and
// scattered distance updates. Frontier writes all store the same level
// value, so the result is order-independent.
func newBFS() *Benchmark {
	const grid, block, level = 8, 256, 1
	n := grid * block
	b := &Benchmark{
		Name: "BFS", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p0
	shl  r6, r4, 2
	iadd r7, r5, r6
	ld.g r8, [r7]
	mov  r9, %p3
	isetp.ne r10, r8, r9
	bra  r10, done
	mov  r11, %p1
	iadd r12, r11, r6
	ld.g r13, [r12]
	ld.g r14, [r12+4]
	mov  r15, %p2
	iadd r16, r9, 1
edge:
	isetp.ge r17, r13, r14
	bra  r17, done
	shl  r18, r13, 2
	iadd r18, r15, r18
	ld.g r19, [r18]
	shl  r20, r19, 2
	iadd r20, r5, r20
	ld.g r21, [r20]
	isetp.ge r22, r21, 0
	bra  r22, skip
	st.g [r20], r16
skip:
	iadd r13, r13, 1
	bra  edge
done:
	exit
`,
	}
	deg := func(v int) int {
		if v%16 == 0 {
			return 24
		}
		return v % 4
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		edges := 0
		for v := 0; v < n; v++ {
			edges += deg(v)
		}
		g := newImage(n + n + 1 + edges)
		r := newRng(41)
		// dist: frontier nodes at the current level, the rest unvisited.
		for v := 0; v < n; v++ {
			if v%17 == 0 {
				g.putI(v, level)
			} else {
				g.putI(v, -1)
			}
		}
		// CSR row pointers and column indices.
		e := 0
		for v := 0; v < n; v++ {
			g.put(n+v, uint32(e))
			for k := 0; k < deg(v); k++ {
				g.put(n+n+1+e, r.next()%uint32(n))
				e++
			}
		}
		g.put(n+n, uint32(e))
		return g, params(0, uint32(n*4), uint32((n+n+1)*4), level)
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for v := 0; v < n; v++ {
			if g.getI(v) != level {
				continue
			}
			start, end := int(g.get(n+v)), int(g.get(n+v+1))
			for e := start; e < end; e++ {
				c := int(g.get(n + n + 1 + e))
				if g.getI(c) < 0 {
					g.putI(c, level+1)
				}
			}
		}
	}
	return b
}

// newConvolutionSeparable ports the SDK separable filter's row pass:
// shared-memory staging where only the first and last warp of each
// block load the apron (unbalanced if-blocks), then a uniform
// 17-tap accumulation.
func newConvolutionSeparable() *Benchmark {
	const grid, block, radius, taps = 10, 256, 8, 17
	n := grid * block
	b := &Benchmark{
		Name: "ConvolutionSeparable", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 1088
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	isub r6, r5, 1
	mov  r7, %p1
	shl  r8, r4, 2
	iadd r8, r7, r8
	ld.g r9, [r8]
	iadd r10, r1, 8
	shl  r10, r10, 2
	st.s [r10], r9
	isetp.ge r11, r1, 8
	bra  r11, noleft
	isub r12, r4, 8
	imax r12, r12, 0
	shl  r13, r12, 2
	iadd r13, r7, r13
	ld.g r14, [r13]
	shl  r15, r1, 2
	st.s [r15], r14
noleft:
	isetp.lt r16, r1, 248
	bra  r16, noright
	iadd r17, r4, 8
	imin r17, r17, r6
	shl  r18, r17, 2
	iadd r18, r7, r18
	ld.g r19, [r18]
	iadd r20, r1, 16
	shl  r20, r20, 2
	st.s [r20], r19
noright:
	bar
	mov  r21, 0
	mov  r22, 0.0
	mov  r23, %p2
conv:
	iadd r24, r1, r21
	shl  r24, r24, 2
	ld.s r25, [r24]
	shl  r26, r21, 2
	iadd r26, r23, r26
	ld.g r27, [r26]
	fmad r22, r25, r27, r22
	iadd r21, r21, 1
	isetp.lt r28, r21, 17
	bra  r28, conv
	mov  r29, %p0
	shl  r30, r4, 2
	iadd r29, r29, r30
	st.g [r29], r22
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2*n + taps)
		r := newRng(43)
		for i := 0; i < n; i++ {
			g.putF(n+i, r.unitFloat())
		}
		for k := 0; k < taps; k++ {
			g.putF(2*n+k, fsub(r.unitFloat(), 0.5))
		}
		return g, params(0, uint32(n*4), uint32(2*n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		clamp := func(i int) int { return imaxi(0, imini(i, n-1)) }
		for i := 0; i < n; i++ {
			acc := float32(0)
			for k := 0; k < taps; k++ {
				acc = fmad(g.getF(n+clamp(i+k-radius)), g.getF(2*n+k), acc)
			}
			g.putF(i, acc)
		}
	}
	return b
}

// newEigenvalues ports the SDK bisection kernel: per-thread interval
// refinement whose trip count depends on a per-thread tolerance, with a
// uniform Sturm-count inner loop kept in registers.
func newEigenvalues() *Benchmark {
	const grid, block, diags, maxIter = 4, 256, 8, 32
	n := grid * block
	b := &Benchmark{
		Name: "Eigenvalues", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	shl  r6, r4, 2
	iadd r5, r5, r6
	ld.g r7, [r5]
	mov  r8, 0.0
	mov  r9, %p2
	ld.g r16, [r9]
	ld.g r17, [r9+4]
	ld.g r18, [r9+8]
	ld.g r19, [r9+12]
	ld.g r20, [r9+16]
	ld.g r21, [r9+20]
	ld.g r22, [r9+24]
	ld.g r23, [r9+28]
	and  r10, r1, 7
	imod r11, r1, 9
	iadd r11, r11, 6
	i2f  r12, r11
	fneg r12, r12
	ex2  r12, r12
	mov  r13, 0
bisect:
	fadd r14, r8, r7
	fmul r14, r14, 0.5
	mov  r15, 0
	fsetp.lt r24, r16, r14
	iadd r15, r15, r24
	fsetp.lt r24, r17, r14
	iadd r15, r15, r24
	fsetp.lt r24, r18, r14
	iadd r15, r15, r24
	fsetp.lt r24, r19, r14
	iadd r15, r15, r24
	fsetp.lt r24, r20, r14
	iadd r15, r15, r24
	fsetp.lt r24, r21, r14
	iadd r15, r15, r24
	fsetp.lt r24, r22, r14
	iadd r15, r15, r24
	fsetp.lt r24, r23, r14
	iadd r15, r15, r24
	isetp.le r25, r15, r10
	bra  r25, lowside
	fsub r26, r14, r8
	fmul r26, r26, 0.5
	fadd r30, r14, r26
	fmin r7, r14, r30
	bra  refined
lowside:
	fsub r26, r7, r14
	fmul r26, r26, 0.5
	fsub r30, r14, r26
	fmax r8, r14, r30
refined:
	fsub r26, r7, r8
	fsetp.lt r27, r26, r12
	bra  r27, converged
	iadd r13, r13, 1
	isetp.lt r28, r13, 32
	bra  r28, bisect
converged:
	mov  r29, %p0
	iadd r29, r29, r6
	st.g [r29], r8
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2*n + diags)
		r := newRng(47)
		for i := 0; i < n; i++ {
			g.putF(n+i, fadd(r.unitFloat(), 1.0))
		}
		for j := 0; j < diags; j++ {
			g.putF(2*n+j, fmul(r.unitFloat(), 2.0))
		}
		return g, params(0, uint32(n*4), uint32(2*n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		var diag [diags]float32
		for j := 0; j < diags; j++ {
			diag[j] = g.getF(2*n + j)
		}
		for i := 0; i < n; i++ {
			tidIdx := i % block
			lo, hi := float32(0), g.getF(n+i)
			target := int32(tidIdx & 7)
			eps := fex2(-float32(int32(tidIdx%9 + 6)))
			for it := 0; it < maxIter; it++ {
				mid := fmul(fadd(lo, hi), 0.5)
				count := int32(0)
				for j := 0; j < diags; j++ {
					if diag[j] < mid {
						count++
					}
				}
				if count <= target {
					lo = mid
				} else {
					hi = mid
				}
				if fsub(hi, lo) < eps {
					break
				}
			}
			g.putF(i, lo)
		}
	}
	return b
}

// newHistogram stands in for the SDK histogram: per-thread runs of
// items with a data-dependent conflict-resolution spin (the replay loop
// of colliding bin updates), strided thread-private reads.
func newHistogram() *Benchmark {
	const grid, block, items = 6, 256, 16
	n := grid * block
	b := &Benchmark{
		Name: "Histogram", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	mov  r6, 0
	mov  r7, 0
items:
	shl  r8, r4, 4
	iadd r8, r8, r6
	shl  r8, r8, 2
	iadd r9, r5, r8
	ld.g r10, [r9]
	and  r11, r10, 7
	mov  r12, 0
spin:
	isetp.ge r13, r12, r11
	bra  r13, spun
	imad r7, r7, 5, r10
	iadd r12, r12, 1
	bra  spin
spun:
	and  r15, r10, 1
	isetp.eq r16, r15, 0
	bra  r16, evenv
	imad r7, r7, 3, r10
	shr  r17, r7, 7
	xor  r7, r7, r17
	bra  donev
evenv:
	imad r7, r7, 7, r10
	shl  r17, r7, 3
	xor  r7, r7, r17
donev:
	iadd r6, r6, 1
	isetp.lt r14, r6, 16
	bra  r14, items
	mov  r15, %p0
	shl  r16, r4, 2
	iadd r15, r15, r16
	st.g [r15], r7
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(n + n*items)
		r := newRng(53)
		for i := 0; i < n*items; i++ {
			g.put(n+i, r.next())
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for t := 0; t < n; t++ {
			acc := uint32(0)
			for it := 0; it < items; it++ {
				v := g.get(n + t*items + it)
				for j := uint32(0); j < v&7; j++ {
					acc = acc*5 + v
				}
				if v&1 != 0 {
					acc = acc*3 + v
					acc ^= acc >> 7
				} else {
					acc = acc*7 + v
					acc ^= acc << 3
				}
			}
			g.put(t, acc)
		}
	}
	return b
}

// newLUD ports the Rodinia LU decomposition's shrinking triangular
// active set: 32 barrier-separated steps in which progressively fewer
// lanes of every warp participate.
func newLUD() *Benchmark {
	const grid, block, steps = 8, 256, 32
	n := grid * block
	b := &Benchmark{
		Name: "LUD", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	mov  r6, 0.0
	mov  r7, 0
	and  r8, r1, 31
step:
	bar
	isetp.lt r9, r8, r7
	bra  r9, inactive
	shl  r10, r7, 2
	iadd r10, r5, r10
	ld.g r11, [r10]
	fmad r6, r6, 0.99, r11
inactive:
	iadd r7, r7, 1
	isetp.lt r12, r7, 32
	bra  r12, step
	mov  r13, %p0
	shl  r14, r4, 2
	iadd r13, r13, r14
	st.g [r13], r6
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(n + steps)
		r := newRng(59)
		for k := 0; k < steps; k++ {
			g.putF(n+k, fsub(r.unitFloat(), 0.5))
		}
		return g, params(0, uint32(n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for t := 0; t < n; t++ {
			lane := int32(t % block % 32)
			acc := float32(0)
			for k := int32(0); k < steps; k++ {
				if lane >= k {
					acc = fmad(acc, 0.99, g.getF(n+int(k)))
				}
			}
			g.putF(t, acc)
		}
	}
	return b
}

// newMandelbrot ports the SDK escape-time kernel: per-pixel iteration
// counts vary wildly, and a block barrier between tiles keeps
// warp-splits from running ahead across iterations (§5.1).
func newMandelbrot() *Benchmark {
	const grid, block, tiles, maxIter = 4, 256, 2, 32
	n := grid * block
	b := &Benchmark{
		Name: "Mandelbrot", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	mov  r6, 0
	mov  r7, 0
tile:
	imad r8, r6, r5, r4
	and  r9, r8, 1023
	i2f  r10, r9
	fmul r10, r10, 0.0029296875
	fadd r10, r10, -2.0
	imul r11, r8, 421
	and  r11, r11, 1023
	i2f  r12, r11
	fmul r12, r12, 0.00234375
	fadd r12, r12, -1.2
	mov  r13, 0.0
	mov  r14, 0.0
	mov  r15, 0
mloop:
	fmul r16, r13, r13
	fmul r17, r14, r14
	fadd r18, r16, r17
	fsetp.gt r19, r18, 4.0
	bra  r19, esc
	isetp.ge r20, r15, 32
	bra  r20, esc
	fsub r21, r16, r17
	fadd r21, r21, r10
	fmul r22, r13, r14
	fmul r22, r22, 2.0
	fadd r14, r22, r12
	mov  r13, r21
	iadd r15, r15, 1
	bra  mloop
esc:
	iadd r7, r7, r15
	bar
	iadd r6, r6, 1
	isetp.lt r23, r6, 2
	bra  r23, tile
	mov  r24, %p0
	shl  r25, r4, 2
	iadd r24, r24, r25
	st.g [r24], r7
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(n)
		return g, params(0)
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for t := 0; t < n; t++ {
			total := int32(0)
			for tile := 0; tile < tiles; tile++ {
				pixel := int32(tile*n + t)
				cr := fadd(fmul(float32(pixel&1023), 0.0029296875), -2.0)
				ci := fadd(fmul(float32((pixel*421)&1023), 0.00234375), -1.2)
				zr, zi := float32(0), float32(0)
				iter := int32(0)
				for {
					zr2, zi2 := fmul(zr, zr), fmul(zi, zi)
					if fadd(zr2, zi2) > 4.0 || iter >= maxIter {
						break
					}
					nzr := fadd(fsub(zr2, zi2), cr)
					zi = fadd(fmul(fmul(zr, zi), 2.0), ci)
					zr = nzr
					iter++
				}
				total += iter
			}
			g.putI(t, total)
		}
	}
	return b
}

// newSortingNetworks ports the SDK bitonic sort: barrier-separated
// compare-exchange steps whose swap branch depends on the data order.
func newSortingNetworks() *Benchmark {
	const grid, block, elems = 8, 128, 256
	b := &Benchmark{
		Name: "SortingNetworks", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 1024
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %p1
	imul r4, r2, 1024
	iadd r3, r3, r4
	shl  r5, r1, 2
	iadd r6, r3, r5
	ld.g r7, [r6]
	st.s [r5], r7
	iadd r8, r5, 512
	iadd r9, r6, 512
	ld.g r10, [r9]
	st.s [r8], r10
	bar
	mov  r11, 2
kloop:
	shr  r12, r11, 1
jloop:
	isub r13, r12, 1
	and  r14, r1, r13
	shl  r15, r1, 1
	isub r15, r15, r14
	or   r16, r15, r12
	and  r17, r15, r11
	isetp.eq r18, r17, 0
	shl  r19, r15, 2
	ld.s r20, [r19]
	shl  r21, r16, 2
	ld.s r22, [r21]
	isetp.gt r23, r20, r22
	isetp.ne r24, r23, r18
	bra  r24, noswap
	st.s [r19], r22
	st.s [r21], r20
noswap:
	bar
	shr  r12, r12, 1
	isetp.gt r25, r12, 0
	bra  r25, jloop
	shl  r11, r11, 1
	isetp.le r26, r11, 256
	bra  r26, kloop
	ld.s r27, [r5]
	st.g [r6], r27
	ld.s r28, [r8]
	st.g [r9], r28
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(grid * elems)
		r := newRng(61)
		for i := 0; i < grid*elems; i++ {
			g.putI(i, int32(r.next()%100000))
		}
		return g, params(0, 0)
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		sh := make([]int32, elems)
		for blk := 0; blk < grid; blk++ {
			base := blk * elems
			for i := 0; i < elems; i++ {
				sh[i] = g.getI(base + i)
			}
			for k := 2; k <= elems; k <<= 1 {
				for j := k >> 1; j > 0; j >>= 1 {
					for t := 0; t < block; t++ {
						pos := 2*t - (t & (j - 1))
						partner := pos | j
						up := pos&k == 0
						if (sh[pos] > sh[partner]) == up {
							sh[pos], sh[partner] = sh[partner], sh[pos]
						}
					}
				}
			}
			for i := 0; i < elems; i++ {
				g.putI(base+i, sh[i])
			}
		}
	}
	return b
}

// newSRAD ports the Rodinia speckle-reducing diffusion step: clamped
// derivative loads and a data-dependent branch choosing the diffusion
// coefficient formula.
func newSRAD() *Benchmark {
	const grid, block, sweeps = 16, 256, 3
	n := grid * block
	b := &Benchmark{
		Name: "SRAD", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %ncta
	imul r5, r5, r3
	imul r6, r5, 3
	isub r6, r6, 1
	mov  r28, 0
sweep:
	imad r7, r28, r5, r4
	isub r8, r7, 1
	imax r8, r8, 0
	iadd r9, r7, 1
	imin r9, r9, r6
	mov  r10, %p1
	shl  r11, r7, 2
	iadd r11, r10, r11
	ld.g r14, [r11]
	shl  r12, r8, 2
	iadd r12, r10, r12
	ld.g r15, [r12]
	shl  r13, r9, 2
	iadd r13, r10, r13
	ld.g r16, [r13]
	fsub r17, r15, r14
	fsub r18, r16, r14
	fmul r19, r17, r17
	fmad r19, r18, r18, r19
	fmul r20, r14, r14
	fadd r20, r20, 0.01
	rcp  r21, r20
	fmul r22, r19, r21
	fsetp.lt r23, r22, 0.15
	bra  r23, low
	fadd r24, r22, 1.0
	rcp  r24, r24
	fmul r24, r24, 0.5
	bra  join
low:
	fmul r25, r22, 0.5
	mov  r26, 1.0
	fsub r24, r26, r25
join:
	fadd r27, r17, r18
	fmul r27, r27, 0.25
	fmul r27, r27, r24
	fadd r27, r14, r27
	mov  r29, %p0
	shl  r30, r7, 2
	iadd r29, r29, r30
	st.g [r29], r27
	iadd r28, r28, 1
	isetp.lt r31, r28, 3
	bra  r31, sweep
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		g := newImage(2 * sweeps * n)
		r := newRng(67)
		for i := 0; i < sweeps*n; i++ {
			g.putF(sweeps*n+i, fadd(fmul(r.unitFloat(), 2.0), 0.05))
		}
		return g, params(0, uint32(sweeps*n*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		total := sweeps * n
		in := func(i int) float32 { return g.getF(total + imaxi(0, imini(i, total-1))) }
		for i := 0; i < total; i++ {
			x := in(i)
			dl := fsub(in(i-1), x)
			dr := fsub(in(i+1), x)
			num := fmad(dr, dr, fmul(dl, dl))
			q := fmul(num, frcp(fadd(fmul(x, x), 0.01)))
			var coef float32
			if q < 0.15 {
				coef = fsub(1.0, fmul(q, 0.5))
			} else {
				coef = fmul(frcp(fadd(q, 1.0)), 0.5)
			}
			g.putF(i, fadd(x, fmul(fmul(fadd(dl, dr), 0.25), coef)))
		}
	}
	return b
}

// newNeedlemanWunsch ports the Rodinia sequence-alignment wavefront:
// one 32-thread block per alignment, one anti-diagonal per
// barrier-separated step, thread activity growing and shrinking with
// the diagonal. The 32-thread blocks only half-fill 64-wide warps,
// which is why this kernel benefits most from lane shuffling (§5.1:
// +7.7% under XorRev).
func newNeedlemanWunsch() *Benchmark {
	const grid, block, seqLen = 6, 64, 64
	b := &Benchmark{
		Name: "Needleman-Wunsch", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		Source: `
.shared 768
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p1
	imul r6, r2, 256
	iadd r5, r5, r6
	mov  r7, %p2
	iadd r6, r7, r6
	shl  r7, r1, 2
	iadd r5, r5, r7
	ld.g r7, [r5]
	mov  r5, %p2
	mov  r8, 0
	mov  r9, 0
	mov  r28, 0
dloop:
	bar
	isetp.ge r11, r9, r1
	isub r10, r9, r1
	isetp.lt r12, r10, 64
	and  r11, r11, r12
	isetp.eq r11, r11, 0
	bra  r11, inactive
	imod r12, r9, 3
	imul r12, r12, 256
	iadd r13, r9, 2
	imod r13, r13, 3
	imul r13, r13, 256
	iadd r14, r9, 1
	imod r14, r14, 3
	imul r14, r14, 256
	shl  r15, r10, 2
	iadd r15, r6, r15
	ld.g r15, [r15]
	isetp.eq r17, r7, r15
	bra  r17, matched
	mov  r16, -1
	bra  scored
matched:
	mov  r16, 3
scored:
	isub r17, r1, 1
	imax r17, r17, 0
	shl  r17, r17, 2
	iadd r18, r14, r17
	ld.s r18, [r18]
	imul r19, r10, -2
	imul r22, r1, -2
	isetp.eq r23, r10, 0
	isetp.eq r24, r1, 0
	selp r25, r22, r18, r23
	selp r26, r28, r19, r23
	selp r27, r26, r25, r24
	iadd r29, r13, r17
	ld.s r29, [r29]
	iadd r30, r10, 1
	imul r30, r30, -2
	selp r31, r30, r29, r24
	shl  r17, r1, 2
	iadd r29, r13, r17
	ld.s r29, [r29]
	iadd r30, r1, 1
	imul r30, r30, -2
	selp r29, r30, r29, r23
	iadd r27, r27, r16
	iadd r31, r31, -2
	iadd r29, r29, -2
	imax r27, r27, r31
	imax r27, r27, r29
	iadd r17, r12, r17
	st.s [r17], r27
	iadd r8, r8, r27
inactive:
	iadd r9, r9, 1
	isetp.lt r11, r9, 127
	bra  r11, dloop
	mov  r10, %p0
	shl  r11, r4, 2
	iadd r10, r10, r11
	st.g [r10], r8
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		n := grid * block
		g := newImage(n + 2*grid*seqLen)
		r := newRng(73)
		for i := 0; i < 2*grid*seqLen; i++ {
			g.putI(n+i, int32(r.next()%4))
		}
		return g, params(0, uint32(n*4), uint32((n+grid*seqLen)*4))
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		n := grid * block
		for blk := 0; blk < grid; blk++ {
			var a, bb [seqLen]int32
			for i := 0; i < seqLen; i++ {
				a[i] = g.getI(n + blk*seqLen + i)
				bb[i] = g.getI(n + grid*seqLen + blk*seqLen + i)
			}
			var v [seqLen][seqLen]int32
			cell := func(i, j int) int32 {
				if i < 0 && j < 0 {
					return 0
				}
				if i < 0 {
					return int32(-2 * (j + 1))
				}
				if j < 0 {
					return int32(-2 * (i + 1))
				}
				return v[i][j]
			}
			for d := 0; d < 2*seqLen-1; d++ {
				for i := imaxi(0, d-seqLen+1); i <= imini(d, seqLen-1); i++ {
					j := d - i
					s := int32(-1)
					if a[i] == bb[j] {
						s = 3
					}
					val := cell(i-1, j-1) + s
					val = imax(val, cell(i-1, j)-2)
					val = imax(val, cell(i, j-1)-2)
					v[i][j] = val
				}
			}
			for i := 0; i < seqLen; i++ {
				acc := int32(0)
				for j := 0; j < seqLen; j++ {
					acc += v[i][j]
				}
				g.putI(blk*block+i, acc)
			}
		}
	}
	return b
}

// WriteStorm is a synthetic store-saturation microbenchmark (not from
// the paper's suite): every thread streams eight write-through stores
// into a private strided slice of a large output buffer, with almost no
// compute or loads between them. The aggregate write stream — grid ×
// block × 8 words, far beyond what the DRAM port drains at 10 B/cycle —
// keeps the L1 store write buffers full, so the run's wall-clock is set
// by store back-pressure alone. It exists as a regression anchor for
// the shared-memory-system model: a contention model that accounts only
// load traffic (as the retired two-pass replay did) sees this kernel as
// nearly free.
func newWriteStorm() *Benchmark {
	const grid, block, items = 6, 256, 8
	n := grid * block
	b := &Benchmark{
		Name: "WriteStorm", Regular: false, Grid: grid, Block: block, FrontierLayout: true,
		// idx = i*n + gid: consecutive lanes write consecutive words, so
		// stores coalesce densely and the traffic is bandwidth demand,
		// not transaction-count overhead. The lane-parity branch keeps
		// the kernel (minimally) divergent, per its irregular-suite
		// classification.
		Source: `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	mov  r5, %p0
	imul r7, r4, 7
	mov  r6, 0
loop:
	imad r8, r6, 1536, r4
	shl  r8, r8, 2
	iadd r9, r5, r8
	iadd r10, r7, r6
	and  r12, r4, 1
	isetp.eq r13, r12, 0
	bra  r13, even
	iadd r10, r10, 3
even:
	st.g [r9], r10
	iadd r6, r6, 1
	isetp.lt r11, r6, 8
	bra  r11, loop
	exit
`,
	}
	b.Setup = func(*Benchmark) ([]byte, [isa.NumParams]uint32) {
		return newImage(n * items), params(0)
	}
	b.Reference = func(_ *Benchmark, global []byte, _ [isa.NumParams]uint32) {
		g := image(global)
		for t := 0; t < n; t++ {
			for i := 0; i < items; i++ {
				g.put(i*n+t, uint32(t*7+i+3*(t&1)))
			}
		}
	}
	return b
}
