package fingerprint

import (
	"reflect"
	"testing"
)

type inner struct {
	F float64
	S string
}

type sample struct {
	A int
	B bool
	C uint8
	D inner
	E [2]int
	L []string
}

func base() sample {
	return sample{A: 1, B: true, C: 2, D: inner{F: 3.5, S: "x"}, E: [2]int{4, 5}, L: []string{"a", "b"}}
}

func TestEveryLeafMovesTheHash(t *testing.T) {
	ref := Hash(base())
	muts := []func(*sample){
		func(s *sample) { s.A++ },
		func(s *sample) { s.B = !s.B },
		func(s *sample) { s.C++ },
		func(s *sample) { s.D.F += 0.25 },
		func(s *sample) { s.D.S = "y" },
		func(s *sample) { s.E[0]++ },
		func(s *sample) { s.E[1]++ },
		func(s *sample) { s.L[1] = "c" },
		func(s *sample) { s.L = append(s.L, "d") },
	}
	for i, m := range muts {
		s := base()
		s.L = append([]string(nil), s.L...)
		m(&s)
		if Hash(s) == ref {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestStableAndOrderSensitive(t *testing.T) {
	if Hash(base()) != Hash(base()) {
		t.Error("hash is not deterministic")
	}
	// Adjacent same-typed fields must not alias under swapped values.
	type pair struct{ X, Y int }
	if Hash(pair{1, 2}) == Hash(pair{2, 1}) {
		t.Error("swapped field values alias")
	}
	if Hash(1, 2) == Hash(2, 1) {
		t.Error("swapped arguments alias")
	}
}

func TestZeroValuesDistinct(t *testing.T) {
	// A zero struct still digests its shape: zero values of different
	// types must not collide with the empty hash chain.
	if Hash(sample{}) == Hash() {
		t.Error("zero sample aliases the empty hash")
	}
	if Hash(inner{}) == Hash(sample{}) {
		t.Error("different zero structs alias")
	}
}

func TestUnsupportedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pointer field must panic, not silently alias")
		}
	}()
	type bad struct{ P *int }
	Hash(bad{})
}

func TestReflectionCoversSampleFields(t *testing.T) {
	// Meta-check: the mutation list above covers every leaf of sample,
	// so a new field added to sample without a mutation shows up here.
	if got, want := reflect.TypeOf(sample{}).NumField(), 6; got != want {
		t.Errorf("sample has %d fields, test mutations cover %d — extend TestEveryLeafMovesTheHash", got, want)
	}
}
