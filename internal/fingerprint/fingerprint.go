// Package fingerprint derives stable content digests of plain
// configuration structs. The device layer keys its simulation cache on
// these digests, so the one property that matters is soundness: two
// configurations with any differing field must hash differently (up to
// 64-bit collisions), including fields added after the cache was
// written. Hash therefore walks every exported field reflectively —
// a new Config field changes the digest automatically instead of
// silently aliasing cache entries — and panics on field kinds it cannot
// canonicalize (pointers, maps, funcs, channels), forcing an explicit
// decision when a config struct grows a non-value field.
//
// Digests are stable within a process and across processes of the same
// build, which is all the in-memory caches need. They are not a
// serialization format: renaming or reordering fields changes the
// digest, which errs toward cache misses, never toward aliasing.
package fingerprint

import (
	"fmt"
	"math"
	"reflect"
)

// FNV-1a parameters (64-bit).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash digests the concatenation of its arguments. Arguments must be
// values (or structs of values): bools, integers, floats, strings,
// arrays, slices and nested structs of those.
func Hash(vs ...any) uint64 {
	h := uint64(offset64)
	for _, v := range vs {
		h = hashValue(h, reflect.ValueOf(v), "")
	}
	return h
}

// HashFields digests the subset of v's top-level fields selected by
// keep (called with each exported field's name). v must be a struct;
// nested structs inside a kept field are digested in full. The same
// soundness rules as Hash apply within the kept subset: unexported or
// non-value fields panic. Callers splitting one struct into
// complementary digests (the SM configuration's functional vs timing
// split) get automatic coverage of future fields — a new field lands
// in whichever digest its keep predicate assigns, never in neither.
func HashFields(v any, keep func(field string) bool) uint64 {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Struct {
		panic(fmt.Sprintf("fingerprint: HashFields needs a struct, got %s", rv.Kind()))
	}
	h := uint64(offset64)
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			panic(fmt.Sprintf("fingerprint: unexported field %s.%s cannot be digested", t.Name(), f.Name))
		}
		if !keep(f.Name) {
			continue
		}
		h = hashString(h, f.Name)
		h = hashValue(h, rv.Field(i), f.Name+".")
	}
	return h
}

func hashValue(h uint64, v reflect.Value, path string) uint64 {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return hashUint64(h, 1)
		}
		return hashUint64(h, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return hashUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return hashUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		return hashUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		return hashString(h, v.String())
	case reflect.Array, reflect.Slice:
		h = hashUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			h = hashValue(h, v.Index(i), fmt.Sprintf("%s[%d]", path, i))
		}
		return h
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				panic(fmt.Sprintf("fingerprint: unexported field %s.%s%s cannot be digested", t.Name(), path, f.Name))
			}
			// The field name separates fields so adjacent same-typed
			// fields cannot alias under swapped values.
			h = hashString(h, f.Name)
			h = hashValue(h, v.Field(i), path+f.Name+".")
		}
		return h
	default:
		panic(fmt.Sprintf("fingerprint: unsupported kind %s at %s (type %s): make the field a value type or hash it explicitly", v.Kind(), path, v.Type()))
	}
}

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime64
		x >>= 8
	}
	return h
}

func hashString(h uint64, s string) uint64 {
	h = hashUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
