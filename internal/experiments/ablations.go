package experiments

import (
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/sm"
)

// Ablation studies for the design choices DESIGN.md calls out. These
// go beyond the paper's published figures: they quantify the cost of
// each approximation the paper's hardware makes.

// AblationScoreboard compares the three dependency-tracking rules on
// the SBI architecture over the irregular suite: the paper's
// dependency-matrix design (§3.4), the exact per-entry execution-mask
// oracle the paper rejects for storage cost, and the conservative
// per-warp rule of the baseline. IPC of each, normalized to the matrix
// design.
func (r *Runner) AblationScoreboard() (*Table, error) {
	modes := []struct {
		name string
		mode sched.DepMode
	}{
		{"matrix (paper)", sched.DepMatrix},
		{"exact mask", sched.DepMask},
		{"per-warp", sched.DepWarp},
	}
	cfgs := []sm.Config{sm.Configure(sm.ArchSBI)}
	for _, m := range modes {
		cfg := sm.Configure(sm.ArchSBI)
		cfg.DepMode = m.mode
		cfgs = append(cfgs, cfg)
	}
	if err := r.prefetchMatrix(kernels.Irregular(), cfgs); err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ablation: SBI scoreboard dependency rule (IPC relative to the dependency-matrix design)",
		Note:  "exact mask >= matrix >= per-warp expected: each is strictly less conservative",
	}
	for _, m := range modes {
		t.Cols = append(t.Cols, m.name)
	}
	ratios := make([][]float64, len(modes))
	for _, b := range kernels.Irregular() {
		base := sm.Configure(sm.ArchSBI)
		sBase, err := r.Stats(b, base)
		if err != nil {
			return nil, err
		}
		row := Row{Name: b.Name}
		for i, m := range modes {
			cfg := sm.Configure(sm.ArchSBI)
			cfg.DepMode = m.mode
			s, err := r.Stats(b, cfg)
			if err != nil {
				return nil, err
			}
			v := s.IPC() / sBase.IPC()
			row.Cells = append(row.Cells, num(v))
			if !excludeFromMeans(b.Name) {
				ratios[i] = append(ratios[i], v)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := Row{Name: "Gmean"}
	for i := range modes {
		mean.Cells = append(mean.Cells, num(gmean(ratios[i])))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}

// AblationMemSplit evaluates the DWS-style memory-divergence warp
// splitting extension (related work the paper discusses): SBI+SWI with
// the knob on versus off over the irregular suite.
func (r *Runner) AblationMemSplit() (*Table, error) {
	{
		off := sm.Configure(sm.ArchSBISWI)
		on := off
		on.SplitOnMemDivergence = true
		if err := r.prefetchMatrix(kernels.Irregular(), []sm.Config{off, on}); err != nil {
			return nil, err
		}
	}
	t := &Table{
		Title: "Ablation: memory-divergence warp splitting (SBI+SWI, speedup of split over no-split)",
		Cols:  []string{"speedup", "splits/1k-issues"},
		Note:  "hit threads run ahead while miss threads replay the load (DWS-style)",
	}
	var ratios []float64
	for _, b := range kernels.Irregular() {
		off := sm.Configure(sm.ArchSBISWI)
		on := off
		on.SplitOnMemDivergence = true
		sOff, err := r.Stats(b, off)
		if err != nil {
			return nil, err
		}
		sOn, err := r.Stats(b, on)
		if err != nil {
			return nil, err
		}
		v := sOn.IPC() / sOff.IPC()
		rate := 1000 * float64(sOn.MemSplits) / float64(sOn.IssueSlots)
		t.Rows = append(t.Rows, Row{Name: b.Name, Cells: []Cell{num(v), num(rate)}})
		if !excludeFromMeans(b.Name) {
			ratios = append(ratios, v)
		}
	}
	t.Rows = append(t.Rows, Row{Name: "Gmean", Cells: []Cell{num(gmean(ratios)), empty()}})
	return t, nil
}

// HeapPressure reports the thread-frontier heap statistics per
// irregular kernel under SBI: peak live warp-splits, merges per 1000
// issues, and the insertions a bounded-throughput sideband sorter
// would have had to defer (DESIGN.md records the perfect-sort
// substitution this quantifies).
func (r *Runner) HeapPressure() (*Table, error) {
	if err := r.prefetchMatrix(kernels.Irregular(), []sm.Config{sm.Configure(sm.ArchSBI)}); err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Heap pressure under SBI (per irregular kernel)",
		Cols:  []string{"max splits", "merges/1k-issues", "deferred inserts", "CCT overflows"},
		Note:  "prior work: heap size rarely exceeds 3 (paper 3.4)",
	}
	for _, b := range kernels.Irregular() {
		s, err := r.Stats(b, sm.Configure(sm.ArchSBI))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Name: b.Name, Cells: []Cell{
			num(float64(s.MaxSplits)),
			num(1000 * float64(s.Merges) / float64(s.IssueSlots)),
			num(float64(s.DegradedInserts)),
			num(float64(s.CCTOverflows)),
		}})
	}
	return t, nil
}
