package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
	"repro/internal/sm"
)

// Table2 reproduces the micro-architecture parameter listing.
func Table2() *Table {
	archs := sm.Architectures()
	t := &Table{Title: "Table 2: micro-architecture parameters"}
	for _, a := range archs {
		t.Cols = append(t.Cols, a.String())
	}
	get := func(name string, f func(c sm.Config) string) {
		row := Row{Name: name}
		for _, a := range archs {
			row.Cells = append(row.Cells, str(f(sm.Configure(a))))
		}
		t.Rows = append(t.Rows, row)
	}
	get("Warps x width", func(c sm.Config) string { return fmt.Sprintf("%dx%d", c.NumWarps, c.WarpWidth) })
	get("Front-end delay", func(c sm.Config) string { return fmt.Sprintf("%d cyc", c.IssueDelay) })
	get("Execution latency", func(c sm.Config) string { return fmt.Sprintf("%d cyc", c.ExecLatency) })
	get("Scoreboard", func(c sm.Config) string {
		return fmt.Sprintf("%d/%s", c.ScoreboardEntries, c.DepMode)
	})
	get("MAD lanes", func(c sm.Config) string { return fmt.Sprintf("%dx%d", c.MADGroups, c.MADWidth) })
	get("SFU/LSU lanes", func(c sm.Config) string { return fmt.Sprintf("%d/%d", c.SFUWidth, c.LSUWidth) })
	get("L1D", func(c sm.Config) string {
		return fmt.Sprintf("%dK/%dw/%dB", c.Mem.L1Bytes/1024, c.Mem.L1Ways, c.Mem.BlockBytes)
	})
	get("Memory", func(c sm.Config) string {
		return fmt.Sprintf("%.0fB/cyc %dcyc", c.Mem.BytesPerCycle, c.Mem.MemLatency)
	})
	get("Constraints", func(c sm.Config) string { return fmt.Sprintf("%v", c.Constraints) })
	get("Lane shuffle", func(c sm.Config) string { return c.Shuffle.String() })
	return t
}

// Table3 reproduces the storage-requirement summary.
func Table3() *Table {
	g := area.PaperGeometry()
	t := &Table{Title: "Table 3: storage requirements per component"}
	for _, d := range area.Designs() {
		t.Cols = append(t.Cols, d.String())
	}
	for _, c := range area.Components() {
		row := Row{Name: c.String()}
		for _, d := range area.Designs() {
			s := area.StorageOf(g, c, d)
			cell := s.Desc
			if s.Bits > 0 {
				cell = fmt.Sprintf("%s (%d b)", s.Desc, s.Bits)
			}
			row.Cells = append(row.Cells, str(cell))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4 reproduces the area estimates (x1000 um^2, 40 nm).
func Table4() *Table {
	g, k := area.PaperGeometry(), area.PaperCoefficients()
	t := &Table{
		Title: "Table 4: area of each component (x1000 um^2)",
		Note:  "analytical bit-count model calibrated to the paper's synthesis results (DESIGN.md)",
	}
	for _, d := range area.Designs() {
		t.Cols = append(t.Cols, d.String())
	}
	for _, c := range area.Components() {
		row := Row{Name: c.String()}
		for _, d := range area.Designs() {
			v := area.AreaOf(g, k, c, d)
			if v == 0 {
				row.Cells = append(row.Cells, empty())
			} else {
				row.Cells = append(row.Cells, Cell{Val: v, Str: fmt.Sprintf("%.1f", v)})
			}
		}
		t.Rows = append(t.Rows, row)
	}
	total := Row{Name: "Total"}
	over := Row{Name: "Overhead"}
	pct := Row{Name: "Overhead (% SM)"}
	for _, d := range area.Designs() {
		total.Cells = append(total.Cells, Cell{Val: area.Total(g, k, d), Str: fmt.Sprintf("%.1f", area.Total(g, k, d))})
		abs, frac := area.Overhead(g, k, d)
		if d == area.Baseline {
			over.Cells = append(over.Cells, empty())
			pct.Cells = append(pct.Cells, empty())
		} else {
			over.Cells = append(over.Cells, Cell{Val: abs, Str: fmt.Sprintf("%.1f", abs)})
			pct.Cells = append(pct.Cells, Cell{Val: frac * 100, Str: fmt.Sprintf("%.1f%%", frac*100)})
		}
	}
	t.Rows = append(t.Rows, total, over, pct)
	return t
}

// Experiments names every runnable experiment for the CLI: the paper's
// figures and tables plus the ablation studies.
var Experiments = []string{
	"fig7a", "fig7b", "fig8a", "fig8b", "fig9",
	"table2", "table3", "table4",
	"ablation-scoreboard", "ablation-memsplit", "ablation-execlat",
	"heap-pressure", "memory-hierarchy",
}

// Run executes one experiment by name.
func (r *Runner) Run(name string) (*Table, error) {
	switch name {
	case "fig7a":
		return r.Fig7a()
	case "fig7b":
		return r.Fig7b()
	case "fig8a":
		return r.Fig8a()
	case "fig8b":
		return r.Fig8b()
	case "fig9":
		return r.Fig9()
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "table4":
		return Table4(), nil
	case "ablation-scoreboard":
		return r.AblationScoreboard()
	case "ablation-memsplit":
		return r.AblationMemSplit()
	case "ablation-execlat":
		return r.AblationExecLatency()
	case "heap-pressure":
		return r.HeapPressure()
	case "memory-hierarchy":
		return r.MemoryHierarchy()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Experiments)
}

// RunAll executes every experiment, writing each table to w.
func (r *Runner) RunAll(w io.Writer) error {
	for _, name := range Experiments {
		t, err := r.Run(name)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t.Text())
	}
	return nil
}
