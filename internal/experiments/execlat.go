package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sm"
)

// execLatencies are the studied register-to-register execution
// latencies in cycles; 8 is the paper's table-2 value.
var execLatencies = []int64{2, 4, 8, 16, 32}

// AblationExecLatency sweeps the execution latency over the irregular
// suite on SBI+SWI. The sweep is the canonical trace-replay customer:
// ExecLatency changes only when results write back, never what threads
// compute, so the first latency point records each benchmark's
// per-thread trace and every other point replays it through the full
// timing machinery — bit-identical statistics without re-executing a
// single instruction. Benchmarks outside the replay validity domain
// (racy kernels: BFS, the TMD pair) fall back to full simulation with
// the reason logged once.
func (r *Runner) AblationExecLatency() (*Table, error) {
	suite := kernels.Irregular()
	t := &Table{
		Title: "Ablation: execution latency vs IPC (SBI+SWI), re-timed by trace replay",
		Note:  "8 cyc is the paper's table-2 latency; points after the first replay its recorded traces (racy kernels fall back to full simulation)",
	}
	for _, lat := range execLatencies {
		t.Cols = append(t.Cols, fmt.Sprintf("%d cyc", lat))
	}

	// One replay-enabled device per latency, all sharing the runner's
	// simulation cache (which also holds the traces) and run queue. The
	// latency points run in order so the recording point is
	// deterministic; within a point RunSuite fans the benchmarks out
	// across the worker pool.
	cells := make(map[runKey]*sm.Stats)
	for _, lat := range execLatencies {
		cfg := sm.Configure(sm.ArchSBISWI)
		cfg.ExecLatency = lat
		dev, err := device.New(
			device.WithConfig(cfg),
			device.WithRunQueue(r.runQueue()),
			device.WithSimCache(r.sims),
			device.WithTraceReplay(true),
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		results, err := dev.RunSuite(context.Background(), suite)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, res := range results {
			if res.Err != nil {
				return nil, fmt.Errorf("experiments: %w", res.Err)
			}
			s := res.Result.Stats
			cells[configKey(res.Name(), &cfg)] = &s
		}
	}

	ratios := make([][]float64, len(execLatencies))
	for _, b := range suite {
		row := Row{Name: b.Name}
		for i, lat := range execLatencies {
			cfg := sm.Configure(sm.ArchSBISWI)
			cfg.ExecLatency = lat
			s := cells[configKey(b.Name, &cfg)]
			row.Cells = append(row.Cells, num(s.IPC()))
			if !excludeFromMeans(b.Name) {
				ratios[i] = append(ratios[i], s.IPC())
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := Row{Name: "Gmean"}
	for i := range execLatencies {
		mean.Cells = append(mean.Cells, num(gmean(ratios[i])))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}
