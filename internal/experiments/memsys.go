package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/sm"
)

// memsysBenches are the suite kernels whose global-memory traffic is
// heavy enough for the shared L2 and interconnect to matter: their
// grids span several CTA waves and their miss streams approach the
// DRAM port's sustained bandwidth.
var memsysBenches = []string{"Transpose", "BFS", "Histogram"}

// memsysBandwidths are the studied per-port interconnect bandwidths in
// bytes/cycle, widest first.
var memsysBandwidths = []float64{32, 8, 2}

// MemoryHierarchy studies the modeled shared memory system: each
// bandwidth-bound benchmark runs partitioned across 4 SMs behind the
// shared L2, sweeping the interconnect port bandwidth. Columns report
// the modeled device wall-clock (DeviceCycles) per bandwidth, plus —
// at the widest setting — the L2 read hit rate, total NoC queueing,
// and the per-SM breakdown of that queueing (Result.NoCPorts: port i
// is SM i's injection port under the device-time packing), which shows
// how unevenly the waves' traffic loads the crossbar.
func (r *Runner) MemoryHierarchy() (*Table, error) {
	const sms = 4
	t := &Table{
		Title: fmt.Sprintf("Shared L2 + interconnect: device cycles on %d SMs vs. NoC port bandwidth", sms),
		Note:  "flat column: seed flat-latency DRAM model (no L2/NoC); hit rate and queue cycles (total and per-SM port) reported at the widest port",
		Cols:  []string{"flat"},
	}
	for _, bw := range memsysBandwidths {
		t.Cols = append(t.Cols, fmt.Sprintf("%gB/c", bw))
	}
	t.Cols = append(t.Cols, "L2 hit%", "NoC queue", "queue/SM port")

	for _, name := range memsysBenches {
		b, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: benchmark %s missing", name)
		}
		row := Row{Name: name}

		flat, err := r.memsysRun(b, sms, nil)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, num(float64(flat.DeviceCycles())))

		var widest *sm.Result
		for _, bw := range memsysBandwidths {
			ncfg := noc.Default()
			ncfg.BytesPerCycle = bw
			res, err := r.memsysRun(b, sms, &ncfg)
			if err != nil {
				return nil, err
			}
			if widest == nil {
				widest = res
			}
			row.Cells = append(row.Cells, num(float64(res.DeviceCycles())))
		}
		l2 := &widest.Stats.Mem.L2
		ports := make([]string, len(widest.NoCPorts))
		for i, p := range widest.NoCPorts {
			ports[i] = fmt.Sprintf("%d", p.QueueCycles)
		}
		row.Cells = append(row.Cells,
			str(fmt.Sprintf("%.1f", 100*l2.HitRate())),
			str(fmt.Sprintf("%d", widest.Stats.Mem.NoC.QueueCycles)),
			str(strings.Join(ports, "/")))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// memsysRun simulates one benchmark partitioned across the SMs, with
// the shared memory system enabled when ncfg is non-nil. Runs go
// through RunSuite on the runner's shared queue, so the simulation
// cache memoizes each (benchmark, SM count, interconnect) cell across
// passes. The sweep is trace-replay routed: the first cell of a
// benchmark records its execution trace, and the remaining bandwidth
// points replay it through the shared-clock interleaver — the NoC and
// L2 parameters are timing-domain, so replayed statistics are
// bit-identical to full simulations (racy benchmarks like BFS fall
// back, with the reason logged once).
func (r *Runner) memsysRun(b *kernels.Benchmark, sms int, ncfg *noc.Config) (*sm.Result, error) {
	opts := []device.Option{
		device.WithArch(sm.ArchSBISWI),
		device.WithSMs(sms),
		device.WithGridPartition(true),
		device.WithRunQueue(r.runQueue()),
		device.WithSimCache(r.sims),
		device.WithTraceReplay(true),
	}
	if ncfg != nil {
		opts = append(opts, device.WithInterconnect(*ncfg))
	}
	dev, err := device.New(opts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	results, err := dev.RunSuite(context.Background(), []*kernels.Benchmark{b})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
	}
	if results[0].Err != nil {
		return nil, fmt.Errorf("experiments: %w", results[0].Err)
	}
	return results[0].Result, nil
}
