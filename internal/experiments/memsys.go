package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/noc"
	"repro/internal/sm"
)

// memsysBenches are the suite kernels whose global-memory traffic is
// heavy enough for the shared L2 and interconnect to matter: their
// grids span several CTA waves and their miss streams approach the
// DRAM port's sustained bandwidth.
var memsysBenches = []string{"Transpose", "BFS", "Histogram"}

// memsysBandwidths are the studied per-port interconnect bandwidths in
// bytes/cycle, widest first.
var memsysBandwidths = []float64{32, 8, 2}

// MemoryHierarchy studies the modeled shared memory system: each
// bandwidth-bound benchmark runs partitioned across 4 SMs behind the
// shared L2, sweeping the interconnect port bandwidth. Columns report
// the modeled device wall-clock (DeviceCycles) per bandwidth, plus the
// L2 read hit rate and total NoC queueing at the widest setting. The
// wall-clock must grow as the ports narrow — the contention signal the
// flat-latency model could not express.
func (r *Runner) MemoryHierarchy() (*Table, error) {
	const sms = 4
	t := &Table{
		Title: fmt.Sprintf("Shared L2 + interconnect: device cycles on %d SMs vs. NoC port bandwidth", sms),
		Note:  "flat column: seed flat-latency DRAM model (no L2/NoC); hit rate and queue cycles reported at the widest port",
		Cols:  []string{"flat"},
	}
	for _, bw := range memsysBandwidths {
		t.Cols = append(t.Cols, fmt.Sprintf("%gB/c", bw))
	}
	t.Cols = append(t.Cols, "L2 hit%", "NoC queue")

	for _, name := range memsysBenches {
		b, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: benchmark %s missing", name)
		}
		row := Row{Name: name}

		flat, err := r.memsysRun(b, sms, nil)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, num(float64(flat.DeviceCycles())))

		var widest *sm.Result
		for _, bw := range memsysBandwidths {
			ncfg := noc.Default()
			ncfg.BytesPerCycle = bw
			res, err := r.memsysRun(b, sms, &ncfg)
			if err != nil {
				return nil, err
			}
			if widest == nil {
				widest = res
			}
			row.Cells = append(row.Cells, num(float64(res.DeviceCycles())))
		}
		l2 := &widest.Stats.Mem.L2
		row.Cells = append(row.Cells,
			str(fmt.Sprintf("%.1f", 100*l2.HitRate())),
			str(fmt.Sprintf("%d", widest.Stats.Mem.NoC.QueueCycles)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// memsysRun simulates one benchmark partitioned across the SMs, with
// the shared memory system enabled when ncfg is non-nil. Runs go
// through RunSuite so the runner's simulation cache memoizes each
// (benchmark, SM count, interconnect) cell across passes.
func (r *Runner) memsysRun(b *kernels.Benchmark, sms int, ncfg *noc.Config) (*sm.Result, error) {
	opts := []device.Option{
		device.WithArch(sm.ArchSBISWI),
		device.WithSMs(sms),
		device.WithGridPartition(true),
		device.WithWorkers(r.Workers),
		device.WithSimCache(r.sims),
	}
	if ncfg != nil {
		opts = append(opts, device.WithInterconnect(*ncfg))
	}
	dev, err := device.New(opts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	results, err := dev.RunSuite(context.Background(), []*kernels.Benchmark{b})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
	}
	if results[0].Err != nil {
		return nil, fmt.Errorf("experiments: %w", results[0].Err)
	}
	return results[0].Result, nil
}
