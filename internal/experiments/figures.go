package experiments

import (
	"context"

	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/sm"
)

// prefetchMatrix batches the cross product of benchmarks and
// configurations through the device engine, so a figure's simulations
// run concurrently before its table is assembled serially from cache.
func (r *Runner) prefetchMatrix(suite []*kernels.Benchmark, cfgs []sm.Config) error {
	reqs := make([]Request, 0, len(suite)*len(cfgs))
	for _, b := range suite {
		for _, cfg := range cfgs {
			reqs = append(reqs, Request{Bench: b, Cfg: cfg})
		}
	}
	return r.Prefetch(context.Background(), reqs)
}

// fig7 runs the five architectures over a suite and reports IPC per
// benchmark plus the geometric mean (TMD excluded, §5.1).
func (r *Runner) fig7(title string, suite []*kernels.Benchmark) (*Table, error) {
	archs := sm.Architectures()
	cfgs := make([]sm.Config, len(archs))
	for i, a := range archs {
		cfgs[i] = sm.Configure(a)
	}
	if err := r.prefetchMatrix(suite, cfgs); err != nil {
		return nil, err
	}
	t := &Table{Title: title, Note: "thread-IPC; Gmean excludes TMD (reflects reconvergence scheme, not SBI/SWI) and the synthetic WriteStorm"}
	for _, a := range archs {
		t.Cols = append(t.Cols, a.String())
	}
	ratios := make([][]float64, len(archs))
	for _, b := range suite {
		row := Row{Name: b.Name}
		var base float64
		for i, a := range archs {
			s, err := r.Stats(b, sm.Configure(a))
			if err != nil {
				return nil, err
			}
			ipc := s.IPC()
			if a == sm.ArchBaseline {
				base = ipc
			}
			if !excludeFromMeans(b.Name) {
				ratios[i] = append(ratios[i], ipc/base)
			}
			row.Cells = append(row.Cells, num(ipc))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := Row{Name: "Gmean speedup"}
	for i := range archs {
		mean.Cells = append(mean.Cells, num(gmean(ratios[i])))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}

// Fig7a reproduces figure 7(a): IPC of the regular applications.
func (r *Runner) Fig7a() (*Table, error) {
	return r.fig7("Figure 7(a): IPC, regular applications", kernels.Regular())
}

// Fig7b reproduces figure 7(b): IPC of the irregular applications.
func (r *Runner) Fig7b() (*Table, error) {
	return r.fig7("Figure 7(b): IPC, irregular applications", kernels.Irregular())
}

// Fig8a reproduces figure 8(a): the effect of the selective
// synchronization constraints (§3.3) on SBI and SBI+SWI — speedup of
// constrained over unconstrained execution, plus the issue-slot
// reduction the constraints buy.
func (r *Runner) Fig8a() (*Table, error) {
	var cfgs []sm.Config
	for _, a := range []sm.Arch{sm.ArchSBI, sm.ArchSBISWI} {
		on := sm.Configure(a)
		on.Constraints = true
		off := on
		off.Constraints = false
		cfgs = append(cfgs, on, off)
	}
	if err := r.prefetchMatrix(kernels.Irregular(), cfgs); err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 8(a): reconvergence constraints (speedup of constrained over unconstrained)",
		Cols:  []string{"SBI", "SBI+SWI", "SBI issue reduction", "SBI+SWI issue reduction"},
		Note:  "issue reduction = fraction of issue slots saved by constraints",
	}
	var rsbi, rboth []float64
	for _, b := range kernels.Irregular() {
		row := Row{Name: b.Name}
		var speed [2]float64
		var saved [2]float64
		for i, a := range []sm.Arch{sm.ArchSBI, sm.ArchSBISWI} {
			on := sm.Configure(a)
			on.Constraints = true
			off := on
			off.Constraints = false
			sOn, err := r.Stats(b, on)
			if err != nil {
				return nil, err
			}
			sOff, err := r.Stats(b, off)
			if err != nil {
				return nil, err
			}
			speed[i] = sOn.IPC() / sOff.IPC()
			saved[i] = 1 - float64(sOn.IssueSlots)/float64(sOff.IssueSlots)
		}
		row.Cells = []Cell{num(speed[0]), num(speed[1]), num(saved[0]), num(saved[1])}
		t.Rows = append(t.Rows, row)
		if !excludeFromMeans(b.Name) {
			rsbi = append(rsbi, speed[0])
			rboth = append(rboth, speed[1])
		}
	}
	t.Rows = append(t.Rows, Row{Name: "Gmean", Cells: []Cell{num(gmean(rsbi)), num(gmean(rboth)), empty(), empty()}})
	return t, nil
}

// Fig8b reproduces figure 8(b): speedup of each lane-shuffling policy
// over Identity for SWI on the irregular applications.
func (r *Runner) Fig8b() (*Table, error) {
	policies := []sched.Shuffle{sched.ShuffleMirrorOdd, sched.ShuffleMirrorHalf, sched.ShuffleXor, sched.ShuffleXorRev}
	cfgs := make([]sm.Config, 0, len(policies)+1)
	for _, p := range append([]sched.Shuffle{sched.ShuffleIdentity}, policies...) {
		cfg := sm.Configure(sm.ArchSWI)
		cfg.Shuffle = p
		cfgs = append(cfgs, cfg)
	}
	if err := r.prefetchMatrix(kernels.Irregular(), cfgs); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 8(b): SWI lane shuffling (speedup over Identity)"}
	for _, p := range policies {
		t.Cols = append(t.Cols, p.String())
	}
	ratios := make([][]float64, len(policies))
	for _, b := range kernels.Irregular() {
		ident := sm.Configure(sm.ArchSWI)
		ident.Shuffle = sched.ShuffleIdentity
		sid, err := r.Stats(b, ident)
		if err != nil {
			return nil, err
		}
		row := Row{Name: b.Name}
		for i, p := range policies {
			cfg := sm.Configure(sm.ArchSWI)
			cfg.Shuffle = p
			s, err := r.Stats(b, cfg)
			if err != nil {
				return nil, err
			}
			v := s.IPC() / sid.IPC()
			row.Cells = append(row.Cells, num(v))
			if !excludeFromMeans(b.Name) {
				ratios[i] = append(ratios[i], v)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := Row{Name: "GMean"}
	for i := range policies {
		mean.Cells = append(mean.Cells, num(gmean(ratios[i])))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}

// Fig9 reproduces figure 9: the slowdown of set-associative SWI lookup
// relative to the fully-associative configuration, on the irregular
// applications.
func (r *Runner) Fig9() (*Table, error) {
	assocs := []struct {
		name string
		ways int
	}{
		{"Fully associative", sched.AssocFull},
		{"11-way", 11},
		{"3-way", 3},
		{"Direct mapped", 1},
	}
	cfgs := make([]sm.Config, 0, len(assocs))
	for _, a := range assocs {
		cfg := sm.Configure(sm.ArchSWI)
		cfg.Assoc = a.ways
		cfgs = append(cfgs, cfg)
	}
	if err := r.prefetchMatrix(kernels.Irregular(), cfgs); err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 9: SWI lookup associativity (slowdown vs fully-associative)"}
	for _, a := range assocs {
		t.Cols = append(t.Cols, a.name)
	}
	ratios := make([][]float64, len(assocs))
	for _, b := range kernels.Irregular() {
		full := sm.Configure(sm.ArchSWI)
		sf, err := r.Stats(b, full)
		if err != nil {
			return nil, err
		}
		row := Row{Name: b.Name}
		for i, a := range assocs {
			cfg := sm.Configure(sm.ArchSWI)
			cfg.Assoc = a.ways
			s, err := r.Stats(b, cfg)
			if err != nil {
				return nil, err
			}
			v := s.IPC() / sf.IPC()
			row.Cells = append(row.Cells, num(v))
			if !excludeFromMeans(b.Name) {
				ratios[i] = append(ratios[i], v)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := Row{Name: "GMean"}
	for i := range assocs {
		mean.Cells = append(mean.Cells, num(gmean(ratios[i])))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}
