package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sm"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title: "demo",
		Cols:  []string{"a", "b"},
		Rows: []Row{
			{Name: "x", Cells: []Cell{num(1.5), str("hi")}},
			{Name: "y", Cells: []Cell{empty(), num(2)}},
		},
		Note: "n",
	}
	text := tb.Text()
	for _, want := range []string{"demo", "x", "1.50", "hi", "-", "note: n"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q in:\n%s", want, text)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "name,a,b") || !strings.Contains(csv, "x,1.5,hi") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
}

func TestStaticTables(t *testing.T) {
	t2 := Table2()
	if len(t2.Rows) < 8 || len(t2.Cols) != 5 {
		t.Errorf("table2 shape: %d rows x %d cols", len(t2.Rows), len(t2.Cols))
	}
	t3 := Table3()
	if !strings.Contains(t3.Text(), "24x 201-bit") {
		t.Error("table3 missing HCT organization")
	}
	t4 := Table4()
	text := t4.Text()
	for _, want := range []string{"Total", "Overhead", "3.7%"} {
		if !strings.Contains(text, want) {
			t.Errorf("table4 missing %q", want)
		}
	}
}

func TestRunnerCachesAndValidates(t *testing.T) {
	r := NewRunner()
	b, _ := kernels.ByName("TMD2")
	cfg := sm.Configure(sm.ArchSBI)
	s1, err := r.Stats(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Stats(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second call should hit the cache")
	}
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != 1 {
		t.Errorf("cache size = %d", n)
	}
}

func TestRunnerProgress(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner()
	r.Progress = &buf
	b, _ := kernels.ByName("Histogram")
	if _, err := r.Stats(b, sm.Configure(sm.ArchWarp64)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Histogram") {
		t.Error("progress line missing")
	}
}

func TestRunUnknown(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestGmean(t *testing.T) {
	if g := gmean([]float64{2, 8}); g != 4 {
		t.Errorf("gmean = %f", g)
	}
	if g := gmean(nil); g != 0 {
		t.Errorf("gmean(nil) = %f", g)
	}
}

// The full figure pipeline on the cheapest figure: 8(b) shares most
// configurations via the cache, so run figure 9 on a single benchmark
// suite to keep the test fast; here we check figure 8(a) end to end on
// the real suite since SBI runs are comparatively cheap.
func TestFig8aEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := NewRunner()
	tab, err := r.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(kernels.Irregular())+1 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Name != "Gmean" {
		t.Errorf("last row = %s", last.Name)
	}
	// Constraint speedups should sit near 1.0 (paper: ~0.1% effect).
	g := last.Cells[0].Val
	if g < 0.8 || g > 1.25 {
		t.Errorf("SBI constraint speedup gmean = %.3f, expected near 1", g)
	}
}
