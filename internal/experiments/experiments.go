// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the per-benchmark IPC comparisons of
// figure 7, the reconvergence-constraint study of figure 8(a), the
// lane-shuffling study of figure 8(b), the lookup-associativity study
// of figure 9, and tables 2-4. Each experiment returns a Table that
// renders as aligned text or CSV.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sm"
)

// Runner executes benchmark simulations with memoization (several
// figures share configurations). Simulation and oracle validation are
// delegated to the device engine: each figure submits its whole
// (benchmark, configuration) request set as asynchronous stream
// submissions — one device per configuration, every entry enqueued
// before any result is awaited — so the simulations of all
// configurations fan out together across the host's cores, admitted
// longest-job-first by one run queue shared across every device the
// runner builds; table assembly then reads from the cache. Both cache
// layers — the runner's per-cell Stats table and the device-level
// simulation cache shared across all the runner's figures — key on
// sm.Config.Fingerprint, which digests every configuration field, so
// two different configurations can never alias a cell. The runner is
// safe for concurrent use.
type Runner struct {
	mu    sync.Mutex
	cache map[runKey]*sm.Stats //sbwi:guardedby mu

	// sims is the device-level simulation cache shared by every device
	// the runner builds, deduplicating cells across figures and passes.
	// It is created once in NewRunner and immutable afterwards (the
	// SimCache itself does its own locking).
	//sbwi:nolock written only in NewRunner, immutable afterwards
	sims *device.SimCache

	// queue is the run queue shared by every device the runner builds,
	// so concurrent figures and configurations stay bounded by one
	// worker pool; created on first use from Workers.
	queue *device.RunQueue //sbwi:guardedby mu

	// Workers bounds the host goroutines simulating concurrently;
	// 0 means GOMAXPROCS. Read when the first simulation is submitted;
	// later changes have no effect.
	Workers int

	// Progress, when non-nil, receives one line per simulation.
	Progress io.Writer
}

// runKey identifies one (benchmark, configuration) cell. The
// fingerprint covers the whole configuration, making the key sound for
// any future Config field.
type runKey struct {
	bench string
	cfgFP uint64
}

func configKey(bench string, cfg *sm.Config) runKey {
	return runKey{bench: bench, cfgFP: cfg.Fingerprint()}
}

// NewRunner creates an empty runner.
func NewRunner() *Runner {
	return &Runner{
		cache: make(map[runKey]*sm.Stats),
		sims:  device.NewSimCache(),
	}
}

// Request names one simulation a figure needs: a benchmark under a
// configuration.
type Request struct {
	Bench *kernels.Benchmark
	Cfg   sm.Config
}

// runQueue returns the runner's shared admission queue, creating it
// from Workers on first use.
func (r *Runner) runQueue() *device.RunQueue {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queue == nil {
		r.queue = device.NewRunQueue(r.Workers)
	}
	return r.queue
}

// Prefetch simulates every not-yet-cached request as asynchronous
// stream submissions: one device per distinct configuration, every
// benchmark enqueued up front (Device.SubmitBenchmark), all admitted
// by the runner's shared run queue — so the heavy cells of one
// configuration overlap the light cells of another instead of the
// configurations running batch-by-batch. Each simulation's final
// memory is checked against the benchmark's Go reference by the
// device; a mismatch is an error, never a silent wrong figure.
// Prefetch is deterministic: results do not depend on the worker count
// or on completion order.
func (r *Runner) Prefetch(ctx context.Context, reqs []Request) error {
	type group struct {
		cfg     sm.Config
		benches []*kernels.Benchmark
	}
	var groups []group
	index := make(map[runKey]int)
	seen := make(map[runKey]bool)
	r.mu.Lock()
	for i := range reqs {
		q := &reqs[i]
		k := configKey(q.Bench.Name, &q.Cfg)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		ck := k
		ck.bench = ""
		gi, ok := index[ck]
		if !ok {
			gi = len(groups)
			index[ck] = gi
			groups = append(groups, group{cfg: q.Cfg})
		}
		groups[gi].benches = append(groups[gi].benches, q.Bench)
	}
	r.mu.Unlock()

	type submission struct {
		bench   *kernels.Benchmark
		cfg     *sm.Config
		pending *device.Pending
	}
	var subs []submission
	for gi := range groups {
		g := &groups[gi]
		dev, err := device.New(device.WithConfig(g.cfg), device.WithRunQueue(r.runQueue()),
			device.WithSimCache(r.sims))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		for _, b := range g.benches {
			subs = append(subs, submission{bench: b, cfg: &g.cfg, pending: dev.SubmitBenchmark(ctx, b)})
		}
	}

	// Await in submission order — completion order is irrelevant to the
	// cached values, and a deterministic wait order keeps the Progress
	// log stable. Every submission is awaited even after a failure, so
	// no simulation keeps running (and mutating the shared cache and
	// queue) after Prefetch returns; the first error in submission
	// order is reported, successful cells are cached regardless.
	var firstErr error
	for _, sub := range subs {
		res, err := sub.pending.Wait()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %w", err)
			}
			continue
		}
		s := res.Stats
		r.mu.Lock()
		r.cache[configKey(sub.bench.Name, sub.cfg)] = &s
		r.mu.Unlock()
		if r.Progress != nil {
			fmt.Fprintf(r.Progress, "  %-22s %-10s IPC %6.2f  (%d cycles)\n",
				sub.bench.Name, sub.cfg.Arch, s.IPC(), s.Cycles)
		}
	}
	return firstErr
}

// Stats simulates benchmark b under cfg (memoized) and returns the run
// statistics, prefetching on a cache miss.
func (r *Runner) Stats(b *kernels.Benchmark, cfg sm.Config) (*sm.Stats, error) {
	k := configKey(b.Name, &cfg)
	r.mu.Lock()
	s, ok := r.cache[k]
	r.mu.Unlock()
	if ok {
		return s, nil
	}
	if err := r.Prefetch(context.Background(), []Request{{Bench: b, Cfg: cfg}}); err != nil {
		return nil, err
	}
	r.mu.Lock()
	s = r.cache[k]
	r.mu.Unlock()
	return s, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string // first column is the row label
	Rows  []Row
}

// Row is one table line.
type Row struct {
	Name  string
	Cells []Cell
}

// Cell is one value; Str (when set) overrides numeric formatting.
type Cell struct {
	Val   float64
	Str   string
	Empty bool
}

func num(v float64) Cell { return Cell{Val: v} }
func str(s string) Cell  { return Cell{Str: s} }
func empty() Cell        { return Cell{Empty: true} }

func (c Cell) text() string {
	switch {
	case c.Empty:
		return "-"
	case c.Str != "":
		return c.Str
	default:
		return fmt.Sprintf("%.2f", c.Val)
	}
}

// Text renders the table with aligned columns. Column widths adapt to
// the widest cell so long entries (per-SM breakdowns) stay readable.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Cols)+1)
	widths[0] = 22
	for i, c := range t.Cols {
		widths[i+1] = max(10, len(c)+1)
	}
	for _, r := range t.Rows {
		for i, c := range r.Cells {
			if i+1 < len(widths) {
				widths[i+1] = max(widths[i+1], len(c.text())+1)
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.Name)
		for i, c := range r.Cells {
			fmt.Fprintf(&b, "%*s", widths[i+1], c.text())
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Name)
		for _, c := range r.Cells {
			b.WriteByte(',')
			switch {
			case c.Empty:
			case c.Str != "":
				b.WriteString(c.Str)
			default:
				fmt.Fprintf(&b, "%g", c.Val)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// gmean computes the geometric mean.
func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

// excludeFromMeans reports benchmarks left out of summary means: the
// paper excludes the TMD pair (§5.1: it reflects thread-frontier
// reconvergence rather than SBI/SWI), and the synthetic WriteStorm
// store-saturation anchor postdates the paper's figures, so including
// it would shift the reproduced means away from the numbers being
// reproduced.
func excludeFromMeans(name string) bool {
	return name == "TMD1" || name == "TMD2" || name == "WriteStorm"
}
