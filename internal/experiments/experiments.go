// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the per-benchmark IPC comparisons of
// figure 7, the reconvergence-constraint study of figure 8(a), the
// lane-shuffling study of figure 8(b), the lookup-associativity study
// of figure 9, and tables 2-4. Each experiment returns a Table that
// renders as aligned text or CSV.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sm"
)

// Runner executes benchmark simulations with memoization (several
// figures share configurations). Simulation and oracle validation are
// delegated to the device engine: each figure prefetches its whole
// (benchmark, configuration) request set through Device.RunSuite, so
// the simulations fan out across the host's cores (cost-aware,
// longest-job-first) instead of running serially; table assembly then
// reads from the cache. Both cache layers — the runner's per-cell
// Stats table and the device-level simulation cache shared across all
// the runner's figures — key on sm.Config.Fingerprint, which digests
// every configuration field, so two different configurations can never
// alias a cell. The runner is safe for concurrent use.
type Runner struct {
	mu    sync.Mutex
	cache map[runKey]*sm.Stats

	// sims is the device-level simulation cache shared by every device
	// the runner builds, deduplicating cells across figures and passes.
	sims *device.SimCache

	// Workers bounds the host goroutines simulating concurrently;
	// 0 means GOMAXPROCS.
	Workers int

	// Progress, when non-nil, receives one line per simulation.
	Progress io.Writer
}

// runKey identifies one (benchmark, configuration) cell. The
// fingerprint covers the whole configuration, making the key sound for
// any future Config field.
type runKey struct {
	bench string
	cfgFP uint64
}

func configKey(bench string, cfg *sm.Config) runKey {
	return runKey{bench: bench, cfgFP: cfg.Fingerprint()}
}

// NewRunner creates an empty runner.
func NewRunner() *Runner {
	return &Runner{
		cache: make(map[runKey]*sm.Stats),
		sims:  device.NewSimCache(),
	}
}

// Request names one simulation a figure needs: a benchmark under a
// configuration.
type Request struct {
	Bench *kernels.Benchmark
	Cfg   sm.Config
}

// Prefetch simulates every not-yet-cached request, fanning the batch
// out through Device.RunSuite (grouped by configuration, bounded by
// Workers). Each simulation's final memory is checked against the
// benchmark's Go reference by the device; a mismatch is an error, never
// a silent wrong figure. Prefetch is deterministic: results do not
// depend on the worker count or on completion order.
func (r *Runner) Prefetch(ctx context.Context, reqs []Request) error {
	type group struct {
		cfg     sm.Config
		benches []*kernels.Benchmark
	}
	var groups []group
	index := make(map[runKey]int)
	seen := make(map[runKey]bool)
	r.mu.Lock()
	for i := range reqs {
		q := &reqs[i]
		k := configKey(q.Bench.Name, &q.Cfg)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		ck := k
		ck.bench = ""
		gi, ok := index[ck]
		if !ok {
			gi = len(groups)
			index[ck] = gi
			groups = append(groups, group{cfg: q.Cfg})
		}
		groups[gi].benches = append(groups[gi].benches, q.Bench)
	}
	r.mu.Unlock()

	for _, g := range groups {
		dev, err := device.New(device.WithConfig(g.cfg), device.WithWorkers(r.Workers),
			device.WithSimCache(r.sims))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		results, err := dev.RunSuite(ctx, g.benches)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		r.mu.Lock()
		for _, sr := range results {
			if sr.Err != nil {
				r.mu.Unlock()
				return fmt.Errorf("experiments: %w", sr.Err)
			}
			s := sr.Result.Stats
			r.cache[configKey(sr.Bench.Name, &g.cfg)] = &s
			if r.Progress != nil {
				fmt.Fprintf(r.Progress, "  %-22s %-10s IPC %6.2f  (%d cycles)\n",
					sr.Bench.Name, g.cfg.Arch, s.IPC(), s.Cycles)
			}
		}
		r.mu.Unlock()
	}
	return nil
}

// Stats simulates benchmark b under cfg (memoized) and returns the run
// statistics, prefetching on a cache miss.
func (r *Runner) Stats(b *kernels.Benchmark, cfg sm.Config) (*sm.Stats, error) {
	k := configKey(b.Name, &cfg)
	r.mu.Lock()
	s, ok := r.cache[k]
	r.mu.Unlock()
	if ok {
		return s, nil
	}
	if err := r.Prefetch(context.Background(), []Request{{Bench: b, Cfg: cfg}}); err != nil {
		return nil, err
	}
	r.mu.Lock()
	s = r.cache[k]
	r.mu.Unlock()
	return s, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string // first column is the row label
	Rows  []Row
}

// Row is one table line.
type Row struct {
	Name  string
	Cells []Cell
}

// Cell is one value; Str (when set) overrides numeric formatting.
type Cell struct {
	Val   float64
	Str   string
	Empty bool
}

func num(v float64) Cell { return Cell{Val: v} }
func str(s string) Cell  { return Cell{Str: s} }
func empty() Cell        { return Cell{Empty: true} }

func (c Cell) text() string {
	switch {
	case c.Empty:
		return "-"
	case c.Str != "":
		return c.Str
	default:
		return fmt.Sprintf("%.2f", c.Val)
	}
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Cols)+1)
	widths[0] = 22
	for i, c := range t.Cols {
		widths[i+1] = max(10, len(c)+1)
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.Name)
		for i, c := range r.Cells {
			fmt.Fprintf(&b, "%*s", widths[i+1], c.text())
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Name)
		for _, c := range r.Cells {
			b.WriteByte(',')
			switch {
			case c.Empty:
			case c.Str != "":
				b.WriteString(c.Str)
			default:
				fmt.Fprintf(&b, "%g", c.Val)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// gmean computes the geometric mean.
func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

// excludeFromMeans reports benchmarks the paper leaves out of summary
// means (§5.1: the TMD pair reflects thread-frontier reconvergence
// rather than SBI/SWI).
func excludeFromMeans(name string) bool {
	return name == "TMD1" || name == "TMD2"
}
