// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the per-benchmark IPC comparisons of
// figure 7, the reconvergence-constraint study of figure 8(a), the
// lane-shuffling study of figure 8(b), the lookup-associativity study
// of figure 9, and tables 2-4. Each experiment returns a Table that
// renders as aligned text or CSV.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/kernels"
	"repro/internal/sm"
)

// Runner executes benchmark simulations with memoization (several
// figures share configurations) and validates every simulation's
// memory image against the benchmark's reference oracle.
type Runner struct {
	cache    map[runKey]*sm.Stats
	expected map[string][]byte

	// Progress, when non-nil, receives one line per simulation.
	Progress io.Writer
}

type runKey struct {
	bench       string
	arch        sm.Arch
	constraints bool
	shuffle     string
	assoc       int
	memSplit    bool
	depMode     uint8
}

// NewRunner creates an empty runner.
func NewRunner() *Runner {
	return &Runner{
		cache:    make(map[runKey]*sm.Stats),
		expected: make(map[string][]byte),
	}
}

// Stats simulates benchmark b under cfg (memoized) and returns the run
// statistics. The simulation's final memory is checked against the
// benchmark's Go reference; a mismatch is an error, never a silent
// wrong figure.
func (r *Runner) Stats(b *kernels.Benchmark, cfg sm.Config) (*sm.Stats, error) {
	key := runKey{
		bench:       b.Name,
		arch:        cfg.Arch,
		constraints: cfg.Constraints,
		shuffle:     cfg.Shuffle.String(),
		assoc:       cfg.Assoc,
		memSplit:    cfg.SplitOnMemDivergence,
		depMode:     uint8(cfg.DepMode),
	}
	if s, ok := r.cache[key]; ok {
		return s, nil
	}
	l, err := b.NewLaunch(cfg.Arch != sm.ArchBaseline)
	if err != nil {
		return nil, err
	}
	res, err := sm.Run(cfg, l)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", b.Name, cfg.Arch, err)
	}
	want, ok := r.expected[b.Name]
	if !ok {
		want = b.Expected()
		r.expected[b.Name] = want
	}
	if !bytes.Equal(l.Global, want) {
		return nil, fmt.Errorf("experiments: %s on %s: simulation diverged from reference", b.Name, cfg.Arch)
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "  %-22s %-10s IPC %6.2f  (%d cycles)\n",
			b.Name, cfg.Arch, res.Stats.IPC(), res.Stats.Cycles)
	}
	s := res.Stats
	r.cache[key] = &s
	return &s, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string // first column is the row label
	Rows  []Row
}

// Row is one table line.
type Row struct {
	Name  string
	Cells []Cell
}

// Cell is one value; Str (when set) overrides numeric formatting.
type Cell struct {
	Val   float64
	Str   string
	Empty bool
}

func num(v float64) Cell { return Cell{Val: v} }
func str(s string) Cell  { return Cell{Str: s} }
func empty() Cell        { return Cell{Empty: true} }

func (c Cell) text() string {
	switch {
	case c.Empty:
		return "-"
	case c.Str != "":
		return c.Str
	default:
		return fmt.Sprintf("%.2f", c.Val)
	}
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Cols)+1)
	widths[0] = 22
	for i, c := range t.Cols {
		widths[i+1] = max(10, len(c)+1)
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "")
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", widths[i+1], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.Name)
		for i, c := range r.Cells {
			fmt.Fprintf(&b, "%*s", widths[i+1], c.text())
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Name)
		for _, c := range r.Cells {
			b.WriteByte(',')
			switch {
			case c.Empty:
			case c.Str != "":
				b.WriteString(c.Str)
			default:
				fmt.Fprintf(&b, "%g", c.Val)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// gmean computes the geometric mean.
func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := 1.0
	for _, v := range vals {
		p *= v
	}
	return math.Pow(p, 1/float64(len(vals)))
}

// excludeFromMeans reports benchmarks the paper leaves out of summary
// means (§5.1: the TMD pair reflects thread-frontier reconvergence
// rather than SBI/SWI).
func excludeFromMeans(name string) bool {
	return name == "TMD1" || name == "TMD2"
}
