package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestMemoryHierarchyTable exercises the shared-memory-system study
// end to end and asserts the acceptance properties of the model: on a
// bandwidth-bound benchmark the L2 and NoC counters are nonzero, and
// the modeled device wall-clock grows monotonically as the
// interconnect ports narrow.
func TestMemoryHierarchyTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := NewRunner()
	tab, err := r.MemoryHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(memsysBenches) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(memsysBenches))
	}
	// Columns: flat, one per bandwidth, L2 hit%, NoC queue, per-SM
	// port queue breakdown.
	wantCols := 1 + len(memsysBandwidths) + 3
	sawHits := false
	sawPortQueue := false
	for _, row := range tab.Rows {
		if len(row.Cells) != wantCols {
			t.Fatalf("%s: %d cells, want %d", row.Name, len(row.Cells), wantCols)
		}
		// Monotone in port bandwidth among the modeled columns. The flat
		// column is deliberately not a bound in either direction: inline
		// L2 hits return in tens of cycles where the flat model charges
		// the full DRAM latency, so a reuse-heavy kernel can beat flat,
		// while port queueing can push a streaming kernel far above it.
		prev := row.Cells[1].Val
		for i := 1; i < len(memsysBandwidths); i++ {
			dc := row.Cells[1+i].Val
			if dc < prev {
				t.Errorf("%s: device cycles %f at %gB/c below %f at the wider setting — wall-clock must grow as ports narrow",
					row.Name, dc, memsysBandwidths[i], prev)
			}
			prev = dc
		}
		hitPct, err := strconv.ParseFloat(row.Cells[wantCols-3].Str, 64)
		if err != nil {
			t.Fatalf("%s: hit-rate cell %q: %v", row.Name, row.Cells[wantCols-3].Str, err)
		}
		queue, err := strconv.ParseFloat(row.Cells[wantCols-2].Str, 64)
		if err != nil {
			t.Fatalf("%s: queue cell %q: %v", row.Name, row.Cells[wantCols-2].Str, err)
		}
		ports := strings.Split(row.Cells[wantCols-1].Str, "/")
		if len(ports) != 4 {
			t.Fatalf("%s: per-SM port cell %q: want 4 SM entries", row.Name, row.Cells[wantCols-1].Str)
		}
		for _, p := range ports {
			v, err := strconv.ParseUint(p, 10, 64)
			if err != nil {
				t.Fatalf("%s: per-SM port cell %q: %v", row.Name, row.Cells[wantCols-1].Str, err)
			}
			if v > 0 {
				sawPortQueue = true
			}
		}
		if hitPct > 0 {
			sawHits = true
		}
		if queue <= 0 {
			t.Errorf("%s: NoC queueing counter is zero — the study kernels must exert port pressure", row.Name)
		}
	}
	if !sawHits {
		t.Error("no benchmark produced L2 hits — the shared L2 never saw reuse")
	}
	if !sawPortQueue {
		t.Error("every per-SM port queue entry is zero — the shared-clock path surfaced no port pressure")
	}
}
