// Package leakcheck is a dependency-free goroutine-leak checker for
// the simulator's concurrency tests. Check snapshots the goroutines
// alive when it is called and, at test cleanup, fails the test if any
// goroutine created by this module is still alive once the runtime has
// had a chance to settle.
//
// The checker is deliberately narrow: it only counts goroutines whose
// stacks mention this module's package path, so runtime helpers, the
// testing framework's own goroutines and other tests running in
// parallel never trip it. That makes it safe to drop into any test
// that exercises the device's stream, suite or queue plumbing — the
// layers whose failure paths (panic isolation, watchdog cancellation,
// poisoned streams) historically risk stranding a worker.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies this module's functions in stack traces; only
// goroutines running module code count as potential leaks.
const modulePrefix = "repro/"

// settleTimeout bounds how long Check waits for goroutines to drain
// before declaring a leak. Generous on purpose: a slow CI machine
// finishing legitimate teardown must not read as a leak.
const settleTimeout = 10 * time.Second

// Check snapshots the module goroutines alive now and registers a
// cleanup that fails t if new ones are still alive at test end. Call
// it first in the test, before anything spawns.
func Check(t *testing.T) {
	t.Helper()
	base := snapshot()
	t.Cleanup(func() {
		var leaked []string
		// Exponential backoff: legitimate teardown (a cancelled wave
		// noticing its context, a stream goroutine finishing its defers)
		// may lag the test body by a few scheduler quanta.
		for delay := time.Millisecond; ; delay *= 2 {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if delay > settleTimeout {
				break
			}
			time.Sleep(delay)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// snapshot returns the identifying headers of the module goroutines
// currently alive.
func snapshot() map[string]int {
	m := make(map[string]int)
	for _, g := range goroutines() {
		m[key(g)]++
	}
	return m
}

// leakedSince returns the stacks of module goroutines alive now that
// were not in the baseline, sorted for stable output.
func leakedSince(base map[string]int) []string {
	seen := make(map[string]int, len(base))
	var leaked []string
	for _, g := range goroutines() {
		k := key(g)
		if seen[k] < base[k] {
			seen[k]++
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Strings(leaked)
	return leaked
}

// key reduces one goroutine's stack to an identity stable across
// snapshots: its "created by" spawn site (a goroutine's live frames
// and run state churn as it executes, its birthplace never does). The
// main goroutine of a test has no created-by line; its whole stack
// stands in, which is fine because that goroutine is excluded as the
// caller anyway.
func key(g string) string {
	if i := strings.LastIndex(g, "created by "); i >= 0 {
		return g[i:]
	}
	return g
}

// goroutines returns the stack of every live goroutine — other than
// the calling one — that is running module code, one string per
// goroutine.
func goroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	self := selfID()
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		if goroutineID(g) == self {
			continue // the snapshotting goroutine is not a leak candidate
		}
		if !strings.Contains(g, modulePrefix) {
			continue // runtime / testing / third-party goroutine
		}
		out = append(out, g)
	}
	return out
}

// selfID returns the calling goroutine's ID, from its own stack header.
func selfID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	return goroutineID(string(buf))
}

// goroutineID extracts the numeric ID from a "goroutine N [state]:"
// stack header.
func goroutineID(g string) string {
	g = strings.TrimPrefix(g, "goroutine ")
	id, _, _ := strings.Cut(g, " ")
	return id
}

// Count returns how many module goroutines are alive, for tests that
// want to assert an absolute baseline rather than a delta.
func Count() int { return len(goroutines()) }

// String renders the live module goroutines, for diagnostics.
func String() string {
	gs := goroutines()
	return fmt.Sprintf("%d module goroutine(s):\n%s", len(gs), strings.Join(gs, "\n\n"))
}
