package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestNoLeakPasses drives the checker through a test that spawns and
// joins a goroutine: the cleanup must observe a clean state.
func TestNoLeakPasses(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		park(time.Millisecond)
		close(done)
	}()
	<-done
}

// TestSettleToleratesSlowTeardown spawns a goroutine that is still
// draining when the test body returns; the cleanup's settle loop must
// wait it out instead of reporting a leak.
func TestSettleToleratesSlowTeardown(t *testing.T) {
	Check(t)
	go park(50 * time.Millisecond)
}

// TestLeakIsDetected verifies the detector itself: a goroutine parked
// past the settle window must be reported against a private testing.T
// stand-in. The leaked goroutine is released afterwards so this test
// does not poison its siblings.
func TestLeakIsDetected(t *testing.T) {
	release := make(chan struct{})
	defer close(release)

	base := snapshot()
	go func() { // leaks until release closes
		<-release
	}()

	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = leakedSince(base)
		if len(leaked) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(leaked) != 1 {
		t.Fatalf("leakedSince reported %d goroutines, want 1:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "leakcheck") {
		t.Fatalf("leaked stack does not identify this package:\n%s", leaked[0])
	}
}

// TestBaselineAbsorbsExistingGoroutines checks that module goroutines
// alive before Check never count as leaks of the checked test.
func TestBaselineAbsorbsExistingGoroutines(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	base := snapshot()
	if leaked := leakedSince(base); len(leaked) != 0 {
		close(release)
		t.Fatalf("pre-existing goroutine reported as leak:\n%s", strings.Join(leaked, "\n\n"))
	}
	close(release)
}

// park keeps a goroutine identifiably inside module code for d.
func park(d time.Duration) { time.Sleep(d) }
