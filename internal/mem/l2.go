package mem

import (
	"fmt"

	"repro/internal/noc"
)

// L2Config sets the shared second-level cache parameters.
type L2Config struct {
	Bytes int // total capacity
	Ways  int // associativity
	Banks int // independent banks, interleaved by block address

	// HitLatency is the tag+data access time of one bank in cycles.
	HitLatency int64

	// BytesPerCycle is one bank's service bandwidth: an access occupies
	// its bank for BlockBytes/BytesPerCycle cycles, so same-bank
	// accesses from different SMs serialize (bank conflicts) while
	// different banks proceed in parallel.
	BytesPerCycle float64
}

// DefaultL2 returns a Fermi-class shared L2: 768 KB, 8-way, 8 banks,
// 30-cycle bank access, 32 B/cycle per bank.
func DefaultL2() L2Config {
	return L2Config{
		Bytes:         768 * 1024,
		Ways:          8,
		Banks:         8,
		HitLatency:    30,
		BytesPerCycle: 32,
	}
}

// Validate checks the geometry against the block size it will serve.
func (c *L2Config) Validate(blockBytes int) error {
	if c.Bytes <= 0 || c.Ways <= 0 || c.Banks <= 0 {
		return fmt.Errorf("mem: invalid L2 geometry %+v", *c)
	}
	if blockBytes <= 0 || c.Bytes%(blockBytes*c.Ways*c.Banks) != 0 {
		return fmt.Errorf("mem: L2 capacity %d not divisible into %d banks of %d-way sets of %d-byte blocks",
			c.Bytes, c.Banks, c.Ways, blockBytes)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("mem: negative L2 hit latency %d", c.HitLatency)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("mem: L2 bank bandwidth %g must be positive", c.BytesPerCycle)
	}
	return nil
}

// L2Stats counts shared-L2 events. All counters add under Merge.
type L2Stats struct {
	Loads        uint64 // read requests from the L1s
	Stores       uint64 // write-through traffic from the L1s
	Hits         uint64
	Misses       uint64
	MSHRMerges   uint64 // read misses merged into an outstanding fill
	Evictions    uint64
	BankStalls   uint64 // total cycles requests waited for a busy bank
	BytesFromMem uint64 // DRAM read traffic behind the L2
	BytesToMem   uint64 // DRAM write traffic behind the L2
}

// Merge folds another L2's statistics into s.
func (s *L2Stats) Merge(o *L2Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.MSHRMerges += o.MSHRMerges
	s.Evictions += o.Evictions
	s.BankStalls += o.BankStalls
	s.BytesFromMem += o.BytesFromMem
	s.BytesToMem += o.BytesToMem
}

// HitRate returns the read hit fraction.
func (s *L2Stats) HitRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Loads)
}

// L2 is the shared second-level cache: banked, set-associative, with
// per-block MSHRs and the device's single DRAM port behind it. Like
// Hierarchy it is purely a timing model — data lives in the launch
// image. An L2 must only be driven from one goroutine; the device
// interleaves all waves' traffic on one shared-clock driving goroutine
// (see package device), which is what keeps multi-SM results
// deterministic under any host scheduling.
type L2 struct {
	cfg L2Config
	mem Config // DRAM port parameters (BytesPerCycle, MemLatency) + block size

	arr   cacheArray
	port  noc.Link // DRAM port behind the L2
	mshr  mshrTable
	banks []noc.Link // per-bank service queues (zero-latency links)

	Stats L2Stats
}

// NewL2 builds a shared L2 in front of the DRAM port described by mem
// (whose BlockBytes is also the L2 line size). It panics on invalid
// geometry; device options validate user input before construction.
func NewL2(cfg L2Config, mem Config) *L2 {
	if err := cfg.Validate(mem.BlockBytes); err != nil {
		panic(err)
	}
	banks := make([]noc.Link, cfg.Banks)
	for i := range banks {
		banks[i] = noc.NewLink(cfg.BytesPerCycle, 0)
	}
	return &L2{
		cfg:   cfg,
		mem:   mem,
		arr:   newCacheArray(cfg.Bytes, cfg.Ways, mem.BlockBytes),
		port:  noc.NewLink(mem.BytesPerCycle, mem.MemLatency),
		mshr:  mshrTable{},
		banks: banks,
	}
}

// Config returns the L2 configuration.
func (l *L2) Config() L2Config { return l.cfg }

func (l *L2) bank(blockAddr uint32) int {
	return int(blockAddr/uint32(l.mem.BlockBytes)) % l.cfg.Banks
}

// acquireBank serializes the request on its bank and returns the cycle
// the bank starts serving it (the bank links carry zero latency, so a
// reservation completes the cycle it wins the bank).
func (l *L2) acquireBank(now int64, blockAddr uint32) int64 {
	served := l.banks[l.bank(blockAddr)].Reserve(now, l.mem.BlockBytes)
	if wait := served - now; wait > 0 {
		l.Stats.BankStalls += uint64(wait)
	}
	return served
}

// Access presents one request arriving from the interconnect at cycle
// now and returns, for loads, the cycle its data is available back at
// the L2 side; for stores, the cycle the store has drained — the later
// of the bank access completing and the DRAM port accepting the write —
// which the L1's write buffer holds its entry until. Loads allocate on
// miss; stores are write-through no-allocate (hits refresh the line),
// mirroring the L1's policy so the two levels agree on what memory
// traffic exists.
//
//sbwi:hotpath
func (l *L2) Access(now int64, blockAddr uint32, store bool) int64 {
	if store {
		l.Stats.Stores++
		served := l.acquireBank(now, blockAddr)
		l.arr.lookup(blockAddr) // refresh LRU if present
		accept := l.port.Reserve(served, l.mem.BlockBytes) - l.mem.MemLatency
		l.Stats.BytesToMem += uint64(l.mem.BlockBytes)
		done := served + l.cfg.HitLatency
		if accept > done {
			done = accept
		}
		return done
	}

	l.Stats.Loads++
	served := l.acquireBank(now, blockAddr)
	if ln := l.arr.lookup(blockAddr); ln != nil {
		hit := served + l.cfg.HitLatency
		if ln.ready > hit {
			// Fill still in flight from DRAM: merge into it.
			l.Stats.MSHRMerges++
			return ln.ready
		}
		l.Stats.Hits++
		return hit
	}
	l.Stats.Misses++
	if ready, ok := l.mshr.outstanding(blockAddr, now); ok {
		// Evicted while its fill is outstanding: merge, no new traffic.
		l.Stats.MSHRMerges++
		return ready
	}
	ready := l.port.Reserve(served, l.mem.BlockBytes)
	l.Stats.BytesFromMem += uint64(l.mem.BlockBytes)
	l.mshr.insert(blockAddr, ready)
	l.mshr.prune(now)
	if l.arr.fill(blockAddr, ready) {
		l.Stats.Evictions++
	}
	return ready
}
