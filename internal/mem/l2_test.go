package mem

import "testing"

// tinyL2 is a 4-set, 2-way, 2-bank L2 over 128-byte blocks: 2 KB.
func tinyL2() (*L2, Config) {
	mc := Default()
	l2 := NewL2(L2Config{
		Bytes: 2 * 1024, Ways: 2, Banks: 2,
		HitLatency: 10, BytesPerCycle: 32,
	}, mc)
	return l2, mc
}

func TestL2ValidateGeometry(t *testing.T) {
	ok := DefaultL2()
	if err := ok.Validate(128); err != nil {
		t.Fatal(err)
	}
	bad := []L2Config{
		{Bytes: 0, Ways: 1, Banks: 1, BytesPerCycle: 1},
		{Bytes: 1024, Ways: 3, Banks: 1, BytesPerCycle: 1}, // 1024 % (128*3) != 0
		{Bytes: 1024, Ways: 2, Banks: 3, BytesPerCycle: 1}, // 1024 % (128*2*3) != 0
		{Bytes: 1024, Ways: 2, Banks: 2, BytesPerCycle: 0}, // no bandwidth
		{Bytes: 1024, Ways: 2, Banks: 2, HitLatency: -1, BytesPerCycle: 1},
	}
	for _, c := range bad {
		if err := c.Validate(128); err == nil {
			t.Errorf("config %+v must be rejected", c)
		}
	}
}

func TestL2MissThenHit(t *testing.T) {
	l2, mc := tinyL2()
	miss := l2.Access(0, 0, false)
	if want := mc.MemLatency; miss != want {
		t.Errorf("cold miss ready at %d, want %d", miss, want)
	}
	hit := l2.Access(miss, 0, false)
	if want := miss + 10; hit != want {
		t.Errorf("hit ready at %d, want %d", hit, want)
	}
	if l2.Stats.Misses != 1 || l2.Stats.Hits != 1 {
		t.Errorf("stats = %+v", l2.Stats)
	}
	if l2.Stats.BytesFromMem != 128 {
		t.Errorf("BytesFromMem = %d", l2.Stats.BytesFromMem)
	}
}

func TestL2MSHRMerge(t *testing.T) {
	l2, _ := tinyL2()
	first := l2.Access(0, 0, false)
	// Second request for the same in-flight block: merged, no new DRAM
	// traffic.
	second := l2.Access(1, 0, false)
	if second != first {
		t.Errorf("merged request ready at %d, want the fill's %d", second, first)
	}
	if l2.Stats.MSHRMerges != 1 || l2.Stats.BytesFromMem != 128 {
		t.Errorf("stats = %+v", l2.Stats)
	}
}

func TestL2Eviction(t *testing.T) {
	l2, _ := tinyL2()
	// 4 sets x 2 ways x 2 banks? nsets = 2048/(128*2) = 8 sets total;
	// blocks that map to the same set are 8*128 bytes apart. Fill 3 of
	// them: third fill evicts the LRU first.
	for i, addr := range []uint32{0, 8 * 128, 16 * 128} {
		l2.Access(int64(1000*i), addr, false)
	}
	if l2.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", l2.Stats.Evictions)
	}
	// The evicted block misses again; the survivor still hits.
	l2.Access(5000, 8*128, false)
	if l2.Stats.Hits != 1 {
		t.Errorf("hits = %d, want 1 (survivor)", l2.Stats.Hits)
	}
}

func TestL2StoreWriteThrough(t *testing.T) {
	l2, _ := tinyL2()
	l2.Access(0, 0, true)
	if l2.Stats.Stores != 1 || l2.Stats.BytesToMem != 128 {
		t.Errorf("stats = %+v", l2.Stats)
	}
	// No-allocate: the next load misses.
	l2.Access(10, 0, false)
	if l2.Stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 (stores must not allocate)", l2.Stats.Misses)
	}
}

func TestL2BankConflicts(t *testing.T) {
	l2, _ := tinyL2()
	// Same bank (bank = block % 2): blocks 0 and 2. Service time is
	// 128/32 = 4 cycles, so the second same-cycle access stalls 4.
	l2.Access(0, 0, false)
	l2.Access(0, 2*128, false)
	if l2.Stats.BankStalls != 4 {
		t.Errorf("BankStalls = %d, want 4", l2.Stats.BankStalls)
	}
	// Different bank: no added stall.
	before := l2.Stats.BankStalls
	l2.Access(0, 1*128, false)
	if l2.Stats.BankStalls != before {
		t.Errorf("cross-bank access added stalls: %d -> %d", before, l2.Stats.BankStalls)
	}
}

func TestL2StatsMerge(t *testing.T) {
	a := L2Stats{Loads: 1, Stores: 2, Hits: 3, Misses: 4, MSHRMerges: 5,
		Evictions: 6, BankStalls: 7, BytesFromMem: 8, BytesToMem: 9}
	b := a
	a.Merge(&b)
	want := L2Stats{Loads: 2, Stores: 4, Hits: 6, Misses: 8, MSHRMerges: 10,
		Evictions: 12, BankStalls: 14, BytesFromMem: 16, BytesToMem: 18}
	if a != want {
		t.Errorf("merged = %+v, want %+v", a, want)
	}
}

func TestL2HitRate(t *testing.T) {
	s := L2Stats{}
	if s.HitRate() != 0 {
		t.Error("zero stats must have zero hit rate")
	}
	s = L2Stats{Loads: 4, Hits: 3}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %g", got)
	}
}

// lowerCall is one transaction a test Lower observed.
type lowerCall struct {
	Cycle int64
	Block uint32
	Store bool
}

// fixedLower stamps a constant extra latency, for hierarchy routing
// tests.
type fixedLower struct {
	calls []lowerCall
	l     int64
}

func (f *fixedLower) Access(now int64, store bool, block uint32) int64 {
	f.calls = append(f.calls, lowerCall{Cycle: now, Block: block, Store: store})
	return now + f.l
}

func TestHierarchyRoutesThroughLower(t *testing.T) {
	h := NewHierarchy(Default())
	low := &fixedLower{l: 77}
	h.SetLower(low)
	if got := h.Load(0, 0); got != 77 {
		t.Errorf("miss ready = %d, want the lower level's 77", got)
	}
	h.Store(5, 128)
	if len(low.calls) != 2 || low.calls[0].Store || !low.calls[1].Store {
		t.Errorf("lower calls = %+v", low.calls)
	}
	// A hit must not consult the lower level.
	n := len(low.calls)
	if got := h.Load(200, 0); got != 203 {
		t.Errorf("hit ready = %d, want 203", got)
	}
	if len(low.calls) != n {
		t.Error("L1 hit reached the lower level")
	}
}

// TestStoreWriteBuffer pins the finite write buffer in front of a
// modeled lower level: each store occupies an entry until the level
// below drains it, and a store arriving at a full buffer is accepted —
// and retired by the LSU — only when the oldest entry frees. Without a
// lower level (the flat DRAM path) or with StoreQueue 0, stores stay
// ungated as in the seed.
func TestStoreWriteBuffer(t *testing.T) {
	cfg := Default()
	cfg.StoreQueue = 2
	h := NewHierarchy(cfg)
	h.SetLower(&fixedLower{l: 100}) // each store drains 100 cycles after acceptance
	if r := h.Store(0, 0); r != cfg.HitLatency {
		t.Errorf("first store retire = %d, want ungated %d", r, cfg.HitLatency)
	}
	if r := h.Store(0, 128); r != cfg.HitLatency {
		t.Errorf("second store retire = %d, want ungated %d", r, cfg.HitLatency)
	}
	// Buffer full: the third store waits for the first drain at 100.
	if r := h.Store(0, 256); r != 100+cfg.HitLatency {
		t.Errorf("third store retire = %d, want %d (oldest drain + hit latency)", r, 100+cfg.HitLatency)
	}
	if h.Stats.StoreQueueStalls != 100 {
		t.Errorf("StoreQueueStalls = %d, want 100", h.Stats.StoreQueueStalls)
	}

	flat := NewHierarchy(cfg) // no lower level: never gated
	for i := 0; i < 5; i++ {
		if r := flat.Store(0, 0); r != cfg.HitLatency {
			t.Fatalf("flat store %d retire = %d, want %d", i, r, cfg.HitLatency)
		}
	}
	if flat.Stats.StoreQueueStalls != 0 {
		t.Errorf("flat path accumulated %d store-queue stalls", flat.Stats.StoreQueueStalls)
	}

	c0 := Default()
	c0.StoreQueue = 0 // buffer disabled: lower consulted, never gated
	h0 := NewHierarchy(c0)
	h0.SetLower(&fixedLower{l: 500})
	for i := 0; i < 5; i++ {
		if r := h0.Store(0, 0); r != c0.HitLatency {
			t.Fatalf("unbuffered store %d retire = %d, want %d", i, r, c0.HitLatency)
		}
	}
	if h0.Stats.StoreQueueStalls != 0 {
		t.Errorf("StoreQueue 0 accumulated %d stalls", h0.Stats.StoreQueueStalls)
	}
}
