// Package mem models the SM-side memory hierarchy of the paper's
// baseline (Table 2): a 48 KB 6-way set-associative L1 data cache with
// 128-byte blocks and 3-cycle hit latency, in front of a
// throughput-limited constant-latency memory (10 GB/s and 330 ns at
// 1 GHz, following the methodology of Gebhart et al. that the paper
// adopts). The package also provides the LSU's intra-wave coalescer,
// which merges the parallel accesses of a 32-lane wave into unique
// 128-byte transactions; partial conflicts are replayed by the pipeline
// with updated activity masks, one transaction per LSU cycle.
package mem

import (
	"fmt"
	"math"
)

// Config collects the memory-hierarchy parameters.
type Config struct {
	L1Bytes       int   // total L1 capacity
	L1Ways        int   // associativity
	BlockBytes    int   // cache block / memory transaction size
	HitLatency    int64 // L1 hit latency in cycles
	BytesPerCycle float64
	MemLatency    int64 // DRAM round-trip latency in cycles
}

// Default returns the paper's Table 2 memory configuration.
func Default() Config {
	return Config{
		L1Bytes:       48 * 1024,
		L1Ways:        6,
		BlockBytes:    128,
		HitLatency:    3,
		BytesPerCycle: 10, // 10 GB/s at 1 GHz
		MemLatency:    330,
	}
}

// Stats counts memory-system events.
type Stats struct {
	Loads             uint64 // load transactions presented to the L1
	Stores            uint64 // store transactions
	Hits              uint64
	Misses            uint64
	MSHRMerges        uint64 // misses merged into an outstanding fill
	BytesFromMem      uint64
	BytesToMem        uint64
	PeakOutstanding   int // max simultaneous outstanding fills
	Evictions         uint64
	CoalescedAccesses uint64 // lanes served by all transactions
	Transactions      uint64 // unique transactions after coalescing
}

// Merge folds another hierarchy's statistics into s: counters add,
// PeakOutstanding takes the maximum. Used by the device layer to
// combine per-SM runs deterministically.
func (s *Stats) Merge(o *Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.MSHRMerges += o.MSHRMerges
	s.BytesFromMem += o.BytesFromMem
	s.BytesToMem += o.BytesToMem
	if o.PeakOutstanding > s.PeakOutstanding {
		s.PeakOutstanding = o.PeakOutstanding
	}
	s.Evictions += o.Evictions
	s.CoalescedAccesses += o.CoalescedAccesses
	s.Transactions += o.Transactions
}

type line struct {
	tag   uint32
	valid bool
	lru   uint64
	ready int64 // cycle the fill data actually arrives (hit-under-fill)
}

// Hierarchy is one SM's view of the memory system. It is purely a timing
// model: data values live in the launch's memory image.
type Hierarchy struct {
	cfg   Config
	sets  [][]line
	nsets uint32
	tick  uint64 // LRU clock

	// DRAM port: the cycle (fractional) at which the port next frees.
	portFree float64

	// Outstanding fills by block address.
	mshr map[uint32]int64

	Stats Stats
}

// NewHierarchy builds a hierarchy for cfg. It panics on nonsensical
// geometry (internal configuration error, not user input).
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.BlockBytes <= 0 || cfg.L1Ways <= 0 || cfg.L1Bytes%(cfg.BlockBytes*cfg.L1Ways) != 0 {
		panic(fmt.Sprintf("mem: invalid L1 geometry %+v", cfg))
	}
	nsets := cfg.L1Bytes / (cfg.BlockBytes * cfg.L1Ways)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.L1Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.L1Ways : (i+1)*cfg.L1Ways]
	}
	return &Hierarchy{
		cfg:   cfg,
		sets:  sets,
		nsets: uint32(nsets),
		mshr:  make(map[uint32]int64),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// BlockAddr returns the block-aligned address containing addr.
func (h *Hierarchy) BlockAddr(addr uint32) uint32 {
	return addr &^ uint32(h.cfg.BlockBytes-1)
}

func (h *Hierarchy) setIndex(blockAddr uint32) uint32 {
	return (blockAddr / uint32(h.cfg.BlockBytes)) % h.nsets
}

func (h *Hierarchy) tag(blockAddr uint32) uint32 {
	return blockAddr / uint32(h.cfg.BlockBytes) / h.nsets
}

// lookup probes the L1 and updates LRU on hit, returning the line.
func (h *Hierarchy) lookup(blockAddr uint32) *line {
	h.tick++
	set := h.sets[h.setIndex(blockAddr)]
	tag := h.tag(blockAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = h.tick
			return &set[i]
		}
	}
	return nil
}

// fill allocates blockAddr in the L1, evicting LRU. ready is the cycle
// the fill data arrives; accesses before then are hits-under-fill and
// wait for it.
func (h *Hierarchy) fill(blockAddr uint32, ready int64) {
	h.tick++
	set := h.sets[h.setIndex(blockAddr)]
	tag := h.tag(blockAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		h.Stats.Evictions++
	}
	set[victim] = line{tag: tag, valid: true, lru: h.tick, ready: ready}
}

// dramAccess reserves port bandwidth for one transaction starting no
// earlier than now and returns the cycle its data returns.
func (h *Hierarchy) dramAccess(now int64, bytes int) int64 {
	start := math.Max(float64(now), h.portFree)
	h.portFree = start + float64(bytes)/h.cfg.BytesPerCycle
	return int64(math.Ceil(start)) + h.cfg.MemLatency
}

// Load presents one load transaction for blockAddr at cycle now and
// returns the cycle at which its data is available. An access to a line
// whose fill is still in flight waits for the fill (hit-under-fill).
func (h *Hierarchy) Load(now int64, blockAddr uint32) int64 {
	h.Stats.Loads++
	if l := h.lookup(blockAddr); l != nil {
		hit := now + h.cfg.HitLatency
		if l.ready > hit {
			// Data still in flight from DRAM: merge into the fill.
			h.Stats.MSHRMerges++
			return l.ready
		}
		h.Stats.Hits++
		return hit
	}
	h.Stats.Misses++
	if ready, ok := h.mshr[blockAddr]; ok && ready > now {
		// The line was evicted while its fill is still outstanding:
		// merge into the fill without spending more bandwidth.
		h.Stats.MSHRMerges++
		return ready
	}
	ready := h.dramAccess(now, h.cfg.BlockBytes)
	h.Stats.BytesFromMem += uint64(h.cfg.BlockBytes)
	h.mshr[blockAddr] = ready
	if n := h.pruneMSHR(now); n > h.Stats.PeakOutstanding {
		h.Stats.PeakOutstanding = n
	}
	h.fill(blockAddr, ready)
	return ready
}

// Store presents one store transaction (write-through, no-allocate on
// miss; hits refresh the line) and returns the cycle the LSU may retire
// it. Store data does not stall dependents, but the transaction consumes
// memory bandwidth.
func (h *Hierarchy) Store(now int64, blockAddr uint32) int64 {
	h.Stats.Stores++
	h.lookup(blockAddr) // refresh LRU if present
	h.dramAccess(now, h.cfg.BlockBytes)
	h.Stats.BytesToMem += uint64(h.cfg.BlockBytes)
	return now + h.cfg.HitLatency
}

// Probe reports whether blockAddr is present with its data arrived by
// cycle now, without touching LRU state or statistics.
func (h *Hierarchy) Probe(now int64, blockAddr uint32) bool {
	set := h.sets[h.setIndex(blockAddr)]
	tag := h.tag(blockAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set[i].ready <= now
		}
	}
	return false
}

func (h *Hierarchy) pruneMSHR(now int64) int {
	n := 0
	for b, ready := range h.mshr {
		if ready <= now {
			delete(h.mshr, b)
		} else {
			n++
		}
	}
	return n
}

// Coalesce merges the active lanes' addresses in [lo, hi) into unique
// block-aligned transactions, preserving first-touch order (the order in
// which replays are issued). It appends to dst and returns it.
func Coalesce(dst []uint32, addrs []uint32, mask uint64, lo, hi int, blockBytes uint32) []uint32 {
	for lane := lo; lane < hi && lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		b := addrs[lane] &^ (blockBytes - 1)
		seen := false
		for _, d := range dst {
			if d == b {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, b)
		}
	}
	return dst
}
