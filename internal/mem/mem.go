// Package mem models the SM-side memory hierarchy of the paper's
// baseline (Table 2): a 48 KB 6-way set-associative L1 data cache with
// 128-byte blocks and 3-cycle hit latency, in front of a
// throughput-limited constant-latency memory (10 GB/s and 330 ns at
// 1 GHz, following the methodology of Gebhart et al. that the paper
// adopts). The package also provides the LSU's intra-wave coalescer,
// which merges the parallel accesses of a 32-lane wave into unique
// 128-byte transactions; partial conflicts are replayed by the pipeline
// with updated activity masks, one transaction per LSU cycle.
//
// For multi-SM devices the package additionally models a shared,
// banked, MSHR-backed L2 (see L2 and L2Config) that the device layer
// places between every SM's L1 and the DRAM port, reached through the
// interconnect of package noc. An L1 Hierarchy talks to it through the
// Lower interface (SetLower): every miss fill and write-through store
// is presented to the lower level inline, at the cycle it leaves the
// L1, and the returned ready time flows straight back into warp
// wake-up. With a lower level attached the L1 also models a finite
// store write buffer (Config.StoreQueue): a store occupies an entry
// until the level below drains it, and when every entry is busy the
// next store's acceptance — and the LSU that issued it — waits for the
// oldest drain, so store traffic exerts the same bandwidth back-pressure
// as loads. Under the default flat-latency model the lower level and
// the write buffer stay disabled and timing is unchanged from the seed.
package mem

import (
	"repro/internal/noc"
)

// Config collects the memory-hierarchy parameters.
type Config struct {
	L1Bytes       int   // total L1 capacity
	L1Ways        int   // associativity
	BlockBytes    int   // cache block / memory transaction size
	HitLatency    int64 // L1 hit latency in cycles
	BytesPerCycle float64
	MemLatency    int64 // DRAM round-trip latency in cycles

	// StoreQueue is the number of L1 write-buffer entries in front of a
	// modeled lower level (SetLower): each write-through store occupies
	// an entry until the lower level drains it, and a store arriving at
	// a full buffer is accepted only when the oldest entry frees, which
	// the LSU observes as back-pressure. 0 disables the buffer; the
	// flat-latency DRAM path never gates stores regardless.
	StoreQueue int
}

// Default returns the paper's Table 2 memory configuration.
func Default() Config {
	return Config{
		L1Bytes:       48 * 1024,
		L1Ways:        6,
		BlockBytes:    128,
		HitLatency:    3,
		BytesPerCycle: 10, // 10 GB/s at 1 GHz
		MemLatency:    330,
		StoreQueue:    8,
	}
}

// Stats counts memory-system events.
type Stats struct {
	Loads             uint64 // load transactions presented to the L1
	Stores            uint64 // store transactions
	Hits              uint64
	Misses            uint64
	MSHRMerges        uint64 // misses merged into an outstanding fill
	BytesFromMem      uint64
	BytesToMem        uint64
	PeakOutstanding   int // max simultaneous outstanding fills
	Evictions         uint64
	CoalescedAccesses uint64 // lanes served by all transactions
	Transactions      uint64 // unique transactions after coalescing

	// StoreQueueStalls is the total cycles stores waited for a free
	// write-buffer entry (only possible with a lower level attached and
	// Config.StoreQueue > 0; always zero under the flat DRAM model).
	StoreQueueStalls uint64

	// L2 and NoC hold the shared-memory-system counters when the device
	// models the L1→NoC→L2→DRAM hierarchy (WithL2/WithInterconnect);
	// they stay zero under the default flat-latency DRAM model. For
	// partitioned launches they are filled at the device level from the
	// one shared L2 and crossbar every wave accessed inline, so per-wave
	// Stats carry only the L1-side counters.
	L2  L2Stats
	NoC noc.Stats
}

// Merge folds another hierarchy's statistics into s: counters add,
// PeakOutstanding takes the maximum. Used by the device layer to
// combine per-SM runs deterministically.
func (s *Stats) Merge(o *Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.MSHRMerges += o.MSHRMerges
	s.BytesFromMem += o.BytesFromMem
	s.BytesToMem += o.BytesToMem
	if o.PeakOutstanding > s.PeakOutstanding {
		s.PeakOutstanding = o.PeakOutstanding
	}
	s.Evictions += o.Evictions
	s.CoalescedAccesses += o.CoalescedAccesses
	s.Transactions += o.Transactions
	s.StoreQueueStalls += o.StoreQueueStalls
	s.L2.Merge(&o.L2)
	s.NoC.Merge(&o.NoC)
}

// Lower services the traffic an L1 sends below itself — load-miss
// fills and write-through stores — in place of the hierarchy's
// built-in flat-latency DRAM port. The device wires an interconnect
// port backed by the shared L2 here. Access is called with the cycle
// the transaction leaves the L1 and returns, for loads, the cycle its
// data is available back at the L1; for stores, the cycle the level
// below has drained the store (the write buffer holds its entry until
// then). A Lower is driven from the simulation goroutine; a shared
// Lower must only ever see one access stream at a time.
type Lower interface {
	Access(now int64, store bool, blockAddr uint32) int64
}

// Hierarchy is one SM's view of the memory system. It is purely a timing
// model: data values live in the launch's memory image.
type Hierarchy struct {
	cfg  Config
	arr  cacheArray
	port noc.Link // flat-latency DRAM port (unused when lower is set)
	mshr mshrTable

	// lower, when non-nil, services miss fills and write-throughs in
	// place of the flat-latency DRAM port (the modeled NoC+L2 path).
	lower Lower

	// storeBusy is the write buffer in front of lower: a ring of
	// drain-completion cycles, one per entry, with storeHead the oldest.
	// Active only when lower is set and Config.StoreQueue > 0.
	storeBusy []int64
	storeHead int

	Stats Stats
}

// NewHierarchy builds a hierarchy for cfg. It panics on nonsensical
// geometry (internal configuration error, not user input).
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		arr:  newCacheArray(cfg.L1Bytes, cfg.L1Ways, cfg.BlockBytes),
		port: noc.NewLink(cfg.BytesPerCycle, cfg.MemLatency),
		mshr: mshrTable{},
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// SetLower routes the L1's miss fills and write-throughs through l
// instead of the flat-latency DRAM port, and arms the store write
// buffer (Config.StoreQueue). Pass nil to restore the default.
func (h *Hierarchy) SetLower(l Lower) {
	h.lower = l
	if l != nil && h.cfg.StoreQueue > 0 && h.storeBusy == nil {
		h.storeBusy = make([]int64, h.cfg.StoreQueue)
	}
}

// below sends one transaction to the next level — the configured Lower
// or the built-in DRAM port.
func (h *Hierarchy) below(now int64, store bool, blockAddr uint32) int64 {
	if h.lower != nil {
		return h.lower.Access(now, store, blockAddr)
	}
	return h.port.Reserve(now, h.cfg.BlockBytes)
}

// BlockAddr returns the block-aligned address containing addr.
func (h *Hierarchy) BlockAddr(addr uint32) uint32 {
	return addr &^ uint32(h.cfg.BlockBytes-1)
}

// Load presents one load transaction for blockAddr at cycle now and
// returns the cycle at which its data is available. An access to a line
// whose fill is still in flight waits for the fill (hit-under-fill).
func (h *Hierarchy) Load(now int64, blockAddr uint32) int64 {
	h.Stats.Loads++
	if l := h.arr.lookup(blockAddr); l != nil {
		hit := now + h.cfg.HitLatency
		if l.ready > hit {
			// Data still in flight from DRAM: merge into the fill.
			h.Stats.MSHRMerges++
			return l.ready
		}
		h.Stats.Hits++
		return hit
	}
	h.Stats.Misses++
	if ready, ok := h.mshr.outstanding(blockAddr, now); ok {
		// The line was evicted while its fill is still outstanding:
		// merge into the fill without spending more bandwidth.
		h.Stats.MSHRMerges++
		return ready
	}
	ready := h.below(now, false, blockAddr)
	h.Stats.BytesFromMem += uint64(h.cfg.BlockBytes)
	h.mshr.insert(blockAddr, ready)
	if n := h.mshr.prune(now); n > h.Stats.PeakOutstanding {
		h.Stats.PeakOutstanding = n
	}
	if h.arr.fill(blockAddr, ready) {
		h.Stats.Evictions++
	}
	return ready
}

// Store presents one store transaction (write-through, no-allocate on
// miss; hits refresh the line) and returns the cycle the LSU may retire
// it. Store data does not stall dependents, but the transaction consumes
// memory bandwidth — and, with a lower level attached, a write-buffer
// entry: a store arriving at a full buffer is accepted only once the
// oldest entry drains, which the returned retire cycle carries back to
// the LSU as back-pressure. The flat-latency path never gates stores.
//
//sbwi:hotpath
func (h *Hierarchy) Store(now int64, blockAddr uint32) int64 {
	h.Stats.Stores++
	h.arr.lookup(blockAddr) // refresh LRU if present
	issue := now
	if h.storeBusy != nil {
		if t := h.storeBusy[h.storeHead]; t > issue {
			h.Stats.StoreQueueStalls += uint64(t - issue)
			issue = t
		}
	}
	drained := h.below(issue, true, blockAddr)
	if h.storeBusy != nil {
		h.storeBusy[h.storeHead] = drained
		h.storeHead++
		if h.storeHead == len(h.storeBusy) {
			h.storeHead = 0
		}
	}
	h.Stats.BytesToMem += uint64(h.cfg.BlockBytes)
	return issue + h.cfg.HitLatency
}

// Probe reports whether blockAddr is present with its data arrived by
// cycle now, without touching LRU state or statistics.
func (h *Hierarchy) Probe(now int64, blockAddr uint32) bool {
	l := h.arr.probe(blockAddr)
	return l != nil && l.ready <= now
}

// Coalesce merges the active lanes' addresses in [lo, hi) into unique
// block-aligned transactions, preserving first-touch order (the order in
// which replays are issued). It appends to dst and returns it.
func Coalesce(dst []uint32, addrs []uint32, mask uint64, lo, hi int, blockBytes uint32) []uint32 {
	for lane := lo; lane < hi && lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		b := addrs[lane] &^ (blockBytes - 1)
		seen := false
		for _, d := range dst {
			if d == b {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, b)
		}
	}
	return dst
}
