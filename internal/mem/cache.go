package mem

import (
	"fmt"
)

// This file holds the machinery shared by the two cache levels: the
// set-associative tag array with LRU replacement and hit-under-fill
// ready times, and the per-block MSHR table. Hierarchy (the per-SM L1)
// and L2 (the device-shared second level) differ only in geometry,
// banking and statistics, so these semantics live here exactly once;
// the bandwidth-limited service queue behind DRAM ports and L2 banks
// is likewise a single primitive, noc.Link.

type line struct {
	tag   uint32
	valid bool
	lru   uint64
	ready int64 // cycle the fill data actually arrives (hit-under-fill)
}

// cacheArray is a set-associative tag store.
type cacheArray struct {
	sets  [][]line
	nsets uint32
	block uint32
	tick  uint64 // LRU clock
}

// newCacheArray builds the tag store, panicking on geometry that does
// not tile (internal configuration error — user input is validated by
// the config types before construction).
func newCacheArray(totalBytes, ways, blockBytes int) cacheArray {
	if blockBytes <= 0 || ways <= 0 || totalBytes%(blockBytes*ways) != 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry %dB / %d ways / %dB blocks",
			totalBytes, ways, blockBytes))
	}
	nsets := totalBytes / (blockBytes * ways)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways]
	}
	return cacheArray{sets: sets, nsets: uint32(nsets), block: uint32(blockBytes)}
}

func (c *cacheArray) setIndex(blockAddr uint32) uint32 {
	return (blockAddr / c.block) % c.nsets
}

func (c *cacheArray) tag(blockAddr uint32) uint32 {
	return blockAddr / c.block / c.nsets
}

// lookup probes the array and refreshes LRU on hit.
func (c *cacheArray) lookup(blockAddr uint32) *line {
	c.tick++
	set := c.sets[c.setIndex(blockAddr)]
	tag := c.tag(blockAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			return &set[i]
		}
	}
	return nil
}

// probe reports the line without touching LRU state.
func (c *cacheArray) probe(blockAddr uint32) *line {
	set := c.sets[c.setIndex(blockAddr)]
	tag := c.tag(blockAddr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// fill allocates blockAddr, evicting LRU, and reports whether a valid
// line was displaced. ready is the cycle the fill data arrives;
// accesses before then are hits-under-fill and wait for it.
func (c *cacheArray) fill(blockAddr uint32, ready int64) (evicted bool) {
	c.tick++
	set := c.sets[c.setIndex(blockAddr)]
	tag := c.tag(blockAddr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = set[victim].valid
	set[victim] = line{tag: tag, valid: true, lru: c.tick, ready: ready}
	return evicted
}

// mshrTable tracks outstanding fills by block address. It is a small
// in-place slice rather than a map: the population is bounded by the
// number of simultaneously outstanding fills (tens at most), and prune
// runs on every miss, where iterating a map that once grew large costs
// O(capacity) instead of O(live).
type mshrTable struct {
	fills []mshrFill
}

type mshrFill struct {
	block uint32
	ready int64
}

// outstanding looks up an in-flight fill still pending at cycle now.
func (m *mshrTable) outstanding(blockAddr uint32, now int64) (int64, bool) {
	for i := range m.fills {
		if m.fills[i].block == blockAddr {
			return m.fills[i].ready, m.fills[i].ready > now
		}
	}
	return 0, false
}

// insert records a fill, replacing any stale entry for the same block.
func (m *mshrTable) insert(blockAddr uint32, ready int64) {
	for i := range m.fills {
		if m.fills[i].block == blockAddr {
			m.fills[i].ready = ready
			return
		}
	}
	m.fills = append(m.fills, mshrFill{block: blockAddr, ready: ready})
}

// prune drops completed fills and returns how many remain in flight.
func (m *mshrTable) prune(now int64) int {
	out := m.fills[:0]
	for _, f := range m.fills {
		if f.ready > now {
			out = append(out, f)
		}
	}
	m.fills = out
	return len(out)
}
