package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	h := NewHierarchy(Default())
	// 48K / (128 * 6) = 64 sets.
	if h.arr.nsets != 64 {
		t.Errorf("sets = %d, want 64", h.arr.nsets)
	}
	if h.BlockAddr(0x12345) != 0x12345&^127 {
		t.Errorf("BlockAddr = %#x", h.BlockAddr(0x12345))
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHierarchy(Config{L1Bytes: 1000, L1Ways: 3, BlockBytes: 128})
}

func TestHitAfterMiss(t *testing.T) {
	h := NewHierarchy(Default())
	r1 := h.Load(0, 0)
	if r1 != 330 {
		t.Errorf("cold miss ready = %d, want 330", r1)
	}
	r2 := h.Load(400, 0)
	if r2 != 403 {
		t.Errorf("hit ready = %d, want 403", r2)
	}
	if h.Stats.Hits != 1 || h.Stats.Misses != 1 {
		t.Errorf("stats = %+v", h.Stats)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	h := NewHierarchy(Default())
	// Two distinct cold misses at the same cycle: the second waits for
	// port bandwidth (128 B / 10 B-per-cycle = 12.8 cycles).
	r1 := h.Load(0, 0)
	r2 := h.Load(0, 128)
	if r1 != 330 {
		t.Errorf("first = %d", r1)
	}
	if r2 != 330+13 { // ceil(12.8) + 330
		t.Errorf("second = %d, want %d", r2, 343)
	}
	// A third, issued later than the port frees, is limited by latency.
	r3 := h.Load(100, 256)
	if r3 != 430 {
		t.Errorf("third = %d, want 430", r3)
	}
}

func TestMSHRMerge(t *testing.T) {
	h := NewHierarchy(Default())
	r1 := h.Load(0, 0)
	// Re-request the same block while the fill is outstanding. The L1
	// already allocated the line, so this is a hit in our model; force
	// the merge path by evicting first via 6 conflicting fills.
	cfgBlocks := uint32(64 * 128) // one full stride = same set
	for i := uint32(1); i <= 6; i++ {
		h.Load(1, i*cfgBlocks)
	}
	r2 := h.Load(2, 0) // evicted, but fill still in flight -> merge
	if r2 != r1 {
		t.Errorf("merged ready = %d, want %d", r2, r1)
	}
	if h.Stats.MSHRMerges != 1 {
		t.Errorf("merges = %d, want 1", h.Stats.MSHRMerges)
	}
}

func TestLRUEviction(t *testing.T) {
	h := NewHierarchy(Default())
	stride := uint32(64 * 128) // same set each time
	// Fill the 6 ways.
	for i := uint32(0); i < 6; i++ {
		h.Load(int64(i), i*stride)
	}
	// Touch block 0 so block 1 is LRU.
	h.Load(100, 0)
	// A 7th block evicts block 1.
	h.Load(101, 6*stride)
	if h.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", h.Stats.Evictions)
	}
	misses := h.Stats.Misses
	h.Load(5000, 0) // still resident
	if h.Stats.Misses != misses {
		t.Error("block 0 was evicted, want LRU to keep it")
	}
	h.Load(5001, stride) // evicted
	if h.Stats.Misses != misses+1 {
		t.Error("block 1 should have been evicted")
	}
}

func TestStoreWriteThrough(t *testing.T) {
	h := NewHierarchy(Default())
	r := h.Store(0, 0)
	if r != 3 {
		t.Errorf("store retire = %d, want hit latency", r)
	}
	if h.Stats.BytesToMem != 128 {
		t.Errorf("bytes to mem = %d", h.Stats.BytesToMem)
	}
	// Store does not allocate: next load misses.
	h.Load(10, 0)
	if h.Stats.Misses != 1 {
		t.Errorf("store should not allocate; misses = %d", h.Stats.Misses)
	}
	// Store consumes bandwidth: a following load waits for the port.
	h2 := NewHierarchy(Default())
	h2.Store(0, 0)
	r2 := h2.Load(0, 128)
	if r2 != 330+13 {
		t.Errorf("load after store = %d, want 343", r2)
	}
}

func TestCoalesceUnitStride(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i * 4)
	}
	mask := uint64(0xFFFFFFFF)
	tx := Coalesce(nil, addrs, mask, 0, 32, 128)
	if len(tx) != 1 || tx[0] != 0 {
		t.Errorf("unit stride tx = %v, want [0]", tx)
	}
}

func TestCoalesceStrided(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i * 128)
	}
	tx := Coalesce(nil, addrs, 0xFFFFFFFF, 0, 32, 128)
	if len(tx) != 32 {
		t.Errorf("fully divergent tx = %d, want 32", len(tx))
	}
}

func TestCoalesceMaskAndRange(t *testing.T) {
	addrs := make([]uint32, 64)
	for i := range addrs {
		addrs[i] = uint32(i * 4)
	}
	// Only lanes 32..63 (second wave), half masked off.
	tx := Coalesce(nil, addrs, 0xAAAAAAAA00000000, 32, 64, 128)
	// Lanes 33,35,...63 -> addresses 132..252 -> one block (128).
	if len(tx) != 1 || tx[0] != 128 {
		t.Errorf("tx = %v", tx)
	}
	// Empty mask -> no transactions.
	if tx := Coalesce(nil, addrs, 0, 0, 32, 128); len(tx) != 0 {
		t.Errorf("empty mask tx = %v", tx)
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = 256 // all lanes same address
	}
	tx := Coalesce(nil, addrs, 0xFFFFFFFF, 0, 32, 128)
	if len(tx) != 1 || tx[0] != 256 {
		t.Errorf("broadcast tx = %v", tx)
	}
}

// Property: the number of coalesced transactions never exceeds the
// number of active lanes, and every active lane's block is covered.
func TestQuickCoalesceCoverage(t *testing.T) {
	f := func(seed [32]uint16, mask uint32) bool {
		addrs := make([]uint32, 32)
		for i := range addrs {
			addrs[i] = uint32(seed[i]) * 4
		}
		m := uint64(mask)
		tx := Coalesce(nil, addrs, m, 0, 32, 128)
		active := 0
		for lane := 0; lane < 32; lane++ {
			if m&(1<<uint(lane)) == 0 {
				continue
			}
			active++
			found := false
			for _, b := range tx {
				if b == addrs[lane]&^127 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return len(tx) <= active
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: load ready times are monotonically reasonable — a load can
// never complete before its issue cycle plus the hit latency.
func TestQuickLoadLatencyLowerBound(t *testing.T) {
	h := NewHierarchy(Default())
	now := int64(0)
	f := func(addr16 uint16, dt uint8) bool {
		now += int64(dt)
		ready := h.Load(now, uint32(addr16)*128)
		return ready >= now+h.cfg.HitLatency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
