package mem

import (
	"testing"

	"repro/internal/statcheck"
)

// TestStatsMergeContract checks mem.Stats.Merge exhaustively over
// every field by reflection — adding an L1, L2 or NoC counter without
// extending Merge fails here rather than silently dropping numbers in
// merged device results.
func TestStatsMergeContract(t *testing.T) {
	problems := statcheck.CheckMerge(
		func() any { return new(Stats) },
		func(dst, src any) { dst.(*Stats).Merge(src.(*Stats)) },
	)
	for _, p := range problems {
		t.Error(p)
	}
}

// TestL2StatsMergeContract covers the standalone L2Stats merge used by
// code that aggregates L2 instances directly.
func TestL2StatsMergeContract(t *testing.T) {
	problems := statcheck.CheckMerge(
		func() any { return new(L2Stats) },
		func(dst, src any) { dst.(*L2Stats).Merge(src.(*L2Stats)) },
	)
	for _, p := range problems {
		t.Error(p)
	}
}
