// Package area models the hardware cost of SBI and SWI (paper §5.2):
// the storage requirements of every front-end structure (table 3) and
// an analytical area estimate per component (table 4).
//
// The paper synthesized RTL with a production compiler and scaled the
// results to Fermi's 40 nm process. We cannot run RTL synthesis, so the
// substitution (recorded in DESIGN.md) is an analytical model: bit
// counts are computed from first principles for any geometry, and area
// is bits x a per-component, per-organization coefficient calibrated so
// the paper's default geometry reproduces the paper's table 4. Changing
// the geometry (warp count, scoreboard depth, CCT capacity...) scales
// the estimates linearly in the affected structure.
package area

import "fmt"

// Design identifies a column of tables 3 and 4.
type Design int

// Designs in paper column order.
const (
	Baseline Design = iota
	SBI
	SWI
	SBISWI
	numDesigns
)

func (d Design) String() string {
	switch d {
	case Baseline:
		return "Baseline"
	case SBI:
		return "SBI"
	case SWI:
		return "SWI"
	case SBISWI:
		return "SBI+SWI"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Designs lists all columns.
func Designs() []Design { return []Design{Baseline, SBI, SWI, SBISWI} }

// Geometry holds the structure-sizing parameters. The paper's SM
// (table 3) tracks 48 32-wide warps in two pools for the baseline and
// 24 64-wide warps for the interweaving designs (1536 threads either
// way).
type Geometry struct {
	PoolWarps      int // warps per pool, baseline (2 pools)
	WideWarps      int // 64-wide warps, interweaving designs
	WarpWidth      int // wide-warp width
	BaseWidth      int // baseline warp width
	PCBits         int
	ScoreEntries   int // scoreboard entries per warp
	RegIDBits      int // destination-register identifier bits
	StackBlocks    int // baseline reconvergence stack: blocks per warp
	StackBlockBits int
	CCTEntries     int // cold context table entries (shared)
	InsnBits       int // instruction-buffer entry payload
}

// PaperGeometry returns the paper's table-3 sizing.
func PaperGeometry() Geometry {
	return Geometry{
		PoolWarps:      24,
		WideWarps:      24,
		WarpWidth:      64,
		BaseWidth:      32,
		PCBits:         32,
		ScoreEntries:   6,
		RegIDBits:      8,
		StackBlocks:    3,
		StackBlockBits: 256, // 4 entries x 64 bits
		CCTEntries:     128,
		InsnBits:       64,
	}
}

// Component identifies a row of tables 3 and 4.
type Component int

// Components in paper row order.
const (
	RegisterFile Component = iota
	Scoreboard
	Scheduler
	HCT // warp pool / hot context table
	CCT // reconvergence stack / cold context table
	InsnBuffer
	numComponents
)

func (c Component) String() string {
	switch c {
	case RegisterFile:
		return "RF"
	case Scoreboard:
		return "Scoreboard"
	case Scheduler:
		return "Scheduler"
	case HCT:
		return "Warp pool/HCT"
	case CCT:
		return "Stack/CCT"
	case InsnBuffer:
		return "Insn. buffer"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Components lists all rows.
func Components() []Component {
	return []Component{RegisterFile, Scoreboard, Scheduler, HCT, CCT, InsnBuffer}
}

// Storage is one table-3 cell: a structural description and the bit
// count it implies.
type Storage struct {
	Desc string
	Bits int
}

// StorageOf computes the table-3 cell for (component, design) under g.
func StorageOf(g Geometry, c Component, d Design) Storage {
	switch c {
	case RegisterFile:
		if d == Baseline {
			return Storage{Desc: "Single-decoder"}
		}
		return Storage{Desc: "Segmented"}

	case Scoreboard:
		// Entry: destination register ID plus in-flight bookkeeping.
		base := g.ScoreEntries * g.RegIDBits // 48 bits at defaults
		switch d {
		case Baseline, SWI:
			return Storage{
				Desc: fmt.Sprintf("2x %dx %d-bit", g.PoolWarps, base),
				Bits: 2 * g.PoolWarps * base,
			}
		case SBI:
			// Dependency row over {primary, secondary, cold} per entry,
			// extending each warp's 48 bits to 144 (paper table 3):
			// the matrix state triples the entry.
			bits := 3 * base
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", g.WideWarps, bits),
				Bits: g.WideWarps * bits,
			}
		default: // SBISWI: dual-issue needs a second bank
			bits := 2 * 3 * base
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", g.WideWarps, bits),
				Bits: g.WideWarps * bits,
			}
		}

	case Scheduler:
		switch d {
		case Baseline:
			return Storage{Desc: "Symmetric"}
		case SBI:
			return Storage{Desc: "Warp-split"}
		default:
			return Storage{Desc: "Associative lookup"}
		}

	case HCT:
		ctx := g.PCBits + g.WarpWidth + 8 // PC + mask + CCT head pointer = 104
		switch d {
		case Baseline:
			// Warp pool entry: PC + 32-bit mask = 64 bits.
			bits := g.PCBits + g.BaseWidth
			return Storage{
				Desc: fmt.Sprintf("2x %dx %d-bit", g.PoolWarps, bits),
				Bits: 2 * g.PoolWarps * bits,
			}
		case SWI:
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", g.WideWarps, ctx),
				Bits: g.WideWarps * ctx,
			}
		default:
			// Two hot contexts plus a valid bit: 201 bits.
			bits := 2*(g.PCBits+g.WarpWidth) + 8 + 1
			desc := fmt.Sprintf("%dx %d-bit", g.WideWarps, bits)
			if d == SBISWI {
				desc += ", banked"
			}
			return Storage{Desc: desc, Bits: g.WideWarps * bits}
		}

	case CCT:
		if d == Baseline {
			// Per-warp reconvergence stack in blocks.
			n := 2 * g.PoolWarps * g.StackBlocks
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", n, g.StackBlockBits),
				Bits: n * g.StackBlockBits,
			}
		}
		ctx := g.PCBits + g.WarpWidth + 8
		return Storage{
			Desc: fmt.Sprintf("%dx %d-bit", g.CCTEntries, ctx),
			Bits: g.CCTEntries * ctx,
		}

	case InsnBuffer:
		switch d {
		case Baseline:
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", 2*g.PoolWarps, g.InsnBits),
				Bits: 2 * g.PoolWarps * g.InsnBits,
			}
		case SBI:
			// One entry per warp-split: 2 per warp.
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit", 2*g.WideWarps, g.InsnBits),
				Bits: 2 * g.WideWarps * g.InsnBits,
			}
		case SWI:
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit, dual-ported", g.WideWarps, g.InsnBits),
				Bits: g.WideWarps * g.InsnBits,
			}
		default:
			return Storage{
				Desc: fmt.Sprintf("%dx %d-bit, dual-ported", 2*g.WideWarps, g.InsnBits),
				Bits: 2 * g.WideWarps * g.InsnBits,
			}
		}
	}
	return Storage{}
}

// Coefficients are the calibrated per-bit area costs (µm² per bit at
// 40 nm) and fixed adders (×1000 µm²). They reproduce the paper's
// table 4 at the paper geometry; see the package comment for the
// substitution rationale.
type Coefficients struct {
	ScoreboardBanked float64 // small per-pool banks (dual read ports)
	ScoreboardMono   float64 // single wide array
	HCTBase          float64
	HCTSBI           float64
	HCTSWI           float64
	StackPerBit      float64
	CCTPerBit        float64 // includes sideband-sorter logic
	InsnPerBit       float64
	InsnDualPerBit   float64

	RFSegmentation float64 // fixed: breaking the RF into per-lane banks
	AssocScheduler float64 // fixed: set-associative mask lookup logic
	SMArea         float64 // full SM for overhead percentage (×1000 µm²)
}

// PaperCoefficients returns the calibration that reproduces table 4.
func PaperCoefficients() Coefficients {
	return Coefficients{
		ScoreboardBanked: 38.02,
		ScoreboardMono:   18.98,
		HCTBase:          21.74,
		HCTSBI:           18.35,
		HCTSWI:           17.55,
		StackPerBit:      15.85,
		CCTPerBit:        36.12,
		InsnPerBit:       17.19,
		InsnDualPerBit:   21.81,
		RFSegmentation:   570,
		AssocScheduler:   27.4,
		SMArea:           15600, // 15.6 mm²
	}
}

// AreaOf estimates the table-4 cell in ×1000 µm².
func AreaOf(g Geometry, k Coefficients, c Component, d Design) float64 {
	bits := float64(StorageOf(g, c, d).Bits)
	switch c {
	case RegisterFile:
		if d == Baseline {
			return 0
		}
		return k.RFSegmentation
	case Scoreboard:
		if d == Baseline || d == SWI {
			return bits * k.ScoreboardBanked / 1000
		}
		return bits * k.ScoreboardMono / 1000
	case Scheduler:
		if d == SWI || d == SBISWI {
			return k.AssocScheduler
		}
		return 0
	case HCT:
		switch d {
		case Baseline:
			return bits * k.HCTBase / 1000
		case SWI:
			return bits * k.HCTSWI / 1000
		default:
			return bits * k.HCTSBI / 1000
		}
	case CCT:
		if d == Baseline {
			return bits * k.StackPerBit / 1000
		}
		return bits * k.CCTPerBit / 1000
	case InsnBuffer:
		if d == SWI || d == SBISWI {
			return bits * k.InsnDualPerBit / 1000
		}
		return bits * k.InsnPerBit / 1000
	}
	return 0
}

// Total sums a design's column of table 4 (×1000 µm²).
func Total(g Geometry, k Coefficients, d Design) float64 {
	t := 0.0
	for _, c := range Components() {
		t += AreaOf(g, k, c, d)
	}
	return t
}

// Overhead returns a design's area increase over the baseline
// (×1000 µm²) and as a fraction of the full SM.
func Overhead(g Geometry, k Coefficients, d Design) (abs, frac float64) {
	abs = Total(g, k, d) - Total(g, k, Baseline)
	return abs, abs / k.SMArea
}
