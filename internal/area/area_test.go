package area

import (
	"math"
	"testing"
)

// Table 3's bit counts must match the paper's published organization.
func TestTable3BitCounts(t *testing.T) {
	g := PaperGeometry()
	cases := []struct {
		c    Component
		d    Design
		bits int
		desc string
	}{
		{Scoreboard, Baseline, 2 * 24 * 48, "2x 24x 48-bit"},
		{Scoreboard, SBI, 24 * 144, "24x 144-bit"},
		{Scoreboard, SWI, 2 * 24 * 48, "2x 24x 48-bit"},
		{Scoreboard, SBISWI, 24 * 288, "24x 288-bit"},
		{HCT, Baseline, 2 * 24 * 64, "2x 24x 64-bit"},
		{HCT, SBI, 24 * 201, "24x 201-bit"},
		{HCT, SWI, 24 * 104, "24x 104-bit"},
		{HCT, SBISWI, 24 * 201, "24x 201-bit, banked"},
		{CCT, Baseline, 144 * 256, "144x 256-bit"},
		{CCT, SBI, 128 * 104, "128x 104-bit"},
		{InsnBuffer, Baseline, 48 * 64, "48x 64-bit"},
		{InsnBuffer, SWI, 24 * 64, "24x 64-bit, dual-ported"},
		{InsnBuffer, SBISWI, 48 * 64, "48x 64-bit, dual-ported"},
	}
	for _, tc := range cases {
		s := StorageOf(g, tc.c, tc.d)
		if s.Bits != tc.bits {
			t.Errorf("%s/%s: bits = %d, want %d", tc.c, tc.d, s.Bits, tc.bits)
		}
		if s.Desc != tc.desc {
			t.Errorf("%s/%s: desc = %q, want %q", tc.c, tc.d, s.Desc, tc.desc)
		}
	}
}

// Table 4 must be reproduced within rounding of the paper's numbers.
func TestTable4Areas(t *testing.T) {
	g, k := PaperGeometry(), PaperCoefficients()
	within := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

	cases := []struct {
		c    Component
		d    Design
		want float64
	}{
		{RegisterFile, SBI, 570},
		{Scoreboard, Baseline, 87.6},
		{Scoreboard, SBI, 65.6},
		{Scoreboard, SWI, 87.6},
		{Scoreboard, SBISWI, 131.2},
		{Scheduler, SWI, 27.4},
		{HCT, Baseline, 66.8},
		{HCT, SBI, 88.8},
		{HCT, SWI, 43.8},
		{CCT, Baseline, 584.4},
		{CCT, SBI, 480.8},
		{InsnBuffer, Baseline, 52.8},
		{InsnBuffer, SWI, 33.4},
		{InsnBuffer, SBISWI, 67.4},
	}
	for _, tc := range cases {
		got := AreaOf(g, k, tc.c, tc.d)
		if !within(got, tc.want, 0.5) {
			t.Errorf("%s/%s: area = %.1f, want %.1f", tc.c, tc.d, got, tc.want)
		}
	}

	totals := map[Design]float64{Baseline: 791.6, SBI: 1258, SWI: 1243, SBISWI: 1365.6}
	for d, want := range totals {
		if got := Total(g, k, d); !within(got, want, 3) {
			t.Errorf("total %s = %.1f, want %.1f", d, got, want)
		}
	}

	// Overheads: 3.0%, 2.9%, 3.7% of a 15.6 mm² SM.
	overheads := map[Design]float64{SBI: 0.030, SWI: 0.029, SBISWI: 0.037}
	for d, want := range overheads {
		if _, frac := Overhead(g, k, d); !within(frac, want, 0.001) {
			t.Errorf("overhead %s = %.4f, want %.3f", d, frac, want)
		}
	}
}

// The model must scale: doubling the CCT doubles its bits and area.
func TestGeometryScaling(t *testing.T) {
	g, k := PaperGeometry(), PaperCoefficients()
	big := g
	big.CCTEntries *= 2
	if StorageOf(big, CCT, SBI).Bits != 2*StorageOf(g, CCT, SBI).Bits {
		t.Error("CCT bits must scale with entries")
	}
	if a, b := AreaOf(big, k, CCT, SBI), 2*AreaOf(g, k, CCT, SBI); math.Abs(a-b) > 1e-9 {
		t.Error("CCT area must scale with entries")
	}
	// The baseline stack is unaffected by the CCT parameter.
	if StorageOf(big, CCT, Baseline).Bits != StorageOf(g, CCT, Baseline).Bits {
		t.Error("baseline stack must not depend on CCT entries")
	}
}

func TestStringers(t *testing.T) {
	for _, d := range Designs() {
		if d.String() == "" {
			t.Error("empty design name")
		}
	}
	for _, c := range Components() {
		if c.String() == "" {
			t.Error("empty component name")
		}
	}
}
