// Package statcheck verifies the algebra of statistics Merge methods
// by reflection, exhaustively over every numeric leaf field (including
// nested structs and arrays). It exists so that adding a counter to a
// Stats struct without teaching Merge about it is a test failure, not
// a silently dropped number.
//
// The contract checked for s.Merge(o):
//
//   - Field-exhaustive: every leaf combines as a sum or a maximum —
//     with a=1 and b=2 the merged value must be 3 (sum) or 2 (max),
//     never the untouched 1.
//   - Commutative on values: merging a into b and b into a produce the
//     same totals.
//   - Identity: merging a zero value into s leaves s unchanged, and
//     merging s into a zero value reproduces s.
package statcheck

import (
	"fmt"
	"reflect"
)

// leaf is one numeric field, addressed by its index path.
type leaf struct {
	path []int
	name string
}

// leaves enumerates the numeric leaves of a struct type, failing on
// any field kind it does not understand (so a future non-numeric
// field forces a conscious decision here).
func leaves(t reflect.Type, prefix []int, name string, out *[]leaf, problems *[]string) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			leaves(f.Type, append(append([]int(nil), prefix...), i), name+"."+f.Name, out, problems)
		}
	case reflect.Array:
		for i := 0; i < t.Len(); i++ {
			leaves(t.Elem(), append(append([]int(nil), prefix...), i), fmt.Sprintf("%s[%d]", name, i), out, problems)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		*out = append(*out, leaf{path: prefix, name: name})
	default:
		*problems = append(*problems, fmt.Sprintf("%s: unsupported field kind %s — extend statcheck or the Merge contract", name, t.Kind()))
	}
}

// field resolves a leaf inside an addressable struct value.
func field(v reflect.Value, path []int) reflect.Value {
	for _, i := range path {
		switch v.Kind() {
		case reflect.Struct:
			v = v.Field(i)
		default: // array
			v = v.Index(i)
		}
	}
	return v
}

// set assigns an integer magnitude to a numeric leaf.
func set(v reflect.Value, n int64) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		v.SetFloat(float64(n))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(n)
	default:
		v.SetUint(uint64(n))
	}
}

// get reads a numeric leaf back as an integer magnitude.
func get(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		return int64(v.Float())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return v.Int()
	default:
		return int64(v.Uint())
	}
}

// CheckMerge verifies the Merge contract for the struct type behind
// zero (a factory returning a pointer to a fresh zero value) and merge
// (dst.Merge(src) adapted to untyped pointers). It returns one line
// per violation; an empty slice means the contract holds.
func CheckMerge(zero func() any, merge func(dst, src any)) []string {
	var problems []string
	proto := reflect.TypeOf(zero()).Elem()
	var ls []leaf
	leaves(proto, nil, proto.Name(), &ls, &problems)

	// Per-leaf: a=1 merged with b=2 must yield sum (3) or max (2), in
	// both merge directions.
	for _, l := range ls {
		a, b := zero(), zero()
		set(field(reflect.ValueOf(a).Elem(), l.path), 1)
		set(field(reflect.ValueOf(b).Elem(), l.path), 2)
		merge(a, b)
		got := get(field(reflect.ValueOf(a).Elem(), l.path))
		if got != 3 && got != 2 {
			problems = append(problems, fmt.Sprintf("%s: merge(1, 2) = %d, want 3 (sum) or 2 (max) — counter dropped?", l.name, got))
			continue
		}
		// Reverse direction must agree on the combined value.
		a2, b2 := zero(), zero()
		set(field(reflect.ValueOf(a2).Elem(), l.path), 2)
		set(field(reflect.ValueOf(b2).Elem(), l.path), 1)
		merge(a2, b2)
		if rev := get(field(reflect.ValueOf(a2).Elem(), l.path)); rev != got {
			problems = append(problems, fmt.Sprintf("%s: merge is not commutative: 1⊕2 = %d but 2⊕1 = %d", l.name, got, rev))
		}
	}

	// Identity: a fully populated value survives merging with zero in
	// both directions. Distinct per-leaf magnitudes catch cross-field
	// mixups.
	full := zero()
	for i, l := range ls {
		set(field(reflect.ValueOf(full).Elem(), l.path), int64(i%97)+1)
	}
	want := reflect.ValueOf(full).Elem().Interface()
	merge(full, zero())
	if got := reflect.ValueOf(full).Elem().Interface(); !reflect.DeepEqual(got, want) {
		problems = append(problems, fmt.Sprintf("merging the zero value changed the receiver:\n got %+v\nwant %+v", got, want))
	}
	z := zero()
	merge(z, full)
	if got := reflect.ValueOf(z).Elem().Interface(); !reflect.DeepEqual(got, want) {
		problems = append(problems, fmt.Sprintf("merging into the zero value lost data:\n got %+v\nwant %+v", got, want))
	}
	return problems
}
