package statcheck

import (
	"strings"
	"testing"
)

type inner struct {
	Peak int64
}

type sample struct {
	Count uint64
	Arr   [2]uint64
	In    inner
}

// goodMerge combines every field: counters add, Peak maxes.
func goodMerge(dst, src *sample) {
	dst.Count += src.Count
	for i := range dst.Arr {
		dst.Arr[i] += src.Arr[i]
	}
	if src.In.Peak > dst.In.Peak {
		dst.In.Peak = src.In.Peak
	}
}

// badMerge forgets the array's second element and the nested peak.
func badMerge(dst, src *sample) {
	dst.Count += src.Count
	dst.Arr[0] += src.Arr[0]
}

func TestCheckMergeAcceptsSoundMerge(t *testing.T) {
	problems := CheckMerge(
		func() any { return new(sample) },
		func(d, s any) { goodMerge(d.(*sample), s.(*sample)) },
	)
	if len(problems) != 0 {
		t.Errorf("sound merge flagged: %v", problems)
	}
}

func TestCheckMergeCatchesDroppedFields(t *testing.T) {
	problems := CheckMerge(
		func() any { return new(sample) },
		func(d, s any) { badMerge(d.(*sample), s.(*sample)) },
	)
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"Arr[1]", "In.Peak"} {
		if !strings.Contains(joined, want) {
			t.Errorf("dropped field %s not reported in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Arr[0]") {
		t.Errorf("correctly merged field flagged:\n%s", joined)
	}
}

func TestCheckMergeCatchesNonCommutativeMerge(t *testing.T) {
	// Overwrite semantics: dst takes src's value — 1⊕2 and 2⊕1 differ.
	problems := CheckMerge(
		func() any { return new(inner) },
		func(d, s any) { d.(*inner).Peak = s.(*inner).Peak },
	)
	if len(problems) == 0 {
		t.Error("overwrite merge must be flagged")
	}
}
