package asm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasic(t *testing.T) {
	p := mustAsm(t, `
.kernel demo
.shared 256
entry:
    mov  r0, %tid
    mov  r1, 42
    iadd r2, r0, r1
    exit
`)
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	if p.SharedMem != 256 {
		t.Errorf("shared = %d", p.SharedMem)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len = %d", len(p.Code))
	}
	if p.Labels["entry"] != 0 {
		t.Errorf("entry label = %d", p.Labels["entry"])
	}
	if p.Code[0].Op != isa.OpMov || p.Code[0].Spec != isa.SpecTid {
		t.Errorf("insn 0 = %+v", p.Code[0])
	}
	if p.Code[1].Op != isa.OpMov || !p.Code[1].HasImm || p.Code[1].Imm != 42 {
		t.Errorf("insn 1 = %+v", p.Code[1])
	}
	if p.Code[2].Op != isa.OpIAdd || p.Code[2].Dst != 2 || p.Code[2].SrcA != 0 || p.Code[2].SrcB != 1 {
		t.Errorf("insn 2 = %+v", p.Code[2])
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	p := mustAsm(t, `
    mov r0, 0
loop:
    iadd r0, r0, 1
    isetp.lt r1, r0, 10
    bra r1, loop
    bra done
done:
    exit
`)
	loopPC := p.Labels["loop"]
	if loopPC != 1 {
		t.Fatalf("loop pc = %d", loopPC)
	}
	bra := p.Code[3]
	if bra.Op != isa.OpBra || bra.SrcA != 1 || bra.Target != loopPC {
		t.Errorf("cond bra = %+v", bra)
	}
	ub := p.Code[4]
	if ub.SrcA != isa.RegNone || ub.Target != p.Labels["done"] {
		t.Errorf("uncond bra = %+v", ub)
	}
	setp := p.Code[2]
	if setp.Op != isa.OpISetp || setp.Cmp != isa.CmpLT || !setp.HasImm || setp.Imm != 10 {
		t.Errorf("isetp = %+v", setp)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	p := mustAsm(t, `
    ld.g r1, [r2]
    ld.g r1, [r2+16]
    ld.g r1, [ r2 + 8 ]
    st.g [r3-4], r1
    ld.s r4, [r5+0x10]
    st.s [r5], r4
    exit
`)
	if p.Code[0].SrcA != 2 || p.Code[0].Imm != 0 {
		t.Errorf("plain: %+v", p.Code[0])
	}
	if p.Code[1].Imm != 16 {
		t.Errorf("offset: %+v", p.Code[1])
	}
	if p.Code[2].Imm != 8 {
		t.Errorf("spaced offset: %+v", p.Code[2])
	}
	if int32(p.Code[3].Imm) != -4 || p.Code[3].SrcC != 1 || p.Code[3].SrcA != 3 {
		t.Errorf("store: %+v", p.Code[3])
	}
	if p.Code[4].Op != isa.OpLdS || p.Code[4].Imm != 0x10 {
		t.Errorf("shared ld: %+v", p.Code[4])
	}
	if p.Code[5].Op != isa.OpStS {
		t.Errorf("shared st: %+v", p.Code[5])
	}
}

func TestAssembleFloatImmediate(t *testing.T) {
	p := mustAsm(t, `
    mov r0, 1.5
    fmul r1, r0, 2.0
    fadd r2, r1, -0.25
    exit
`)
	if p.Code[0].Imm != math.Float32bits(1.5) {
		t.Errorf("1.5 bits = %#x", p.Code[0].Imm)
	}
	if p.Code[1].Imm != math.Float32bits(2.0) {
		t.Errorf("2.0 bits = %#x", p.Code[1].Imm)
	}
	if p.Code[2].Imm != math.Float32bits(-0.25) {
		t.Errorf("-0.25 bits = %#x", p.Code[2].Imm)
	}
}

func TestAssembleParamsAndSpecials(t *testing.T) {
	p := mustAsm(t, `
    mov r0, %p0
    mov r1, %p15
    mov r2, %ntid
    mov r3, %ctaid
    mov r4, %ncta
    exit
`)
	if i, ok := p.Code[0].Spec.IsParam(); !ok || i != 0 {
		t.Errorf("p0: %+v", p.Code[0])
	}
	if i, ok := p.Code[1].Spec.IsParam(); !ok || i != 15 {
		t.Errorf("p15: %+v", p.Code[1])
	}
	if p.Code[2].Spec != isa.SpecNTid || p.Code[3].Spec != isa.SpecCtaid || p.Code[4].Spec != isa.SpecNCta {
		t.Error("specials wrong")
	}
}

func TestAssembleComments(t *testing.T) {
	p := mustAsm(t, `
    // full line comment
    mov r0, 1   // trailing
    mov r1, 2   # hash comment
    mov r2, 3   ; semicolon comment
    exit
`)
	if len(p.Code) != 4 {
		t.Errorf("len = %d", len(p.Code))
	}
}

func TestAssembleLabelSameLine(t *testing.T) {
	p := mustAsm(t, `
top: mov r0, 1
     bra top
`)
	if p.Labels["top"] != 0 {
		t.Errorf("top = %d", p.Labels["top"])
	}
	if p.Code[1].Target != 0 {
		t.Errorf("target = %d", p.Code[1].Target)
	}
}

func TestAssembleIMad(t *testing.T) {
	p := mustAsm(t, `
    imad r0, r1, r2, r3
    imad r0, r1, 4, r3
    fmad r5, r6, r7, r8
    selp r9, r1, r2, r3
    exit
`)
	i0 := p.Code[0]
	if i0.SrcA != 1 || i0.SrcB != 2 || i0.SrcC != 3 {
		t.Errorf("imad: %+v", i0)
	}
	i1 := p.Code[1]
	if !i1.HasImm || i1.Imm != 4 || i1.SrcC != 3 {
		t.Errorf("imad imm: %+v", i1)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1, r2\nexit", "unknown mnemonic"},
		{"mov r99, 1\nexit", "out of range"},
		{"bra nowhere", "undefined label"},
		{"isetp r1, r2, r3\nexit", "condition suffix"},
		{"isetp.xx r1, r2, r3\nexit", "unknown condition"},
		{"mov r1, %bogus\nexit", "unknown special"},
		{"iadd r1, r2\nexit", "wants 3 operands"},
		{"ld.g r1, r2\nexit", "memory operand"},
		{"l: mov r0, 1\nl: exit", "duplicate label"},
		{".shared x\nexit", "invalid .shared"},
		{".wat 3\nexit", "unknown directive"},
		{"mov r0, zzz\nexit", "invalid immediate"},
		{"", "empty"},
		{"iadd r0, r0, r0", "fall off"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("src %q: expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("file", "mov r0, 1\nbogus\nexit")
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 2 {
		t.Errorf("line = %d, want 2", ae.Line)
	}
	if !strings.HasPrefix(err.Error(), "file:2:") {
		t.Errorf("error string %q", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "nonsense")
}

func TestSyncDirective(t *testing.T) {
	p := mustAsm(t, `
div:
    mov r0, 1
rec:
    sync div
    exit
`)
	if p.Code[1].Op != isa.OpSync || p.Code[1].Target != p.Labels["div"] {
		t.Errorf("sync: %+v", p.Code[1])
	}
}
