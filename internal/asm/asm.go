// Package asm implements a two-pass assembler for the SIMT mini-ISA
// defined in internal/isa.
//
// Source syntax, one instruction or directive per line:
//
//	.kernel name            // kernel name (optional, first line)
//	.shared 1024            // shared memory bytes per block
//	label:                  // label (may share a line with an instruction)
//	  mov   r1, %tid        // specials: %tid %ntid %ctaid %ncta %p0..%p15
//	  mov   r2, 42          // integer immediate
//	  mov   r3, 1.5         // float32 immediate (bit pattern)
//	  iadd  r4, r1, r2      // register or immediate second source
//	  imad  r5, r1, r2, r4
//	  isetp.lt r6, r1, r2   // conditions: eq ne lt le gt ge
//	  selp  r7, r1, r2, r6  // r7 = r6 != 0 ? r1 : r2
//	  ld.g  r8, [r4+16]     // global load, byte offset
//	  st.g  [r4], r8        // global store
//	  ld.s  r9, [r1]        // shared memory
//	  bra   r6, label       // conditional branch (taken if r6 != 0)
//	  bra   label           // unconditional branch
//	  bar                   // block barrier
//	  exit
//
// Comments start with "//", "#" or ";" and run to end of line.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Name string // kernel or source name
	Line int    // 1-based line number
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Name, e.Line, e.Msg)
}

type assembler struct {
	name    string
	prog    *isa.Program
	fixups  []fixup // label references to resolve in pass 2
	lineNos []int   // source line of each emitted instruction
}

type fixup struct {
	pc    int // instruction whose Target needs the label's PC
	label string
	line  int
}

// Assemble parses src and returns the assembled program. name is used in
// error messages and as the default kernel name.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		name: name,
		prog: &isa.Program{
			Name:   name,
			Labels: make(map[string]int),
		},
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		if err := a.line(lineNo+1, raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		pc, ok := a.prog.Labels[f.label]
		if !ok {
			return nil, a.errAt(f.line, "undefined label %q", f.label)
		}
		a.prog.Code[f.pc].Target = pc
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble but panics on error. Intended for the built-in
// kernel suite, whose sources are compile-time constants covered by tests.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errAt(line int, format string, args ...any) error {
	return &Error{Name: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	for _, marker := range []string{"//", "#", ";"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func (a *assembler) line(lineNo int, raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}

	// Directives.
	if strings.HasPrefix(s, ".") {
		return a.directive(lineNo, s)
	}

	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			return a.errAt(lineNo, "invalid label %q", label)
		}
		if _, dup := a.prog.Labels[label]; dup {
			return a.errAt(lineNo, "duplicate label %q", label)
		}
		a.prog.Labels[label] = len(a.prog.Code)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}

	return a.instruction(lineNo, s)
}

func (a *assembler) directive(lineNo int, s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".kernel":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return a.errAt(lineNo, ".kernel wants one identifier")
		}
		a.prog.Name = fields[1]
		return nil
	case ".shared":
		if len(fields) != 2 {
			return a.errAt(lineNo, ".shared wants one size argument")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return a.errAt(lineNo, "invalid .shared size %q", fields[1])
		}
		a.prog.SharedMem = n
		return nil
	default:
		return a.errAt(lineNo, "unknown directive %q", fields[0])
	}
}

// tokenize splits an instruction body into mnemonic and operand tokens.
// Commas separate operands; spaces inside [...] are tolerated.
func tokenize(s string) (mnem string, ops []string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, nil
	}
	mnem = s[:i]
	rest := strings.TrimSpace(s[i+1:])
	if rest == "" {
		return mnem, nil
	}
	depth := 0
	start := 0
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				ops = append(ops, strings.TrimSpace(rest[start:j]))
				start = j + 1
			}
		}
	}
	ops = append(ops, strings.TrimSpace(rest[start:]))
	return mnem, ops
}

func (a *assembler) instruction(lineNo int, s string) error {
	mnem, ops := tokenize(s)
	base := mnem
	var cmp isa.CmpOp
	hasCmp := false
	// Condition suffix on isetp/fsetp: "isetp.lt".
	if strings.HasPrefix(mnem, "isetp.") || strings.HasPrefix(mnem, "fsetp.") {
		dot := strings.Index(mnem, ".")
		base = mnem[:dot]
		c, ok := parseCmp(mnem[dot+1:])
		if !ok {
			return a.errAt(lineNo, "unknown condition %q", mnem[dot+1:])
		}
		cmp, hasCmp = c, true
	}
	op, ok := isa.OpcodeByName(base)
	if !ok {
		return a.errAt(lineNo, "unknown mnemonic %q", mnem)
	}
	if (op == isa.OpISetp || op == isa.OpFSetp) && !hasCmp {
		return a.errAt(lineNo, "%s needs a condition suffix (e.g. %s.lt)", base, base)
	}

	ins := isa.Instruction{
		Op:    op,
		Cmp:   cmp,
		Dst:   isa.RegNone,
		SrcA:  isa.RegNone,
		SrcB:  isa.RegNone,
		SrcC:  isa.RegNone,
		Spec:  isa.SpecNone,
		RecPC: -1,
		Line:  lineNo,
	}

	emit := func() {
		a.prog.Code = append(a.prog.Code, ins)
		a.lineNos = append(a.lineNos, lineNo)
	}
	pc := len(a.prog.Code)

	switch op {
	case isa.OpNop, isa.OpBar, isa.OpExit:
		if len(ops) != 0 {
			return a.errAt(lineNo, "%s takes no operands", base)
		}
		emit()
		return nil

	case isa.OpSync:
		if len(ops) != 1 {
			return a.errAt(lineNo, "sync wants a divergence-point label")
		}
		a.fixups = append(a.fixups, fixup{pc: pc, label: ops[0], line: lineNo})
		emit()
		return nil

	case isa.OpBra:
		switch len(ops) {
		case 1:
			a.fixups = append(a.fixups, fixup{pc: pc, label: ops[0], line: lineNo})
		case 2:
			r, err := a.reg(lineNo, ops[0])
			if err != nil {
				return err
			}
			ins.SrcA = r
			a.fixups = append(a.fixups, fixup{pc: pc, label: ops[1], line: lineNo})
		default:
			return a.errAt(lineNo, "bra wants [pred,] target")
		}
		emit()
		return nil

	case isa.OpLdG, isa.OpLdS:
		if len(ops) != 2 {
			return a.errAt(lineNo, "%s wants dst, [addr]", base)
		}
		d, err := a.reg(lineNo, ops[0])
		if err != nil {
			return err
		}
		addr, off, err := a.memOperand(lineNo, ops[1])
		if err != nil {
			return err
		}
		ins.Dst, ins.SrcA, ins.Imm = d, addr, uint32(off)
		emit()
		return nil

	case isa.OpStG, isa.OpStS:
		if len(ops) != 2 {
			return a.errAt(lineNo, "%s wants [addr], src", base)
		}
		addr, off, err := a.memOperand(lineNo, ops[0])
		if err != nil {
			return err
		}
		d, err := a.reg(lineNo, ops[1])
		if err != nil {
			return err
		}
		ins.SrcA, ins.Imm, ins.SrcC = addr, uint32(off), d
		emit()
		return nil

	case isa.OpMov:
		if len(ops) != 2 {
			return a.errAt(lineNo, "mov wants dst, src")
		}
		d, err := a.reg(lineNo, ops[0])
		if err != nil {
			return err
		}
		ins.Dst = d
		switch {
		case strings.HasPrefix(ops[1], "%"):
			spec, ok := parseSpecial(ops[1])
			if !ok {
				return a.errAt(lineNo, "unknown special %q", ops[1])
			}
			ins.Spec = spec
		case looksLikeReg(ops[1]):
			r, err := a.reg(lineNo, ops[1])
			if err != nil {
				return err
			}
			ins.SrcA = r
		default:
			imm, err := a.imm(lineNo, ops[1])
			if err != nil {
				return err
			}
			ins.Imm, ins.HasImm = imm, true
		}
		emit()
		return nil
	}

	// Generic ALU / SFU forms: dst plus NumSrcs sources. An immediate is
	// allowed in the SrcB slot of 2- and 3-source forms and in the single
	// source slot of 1-source forms.
	want := 1 + op.NumSrcs()
	if len(ops) != want {
		return a.errAt(lineNo, "%s wants %d operands, got %d", base, want, len(ops))
	}
	d, err := a.reg(lineNo, ops[0])
	if err != nil {
		return err
	}
	ins.Dst = d
	srcs := ops[1:]
	switch len(srcs) {
	case 1:
		if looksLikeReg(srcs[0]) {
			r, err := a.reg(lineNo, srcs[0])
			if err != nil {
				return err
			}
			ins.SrcA = r
		} else {
			return a.errAt(lineNo, "%s wants a register source", base)
		}
	case 2, 3:
		r, err := a.reg(lineNo, srcs[0])
		if err != nil {
			return err
		}
		ins.SrcA = r
		if looksLikeReg(srcs[1]) {
			r, err := a.reg(lineNo, srcs[1])
			if err != nil {
				return err
			}
			ins.SrcB = r
		} else {
			imm, err := a.imm(lineNo, srcs[1])
			if err != nil {
				return err
			}
			ins.Imm, ins.HasImm = imm, true
		}
		if len(srcs) == 3 {
			r, err := a.reg(lineNo, srcs[2])
			if err != nil {
				return err
			}
			ins.SrcC = r
		}
	}
	emit()
	return nil
}

func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	if !looksLikeReg(s) {
		return isa.RegNone, a.errAt(line, "expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return isa.RegNone, a.errAt(line, "register %q out of range (r0..r%d)", s, isa.NumRegs-1)
	}
	return isa.Reg(n), nil
}

func (a *assembler) imm(line int, s string) (uint32, error) {
	// Float literal: contains '.' or trailing 'f', or exponent form.
	if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") || strings.HasSuffix(s, "f") {
		t := strings.TrimSuffix(s, "f")
		f, err := strconv.ParseFloat(t, 32)
		if err == nil {
			return math.Float32bits(float32(f)), nil
		}
	}
	// Integer literal, possibly negative or hex.
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, a.errAt(line, "invalid immediate %q", s)
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return 0, a.errAt(line, "immediate %q out of 32-bit range", s)
	}
	return uint32(int64(v)), nil
}

// memOperand parses "[rN]", "[rN+off]" or "[rN-off]".
func (a *assembler) memOperand(line int, s string) (isa.Reg, int32, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return isa.RegNone, 0, a.errAt(line, "expected memory operand [reg+off], got %q", s)
	}
	body := strings.ReplaceAll(s[1:len(s)-1], " ", "")
	regPart, offPart := body, ""
	if i := strings.IndexAny(body[1:], "+-"); i >= 0 {
		regPart, offPart = body[:i+1], body[i+1:]
	}
	r, err := a.reg(line, regPart)
	if err != nil {
		return isa.RegNone, 0, err
	}
	var off int64
	if offPart != "" {
		off, err = strconv.ParseInt(offPart, 0, 32)
		if err != nil {
			return isa.RegNone, 0, a.errAt(line, "invalid memory offset %q", offPart)
		}
	}
	return r, int32(off), nil
}

func looksLikeReg(s string) bool {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseCmp(s string) (isa.CmpOp, bool) {
	switch s {
	case "eq":
		return isa.CmpEQ, true
	case "ne":
		return isa.CmpNE, true
	case "lt":
		return isa.CmpLT, true
	case "le":
		return isa.CmpLE, true
	case "gt":
		return isa.CmpGT, true
	case "ge":
		return isa.CmpGE, true
	}
	return 0, false
}

func parseSpecial(s string) (isa.Special, bool) {
	switch s {
	case "%tid":
		return isa.SpecTid, true
	case "%ntid":
		return isa.SpecNTid, true
	case "%ctaid":
		return isa.SpecCtaid, true
	case "%ncta":
		return isa.SpecNCta, true
	}
	if strings.HasPrefix(s, "%p") {
		n, err := strconv.Atoi(s[2:])
		if err == nil && n >= 0 && n < isa.NumParams {
			return isa.SpecParam(n), true
		}
	}
	return isa.SpecNone, false
}
