package replay

import (
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	r := NewRecorder(2, 2) // threads 0..3
	k := r.Sink()
	if !k.Matches(2, 2) || k.Matches(2, 4) {
		t.Fatal("sink geometry check wrong")
	}

	// Thread 1: branch pattern spanning a word boundary plus addresses.
	pattern := func(i int) bool { return i%3 == 0 }
	for i := 0; i < 70; i++ {
		k.Branch(1, pattern(i))
	}
	k.Mem(1, 0, 0, 0x40, true, false)
	k.Mem(1, 0, 0, 0x44, true, true)
	// Thread 2: shared access only — no address stream entry.
	k.Mem(2, 1, 0, 0x10, false, false)

	tr := r.Finalize()
	if !tr.Replayable {
		t.Fatalf("race-free recording not replayable: %s", tr.Reason)
	}
	if !tr.Matches(2, 2) || tr.Matches(1, 2) || tr.Threads() != 4 {
		t.Fatal("trace geometry wrong")
	}

	s, err := NewSession(tr, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 70; i++ {
		taken, ok := s.Branch(1)
		if !ok || taken != pattern(i) {
			t.Fatalf("branch %d: got (%v, %v), want (%v, true)", i, taken, ok, pattern(i))
		}
	}
	if _, ok := s.Branch(1); ok {
		t.Fatal("exhausted branch stream still returned ok")
	}

	// Peek is idempotent; only Consume advances.
	for i := 0; i < 3; i++ {
		if a, ok := s.PeekAddr(1); !ok || a != 0x40 {
			t.Fatalf("peek %d: got (%#x, %v), want (0x40, true)", i, a, ok)
		}
	}
	s.ConsumeAddr(1)
	if a, ok := s.PeekAddr(1); !ok || a != 0x44 {
		t.Fatalf("after consume: got (%#x, %v), want (0x44, true)", a, ok)
	}
	s.ConsumeAddr(1)
	if _, ok := s.PeekAddr(1); ok {
		t.Fatal("exhausted address stream still returned ok")
	}
	if err := s.Finish(); err != nil {
		t.Fatalf("fully consumed session: %v", err)
	}
}

func TestFinishDetectsLeftovers(t *testing.T) {
	r := NewRecorder(1, 2)
	k := r.Sink()
	k.Branch(0, true)
	k.Mem(1, 0, 0, 0x8, true, false)
	tr := r.Finalize()

	s, err := NewSession(tr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(); err == nil || !strings.Contains(err.Error(), "branch outcomes") {
		t.Fatalf("unconsumed branch stream not reported: %v", err)
	}
	s.Branch(0)
	if err := s.Finish(); err == nil || !strings.Contains(err.Error(), "memory addresses") {
		t.Fatalf("unconsumed address stream not reported: %v", err)
	}
	s.ConsumeAddr(1)
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionValidation(t *testing.T) {
	r := NewRecorder(4, 8)
	tr := r.Finalize()
	if _, err := NewSession(tr, 0, 5); err == nil {
		t.Fatal("range beyond the grid accepted")
	}
	if _, err := NewSession(tr, 2, 2); err == nil {
		t.Fatal("empty range accepted")
	}
	s, err := NewSession(tr, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Matches(4, 8, 1, 3) || s.Matches(4, 8, 0, 3) || s.Matches(4, 4, 1, 3) {
		t.Fatal("session geometry check wrong")
	}

	racy := NewRecorder(1, 2)
	k := racy.Sink()
	k.Mem(0, 0, 0, 0x0, true, true)
	k.Mem(1, 0, 0, 0x0, true, false)
	if _, err := NewSession(racy.Finalize(), 0, 1); err == nil {
		t.Fatal("session over a non-replayable trace accepted")
	}
}

// raceCase builds an access log via a sink and returns the verdict.
func verdict(t *testing.T, accesses func(k *Sink)) (bool, string) {
	t.Helper()
	r := NewRecorder(2, 4)
	k := r.Sink()
	accesses(k)
	tr := r.Finalize()
	return tr.Replayable, tr.Reason
}

func TestRaceAnalysis(t *testing.T) {
	cases := []struct {
		name     string
		accesses func(k *Sink)
		want     bool
		reason   string // substring of Reason when !want
	}{
		{"read-read shared word", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, false)
			k.Mem(1, 0, 0, 0x20, true, false)
			k.Mem(5, 1, 0, 0x20, true, false)
		}, true, ""},
		{"disjoint words", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(1, 0, 0, 0x24, true, true)
		}, true, ""},
		{"same-thread store then load", func(k *Sink) {
			k.Mem(3, 0, 0, 0x20, true, true)
			k.Mem(3, 0, 0, 0x20, true, false)
		}, true, ""},
		{"store+load, same block, same epoch", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(1, 0, 0, 0x20, true, false)
		}, false, "unordered threads"},
		{"store+store, same block, same epoch", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(1, 0, 0, 0x20, true, true)
		}, false, "unordered threads"},
		{"store+load ordered by a barrier", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(1, 0, 1, 0x20, true, false)
		}, true, ""},
		{"store+store across epochs", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(1, 0, 1, 0x20, true, true)
		}, true, ""},
		{"cross-block store+load", func(k *Sink) {
			k.Mem(0, 0, 0, 0x20, true, true)
			k.Mem(5, 1, 0, 0x20, true, false)
		}, false, "unordered blocks"},
		{"cross-block store+load, barriers irrelevant", func(k *Sink) {
			k.Mem(0, 0, 3, 0x20, true, true)
			k.Mem(5, 1, 7, 0x20, true, false)
		}, false, "unordered blocks"},
		{"shared conflict inside one block", func(k *Sink) {
			k.Mem(0, 0, 0, 0x10, false, true)
			k.Mem(1, 0, 0, 0x10, false, false)
		}, false, "shared word"},
		{"shared words in different blocks never alias", func(k *Sink) {
			k.Mem(0, 0, 0, 0x10, false, true)
			k.Mem(5, 1, 0, 0x10, false, true)
		}, true, ""},
		{"shared and global words never alias", func(k *Sink) {
			k.Mem(0, 0, 0, 0x10, false, true)
			k.Mem(1, 0, 0, 0x10, true, false)
		}, true, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ok, reason := verdict(t, c.accesses)
			if ok != c.want {
				t.Fatalf("replayable = %v (%s), want %v", ok, reason, c.want)
			}
			if !c.want && !strings.Contains(reason, c.reason) {
				t.Fatalf("reason %q does not mention %q", reason, c.reason)
			}
		})
	}
}

// TestRaceVerdictOrderIndependent feeds the same access set through
// sinks in different interleavings and expects one verdict: the race
// analysis must be a pure function of the set, not of the
// nondeterministic order concurrent recording appended in.
func TestRaceVerdictOrderIndependent(t *testing.T) {
	type acc struct {
		tid, cta, epoch int
		addr            uint32
		store           bool
	}
	accs := []acc{
		{0, 0, 0, 0x20, false},
		{1, 0, 0, 0x24, true},
		{5, 1, 0, 0x20, true},
		{6, 1, 1, 0x28, false},
	}
	var want string
	for rot := 0; rot < len(accs); rot++ {
		r := NewRecorder(2, 4)
		ka, kb := r.Sink(), r.Sink()
		for i := range accs {
			a := accs[(i+rot)%len(accs)]
			k := ka
			if i%2 == 1 {
				k = kb
			}
			k.Mem(a.tid, a.cta, a.epoch, a.addr, true, a.store)
		}
		tr := r.Finalize()
		if tr.Replayable {
			t.Fatal("cross-block store on word 0x20 not detected")
		}
		if rot == 0 {
			want = tr.Reason
		} else if tr.Reason != want {
			t.Fatalf("rotation %d: reason %q != %q", rot, tr.Reason, want)
		}
	}
}
