package replay

import "fmt"

// Session is one replaying SM's cursor state over a Trace: a read
// position per covered thread into the branch and address streams.
// A Session is single-goroutine (like the SM that owns it) and covers
// one CTA sub-range; independent sessions over one Trace may run
// concurrently, matching the device's wave partitioning. All cursor
// methods are allocation-free — the replay walk's steady state
// allocates nothing.
type Session struct {
	t    *Trace
	base int // first covered global thread (ctaStart * blockDim)
	end  int // one past the last covered global thread

	branchPos []int32
	addrPos   []int32
}

// NewSession opens replay cursors over the CTA sub-range
// [ctaStart, ctaEnd) of a replayable trace.
func NewSession(t *Trace, ctaStart, ctaEnd int) (*Session, error) {
	if !t.Replayable {
		return nil, fmt.Errorf("replay: trace is not replayable: %s", t.Reason)
	}
	if ctaStart < 0 || ctaEnd > t.gridDim || ctaStart >= ctaEnd {
		return nil, fmt.Errorf("replay: CTA range [%d, %d) outside recorded grid of %d",
			ctaStart, ctaEnd, t.gridDim)
	}
	base := ctaStart * t.blockDim
	end := ctaEnd * t.blockDim
	return &Session{
		t:         t,
		base:      base,
		end:       end,
		branchPos: make([]int32, end-base),
		addrPos:   make([]int32, end-base),
	}, nil
}

// Matches reports whether the session replays this launch geometry and
// CTA sub-range.
func (s *Session) Matches(gridDim, blockDim, ctaStart, ctaEnd int) bool {
	return s.t.Matches(gridDim, blockDim) &&
		s.base == ctaStart*blockDim && s.end == ctaEnd*blockDim
}

// Branch consumes the thread's next recorded conditional-branch
// outcome. ok is false when the stream is exhausted — the replayed
// execution diverged from the recording, so the caller must abort
// rather than guess.
//
//sbwi:hotpath
func (s *Session) Branch(tid int) (taken, ok bool) {
	i := tid - s.base
	pos := s.branchPos[i]
	if pos >= s.t.branchN[tid] {
		return false, false
	}
	s.branchPos[i] = pos + 1
	return s.t.branchBits[tid][pos>>6]>>(uint(pos)&63)&1 == 1, true
}

// PeekAddr returns the thread's next recorded global-memory address
// without consuming it: a warp's memory instruction may be visited
// several times (memory-divergence splits replay the load for miss
// threads), and only the visit a thread advances past consumes its
// entry. ok is false on exhaustion.
//
//sbwi:hotpath
func (s *Session) PeekAddr(tid int) (addr uint32, ok bool) {
	i := tid - s.base
	pos := s.addrPos[i]
	stream := s.t.addrs[tid]
	if int(pos) >= len(stream) {
		return 0, false
	}
	return stream[pos], true
}

// ConsumeAddr advances the thread's address cursor past the entry a
// preceding PeekAddr returned; callers only consume after a successful
// peek in the same instruction visit.
//
//sbwi:hotpath
func (s *Session) ConsumeAddr(tid int) {
	i := tid - s.base
	if int(s.addrPos[i]) < len(s.t.addrs[tid]) {
		s.addrPos[i]++
	}
}

// Finish verifies exact stream exhaustion for every covered thread: a
// race-free kernel executes the same per-thread instruction sequence
// under any timing, so leftover (or, caught earlier, missing) entries
// mean the configuration left the trace's validity domain and the
// replayed Stats cannot be trusted.
func (s *Session) Finish() error {
	for tid := s.base; tid < s.end; tid++ {
		i := tid - s.base
		if s.branchPos[i] != s.t.branchN[tid] {
			return fmt.Errorf("replay: thread %d consumed %d of %d recorded branch outcomes — execution diverged from the recording",
				tid, s.branchPos[i], s.t.branchN[tid])
		}
		if int(s.addrPos[i]) != len(s.t.addrs[tid]) {
			return fmt.Errorf("replay: thread %d consumed %d of %d recorded memory addresses — execution diverged from the recording",
				tid, s.addrPos[i], len(s.t.addrs[tid]))
		}
	}
	return nil
}
