// Package replay implements the record side of the trace-replay
// engine: during one full simulation the SM model streams, per global
// thread, every conditional-branch outcome and every global-memory
// effective address into a Recorder; the finalized Trace then lets a
// later run of the full scheduling/timing machinery (package sm with
// RunOpts.Replay) re-time the same launch under any timing
// configuration without decoding operands, executing ALU lanes, or
// touching global memory.
//
// # Why per-thread streams make replay exact
//
// The SM model is execute-at-issue with per-thread program order
// preserved structurally, so for a race-free kernel each thread's
// functional behavior — the sequence of conditional-branch outcomes
// and effective addresses it produces — is invariant under every
// timing parameter: latencies, unit widths, NoC/L2 geometry, scheduler
// tie-breaks and warp interleavings reorder *when* threads execute,
// never *what* they compute. Recording those two per-thread streams
// therefore captures everything a re-run needs from the functional
// layer, while the replaying SM still runs its real scheduler,
// scoreboard, reconvergence and memory-timing machinery — which is
// what makes replayed Stats bit-identical to a full simulation for
// any in-domain configuration, not merely approximate.
//
// # Validity domain
//
// The domain boundary is data races: a kernel whose cross-thread
// ordering is not fixed by program order plus block barriers can
// legally compute different values under different timings, so its
// recorded streams describe only the recording run. Finalize detects
// this conservatively from a word-granular access log: two accesses to
// the same 32-bit word race when at least one is a store and no
// barrier orders them — cross-block accesses are never ordered,
// intra-block accesses are ordered exactly when they fall in different
// barrier epochs. A racy recording yields Replayable == false with the
// first offending word in Reason; callers fall back to full simulation
// (loudly — see device.WithTraceReplay). Same-value write-write races
// are still flagged: tolerating them would need value logging for a
// benefit no suite kernel currently shows.
package replay

import (
	"fmt"
	"sort"
	"sync"
)

// Trace is one recorded launch: per-global-thread branch-outcome bits
// and global-memory effective addresses, plus the race verdict. A
// Trace is immutable after Finalize and safe for any number of
// concurrent replay Sessions.
type Trace struct {
	gridDim  int
	blockDim int

	// branchBits holds, per global thread, one bit per conditional
	// branch the thread executed, packed little-endian in uint64 words;
	// branchN is the per-thread bit count.
	branchBits [][]uint64
	branchN    []int32

	// addrs holds, per global thread, the effective address of each
	// global-memory instruction the thread advanced past, in program
	// order.
	addrs [][]uint32

	// Replayable reports whether the recording is race-free and may be
	// re-timed; Reason carries the first detected conflict otherwise.
	Replayable bool
	Reason     string
}

// Matches reports whether the trace was recorded for this launch
// geometry.
func (t *Trace) Matches(gridDim, blockDim int) bool {
	return t.gridDim == gridDim && t.blockDim == blockDim
}

// Threads returns the recorded global thread count.
func (t *Trace) Threads() int { return t.gridDim * t.blockDim }

// access is one entry of the record-time memory log. key identifies
// the 32-bit word including its address space (shared words are
// per-block, so their key embeds the CTA); epoch is the block's
// barrier epoch at access time.
type access struct {
	key   uint64
	tid   int32
	cta   int32
	epoch int32
	store bool
}

// sharedKeyBit marks shared-memory word keys; global words use the
// plain word index. Shared keys embed the CTA because shared memory is
// per-block storage: equal offsets in different blocks never alias.
const sharedKeyBit = 1 << 63

// Recorder accumulates one launch's streams. Stream writes go through
// per-SM Sinks: each sink is single-goroutine, and concurrent sinks
// (the device's parallel CTA waves) write disjoint per-thread inner
// slices, so recording needs no lock on the hot path.
type Recorder struct {
	gridDim  int
	blockDim int

	// The per-thread streams are sharded, not mutex-guarded: the outer
	// slices are sized once by NewRecorder, and concurrent sinks write
	// disjoint tid entries (each thread belongs to exactly one CTA
	// wave), so no two goroutines ever touch the same inner slice.
	//sbwi:nolock sharded per thread: concurrent sinks write disjoint tid entries, never the same inner slice
	branchBits [][]uint64
	//sbwi:nolock sharded per thread: concurrent sinks write disjoint tid entries, never the same inner slice
	branchN []int32
	//sbwi:nolock sharded per thread: concurrent sinks write disjoint tid entries, never the same inner slice
	addrs [][]uint32

	mu    sync.Mutex
	sinks []*Sink //sbwi:guardedby mu
}

// NewRecorder sizes a recorder for a launch geometry.
func NewRecorder(gridDim, blockDim int) *Recorder {
	n := gridDim * blockDim
	return &Recorder{
		gridDim:    gridDim,
		blockDim:   blockDim,
		branchBits: make([][]uint64, n),
		branchN:    make([]int32, n),
		addrs:      make([][]uint32, n),
	}
}

// Sink returns a recording handle for one SM instance. Each sink must
// only be used from one goroutine at a time; sinks over disjoint CTA
// ranges may run concurrently.
func (r *Recorder) Sink() *Sink {
	k := &Sink{r: r}
	r.mu.Lock()
	r.sinks = append(r.sinks, k)
	r.mu.Unlock()
	return k
}

// Sink is one SM's single-goroutine recording handle: stream appends
// go straight to the recorder's per-thread slices (disjoint across
// concurrent sinks), the memory log stays sink-local until Finalize.
type Sink struct {
	r *Recorder
	//sbwi:nolock single-goroutine confinement: sink-local until Finalize, which runs after every recording goroutine completed
	log []access
}

// Matches reports whether the sink records for this launch geometry.
func (k *Sink) Matches(gridDim, blockDim int) bool {
	return k.r.gridDim == gridDim && k.r.blockDim == blockDim
}

// Branch records one conditional-branch outcome for a thread.
func (k *Sink) Branch(tid int, taken bool) {
	r := k.r
	n := r.branchN[tid]
	if int(n)>>6 >= len(r.branchBits[tid]) {
		r.branchBits[tid] = append(r.branchBits[tid], 0)
	}
	if taken {
		r.branchBits[tid][n>>6] |= 1 << (uint(n) & 63)
	}
	r.branchN[tid] = n + 1
}

// Mem records one memory access a thread advanced past: global
// accesses append addr to the thread's address stream; both spaces
// enter the race log. epoch is the thread's block barrier epoch.
func (k *Sink) Mem(tid, cta, epoch int, addr uint32, global, store bool) {
	if global {
		k.r.addrs[tid] = append(k.r.addrs[tid], addr)
	}
	key := uint64(addr >> 2)
	if !global {
		key |= sharedKeyBit | uint64(cta)<<32
	}
	k.log = append(k.log, access{
		key: key, tid: int32(tid), cta: int32(cta), epoch: int32(epoch), store: store,
	})
}

// Finalize merges the sinks, runs the race analysis and returns the
// immutable trace. Call once, after every recording run completed.
func (r *Recorder) Finalize() *Trace {
	r.mu.Lock()
	var log []access
	for _, k := range r.sinks {
		log = append(log, k.log...)
		k.log = nil
	}
	r.mu.Unlock()

	t := &Trace{
		gridDim:    r.gridDim,
		blockDim:   r.blockDim,
		branchBits: r.branchBits,
		branchN:    r.branchN,
		addrs:      r.addrs,
		Replayable: true,
	}
	if reason := findRace(log); reason != "" {
		t.Replayable = false
		t.Reason = reason
	}
	return t
}

// findRace scans the merged access log for a pair of unordered
// conflicting accesses and returns a description of the first one (in
// word order), or "". Sorting makes the verdict independent of the
// nondeterministic order concurrent sinks appended in: the race
// predicate is a property of the access *set*.
func findRace(log []access) string {
	sort.Slice(log, func(i, j int) bool {
		a, b := &log[i], &log[j]
		switch {
		case a.key != b.key:
			return a.key < b.key
		case a.cta != b.cta:
			return a.cta < b.cta
		case a.epoch != b.epoch:
			return a.epoch < b.epoch
		default:
			return a.tid < b.tid
		}
	})
	for lo := 0; lo < len(log); {
		hi := lo
		for hi < len(log) && log[hi].key == log[lo].key {
			hi++
		}
		if reason := raceInWord(log[lo:hi]); reason != "" {
			return reason
		}
		lo = hi
	}
	return ""
}

// raceInWord applies the ordering rule to one word's accesses (sorted
// by cta, epoch, tid): cross-block accesses are never ordered, so any
// store plus a second block races; intra-block accesses are ordered
// iff their barrier epochs differ, so a store plus a different thread
// within one epoch races.
func raceInWord(as []access) string {
	multiBlock := as[0].cta != as[len(as)-1].cta
	for lo := 0; lo < len(as); {
		hi := lo
		anyStore := false
		multiThread := false
		for hi < len(as) && as[hi].cta == as[lo].cta && as[hi].epoch == as[lo].epoch {
			anyStore = anyStore || as[hi].store
			multiThread = multiThread || as[hi].tid != as[lo].tid
			hi++
		}
		// A store in this group conflicts with any other thread of the
		// same epoch (no intra-epoch ordering) and, when several blocks
		// touch the word, with every other block's accesses (no
		// inter-block ordering exists at all).
		if anyStore && (multiBlock || multiThread) {
			scope := "blocks"
			if !multiBlock {
				scope = "threads"
			}
			return fmt.Sprintf("%s word %#x written and accessed by unordered %s (cta %d, barrier epoch %d)",
				spaceOf(as[lo].key), wordAddr(as[lo].key), scope, as[lo].cta, as[lo].epoch)
		}
		lo = hi
	}
	return ""
}

func spaceOf(key uint64) string {
	if key&sharedKeyBit != 0 {
		return "shared"
	}
	return "global"
}

func wordAddr(key uint64) uint32 { return uint32(key&0xffffffff) << 2 }
