// Package progen generates random structured SIMT programs for
// differential testing: every generated program terminates by
// construction, and its architectural result is defined purely by
// per-thread semantics, so the functional reference simulator and the
// cycle-level model must agree bit-for-bit on every architecture.
//
// Programs are random trees of regions:
//
//	Seq    — a run of random ALU instructions
//	If     — a data-dependent balanced or unbalanced if/else
//	Loop   — a counted loop (bounded trips, possibly thread-varying)
//	Store  — a write of a live register to the thread's output slot
//
// The generator only ever emits forward conditional branches plus
// counted backward loops, so control flow always reaches EXIT.
package progen

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// Gen holds generator state.
type Gen struct {
	rng   uint64
	buf   strings.Builder
	label int
	depth int

	// registers: r1 = tid, r2 = gid, r3 = output base; r4..r11 are
	// data registers the generated code reads and writes; r12..r15 are
	// scratch (loop counters, predicates).
	scratch int
}

// New creates a generator with the given seed.
func New(seed uint64) *Gen {
	if seed == 0 {
		seed = 0x5DEECE66D
	}
	return &Gen{rng: seed}
}

func (g *Gen) next() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng
}

func (g *Gen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *Gen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

const (
	dataRegs  = 8 // r4..r11
	firstData = 4
)

func (g *Gen) dataReg() int { return firstData + g.intn(dataRegs) }

// emit writes one line.
func (g *Gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.buf, format+"\n", args...)
}

// alu emits one random integer ALU instruction over the data registers.
// Only wrap-safe integer ops are used so results are well-defined.
func (g *Gen) alu() {
	d, a, b := g.dataReg(), g.dataReg(), g.dataReg()
	switch g.intn(8) {
	case 0:
		g.emit("\tiadd r%d, r%d, r%d", d, a, b)
	case 1:
		g.emit("\tisub r%d, r%d, r%d", d, a, b)
	case 2:
		g.emit("\timul r%d, r%d, r%d", d, a, b)
	case 3:
		g.emit("\txor r%d, r%d, r%d", d, a, b)
	case 4:
		g.emit("\tand r%d, r%d, r%d", d, a, b)
	case 5:
		g.emit("\tor r%d, r%d, r%d", d, a, b)
	case 6:
		g.emit("\tshl r%d, r%d, %d", d, a, 1+g.intn(4))
	default:
		g.emit("\timad r%d, r%d, %d, r%d", d, a, 1+g.intn(7), b)
	}
}

// cond emits a data-dependent predicate into r12.
func (g *Gen) cond() {
	a := g.dataReg()
	g.emit("\tand r13, r%d, %d", a, 1+g.intn(7))
	g.emit("\tisetp.%s r12, r13, %d", []string{"eq", "ne", "lt", "gt"}[g.intn(4)], g.intn(4))
}

// region emits one random region. budget bounds total emitted work.
func (g *Gen) region(budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	choice := g.intn(10)
	switch {
	case choice < 3 || g.depth >= 3: // plain sequence
		for i := 0; i <= g.intn(4); i++ {
			g.alu()
		}

	case choice < 7: // if or if/else (thread-varying predicate)
		g.depth++
		elseL, joinL := g.newLabel("else"), g.newLabel("join")
		g.cond()
		g.emit("\tbra r12, %s", elseL)
		g.region(budget)
		if g.intn(2) == 0 { // balanced
			g.emit("\tbra %s", joinL)
			g.emit("%s:", elseL)
			g.region(budget)
			g.emit("%s:", joinL)
		} else { // if without else
			g.emit("%s:", elseL)
		}
		g.depth--

	default: // counted loop, possibly thread-varying trip count
		g.depth++
		headL := g.newLabel("loop")
		trips := 1 + g.intn(5)
		if g.intn(2) == 0 {
			// Thread-varying: trips = 1 + (data & 3).
			g.emit("\tand r14, r%d, 3", g.dataReg())
			g.emit("\tiadd r14, r14, 1")
		} else {
			g.emit("\tmov r14, %d", trips)
		}
		g.emit("\tmov r15, 0")
		g.emit("%s:", headL)
		g.region(budget)
		g.emit("\tiadd r15, r15, 1")
		g.emit("\tisetp.lt r12, r15, r14")
		g.emit("\tbra r12, %s", headL)
		g.depth--
	}
}

// Program generates one random kernel: it seeds the data registers
// from tid/gid, runs `regions` random regions, folds the data
// registers into a checksum, and stores it to out[gid].
func (g *Gen) Program(name string, regions int) (*isa.Program, error) {
	g.buf.Reset()
	g.emit("\tmov r1, %%tid")
	g.emit("\tmov r2, %%ctaid")
	g.emit("\tmov r3, %%ntid")
	g.emit("\timad r2, r2, r3, r1") // r2 = gid
	for i := 0; i < dataRegs; i++ {
		g.emit("\timad r%d, r2, %d, r1", firstData+i, 2*i+1)
		g.emit("\txor r%d, r%d, %d", firstData+i, firstData+i, g.intn(1<<16))
	}
	budget := regions
	for budget > 0 {
		g.region(&budget)
	}
	// Checksum and store.
	g.emit("\tmov r13, 0")
	for i := 0; i < dataRegs; i++ {
		g.emit("\timad r13, r13, 33, r%d", firstData+i)
	}
	g.emit("\tshl r14, r2, 2")
	g.emit("\tmov r15, %%p0")
	g.emit("\tiadd r15, r15, r14")
	g.emit("\tst.g [r15], r13")
	g.emit("\texit")

	p, err := asm.Assemble(name, g.buf.String())
	if err != nil {
		return nil, fmt.Errorf("progen: %w\n%s", err, g.buf.String())
	}
	if err := cfg.AnnotateReconvergence(p); err != nil {
		return nil, fmt.Errorf("progen: %w", err)
	}
	return p, nil
}

// Source returns the text of the last generated program.
func (g *Gen) Source() string { return g.buf.String() }
