package progen

import (
	"bytes"
	"testing"

	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/sm"
)

func TestGeneratedProgramsAssemble(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		g := New(seed)
		p, err := g.Program("fuzz", 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Len() < 10 {
			t.Errorf("seed %d: suspiciously small program (%d instructions)", seed, p.Len())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedProgramsAreFrontierOrdered(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		p, err := New(seed).Program("fuzz", 6)
		if err != nil {
			t.Fatal(err)
		}
		if v := cfg.ValidateFrontierLayout(p); len(v) > 0 {
			t.Errorf("seed %d: generator emitted non-frontier layout: %v", seed, v)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := New(7).Program("x", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(7).Program("x", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different programs")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

// The heart of the harness: for dozens of random divergent programs,
// every architecture's cycle-level simulation must produce memory
// bit-identical to the functional reference.
func TestDifferentialAllArchitectures(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		gen := New(seed)
		prog, err := gen.Program("fuzz", 8)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := cfg.InsertSyncs(prog)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, gen.Source())
		}

		const grid, block = 2, 192
		words := grid * block

		ref := &exec.Launch{Prog: prog, GridDim: grid, BlockDim: block, Global: make([]byte, words*4)}
		if _, err := exec.RunReference(ref, 32); err != nil {
			t.Fatalf("seed %d: reference: %v\n%s", seed, err, gen.Source())
		}

		for _, a := range sm.Architectures() {
			p := tf
			if a == sm.ArchBaseline {
				p = prog
			}
			l := &exec.Launch{Prog: p, GridDim: grid, BlockDim: block, Global: make([]byte, words*4)}
			if _, err := sm.Run(sm.Configure(a), l); err != nil {
				t.Fatalf("seed %d on %s: %v\n%s", seed, a, err, gen.Source())
			}
			if !bytes.Equal(l.Global, ref.Global) {
				t.Fatalf("seed %d on %s: memory differs from reference\n%s", seed, a, gen.Source())
			}
		}
	}
}

// Same differential under the extension knobs: memory-divergence
// splitting and disabled constraints must never change results.
func TestDifferentialExtensionKnobs(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(100); seed < uint64(100+seeds); seed++ {
		gen := New(seed)
		prog, err := gen.Program("fuzz", 8)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := cfg.InsertSyncs(prog)
		if err != nil {
			t.Fatal(err)
		}

		const grid, block = 2, 128
		words := grid * block
		ref := &exec.Launch{Prog: prog, GridDim: grid, BlockDim: block, Global: make([]byte, words*4)}
		if _, err := exec.RunReference(ref, 32); err != nil {
			t.Fatal(err)
		}

		for _, variant := range []func(*sm.Config){
			func(c *sm.Config) { c.Constraints = false },
			func(c *sm.Config) { c.SplitOnMemDivergence = true },
			func(c *sm.Config) { c.Constraints = false; c.SplitOnMemDivergence = true },
		} {
			c := sm.Configure(sm.ArchSBISWI)
			variant(&c)
			l := &exec.Launch{Prog: tf, GridDim: grid, BlockDim: block, Global: make([]byte, words*4)}
			if _, err := sm.Run(c, l); err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, gen.Source())
			}
			if !bytes.Equal(l.Global, ref.Global) {
				t.Fatalf("seed %d: knob variant changed results\n%s", seed, gen.Source())
			}
		}
	}
}

// Generated programs must actually diverge (otherwise the differential
// harness tests nothing interesting).
func TestGeneratedProgramsDiverge(t *testing.T) {
	diverged := 0
	for seed := uint64(1); seed <= 20; seed++ {
		prog, err := New(seed).Program("fuzz", 8)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := cfg.InsertSyncs(prog)
		if err != nil {
			t.Fatal(err)
		}
		l := &exec.Launch{Prog: tf, GridDim: 1, BlockDim: 128, Global: make([]byte, 128*4)}
		res, err := sm.Run(sm.Configure(sm.ArchSBI), l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Divergences > 0 {
			diverged++
		}
	}
	if diverged < 12 {
		t.Errorf("only %d/20 random programs diverged", diverged)
	}
}
