package reconv

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHeapInitial(t *testing.T) {
	h := NewHeap(0xFF, 8)
	c := h.Slot(0)
	if c == nil || c.PC != 0 || c.Mask != 0xFF {
		t.Fatalf("slot0 = %+v", c)
	}
	if h.Slot(1) != nil {
		t.Error("slot1 should be empty")
	}
	if h.Splits() != 1 || h.Done() {
		t.Error("initial state wrong")
	}
}

func TestHeapDivergeSortsByPC(t *testing.T) {
	h := NewHeap(0xF, 8)
	// Branch at 0: taken (0x3) to 10, fallthrough at 1.
	h.Diverge(0, 10, 1, 0x3, 0)
	pc1, _ := h.CPC1()
	pc2, _ := h.CPC2()
	if pc1 != 1 || pc2 != 10 {
		t.Fatalf("CPCs = %d, %d; want 1, 10", pc1, pc2)
	}
	if h.Slot(0).Mask != 0xC || h.Slot(1).Mask != 0x3 {
		t.Errorf("masks = %#x %#x", h.Slot(0).Mask, h.Slot(1).Mask)
	}
	if h.Splits() != 2 {
		t.Errorf("splits = %d", h.Splits())
	}
}

func TestHeapMergeOnEqualPC(t *testing.T) {
	h := NewHeap(0xF, 8)
	h.Diverge(0, 10, 1, 0x3, 0)
	// Primary (pc 1, mask 0xC) advances to 10 -> merge.
	h.Advance(0, 10, 1)
	if h.Splits() != 1 {
		t.Fatalf("splits = %d, want 1 after merge", h.Splits())
	}
	c := h.Slot(0)
	if c.PC != 10 || c.Mask != 0xF {
		t.Errorf("merged = %+v", c)
	}
	if h.Stats.Merges != 1 {
		t.Errorf("merges = %d", h.Stats.Merges)
	}
}

func TestHeapThreeWaySplitsUseCCT(t *testing.T) {
	h := NewHeap(0xF, 8)
	h.Diverge(0, 10, 1, 0x3, 0) // hot: (1, 0xC), (10, 0x3)
	// Primary diverges again at pc 1: thread 2 to pc 20, thread 3 falls to 2.
	h.Diverge(0, 20, 2, 0x4, 1) // contexts: (2,0x8) (10,0x3) (20,0x4)
	if h.Splits() != 3 {
		t.Fatalf("splits = %d", h.Splits())
	}
	pc1, _ := h.CPC1()
	pc2, _ := h.CPC2()
	if pc1 != 2 || pc2 != 10 {
		t.Fatalf("CPCs = %d,%d; want 2,10", pc1, pc2)
	}
	// CPC3 (20) must be in the CCT; bringing CPC1 forward past CPC2
	// must promote it.
	h.Advance(0, 30, 2) // (30,0x8): hot should now be (10,0x3),(20,0x4)
	pc1, _ = h.CPC1()
	pc2, _ = h.CPC2()
	if pc1 != 10 || pc2 != 20 {
		t.Fatalf("after advance: CPCs = %d,%d; want 10,20", pc1, pc2)
	}
}

func TestHeapMinPCInvariant(t *testing.T) {
	h := NewHeap(0xFF, 8)
	h.Diverge(0, 100, 1, 0x0F, 0)
	h.Diverge(0, 50, 2, 0x03, 1)
	h.Diverge(0, 25, 3, 0x01, 2)
	// Live PCs: 3 (0x2), 25 (0x1), 50 (0x3... wait masks: initial 0xFF.
	// After step1: (1,0xF0),(100,0x0F). step2 splits slot0: (2,0xC... )
	// Regardless of exact masks, slot0 must hold the global min PC.
	pc1, ok := h.CPC1()
	if !ok {
		t.Fatal("no primary")
	}
	for slot := 1; slot < HotContexts; slot++ {
		if c := h.Slot(slot); c != nil && c.PC < pc1 {
			t.Errorf("slot %d PC %d < CPC1 %d", slot, c.PC, pc1)
		}
	}
	for _, c := range h.cct {
		if c.Mask&h.alive != 0 && c.PC < pc1 {
			t.Errorf("CCT PC %d < CPC1 %d", c.PC, pc1)
		}
	}
}

func TestHeapExit(t *testing.T) {
	h := NewHeap(0xF, 8)
	h.Diverge(0, 10, 1, 0x3, 0)
	h.Exit(1, 1) // taken split (threads 0,1) exits
	if h.Alive() != 0xC {
		t.Errorf("alive = %#x", h.Alive())
	}
	if h.Splits() != 1 {
		t.Errorf("splits = %d", h.Splits())
	}
	h.Exit(0, 2)
	if !h.Done() {
		t.Error("heap should be done")
	}
}

func TestHeapSyncBlocked(t *testing.T) {
	h := NewHeap(0xF, 8)
	// Divergence at pc 5: primary at 6 (mask 0xC), secondary at 20 (0x3).
	h.Diverge(5, 20, 6, 0x3, 0)
	// Secondary reached a SYNC at pc 20 whose PCdiv = 5.
	h.Wait(1, 5)
	if !h.SyncBlocked(1) {
		t.Error("secondary should be blocked: primary at 6 in [5,20)")
	}
	if h.Eligible(1) {
		t.Error("blocked split must not be eligible")
	}
	if !h.Eligible(0) {
		t.Error("primary must stay eligible")
	}
	// Primary leaves the region (jumps past the sync): secondary wakes.
	h.Advance(0, 25, 1)
	// After resort, the old secondary (pc 20) is now the primary.
	pc1, _ := h.CPC1()
	if pc1 != 20 {
		t.Fatalf("CPC1 = %d, want 20", pc1)
	}
	if h.SyncBlocked(0) {
		t.Error("split at 20 should wake: other split at 25 is outside [5,20)")
	}
	if !h.Eligible(0) {
		t.Error("woken split must be eligible")
	}
}

func TestHeapSyncReleaseByMerge(t *testing.T) {
	h := NewHeap(0xF, 8)
	h.Diverge(5, 20, 6, 0x3, 0)
	h.Wait(1, 5)
	// Primary walks to the sync PC: contexts merge; merged context must
	// not inherit the wait state.
	h.Advance(0, 20, 1)
	c := h.Slot(0)
	if c == nil || c.Mask != 0xF || c.PC != 20 {
		t.Fatalf("merged = %+v", c)
	}
	if c.WaitDiv != -1 {
		t.Error("merge must clear WaitDiv")
	}
	if !h.Eligible(0) {
		t.Error("merged split must be eligible")
	}
}

func TestHeapOuterBlockRunsFree(t *testing.T) {
	// Paper Figure 4 case 2: the secondary split is at the inner
	// reconvergence point F with PCdiv = end of C; the primary is in B,
	// BEFORE the divergence point. Execution may continue.
	h := NewHeap(0xF, 8)
	// Outer divergence at 2: B starts at 3 (mask 0xC), C at 10 (0x3).
	h.Diverge(2, 10, 3, 0x3, 0)
	// Inner divergence at 12 (in C): D at 13 (0x1), E at 20 (0x2).
	h.Diverge(12, 20, 13, 0x2, 1)
	// The D split reaches F at 25 (sync with PCdiv=12) while E still in 20.
	// Find slot of PC 13 after resort: slots sorted -> (3,0xC) primary,
	// (13,0x1) secondary, (20,0x2) in CCT.
	if pc2, _ := h.CPC2(); pc2 != 13 {
		t.Fatalf("CPC2 = %d", pc2)
	}
	h.Advance(1, 25, 2) // D reaches F
	// Now contexts: (3,0xC), (20,0x2), (25,0x1). Slot1 is 20.
	// The split at 25 is in the CCT or hot depending on ordering; make
	// E reach F too.
	// First check blocking for the F split if it were scheduled: find it.
	// E (pc 20) advances to 25: merge with D's split.
	if pc2, _ := h.CPC2(); pc2 != 20 {
		t.Fatalf("CPC2 = %d, want 20", pc2)
	}
	h.Advance(1, 25, 3)
	// Contexts: (3,0xC) and (25,0x3).
	if h.Splits() != 2 {
		t.Fatalf("splits = %d", h.Splits())
	}
	// F split waits on sync with PCdiv = 12 (inner divergence): primary
	// at 3 is OUTSIDE [12,25) -> not blocked (outer branch B and inner
	// reconvergence F run in parallel).
	h.Wait(1, 12)
	if h.SyncBlocked(1) {
		t.Error("F must not wait for B: primary PC 3 < PCdiv 12")
	}
}

func TestHeapPark(t *testing.T) {
	h := NewHeap(0xF, 8)
	h.Diverge(0, 10, 1, 0x3, 0)
	h.Park(0) // partial split at barrier
	if h.Eligible(0) {
		t.Error("parked partial split must not be eligible")
	}
	// The other threads exit: the parked split now holds all live
	// threads and wakes.
	h.Exit(1, 1)
	if !h.Eligible(0) {
		t.Error("parked split should wake when it holds all live threads")
	}
}

func TestHeapDegradedSorter(t *testing.T) {
	h := NewHeap(0xFF, 8)
	// Create many splits in the same cycle: the sideband sorter can only
	// absorb the first; later ones land unsorted (degraded mode).
	h.Diverge(0, 100, 1, 0x80, 0)
	h.Diverge(0, 90, 2, 0x40, 0)
	h.Diverge(0, 80, 3, 0x20, 0)
	h.Diverge(0, 70, 4, 0x10, 0)
	if h.Stats.DegradedInser == 0 {
		t.Error("expected degraded insertions under same-cycle pressure")
	}
	// Correctness: all threads still tracked exactly once.
	var union uint64
	total := 0
	for i := 0; i < HotContexts; i++ {
		if c := h.Slot(i); c != nil {
			union |= c.Mask
			total += bits.OnesCount64(c.Mask)
		}
	}
	for _, c := range h.cct {
		union |= c.Mask & h.alive
		total += bits.OnesCount64(c.Mask & h.alive)
	}
	if union != 0xFF || total != 8 {
		t.Errorf("threads lost or duplicated: union %#x count %d", union, total)
	}
}

func TestHeapCCTOverflow(t *testing.T) {
	h := NewHeap(0xFFFF, 2) // tiny CCT
	pcs := []int{100, 90, 80, 70, 60, 50}
	for i, pc := range pcs {
		h.Diverge(0, pc, i+1, 1<<uint(15-i), int64(i*100))
	}
	if h.Stats.CCTOverflows == 0 {
		t.Error("expected CCT overflow")
	}
	// All threads still present.
	var union uint64
	for i := 0; i < HotContexts; i++ {
		if c := h.Slot(i); c != nil {
			union |= c.Mask
		}
	}
	for _, c := range h.cct {
		union |= c.Mask & h.alive
	}
	if union != 0xFFFF {
		t.Errorf("union = %#x", union)
	}
}

// heapOracle replays a random operation sequence and checks structural
// invariants: all live threads appear in exactly one context, CPC1 is
// the global minimum, and eligibility never panics.
func TestQuickHeapInvariants(t *testing.T) {
	f := func(ops []uint16, width uint8) bool {
		w := 8 + int(width%57) // 8..64
		full := uint64(1)<<uint(w) - 1
		if w == 64 {
			full = ^uint64(0)
		}
		h := NewHeap(full, 8)
		now := int64(0)
		for _, op := range ops {
			now++
			slot := int(op>>14) % HotContexts
			c := h.Slot(slot)
			if c == nil {
				slot = 0
				c = h.Slot(0)
				if c == nil {
					break
				}
			}
			pc := c.PC
			switch op % 4 {
			case 0: // advance
				h.Advance(slot, pc+1+int(op%7), now)
			case 1: // diverge
				sub := c.Mask & h.alive & (0x5555555555555555 << uint(op%3))
				if sub == 0 || sub == c.Mask&h.alive {
					h.Advance(slot, pc+1, now)
				} else {
					h.Diverge(pc, pc+2+int(op%5), pc+1, sub, now)
				}
			case 2: // exit
				h.Exit(slot, now)
			case 3: // jump far (loop-like)
				h.Advance(slot, int(op%97), now)
			}
			// Invariants.
			var union uint64
			count := 0
			minPC := int(^uint(0) >> 1)
			for i := 0; i < HotContexts; i++ {
				if cc := h.Slot(i); cc != nil {
					if union&cc.Mask != 0 {
						return false // overlap
					}
					union |= cc.Mask
					count += bits.OnesCount64(cc.Mask)
					if cc.PC < minPC {
						minPC = cc.PC
					}
				}
			}
			for _, cc := range h.cct {
				m := cc.Mask & h.alive
				if m == 0 {
					continue
				}
				if union&m != 0 {
					return false
				}
				union |= m
				count += bits.OnesCount64(m)
				if cc.PC < minPC {
					minPC = cc.PC
				}
			}
			if union != h.Alive() {
				return false
			}
			if pc1, ok := h.CPC1(); ok && pc1 != minPC {
				return false // CPC1 must be the global minimum
			}
			if h.Done() {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
