// Package reconv implements the two thread-reconvergence mechanisms the
// paper contrasts:
//
//   - Stack: the baseline per-warp reconvergence stack used by Tesla- and
//     Fermi-class GPUs (pushed on divergence with the branch's
//     reconvergence PC, popped when execution reaches it).
//   - Heap: the thread-frontier sorted heap of warp-split contexts
//     (Diamos et al., adopted by the paper in §3.4), organized as a Hot
//     Context Table holding the two minimal-PC contexts of each warp and
//     a Cold Context Table holding the rest, kept sorted by a sideband
//     sorter of bounded throughput that degrades to stack (LIFO) order
//     under pressure.
//
// Both structures track only control state (PCs and activity masks);
// data state lives in the simulator's register files.
package reconv

import "fmt"

// StackEntry is one level of the baseline reconvergence stack.
type StackEntry struct {
	PC    int
	Mask  uint64
	RecPC int // pop when PC reaches RecPC; -1 = never
}

// Stack is the baseline per-warp divergence stack.
type Stack struct {
	entries  []StackEntry
	alive    uint64
	valid    uint64
	maxDepth int
}

// NewStack creates a stack for a warp whose valid threads are mask.
func NewStack(mask uint64) *Stack {
	return &Stack{
		entries: []StackEntry{{PC: 0, Mask: mask, RecPC: -1}},
		alive:   mask,
		valid:   mask,
	}
}

// Alive returns the mask of threads that have not exited.
func (s *Stack) Alive() uint64 { return s.alive }

// Depth returns the current stack depth; MaxDepth the high-water mark.
func (s *Stack) Depth() int    { return len(s.entries) }
func (s *Stack) MaxDepth() int { return s.maxDepth }

// Done reports whether all threads have exited.
func (s *Stack) Done() bool { return s.top() == nil }

// top pops exhausted entries and returns the live TOS, or nil.
func (s *Stack) top() *StackEntry {
	for len(s.entries) > 0 {
		e := &s.entries[len(s.entries)-1]
		if e.Mask&s.alive != 0 {
			return e
		}
		s.entries = s.entries[:len(s.entries)-1]
	}
	return nil
}

// Active returns the schedulable PC and effective mask.
func (s *Stack) Active() (pc int, mask uint64, ok bool) {
	e := s.top()
	if e == nil {
		return 0, 0, false
	}
	return e.PC, e.Mask & s.alive, true
}

// Advance moves the TOS to the next sequential PC, popping at the
// reconvergence point.
func (s *Stack) Advance() {
	e := s.top()
	if e == nil {
		return
	}
	e.PC++
	s.popAtRec()
}

// Jump redirects the TOS (uniform branch). Jumping exactly onto the
// entry's reconvergence point pops it, like advancing into it — the
// common shape of an if/else whose then-path ends in "bra join".
func (s *Stack) Jump(pc int) {
	if e := s.top(); e != nil {
		e.PC = pc
		s.popAtRec()
	}
}

// popAtRec pops every TOS entry sitting at its own reconvergence point.
// The loop handles nested regions that share a reconvergence PC.
func (s *Stack) popAtRec() {
	for len(s.entries) > 0 {
		e := &s.entries[len(s.entries)-1]
		if e.RecPC < 0 || e.PC != e.RecPC {
			return
		}
		s.entries = s.entries[:len(s.entries)-1]
	}
}

// Diverge splits the TOS at a divergent branch located at pc: threads in
// taken go to target, the rest fall through, and both reconverge at
// recPC. Paths that would start at recPC are not pushed (their threads
// wait in the reconvergence entry).
func (s *Stack) Diverge(pc, target, recPC int, taken uint64) {
	e := s.top()
	if e == nil {
		return
	}
	eff := e.Mask & s.alive
	ntaken := eff &^ taken
	e.PC = recPC
	if pc+1 != recPC {
		s.entries = append(s.entries, StackEntry{PC: pc + 1, Mask: ntaken, RecPC: recPC})
	}
	if target != recPC {
		s.entries = append(s.entries, StackEntry{PC: target, Mask: taken, RecPC: recPC})
	}
	if len(s.entries) > s.maxDepth {
		s.maxDepth = len(s.entries)
	}
	s.top()
	s.popAtRec()
}

// Exit retires the given threads. They disappear from every entry.
func (s *Stack) Exit(mask uint64) {
	s.alive &^= mask
	s.top()
}

func (s *Stack) String() string {
	return fmt.Sprintf("stack{depth=%d alive=%#x}", len(s.entries), s.alive)
}
