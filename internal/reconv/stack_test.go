package reconv

import "testing"

func TestStackStraightLine(t *testing.T) {
	s := NewStack(0xF)
	pc, mask, ok := s.Active()
	if !ok || pc != 0 || mask != 0xF {
		t.Fatalf("initial = %d %#x %v", pc, mask, ok)
	}
	s.Advance()
	pc, _, _ = s.Active()
	if pc != 1 {
		t.Errorf("pc = %d", pc)
	}
	s.Jump(10)
	pc, _, _ = s.Active()
	if pc != 10 {
		t.Errorf("pc after jump = %d", pc)
	}
}

func TestStackDivergeReconverge(t *testing.T) {
	s := NewStack(0xF)
	// Branch at pc 0: threads 0,1 taken to 5; reconverge at 8.
	s.Diverge(0, 5, 8, 0x3)
	if s.Depth() != 3 {
		t.Fatalf("depth = %d", s.Depth())
	}
	// Taken path runs first.
	pc, mask, _ := s.Active()
	if pc != 5 || mask != 0x3 {
		t.Fatalf("taken path = %d %#x", pc, mask)
	}
	s.Advance() // 6
	s.Advance() // 7
	s.Advance() // 8 == recPC -> pop
	pc, mask, _ = s.Active()
	if pc != 1 || mask != 0xC {
		t.Fatalf("fallthrough path = %d %#x", pc, mask)
	}
	for i := 0; i < 7; i++ {
		s.Advance()
	}
	// Reached 8 -> pop to reconvergence entry.
	pc, mask, _ = s.Active()
	if pc != 8 || mask != 0xF {
		t.Fatalf("reconverged = %d %#x", pc, mask)
	}
	if s.Depth() != 1 {
		t.Errorf("depth = %d", s.Depth())
	}
	if s.MaxDepth() != 3 {
		t.Errorf("max depth = %d", s.MaxDepth())
	}
}

func TestStackPathAtReconvergenceNotPushed(t *testing.T) {
	s := NewStack(0xF)
	// if-without-else: taken jumps straight to the reconvergence point.
	s.Diverge(0, 8, 8, 0x3)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	pc, mask, _ := s.Active()
	if pc != 1 || mask != 0xC {
		t.Fatalf("active = %d %#x, want fallthrough", pc, mask)
	}
	for i := 0; i < 7; i++ {
		s.Advance()
	}
	pc, mask, _ = s.Active()
	if pc != 8 || mask != 0xF {
		t.Fatalf("reconverged = %d %#x", pc, mask)
	}
}

func TestStackExit(t *testing.T) {
	s := NewStack(0xF)
	s.Diverge(0, 5, 8, 0x3)
	// Taken path (threads 0,1) exits.
	_, mask, _ := s.Active()
	s.Exit(mask)
	pc, mask, ok := s.Active()
	if !ok || pc != 1 || mask != 0xC {
		t.Fatalf("after exit = %d %#x %v", pc, mask, ok)
	}
	s.Exit(mask)
	if !s.Done() {
		t.Error("stack should be done")
	}
	if _, _, ok := s.Active(); ok {
		t.Error("Active after done")
	}
}

func TestStackAllTakenNoDivergence(t *testing.T) {
	s := NewStack(0xF)
	// Uniform branch handled by Jump, not Diverge; but Diverge with the
	// full mask taken must still behave (empty fallthrough entry is
	// pushed but immediately skipped).
	s.Diverge(0, 5, 8, 0xF)
	pc, mask, _ := s.Active()
	if pc != 5 || mask != 0xF {
		t.Fatalf("active = %d %#x", pc, mask)
	}
}
