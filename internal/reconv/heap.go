package reconv

import (
	"fmt"
	"math/bits"
)

// Context is one warp-split: a program counter and the set of threads
// following it, plus scheduling state used by the selective
// synchronization barrier (§3.3) and partial-barrier parking.
type Context struct {
	PC   int
	Mask uint64

	// WaitDiv is the PCdiv payload of a SYNC this split attempted while
	// other splits were still inside [PCdiv, PC); -1 when not waiting.
	// The wait condition is re-evaluated dynamically, so the split wakes
	// as soon as the region empties or a merge absorbs it.
	WaitDiv int

	// Parked marks a split that reached a block barrier with only part
	// of the warp's live threads; it becomes schedulable again when it
	// holds all live threads (merges or thread exits).
	Parked bool

	// LastIssue is the cycle this split last issued an instruction; the
	// pipeline uses it to enforce one issue per split per cycle. Merges
	// keep the most recent of the two.
	LastIssue int64
}

// HotContexts is the number of HCT entries per warp (the paper's HCT
// stores two active contexts per warp).
const HotContexts = 2

// HeapStats counts sorted-heap events.
type HeapStats struct {
	MaxSplits     int    // peak live warp-split count
	Merges        uint64 // context merges (reconvergences)
	Divergences   uint64
	DegradedInser uint64 // CCT insertions the sideband sorter could not absorb
	CCTOverflows  uint64 // insertions beyond the CCT capacity
}

// Heap is the per-warp dual context table of the thread-frontier design:
// a Hot Context Table holding the two minimal-PC contexts (the primary
// and secondary warp-splits scheduled by SBI) and a Cold Context Table
// holding the rest, sorted ascending by PC.
//
// Departure from the hardware proposal, recorded in DESIGN.md: the
// paper's sideband sorter has bounded throughput and degrades the CCT to
// LIFO order under pressure; the paper notes the order affects only
// reconvergence quality, never correctness, and that real programs
// rarely exceed 3 contexts (§3.4). This model keeps the heap perfectly
// sorted at all times and instead *counts* the insertions a real
// sideband sorter would have had to defer (DegradedInser) and the
// insertions beyond the configured CCT capacity (CCTOverflows), so
// experiments can report how far a concrete implementation would stray.
type Heap struct {
	hot      [HotContexts]Context
	hotValid [HotContexts]bool

	cct    []Context // sorted ascending by PC
	cctCap int

	sorterFreeAt int64

	alive uint64

	Stats HeapStats
}

// NewHeap creates a heap for a warp whose valid threads are mask. cctCap
// is the Cold Context Table capacity (8 per warp in the paper's
// conservative sizing); it bounds nothing here, only the overflow
// statistic.
func NewHeap(mask uint64, cctCap int) *Heap {
	h := &Heap{cctCap: cctCap, alive: mask}
	h.hot[0] = Context{PC: 0, Mask: mask, WaitDiv: -1, LastIssue: -1}
	h.hotValid[0] = true
	h.Stats.MaxSplits = 1
	return h
}

// Alive returns the mask of threads that have not exited.
func (h *Heap) Alive() uint64 { return h.alive }

// Done reports whether all threads have exited.
func (h *Heap) Done() bool { return h.alive == 0 }

// Splits returns the number of live warp-splits.
func (h *Heap) Splits() int {
	n := 0
	for i := range h.hot {
		if h.hotValid[i] {
			n++
		}
	}
	return n + len(h.cct)
}

// Slot returns the hot context in slot i (0 = primary, 1 = secondary),
// or nil if that slot is empty. The returned pointer stays valid until
// the next mutating call.
func (h *Heap) Slot(i int) *Context {
	if i < 0 || i >= HotContexts || !h.hotValid[i] {
		return nil
	}
	return &h.hot[i]
}

// CPC1 returns the primary common PC (the global minimum).
func (h *Heap) CPC1() (int, bool) {
	if c := h.Slot(0); c != nil {
		return c.PC, true
	}
	return 0, false
}

// CPC2 returns the secondary common PC (the second minimum).
func (h *Heap) CPC2() (int, bool) {
	if c := h.Slot(1); c != nil {
		return c.PC, true
	}
	return 0, false
}

// SlotMasks returns the thread masks of the primary split, the secondary
// split and the remaining (cold) contexts. The triple drives the
// dependency-matrix scoreboard's transition matrices (§3.4): matrix row
// and column i correspond to return value i.
func (h *Heap) SlotMasks() [3]uint64 {
	var m [3]uint64
	for i := range h.hot {
		if h.hotValid[i] {
			m[i] = h.hot[i].Mask
		}
	}
	m[2] = h.alive &^ m[0] &^ m[1]
	return m
}

// minOtherPC returns the minimum PC over all live splits except the one
// in hot slot `slot`; ok is false when no other split exists.
func (h *Heap) minOtherPC(slot int) (int, bool) {
	minPC, ok := 0, false
	for i := range h.hot {
		if i == slot || !h.hotValid[i] {
			continue
		}
		if !ok || h.hot[i].PC < minPC {
			minPC, ok = h.hot[i].PC, true
		}
	}
	if len(h.cct) > 0 && (!ok || h.cct[0].PC < minPC) {
		minPC, ok = h.cct[0].PC, true
	}
	return minPC, ok
}

// SyncBlocked evaluates the selective synchronization barrier condition
// for the split in slot: it must wait at its SYNC (whose PCdiv payload
// it recorded via Wait) while any other split's PC lies within
// [PCdiv, PCrec), where PCrec is the split's own PC.
func (h *Heap) SyncBlocked(slot int) bool {
	c := h.Slot(slot)
	if c == nil || c.WaitDiv < 0 {
		return false
	}
	other, ok := h.minOtherPC(slot)
	if !ok {
		return false
	}
	return other >= c.WaitDiv && other < c.PC
}

// SyncBlockedAt reports whether a SYNC carrying pcDiv executed by the
// split in slot must suspend it, per the two cases of paper §3.3: it
// blocks exactly when another split's PC lies in [pcDiv, PCrec).
func (h *Heap) SyncBlockedAt(slot int, pcDiv int) bool {
	c := h.Slot(slot)
	if c == nil {
		return false
	}
	other, ok := h.minOtherPC(slot)
	if !ok {
		return false
	}
	return other >= pcDiv && other < c.PC
}

// Eligible reports whether the split in slot may be scheduled.
func (h *Heap) Eligible(slot int) bool {
	c := h.Slot(slot)
	if c == nil {
		return false
	}
	if c.Parked && c.Mask != h.alive {
		return false
	}
	return !h.SyncBlocked(slot)
}

// Suspended reports whether the split in slot exists but is
// architecturally suspended: parked at a partial barrier or waiting on
// a selective synchronization barrier. The front-end skips suspended
// contexts when choosing its primary, so a parked minimal-PC split
// cannot starve the runnable split behind it.
func (h *Heap) Suspended(slot int) bool {
	c := h.Slot(slot)
	if c == nil {
		return false
	}
	if c.Parked && c.Mask != h.alive {
		return true
	}
	return h.SyncBlocked(slot)
}

// Advance moves the split in hot slot to nextPC, merging with any other
// split already there. now is the current cycle (sideband-sorter
// statistics).
func (h *Heap) Advance(slot int, nextPC int, now int64) {
	c := h.Slot(slot)
	if c == nil {
		return
	}
	c.PC = nextPC
	c.WaitDiv = -1
	c.Parked = false
	h.rebuild(now, false)
}

// Wait records that the split in slot attempted a SYNC carrying pcDiv
// and must retry once the region [pcDiv, PC) empties.
func (h *Heap) Wait(slot int, pcDiv int) {
	if c := h.Slot(slot); c != nil {
		c.WaitDiv = pcDiv
	}
}

// Park records that the split in slot reached a block barrier without
// holding every live thread of the warp.
func (h *Heap) Park(slot int) {
	if c := h.Slot(slot); c != nil {
		c.Parked = true
	}
}

// Diverge splits the context executing a branch at pcBranch: threads in
// taken continue at pcTaken, the rest of that context's threads at
// pcFall. The diverging context is identified by mask containment
// (taken must be a subset of exactly one live context, since contexts
// partition the warp). This is the single divergence event the HCT
// sorter accepts per cycle (the CPC3 input of figure 5).
//
// If taken is empty or covers the whole context, the context simply
// jumps (no split is created).
func (h *Heap) Diverge(pcBranch, pcTaken, pcFall int, taken uint64, now int64) {
	taken &= h.alive
	c := h.findByMask(taken)
	if c == nil {
		return
	}
	_ = pcBranch // the branch address does not affect heap state
	eff := c.Mask
	switch {
	case taken == 0:
		c.PC = pcFall
	case taken == eff:
		c.PC = pcTaken
	default:
		h.Stats.Divergences++
		c.PC = pcFall
		c.Mask = eff &^ taken
		c.WaitDiv = -1
		c.Parked = false
		h.cct = append(h.cct, Context{PC: pcTaken, Mask: taken, WaitDiv: -1, LastIssue: c.LastIssue})
	}
	c.WaitDiv = -1
	c.Parked = false
	h.rebuild(now, true)
}

// Exit retires the threads of the split in hot slot.
func (h *Heap) Exit(slot int, now int64) {
	c := h.Slot(slot)
	if c == nil {
		return
	}
	h.alive &^= c.Mask
	c.Mask = 0
	h.rebuild(now, false)
}

// findByMask returns the live context whose mask contains `taken`
// (hot slots first, then the CCT), or nil.
func (h *Heap) findByMask(taken uint64) *Context {
	if taken == 0 {
		// An all-fall-through branch comes from the primary split by
		// convention (the caller just executed it there).
		return h.Slot(0)
	}
	for i := range h.hot {
		if h.hotValid[i] && h.hot[i].Mask&taken == taken {
			return &h.hot[i]
		}
	}
	for i := range h.cct {
		if h.cct[i].Mask&taken == taken {
			return &h.cct[i]
		}
	}
	return nil
}

// rebuild restores the heap invariants after a mutation: dead contexts
// dropped, equal-PC contexts merged, contexts sorted ascending by PC,
// the two minima placed in the hot slots and the rest in the CCT.
// inserted marks mutations that created a new context (divergences), for
// the sideband-sorter statistics.
func (h *Heap) rebuild(now int64, inserted bool) {
	all := h.cct[:0:cap(h.cct)]
	var buf [HotContexts]Context
	nHot := 0
	for i := range h.hot {
		if h.hotValid[i] && h.hot[i].Mask&h.alive != 0 {
			h.hot[i].Mask &= h.alive
			buf[nHot] = h.hot[i]
			nHot++
		}
		h.hotValid[i] = false
	}
	live := all
	for _, c := range h.cct {
		if c.Mask &= h.alive; c.Mask != 0 {
			live = append(live, c)
		}
	}
	live = append(live, buf[:nHot]...)

	// Stable insertion sort by PC. The live set is tiny (real programs
	// rarely exceed 3 contexts, §3.4) and nearly sorted, and rebuild
	// runs on every heap mutation — one per issue — so this keeps the
	// issue path allocation-free where sort.SliceStable would not be.
	for i := 1; i < len(live); i++ {
		c := live[i]
		j := i - 1
		for ; j >= 0 && live[j].PC > c.PC; j-- {
			live[j+1] = live[j]
		}
		live[j+1] = c
	}

	// Merge equal PCs. Merged contexts re-evaluate any SYNC or barrier.
	out := live[:0]
	for _, c := range live {
		if n := len(out); n > 0 && out[n-1].PC == c.PC {
			out[n-1].Mask |= c.Mask
			out[n-1].WaitDiv = -1
			out[n-1].Parked = false
			if c.LastIssue > out[n-1].LastIssue {
				out[n-1].LastIssue = c.LastIssue
			}
			h.Stats.Merges++
			continue
		}
		out = append(out, c)
	}

	for i := 0; i < HotContexts && i < len(out); i++ {
		h.hot[i] = out[i]
		h.hotValid[i] = true
	}
	// Keep `out`'s backing as the new CCT storage: when the live set
	// outgrew the old array, appending reallocated, and resetting to the
	// old slice would leak the growth and reallocate on every rebuild.
	if len(out) > HotContexts {
		n := copy(out, out[HotContexts:])
		h.cct = out[:n]
	} else {
		h.cct = out[:0]
	}

	if inserted && len(h.cct) > 0 {
		// Sideband-sorter accounting: one insertion per divergence that
		// spills into the CCT. Walking to the insertion point costs
		// cycles; back-to-back insertions would degrade to LIFO.
		if len(h.cct) > h.cctCap {
			h.Stats.CCTOverflows++
		}
		if now < h.sorterFreeAt {
			h.Stats.DegradedInser++
		} else {
			h.sorterFreeAt = now + int64(len(h.cct))
		}
	}
	if n := h.Splits(); n > h.Stats.MaxSplits {
		h.Stats.MaxSplits = n
	}
}

// Threads returns the number of live threads.
func (h *Heap) Threads() int { return bits.OnesCount64(h.alive) }

func (h *Heap) String() string {
	s := "heap{"
	for i := range h.hot {
		if h.hotValid[i] {
			s += fmt.Sprintf("hot%d@%d:%#x ", i, h.hot[i].PC, h.hot[i].Mask)
		}
	}
	return s + fmt.Sprintf("cct=%d alive=%#x}", len(h.cct), h.alive)
}
