package sm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// assembleBench prepares the program variant an architecture needs,
// like assembleFor but usable from benchmarks.
func assembleBench(src string, a Arch) (*isa.Program, error) {
	p, err := asm.Assemble("bench", src)
	if err != nil {
		return nil, err
	}
	if err := cfg.AnnotateReconvergence(p); err != nil {
		return nil, err
	}
	if a == ArchBaseline {
		return p, nil
	}
	return cfg.InsertSyncs(p)
}

// BenchmarkCycleLoop measures the scheduling core itself — the
// per-cycle cost of the front-ends, scoreboard and reconvergence
// machinery — on the divergence-heavy compute loop used by the
// zero-allocation guard, across the stack baseline and the
// thread-frontier architectures. The companion /mem variant is
// memory-latency-bound, so it measures the idle-cycle fast-forward
// rather than the issue path. Compare against main with:
//
//	go test ./internal/sm -bench CycleLoop -benchmem -count 6 | benchstat
func BenchmarkCycleLoop(b *testing.B) {
	archs := []Arch{ArchBaseline, ArchSBI, ArchSWI, ArchSBISWI}
	for _, a := range archs {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			cfg := Configure(a)
			p, err := assembleBench(benchmarkLoopSrc, a)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := newLaunch(p, 4, 256, 4*256, 0)
				res, err := Run(cfg, l)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
	for _, a := range archs {
		a := a
		b.Run(a.String()+"/mem", func(b *testing.B) {
			cfg := Configure(a)
			p, err := assembleBench(benchmarkMemSrc, a)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := newLaunch(p, 4, 256, 4*256+65536, 0, 4*256*4)
				res, err := Run(cfg, l)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Stats.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// benchmarkLoopSrc is divergentLoopSrc with a shorter trip count so one
// benchmark iteration stays in the microsecond range.
const benchmarkLoopSrc = `
	mov  r1, %tid
	mov  r3, 0
	mov  r4, 0
loop:
	and  r6, r4, 1
	isetp.eq r7, r6, 0
	bra  r7, even
	iadd r4, r4, 3
	bra  join
even:
	iadd r4, r4, 1
join:
	iadd r3, r3, 1
	isetp.lt r8, r3, 500
	bra  r8, loop
	mov  r9, %ctaid
	mov  r10, %ntid
	imad r11, r9, r10, r1
	shl  r12, r11, 2
	mov  r13, %p0
	iadd r13, r13, r12
	st.g [r13], r4
	exit
`

// benchmarkMemSrc is memIdleLoopSrc with a shorter trip count.
const benchmarkMemSrc = `
	mov  r1, %tid
	shl  r2, r1, 7
	mov  r3, 0
	mov  r4, 0
loop:
	imul r5, r3, 4099
	iadd r6, r2, r5
	and  r6, r6, 262143
	shr  r7, r6, 2
	shl  r6, r7, 2
	mov  r7, %p1
	iadd r7, r7, r6
	ld.g r8, [r7]
	iadd r4, r4, r8
	iadd r3, r3, 1
	isetp.lt r9, r3, 100
	bra  r9, loop
	mov  r10, %ctaid
	mov  r11, %ntid
	imad r12, r10, r11, r1
	shl  r13, r12, 2
	mov  r14, %p0
	iadd r14, r14, r13
	st.g [r14], r4
	exit
`
