package sm

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sched"
)

// kernels used across the tests. P0 is the byte offset of the output
// buffer in global memory.

const straightSrc = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	shl  r5, r4, 2
	mov  r6, %p0
	iadd r7, r6, r5
	imul r8, r4, 3
	iadd r8, r8, 7
	st.g [r7], r8
	exit
`

const ifelseSrc = `
	mov  r1, %tid
	and  r2, r1, 1
	isetp.eq r3, r2, 0
	bra  r3, even
	imul r4, r1, 3
	iadd r4, r4, 11
	imul r4, r4, 5
	bra  join
even:
	iadd r4, r1, 100
	imul r4, r4, 7
	iadd r4, r4, 1
join:
	mov  r5, %ctaid
	mov  r6, %ntid
	imad r7, r5, r6, r1
	shl  r8, r7, 2
	mov  r9, %p0
	iadd r9, r9, r8
	st.g [r9], r4
	exit
`

const loopSrc = `
	mov  r1, %tid
	imod r2, r1, 7
	mov  r3, 0
	mov  r4, 0
loop:
	isetp.ge r5, r3, r2
	bra  r5, done
	iadd r4, r4, r3
	iadd r4, r4, 13
	iadd r3, r3, 1
	bra  loop
done:
	mov  r5, %ctaid
	mov  r6, %ntid
	imad r7, r5, r6, r1
	shl  r8, r7, 2
	mov  r9, %p0
	iadd r9, r9, r8
	st.g [r9], r4
	exit
`

const barrierSrc = `
.shared 1024
	mov  r1, %tid
	shl  r2, r1, 2
	imul r3, r1, 5
	st.s [r2], r3
	bar
	mov  r4, %ntid
	isub r5, r4, 1
	isub r5, r5, r1
	shl  r6, r5, 2
	ld.s r7, [r6]
	mov  r8, %ctaid
	imad r9, r8, r4, r1
	shl  r10, r9, 2
	mov  r11, %p0
	iadd r11, r11, r10
	st.g [r11], r7
	exit
`

const gatherSrc = `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	shl  r5, r4, 2
	mov  r6, %p1
	iadd r6, r6, r5
	ld.g r7, [r6]
	imul r7, r7, 3
	mov  r8, %p0
	iadd r8, r8, r5
	st.g [r8], r7
	exit
`

// assembleFor prepares the program variant an architecture needs: RecPC
// annotations for the baseline stack, SYNC insertion for thread-frontier
// designs.
func assembleFor(t *testing.T, name, src string, a Arch) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	if a == ArchBaseline {
		return p
	}
	sp, err := cfg.InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// newLaunch builds a launch with words*4 bytes of global memory.
func newLaunch(p *isa.Program, grid, block, words int, params ...uint32) *exec.Launch {
	l := &exec.Launch{
		Prog:     p,
		GridDim:  grid,
		BlockDim: block,
		Global:   make([]byte, words*4),
	}
	for i, v := range params {
		l.Params[i] = v
	}
	return l
}

// runBoth executes the launch on the cycle simulator and the functional
// reference and asserts bit-identical global memory.
func runBoth(t *testing.T, a Arch, name, src string, grid, block, words int, params ...uint32) *Result {
	t.Helper()
	c := Configure(a)

	progSim := assembleFor(t, name, src, a)
	lSim := newLaunch(progSim, grid, block, words, params...)

	progRef, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.AnnotateReconvergence(progRef); err != nil {
		t.Fatal(err)
	}
	lRef := newLaunch(progRef, grid, block, words, params...)
	if _, err := exec.RunReference(lRef, 32); err != nil {
		t.Fatalf("reference: %v", err)
	}

	res, err := Run(c, lSim)
	if err != nil {
		t.Fatalf("%s: %v", a, err)
	}
	if !bytes.Equal(lSim.Global, lRef.Global) {
		t.Fatalf("%s on %s: global memory differs from reference", name, a)
	}
	if res.Stats.Cycles <= 0 || res.Stats.ThreadInstrs == 0 {
		t.Fatalf("%s on %s: empty stats %+v", name, a, res.Stats)
	}
	return res
}

func TestAllArchsMatchReference(t *testing.T) {
	kernels := []struct {
		name, src          string
		grid, block, words int
		params             []uint32
	}{
		{"straight", straightSrc, 3, 128, 3 * 128, []uint32{0}},
		{"ifelse", ifelseSrc, 3, 96, 3 * 96, []uint32{0}},
		{"loop", loopSrc, 2, 128, 2 * 128, []uint32{0}},
		{"barrier", barrierSrc, 2, 128, 2 * 128, []uint32{0}},
		{"gather", gatherSrc, 2, 64, 2 * 2 * 64, []uint32{0, 2 * 64 * 4}},
	}
	for _, k := range kernels {
		for _, a := range Architectures() {
			t.Run(k.name+"/"+a.String(), func(t *testing.T) {
				res := runBoth(t, a, k.name, k.src, k.grid, k.block, k.words, k.params...)
				if res.Stats.IPC() <= 0 {
					t.Errorf("IPC = %f", res.Stats.IPC())
				}
			})
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, a := range Architectures() {
		p1 := assembleFor(t, "loop", loopSrc, a)
		l1 := newLaunch(p1, 4, 256, 4*256, 0)
		r1, err := Run(Configure(a), l1)
		if err != nil {
			t.Fatal(err)
		}
		p2 := assembleFor(t, "loop", loopSrc, a)
		l2 := newLaunch(p2, 4, 256, 4*256, 0)
		r2, err := Run(Configure(a), l2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Stats != r2.Stats {
			t.Errorf("%s: non-deterministic stats:\n%+v\n%+v", a, r1.Stats, r2.Stats)
		}
	}
}

// SBI must co-issue the two divergent paths of the balanced if/else:
// secondary issues with SBI provenance, and the divergent section must
// beat the single-issue thread-frontier reference.
func TestSBICoIssuesBranches(t *testing.T) {
	res := runBoth(t, ArchSBI, "ifelse", ifelseSrc, 8, 256, 8*256, 0)
	if res.Stats.SBIPairs == 0 {
		t.Errorf("SBI never paired branch instructions: %+v", res.Stats)
	}
	ref := runBoth(t, ArchWarp64, "ifelse", ifelseSrc, 8, 256, 8*256, 0)
	if res.Stats.Cycles >= ref.Stats.Cycles {
		t.Errorf("SBI (%d cycles) should beat Warp64 (%d cycles) on balanced if/else",
			res.Stats.Cycles, ref.Stats.Cycles)
	}
}

// SBI's sequential fallback must dual-issue MAD+LSU pairs on regular
// code: the store at pc N and the independent iadd at pc N+1 target
// distinct unit groups.
func TestSBISequentialDualIssue(t *testing.T) {
	src := `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	shl  r5, r4, 2
	mov  r6, %p0
	iadd r7, r6, r5
	imul r8, r4, 3
	iadd r8, r8, 7
	st.g [r7], r8
	iadd r9, r4, 100
	mov  r10, %p1
	iadd r10, r10, r5
	st.g [r10], r9
	exit
`
	n := 8 * 256
	res := runBoth(t, ArchSBI, "straight2", src, 8, 256, 2*n, 0, uint32(n*4))
	if res.Stats.SeqPairs == 0 {
		t.Errorf("expected sequential dual-issues on straight-line code: %+v", res.Stats)
	}
}

// SWI must interweave warps on the unbalanced loop kernel.
func TestSWIInterweavesWarps(t *testing.T) {
	res := runBoth(t, ArchSWI, "loop", loopSrc, 8, 256, 8*256, 0)
	if res.Stats.SWIPairs == 0 {
		t.Errorf("SWI never paired warps: %+v", res.Stats)
	}
}

// The divergent kernels must actually diverge, and the baseline's
// reconvergence stack must bound its depth.
func TestDivergenceBookkeeping(t *testing.T) {
	res := runBoth(t, ArchBaseline, "loop", loopSrc, 2, 128, 2*128, 0)
	if res.Stats.Divergences == 0 {
		t.Error("loop kernel should diverge")
	}
	if res.Stats.MaxStackDepth < 2 {
		t.Errorf("stack depth = %d", res.Stats.MaxStackDepth)
	}
	resH := runBoth(t, ArchSBI, "loop", loopSrc, 2, 128, 2*128, 0)
	if resH.Stats.Merges == 0 {
		t.Error("heap should merge warp-splits")
	}
}

// Peak IPC sanity: the baseline cannot exceed its dual-issue bound and
// the interweaving designs cannot exceed the 104-lane back-end bound.
func TestIPCBounds(t *testing.T) {
	for _, a := range Architectures() {
		res := runBoth(t, a, "straight", straightSrc, 16, 256, 16*256, 0)
		c := Configure(a)
		bound := float64(2 * 32)
		if a != ArchBaseline {
			bound = float64(c.MADWidth + c.LSUWidth + c.SFUWidth)
		}
		if ipc := res.Stats.IPC(); ipc > bound {
			t.Errorf("%s: IPC %.1f exceeds bound %.1f", a, ipc, bound)
		}
	}
}

// Constraints must not change functional results and should reduce
// issue slots (or leave them equal) on divergent code.
func TestConstraintsReduceIssues(t *testing.T) {
	run := func(constraints bool) *Result {
		c := Configure(ArchSBI)
		c.Constraints = constraints
		p := assembleFor(t, "loop", loopSrc, ArchSBI)
		l := newLaunch(p, 8, 256, 8*256, 0)
		res, err := Run(c, l)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if with.Stats.ThreadInstrs != without.Stats.ThreadInstrs {
		t.Errorf("constraints changed committed work: %d vs %d",
			with.Stats.ThreadInstrs, without.Stats.ThreadInstrs)
	}
	if with.Stats.IssueSlots > without.Stats.IssueSlots {
		t.Errorf("constraints increased issues: %d vs %d",
			with.Stats.IssueSlots, without.Stats.IssueSlots)
	}
}

// The memory-divergence splitting extension must preserve results and
// actually split on a partially-hitting load pattern.
func TestMemDivergenceSplit(t *testing.T) {
	// Even threads re-touch a small hot region (hits after warm-up);
	// odd threads stride through fresh blocks every iteration (misses).
	// Mixed hit/miss loads within one warp trigger the split.
	src := `
	mov  r1, %tid
	mov  r2, %ctaid
	mov  r3, %ntid
	imad r4, r2, r3, r1
	and  r5, r1, 1
	mov  r12, 0
	mov  r13, 0
loop:
	shl  r6, r1, 2
	and  r6, r6, 511
	imul r7, r12, 512
	iadd r7, r7, 512
	shl  r8, r1, 3
	and  r8, r8, 448
	iadd r7, r7, r8
	selp r9, r7, r6, r5
	mov  r10, %p1
	iadd r10, r10, r9
	ld.g r11, [r10]
	iadd r13, r13, r11
	iadd r12, r12, 1
	isetp.lt r14, r12, 6
	bra  r14, loop
	shl  r15, r4, 2
	mov  r16, %p0
	iadd r16, r16, r15
	st.g [r16], r13
	exit
`
	c := Configure(ArchSBI)
	c.SplitOnMemDivergence = true
	p := assembleFor(t, "memdiv", src, ArchSBI)
	words := 2*256 + 1024 // outputs + gather region
	l := newLaunch(p, 2, 256, words, 0, uint32(2*256*4))

	pRef, err := asm.Assemble("memdiv", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.AnnotateReconvergence(pRef); err != nil {
		t.Fatal(err)
	}
	lRef := newLaunch(pRef, 2, 256, words, 0, uint32(2*256*4))
	for i := range lRef.Global {
		lRef.Global[i] = byte(i * 7)
		l.Global[i] = byte(i * 7)
	}
	if _, err := exec.RunReference(lRef, 32); err != nil {
		t.Fatal(err)
	}

	res, err := Run(c, l)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Global, lRef.Global) {
		t.Fatal("memory-divergence splitting changed results")
	}
	if res.Stats.MemSplits == 0 {
		t.Error("expected memory-divergence splits")
	}
}

// A load whose destination doubles as its address register must
// survive memory-divergence splitting: miss threads replay the load,
// so their registers must stay untouched at the first issue
// (regression test for a bug found by the ablation harness).
func TestMemDivergenceSplitSelfAddressedLoad(t *testing.T) {
	src := `
	mov  r1, %tid
	mov  r12, 0
	mov  r13, 0
loop:
	and  r6, r1, 1
	imul r7, r12, 512
	iadd r7, r7, 512
	shl  r8, r1, 3
	and  r8, r8, 448
	iadd r7, r7, r8
	shl  r9, r1, 2
	and  r9, r9, 511
	selp r10, r7, r9, r6
	mov  r11, %p1
	iadd r10, r11, r10
	ld.g r10, [r10]
	iadd r13, r13, r10
	iadd r12, r12, 1
	isetp.lt r14, r12, 6
	bra  r14, loop
	mov  r15, %p0
	shl  r16, r1, 2
	iadd r15, r15, r16
	st.g [r15], r13
	exit
`
	c := Configure(ArchSBISWI)
	c.SplitOnMemDivergence = true
	p := assembleFor(t, "selfaddr", src, ArchSBISWI)
	words := 256 + 1024
	l := newLaunch(p, 1, 256, words, 0, uint32(256*4))

	pRef, err := asm.Assemble("selfaddr", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.AnnotateReconvergence(pRef); err != nil {
		t.Fatal(err)
	}
	lRef := newLaunch(pRef, 1, 256, words, 0, uint32(256*4))
	for i := range lRef.Global {
		lRef.Global[i] = byte(i * 13)
		l.Global[i] = byte(i * 13)
	}
	if _, err := exec.RunReference(lRef, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, l); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(l.Global, lRef.Global) {
		t.Fatal("self-addressed load corrupted by memory-divergence split")
	}
}

// Lane shuffling policies must all preserve functional results.
func TestShufflePoliciesFunctional(t *testing.T) {
	for _, pol := range sched.Shuffles() {
		c := Configure(ArchSWI)
		c.Shuffle = pol
		p := assembleFor(t, "ifelse", ifelseSrc, ArchSWI)
		l := newLaunch(p, 4, 256, 4*256, 0)

		pRef, _ := asm.Assemble("ifelse", ifelseSrc)
		if err := cfg.AnnotateReconvergence(pRef); err != nil {
			t.Fatal(err)
		}
		lRef := newLaunch(pRef, 4, 256, 4*256, 0)
		if _, err := exec.RunReference(lRef, 32); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(c, l); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if !bytes.Equal(l.Global, lRef.Global) {
			t.Errorf("shuffle %v changed results", pol)
		}
	}
}

// Associativity sweep must preserve results and never beat full
// associativity by more than noise on this tiny kernel.
func TestAssociativityFunctional(t *testing.T) {
	for _, assoc := range []int{sched.AssocFull, 11, 3, 1} {
		c := Configure(ArchSWI)
		c.Assoc = assoc
		p := assembleFor(t, "loop", loopSrc, ArchSWI)
		l := newLaunch(p, 4, 256, 4*256, 0)
		if _, err := Run(c, l); err != nil {
			t.Fatalf("assoc %d: %v", assoc, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := assembleFor(t, "straight", straightSrc, ArchBaseline)
	c := Configure(ArchBaseline)

	// Block larger than the SM.
	l := newLaunch(p, 1, c.NumWarps*c.WarpWidth+1, 4096, 0)
	if _, err := Run(c, l); err == nil {
		t.Error("oversized block must be rejected")
	}

	// Missing RecPC annotations for the stack.
	raw, err := asm.Assemble("ifelse", ifelseSrc)
	if err != nil {
		t.Fatal(err)
	}
	l2 := newLaunch(raw, 1, 64, 64, 0)
	if _, err := Run(c, l2); err == nil {
		t.Error("unannotated divergent branch must be rejected on the baseline")
	}

	// Bad config.
	bad := Configure(ArchSBI)
	bad.WarpWidth = 48
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two width must be rejected")
	}
	bad2 := Configure(ArchBaseline)
	bad2.SplitOnMemDivergence = true
	if err := bad2.Validate(); err == nil {
		t.Error("mem splitting on the stack baseline must be rejected")
	}
}

// Out-of-bounds accesses must surface as errors, not panics.
func TestMemoryFaultReported(t *testing.T) {
	src := `
	mov  r1, 1000000
	ld.g r2, [r1]
	exit
`
	p := assembleFor(t, "oob", src, ArchSBI)
	l := newLaunch(p, 1, 64, 16, 0)
	if _, err := Run(Configure(ArchSBI), l); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestTraceRecording(t *testing.T) {
	c := Configure(ArchSBI)
	c.TraceCap = 64
	p := assembleFor(t, "ifelse", ifelseSrc, ArchSBI)
	l := newLaunch(p, 1, 64, 64, 0)
	res, err := Run(c, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("trace empty")
	}
	if out := res.Trace.Render(); len(out) == 0 {
		t.Error("Render produced nothing")
	}
	if out := res.Trace.Lanes(64); len(out) == 0 {
		t.Error("Lanes produced nothing")
	}
}

// The figure-2 example: an if/else across 2 warps. SBI+SWI must finish
// no later than plain SIMT-style Warp64 execution.
func TestCombinedNoSlowerThanSingleIssue(t *testing.T) {
	both := runBoth(t, ArchSBISWI, "ifelse", ifelseSrc, 8, 256, 8*256, 0)
	single := runBoth(t, ArchWarp64, "ifelse", ifelseSrc, 8, 256, 8*256, 0)
	if both.Stats.Cycles > single.Stats.Cycles {
		t.Errorf("SBI+SWI (%d cycles) slower than Warp64 (%d)", both.Stats.Cycles, single.Stats.Cycles)
	}
}
