// Package sm implements the cycle-level Streaming Multiprocessor model
// of the paper: the Fermi-like baseline (§2, figure 1), Simultaneous
// Branch Interweaving (§3, figure 3), Simultaneous Warp Interweaving
// (§4), their combination, and the 64-wide thread-frontier reference
// configuration used in figure 7.
//
// The model is execute-at-issue: when an instruction issues, its
// architectural effects happen immediately, while the timing machinery
// (scoreboard writeback times, execution-unit occupancy, L1/DRAM
// latencies) decides when dependent instructions may issue. Per-thread
// program order is preserved structurally, so functional results are
// exact regardless of timing-model details; tests assert bit-exact
// equality against the functional reference simulator.
package sm

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/mem"
	"repro/internal/sched"
)

// Arch enumerates the modeled micro-architectures.
type Arch uint8

// Architectures of the paper's evaluation (figure 7).
const (
	// ArchBaseline is the Fermi-like SM: two pools of 32-wide warps with
	// even/odd identifiers, one scheduler per pool, and stack-based
	// reconvergence.
	ArchBaseline Arch = iota

	// ArchWarp64 is the thread-frontier reference: a single pool of
	// 64-wide warps, min-PC (thread frontier) reconvergence via the
	// sorted heap, single-issue.
	ArchWarp64

	// ArchSBI adds the second front-end of figure 3: each cycle the
	// selected warp co-issues its primary (CPC1) and secondary (CPC2)
	// warp-splits to disjoint subsets of the 64-lane row; when no
	// secondary split exists the second front-end issues the next
	// sequential instruction of the primary split to a distinct unit
	// group ("scheduling more instructions to distinct SIMD groups",
	// §5.1).
	ArchSBI

	// ArchSWI uses the cascaded secondary scheduler of §4: one pipeline
	// stage after the primary picks I1, the secondary searches other
	// warps for an instruction with a non-overlapping lane mask (or one
	// targeting a free unit group), using a set-associative lookup and
	// lane shuffling.
	ArchSWI

	// ArchSBISWI combines both: the secondary front-end prefers the
	// warp's own secondary split, then other warps (SWI), then the
	// sequential fallback.
	ArchSBISWI
)

func (a Arch) String() string {
	switch a {
	case ArchBaseline:
		return "Baseline"
	case ArchWarp64:
		return "Warp64"
	case ArchSBI:
		return "SBI"
	case ArchSWI:
		return "SWI"
	case ArchSBISWI:
		return "SBI+SWI"
	}
	return fmt.Sprintf("Arch(%d)", uint8(a))
}

// Architectures lists all modeled architectures in figure-7 order.
func Architectures() []Arch {
	return []Arch{ArchBaseline, ArchSBI, ArchSWI, ArchSBISWI, ArchWarp64}
}

// Config collects every micro-architecture parameter (paper table 2).
type Config struct {
	Arch      Arch
	NumWarps  int // resident warps
	WarpWidth int // threads per warp (max 64)

	// IssueDelay is the number of extra front-end cycles between a
	// dependency clearing and the dependent instruction issuing. It
	// aggregates the scheduler stages beyond the first and the
	// instruction-delivery wire stage of table 2: baseline 0, SBI and
	// Warp64 1, SWI and SBI+SWI 2.
	IssueDelay int64

	// ExecLatency is the register-to-register execution latency.
	ExecLatency int64

	// SharedLatency is the shared-memory access latency.
	SharedLatency int64

	// ScoreboardEntries bounds in-flight register writes per warp.
	ScoreboardEntries int
	DepMode           sched.DepMode

	// MADGroups is the number of MAD unit groups; each is MADWidth wide.
	// The baseline has two 32-lane groups, the 64-wide designs one
	// 64-lane row that two disjoint-mask instructions may share.
	MADGroups int
	MADWidth  int
	SFUWidth  int
	LSUWidth  int

	// CoIssueMAD allows two disjoint-mask instructions to share the MAD
	// row in one cycle (the per-lane instruction multiplexer of fig. 3).
	CoIssueMAD bool

	// Constraints enables the selective synchronization barrier of §3.3
	// (SYNC instructions suspend run-ahead splits). Without it SYNCs
	// still occupy issue slots but never block.
	Constraints bool

	// Shuffle is the static lane shuffling policy (table 1).
	Shuffle sched.Shuffle

	// Assoc is the SWI secondary lookup associativity
	// (sched.AssocFull = fully associative).
	Assoc int

	// CCTCap is the Cold Context Table capacity per warp (statistics).
	CCTCap int

	// SplitOnMemDivergence enables the Dynamic-Warp-Subdivision-style
	// extension: a load hitting partially in the L1 splits the warp so
	// hit threads run ahead while miss threads replay the load. Off by
	// default, as in the paper (discussed as related/future work).
	SplitOnMemDivergence bool

	Mem mem.Config

	// Seed drives the secondary scheduler's tie-breaking PRNG.
	Seed uint64

	// MaxCycles aborts runaway simulations; 0 means the default bound.
	MaxCycles int64

	// TraceCap, when positive, records up to that many issue events for
	// pipeline visualization (figure 2).
	TraceCap int
}

// defaultMaxCycles bounds simulations against livelocked kernels.
const defaultMaxCycles = 1 << 30

// Configure returns the paper's table-2 configuration for an
// architecture.
func Configure(a Arch) Config {
	c := Config{
		Arch:              a,
		NumWarps:          16,
		WarpWidth:         64,
		ExecLatency:       8,
		SharedLatency:     3,
		ScoreboardEntries: 6,
		MADGroups:         1,
		MADWidth:          64,
		SFUWidth:          8,
		LSUWidth:          32,
		Shuffle:           sched.ShuffleIdentity,
		Assoc:             sched.AssocFull,
		CCTCap:            8,
		Mem:               mem.Default(),
	}
	switch a {
	case ArchBaseline:
		c.NumWarps, c.WarpWidth = 32, 32
		c.MADGroups, c.MADWidth = 2, 32
		c.IssueDelay = 0
		c.DepMode = sched.DepWarp
	case ArchWarp64:
		c.IssueDelay = 1
		c.DepMode = sched.DepMatrix
	case ArchSBI:
		c.IssueDelay = 1
		c.DepMode = sched.DepMatrix
		c.CoIssueMAD = true
		c.Constraints = true
	case ArchSWI:
		c.IssueDelay = 2
		c.DepMode = sched.DepWarp
		c.CoIssueMAD = true
		c.Shuffle = sched.ShuffleXorRev
	case ArchSBISWI:
		c.IssueDelay = 2
		c.DepMode = sched.DepMatrix
		c.CoIssueMAD = true
		c.Constraints = true
		c.Shuffle = sched.ShuffleXorRev
	}
	return c
}

// Fingerprint returns a stable digest of every configuration field.
// Equal fingerprints imply identical simulation behavior for identical
// launches — the soundness the device layer's simulation cache keys
// on. The digest is reflection-exhaustive: a field added to Config
// changes fingerprints automatically instead of silently aliasing
// cache entries. It deliberately includes fields that cannot change
// Stats (TraceCap only bounds the recorded trace): including them
// costs at most a cache miss, while excluding a result-bearing field
// would poison the cache.
func (c *Config) Fingerprint() uint64 {
	return fingerprint.Hash(*c)
}

// functionalFields names the Config fields that select *what* a launch
// computes rather than *when*: Arch picks the executed program variant
// (plain RecPC-annotated code for the baseline stack vs the
// SYNC-instrumented thread-frontier variant) and is kept whole —
// conservatively, since the thread-frontier architectures share a
// program, but per-architecture trace keying costs one extra recording
// per sweep at most. Every other field is timing-domain: the replay
// engine re-runs the full scheduling/timing machinery, so latencies,
// unit geometry, scheduler knobs, seeds and the memory hierarchy may
// all change between record and replay (package replay documents why).
// A future field added to Config lands in the timing digest by
// default; if it ever changes functional behavior it MUST be added
// here, or the trace cache would alias functionally different runs.
var functionalFields = map[string]bool{"Arch": true}

// FunctionalFingerprint digests the functional subset of the
// configuration — the trace-cache key half: two configurations with
// equal functional fingerprints record identical per-thread traces for
// identical launches.
func (c *Config) FunctionalFingerprint() uint64 {
	return fingerprint.HashFields(*c, func(f string) bool { return functionalFields[f] })
}

// TimingFingerprint digests the complementary timing subset; the two
// split digests together cover every Config field, which
// TestFingerprintSplit pins.
func (c *Config) TimingFingerprint() uint64 {
	return fingerprint.HashFields(*c, func(f string) bool { return !functionalFields[f] })
}

// usesHeap reports whether the architecture reconverges via the
// thread-frontier heap (vs. the baseline stack).
func (c *Config) usesHeap() bool { return c.Arch != ArchBaseline }

// hotSlots is how many warp-splits per warp the front-end may schedule:
// two for SBI-class designs, one otherwise.
func (c *Config) hotSlots() int {
	if c.Arch == ArchSBI || c.Arch == ArchSBISWI {
		return 2
	}
	return 1
}

// pools is the number of independent warp pools/schedulers issuing a
// primary instruction each cycle.
func (c *Config) pools() int {
	if c.Arch == ArchBaseline {
		return 2
	}
	return 1
}

// hasSecondary reports whether a secondary issue slot exists.
func (c *Config) hasSecondary() bool {
	return c.Arch == ArchSBI || c.Arch == ArchSWI || c.Arch == ArchSBISWI
}

// Validate checks configuration sanity.
func (c *Config) Validate() error {
	if c.NumWarps <= 0 || c.WarpWidth <= 0 || c.WarpWidth > 64 {
		return fmt.Errorf("sm: warps %d x width %d out of range", c.NumWarps, c.WarpWidth)
	}
	if c.WarpWidth&(c.WarpWidth-1) != 0 {
		return fmt.Errorf("sm: warp width %d must be a power of two", c.WarpWidth)
	}
	if c.MADGroups <= 0 || c.MADWidth <= 0 || c.SFUWidth <= 0 || c.LSUWidth <= 0 {
		return fmt.Errorf("sm: unit geometry invalid: %d MAD x %d, SFU %d, LSU %d",
			c.MADGroups, c.MADWidth, c.SFUWidth, c.LSUWidth)
	}
	if c.MADWidth < c.WarpWidth && c.Arch != ArchBaseline {
		return fmt.Errorf("sm: MAD row (%d) narrower than warp (%d)", c.MADWidth, c.WarpWidth)
	}
	if c.ScoreboardEntries <= 0 {
		return fmt.Errorf("sm: scoreboard entries must be positive")
	}
	if c.ExecLatency < 1 {
		return fmt.Errorf("sm: execution latency must be at least 1")
	}
	if c.SplitOnMemDivergence && !c.usesHeap() {
		return fmt.Errorf("sm: memory-divergence splitting requires a thread-frontier architecture")
	}
	return nil
}
