package sm

import "testing"

// Reproduces the constraints-off barrier interaction on a LUD-shaped
// kernel: run-ahead splits park at the next barrier and must still
// merge and release. Guards against the livelock found during
// development.
func TestRunAheadBarrierNoLivelock(t *testing.T) {
	src := `
	mov  r1, %tid
	mov  r5, %p1
	mov  r6, 0.0
	mov  r7, 0
	and  r8, r1, 31
step:
	bar
	isetp.lt r9, r8, r7
	bra  r9, inactive
	shl  r10, r7, 2
	iadd r10, r5, r10
	ld.g r11, [r10]
	fmad r6, r6, 0.99, r11
inactive:
	iadd r7, r7, 1
	isetp.lt r12, r7, 32
	bra  r12, step
	mov  r13, %p0
	shl  r14, r1, 2
	iadd r13, r13, r14
	st.g [r13], r6
	exit
`
	c := Configure(ArchSBI)
	c.Constraints = false
	c.MaxCycles = 200000
	p := assembleFor(t, "ludlike", src, ArchSBI)
	l := newLaunch(p, 2, 256, 2*256+64, 0, uint32(2*256*4))
	if _, err := Run(c, l); err != nil {
		t.Fatal(err)
	}
}
