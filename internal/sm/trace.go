package sm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// IssueEvent records one scheduler issue for pipeline visualization
// (the figure-2 comparison of SIMT / SBI / SWI pipeline contents).
type IssueEvent struct {
	Cycle int64
	Slot  int // 0 = primary, 1 = secondary
	Warp  int
	PC    int
	Mask  uint64 // thread mask
	Lane  uint64 // lane mask after shuffling
	Op    isa.Opcode
	Unit  isa.Unit
}

// Trace is a bounded issue-event recording.
type Trace struct {
	Events  []IssueEvent
	Dropped int
	cap     int
}

func (t *Trace) add(e IssueEvent) {
	if len(t.Events) >= t.cap {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Render formats the trace as a cycle-by-cycle table: one line per
// cycle, one column per issue slot, each cell "w<warp>@<pc> op mask".
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s  %-32s %-32s\n", "cycle", "primary", "secondary")
	var cells [2]string
	cur := int64(-1)
	flush := func() {
		if cur >= 0 {
			fmt.Fprintf(&b, "%6d  %-32s %-32s\n", cur, cells[0], cells[1])
		}
		cells[0], cells[1] = "", ""
	}
	for _, e := range t.Events {
		if e.Cycle != cur {
			flush()
			cur = e.Cycle
		}
		cells[e.Slot] = fmt.Sprintf("w%d@%-3d %-5s %s mask=%x", e.Warp, e.PC, e.Op, e.Unit, e.Mask)
	}
	flush()
	if t.Dropped > 0 {
		fmt.Fprintf(&b, "... %d further events dropped\n", t.Dropped)
	}
	return b.String()
}

// Lanes renders a lane-occupancy strip per cycle: for each cycle one
// row of width characters, '.' for an idle lane, '1' for the primary
// instruction's lanes and '2' for the secondary's — the visual language
// of the paper's figure 2.
func (t *Trace) Lanes(width int) string {
	var b strings.Builder
	row := make([]byte, width)
	cur := int64(-1)
	clear := func() {
		for i := range row {
			row[i] = '.'
		}
	}
	flush := func() {
		if cur >= 0 {
			fmt.Fprintf(&b, "%6d  %s\n", cur, row)
		}
		clear()
	}
	clear()
	for _, e := range t.Events {
		if e.Cycle != cur {
			flush()
			cur = e.Cycle
		}
		mark := byte('1')
		if e.Slot == 1 {
			mark = '2'
		}
		for l := 0; l < width && l < 64; l++ {
			if e.Lane&(1<<uint(l)) != 0 {
				row[l] = mark
			}
		}
	}
	flush()
	return b.String()
}
