package sm

import (
	"math/bits"

	"repro/internal/isa"
)

// units tracks back-end execution resource occupancy. MAD groups are
// fully pipelined (one warp instruction per group per cycle); the SFU
// and LSU are narrower than a warp and stay busy for one cycle per wave
// (SFU) or per memory transaction (LSU).
type units struct {
	cfg *Config

	madFree []int64 // per-group busy-until cycle (exclusive)

	// Row sharing (CoIssueMAD): lanes of the MAD row already claimed in
	// cycle rowCycle. Two disjoint-mask instructions may share the row.
	rowCycle int64
	rowMask  uint64

	sfuFree int64
	lsuFree int64
}

func newUnits(cfg *Config) *units {
	return &units{cfg: cfg, madFree: make([]int64, cfg.MADGroups), rowCycle: -1}
}

// sfuWaves returns the SFU occupancy in cycles for a lane mask: the
// number of SFU-width lane groups containing at least one active lane.
//
//sbwi:hotpath
func (u *units) sfuWaves(laneMask uint64) int64 {
	waves := int64(0)
	per := uint(u.cfg.SFUWidth)
	for lo := uint(0); lo < uint(u.cfg.WarpWidth); lo += per {
		if laneMask>>lo&(1<<per-1) != 0 {
			waves++
		}
	}
	if waves == 0 {
		waves = 1
	}
	return waves
}

// canIssue reports whether an instruction of the given unit class with
// laneMask can start at cycle now, considering already-issued
// instructions this cycle.
//
//sbwi:hotpath
func (u *units) canIssue(unit isa.Unit, laneMask uint64, now int64) bool {
	switch unit {
	case isa.UnitCTRL:
		return true
	case isa.UnitMAD:
		for _, f := range u.madFree {
			if f <= now {
				return true
			}
		}
		// All groups taken this cycle: row sharing may still fit.
		return u.cfg.CoIssueMAD && u.rowCycle == now && u.rowMask&laneMask == 0
	case isa.UnitSFU:
		return u.sfuFree <= now
	default: // LSU
		return u.lsuFree <= now
	}
}

// issue reserves the unit. For the LSU the caller reserves separately
// via issueLSU once the transaction count is known.
//
//sbwi:hotpath
func (u *units) issue(unit isa.Unit, laneMask uint64, now int64) {
	switch unit {
	case isa.UnitCTRL:
		return
	case isa.UnitMAD:
		for g := range u.madFree {
			if u.madFree[g] <= now {
				u.madFree[g] = now + 1
				if u.cfg.CoIssueMAD {
					if u.rowCycle == now {
						u.rowMask |= laneMask
					} else {
						u.rowCycle, u.rowMask = now, laneMask
					}
				}
				return
			}
		}
		// Row sharing (canIssue guaranteed disjointness).
		u.rowMask |= laneMask
	case isa.UnitSFU:
		u.sfuFree = now + u.sfuWaves(laneMask)
	}
}

// freeAt returns the earliest cycle at which an instruction of the
// given unit class can next start, assuming no further issues happen
// before then (the idle-span invariant: nothing issues, so same-cycle
// MAD row sharing — which needs an issue in that very cycle — cannot
// open the row early).
//
//sbwi:hotpath
func (u *units) freeAt(unit isa.Unit) int64 {
	switch unit {
	case isa.UnitCTRL:
		return 0
	case isa.UnitMAD:
		min := u.madFree[0]
		for _, f := range u.madFree[1:] {
			if f < min {
				min = f
			}
		}
		return min
	case isa.UnitSFU:
		return u.sfuFree
	default: // LSU
		return u.lsuFree
	}
}

// issueLSU reserves the load-store unit for txns transactions.
//
//sbwi:hotpath
func (u *units) issueLSU(txns int64, now int64) {
	if txns < 1 {
		txns = 1
	}
	u.lsuFree = now + txns
}

// holdLSU extends the LSU reservation through cycle t (exclusive) if it
// would free earlier: memory-system back-pressure — a full store write
// buffer — keeps the unit occupied until the hierarchy accepts the
// transaction.
//
//sbwi:hotpath
func (u *units) holdLSU(t int64) {
	if t > u.lsuFree {
		u.lsuFree = t
	}
}

// lsuWaves returns the number of LSU-width thread groups of a warp with
// at least one active thread (waves are formed in thread order, since
// the LSU coalesces by thread addresses).
//
//sbwi:hotpath
func (u *units) lsuWaves(mask uint64) int {
	waves := 0
	per := uint(u.cfg.LSUWidth)
	for lo := uint(0); lo < uint(u.cfg.WarpWidth); lo += per {
		if mask>>lo&waveMask(per) != 0 {
			waves++
		}
	}
	return waves
}

// waveMask returns a mask of `per` low bits (handles per == 64).
func waveMask(per uint) uint64 {
	if per >= 64 {
		return ^uint64(0)
	}
	return 1<<per - 1
}

// popcount is a readability alias.
func popcount(m uint64) int { return bits.OnesCount64(m) }
