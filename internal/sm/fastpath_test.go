package sm

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kernels"
)

// runPair simulates one launch twice — event-driven fast path versus
// the retained reference rescan loop — and asserts every field of the
// resulting Stats is identical. The fast path's contract is exactness,
// not approximation: issue counts, cycles, scoreboard counters and
// PRNG-tie-broken SWI pairings must all survive the rewrite bit-for-bit.
func runPair(t *testing.T, cfg Config, b *kernels.Benchmark) {
	t.Helper()
	tf := cfg.Arch != ArchBaseline

	lFast, err := b.NewLaunch(tf)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(cfg, lFast)
	if err != nil {
		t.Fatalf("%s on %s (fast): %v", b.Name, cfg.Arch, err)
	}

	refCfg := cfg
	refCfg.ReferenceLoop = true
	lRef, err := b.NewLaunch(tf)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(refCfg, lRef)
	if err != nil {
		t.Fatalf("%s on %s (reference): %v", b.Name, cfg.Arch, err)
	}

	if fast.Stats != ref.Stats {
		t.Errorf("%s on %s: fast path diverged from the reference loop\nfast: %+v\nref:  %+v",
			b.Name, cfg.Arch, fast.Stats, ref.Stats)
	}
}

// TestFastPathEquivalence runs a randomly chosen (fixed seed) subset of
// the suite kernels on all five architectures with the event-driven
// scheduler and with ReferenceLoop, asserting identical Stats. BFS and
// Transpose are always included: they are memory-latency-bound, so they
// exercise long idle spans and the skipped-cycle counter accounting.
func TestFastPathEquivalence(t *testing.T) {
	all := kernels.All()
	rng := rand.New(rand.NewSource(20260726))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	subset := map[string]*kernels.Benchmark{}
	for _, name := range []string{"BFS", "Transpose"} {
		if b, ok := kernels.ByName(name); ok {
			subset[b.Name] = b
		}
	}
	for _, b := range all {
		if len(subset) >= 7 {
			break
		}
		subset[b.Name] = b
	}

	names := make([]string, 0, len(subset))
	for name := range subset { //sbwi:unordered names are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := subset[name]
		for _, a := range Architectures() {
			b, a := b, a
			t.Run(b.Name+"/"+a.String(), func(t *testing.T) {
				t.Parallel()
				runPair(t, Configure(a), b)
			})
		}
	}
}

// TestFastPathEquivalenceVariants covers the configuration corners with
// their own idle-accounting shapes: a set-associative SWI lookup (the
// substitute secondary probes a different buddy set each idle cycle,
// so skipped-cycle counters depend on cycle residues), direct-mapped
// lookup, memory-divergence splitting, and constraints off.
func TestFastPathEquivalenceVariants(t *testing.T) {
	bfs, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	mandel, ok := kernels.ByName("Mandelbrot")
	if !ok {
		t.Fatal("Mandelbrot missing")
	}

	assoc3 := Configure(ArchSWI)
	assoc3.Assoc = 3
	direct := Configure(ArchSBISWI)
	direct.Assoc = 1
	split := Configure(ArchSBISWI)
	split.SplitOnMemDivergence = true
	noCons := Configure(ArchSBI)
	noCons.Constraints = false

	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"swi-assoc3", assoc3},
		{"sbiswi-direct", direct},
		{"sbiswi-memsplit", split},
		{"sbi-unconstrained", noCons},
	} {
		name, cfg := c.name, c.cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runPair(t, cfg, bfs)
			runPair(t, cfg, mandel)
		})
	}
}

// divergentLoopSrc keeps warps diverging and reconverging continuously:
// a data-dependent if/else inside a long counted loop. It sustains the
// issue path (heap mutations, SBI pairing, branch resolution) without
// memory traffic, so the steady state is pure scheduling work.
const divergentLoopSrc = `
	mov  r1, %tid
	mov  r3, 0
	mov  r4, 0
loop:
	and  r6, r4, 1
	isetp.eq r7, r6, 0
	bra  r7, even
	iadd r4, r4, 3
	bra  join
even:
	iadd r4, r4, 1
join:
	iadd r3, r3, 1
	isetp.lt r8, r3, 20000
	bra  r8, loop
	mov  r9, %ctaid
	mov  r10, %ntid
	imad r11, r9, r10, r1
	shl  r12, r11, 2
	mov  r13, %p0
	iadd r13, r13, r12
	st.g [r13], r4
	exit
`

// memIdleLoopSrc misses the L1 on every iteration (the stride walks a
// 256 KB region, far beyond the 48 KB L1), so warps spend most cycles
// waiting on DRAM and the fast-forward path dominates.
const memIdleLoopSrc = `
	mov  r1, %tid
	shl  r2, r1, 7
	mov  r3, 0
	mov  r4, 0
loop:
	imul r5, r3, 4099
	iadd r6, r2, r5
	and  r6, r6, 262143
	shr  r7, r6, 2
	shl  r6, r7, 2
	mov  r7, %p1
	iadd r7, r7, r6
	ld.g r8, [r7]
	iadd r4, r4, r8
	iadd r3, r3, 1
	isetp.lt r9, r3, 4000
	bra  r9, loop
	mov  r10, %ctaid
	mov  r11, %ntid
	imad r12, r10, r11, r1
	shl  r13, r12, 2
	mov  r14, %p0
	iadd r14, r14, r13
	st.g [r14], r4
	exit
`

// TestSteadyStateZeroAllocs drives the hot loop directly through
// (*SM).step and asserts the steady-state issue path performs zero heap
// allocations per cycle, for both a divergence-heavy compute loop and a
// memory-latency-bound loop (which exercises the idle fast-forward),
// across the stack baseline and the thread-frontier architectures.
func TestSteadyStateZeroAllocs(t *testing.T) {
	kernelsUnderTest := []struct {
		name, src string
		params    []uint32
		words     int
	}{
		{"divergent-loop", divergentLoopSrc, []uint32{0}, 4 * 256},
		{"mem-idle", memIdleLoopSrc, []uint32{0, 4 * 256 * 4}, 4*256 + 65536},
	}
	for _, k := range kernelsUnderTest {
		for _, a := range []Arch{ArchBaseline, ArchSBI, ArchSWI, ArchSBISWI} {
			t.Run(k.name+"/"+a.String(), func(t *testing.T) {
				cfg := Configure(a)
				p := assembleFor(t, k.name, k.src, a)
				l := newLaunch(p, 4, 256, k.words, k.params...)
				s, err := newSM(cfg, l, 0, l.GridDim, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}
				const maxCycles = int64(1) << 30
				// Warm up past block launch, first divergences and
				// scratch growth into the steady state.
				for i := 0; i < 600; i++ {
					done, err := s.step(maxCycles)
					if err != nil {
						t.Fatal(err)
					}
					if done {
						t.Fatalf("kernel finished during warm-up after %d cycles — lengthen it", s.now)
					}
				}
				avg := testing.AllocsPerRun(400, func() {
					if _, err := s.step(maxCycles); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("steady-state step allocates %.2f times per cycle, want 0", avg)
				}
			})
		}
	}
}

// TestReferenceLoopStillExact guards the retained slow path itself: the
// reference loop must keep matching the functional simulator, so the
// equivalence tests above compare against a meaningful oracle.
func TestReferenceLoopStillExact(t *testing.T) {
	cfg := Configure(ArchSBISWI)
	cfg.ReferenceLoop = true
	p := assembleFor(t, "loop", loopSrc, ArchSBISWI)
	l := newLaunch(p, 4, 256, 4*256, 0)
	if _, err := Run(cfg, l); err != nil {
		t.Fatal(err)
	}
	lFast := newLaunch(assembleFor(t, "loop", loopSrc, ArchSBISWI), 4, 256, 4*256, 0)
	if _, err := Run(Configure(ArchSBISWI), lFast); err != nil {
		t.Fatal(err)
	}
	for i := range l.Global {
		if l.Global[i] != lFast.Global[i] {
			t.Fatalf("reference and fast paths disagree on memory at byte %d", i)
		}
	}
}
