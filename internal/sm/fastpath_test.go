package sm

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/replay"
)

// divergentLoopSrc keeps warps diverging and reconverging continuously:
// a data-dependent if/else inside a long counted loop. It sustains the
// issue path (heap mutations, SBI pairing, branch resolution) without
// memory traffic, so the steady state is pure scheduling work.
const divergentLoopSrc = `
	mov  r1, %tid
	mov  r3, 0
	mov  r4, 0
loop:
	and  r6, r4, 1
	isetp.eq r7, r6, 0
	bra  r7, even
	iadd r4, r4, 3
	bra  join
even:
	iadd r4, r4, 1
join:
	iadd r3, r3, 1
	isetp.lt r8, r3, 20000
	bra  r8, loop
	mov  r9, %ctaid
	mov  r10, %ntid
	imad r11, r9, r10, r1
	shl  r12, r11, 2
	mov  r13, %p0
	iadd r13, r13, r12
	st.g [r13], r4
	exit
`

// memIdleLoopSrc misses the L1 on every iteration (the stride walks a
// 256 KB region, far beyond the 48 KB L1), so warps spend most cycles
// waiting on DRAM and the fast-forward path dominates.
const memIdleLoopSrc = `
	mov  r1, %tid
	shl  r2, r1, 7
	mov  r3, 0
	mov  r4, 0
loop:
	imul r5, r3, 4099
	iadd r6, r2, r5
	and  r6, r6, 262143
	shr  r7, r6, 2
	shl  r6, r7, 2
	mov  r7, %p1
	iadd r7, r7, r6
	ld.g r8, [r7]
	iadd r4, r4, r8
	iadd r3, r3, 1
	isetp.lt r9, r3, 4000
	bra  r9, loop
	mov  r10, %ctaid
	mov  r11, %ntid
	imad r12, r10, r11, r1
	shl  r13, r12, 2
	mov  r14, %p0
	iadd r14, r14, r13
	st.g [r14], r4
	exit
`

// TestSteadyStateZeroAllocs drives the hot loop directly through
// (*SM).step and asserts the steady-state issue path performs zero heap
// allocations per cycle, for both a divergence-heavy compute loop and a
// memory-latency-bound loop (which exercises the idle fast-forward),
// across the stack baseline and the thread-frontier architectures.
func TestSteadyStateZeroAllocs(t *testing.T) {
	kernelsUnderTest := []struct {
		name, src string
		params    []uint32
		words     int
	}{
		{"divergent-loop", divergentLoopSrc, []uint32{0}, 4 * 256},
		{"mem-idle", memIdleLoopSrc, []uint32{0, 4 * 256 * 4}, 4*256 + 65536},
	}
	for _, k := range kernelsUnderTest {
		for _, a := range []Arch{ArchBaseline, ArchSBI, ArchSWI, ArchSBISWI} {
			t.Run(k.name+"/"+a.String(), func(t *testing.T) {
				cfg := Configure(a)
				p := assembleFor(t, k.name, k.src, a)
				l := newLaunch(p, 4, 256, k.words, k.params...)
				s, err := newSM(cfg, l, 0, l.GridDim, RunOpts{})
				if err != nil {
					t.Fatal(err)
				}
				const maxCycles = int64(1) << 30
				// Warm up past block launch, first divergences and
				// scratch growth into the steady state.
				for i := 0; i < 600; i++ {
					done, err := s.step(maxCycles)
					if err != nil {
						t.Fatal(err)
					}
					if done {
						t.Fatalf("kernel finished during warm-up after %d cycles — lengthen it", s.now)
					}
				}
				avg := testing.AllocsPerRun(400, func() {
					if _, err := s.step(maxCycles); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("steady-state step allocates %.2f times per cycle, want 0", avg)
				}
			})
		}
	}

	// Replay mode must be equally allocation-free: the replay-walk
	// cursors (Branch, PeekAddr, ConsumeAddr) replace the functional
	// layer in the same hot loop, so a replayed event gets the same
	// zero-allocation budget as a simulated one. The shorter benchmark
	// kernels keep the record-time full run cheap; 1000 steps stay well
	// inside their steady state.
	replayKernels := []struct {
		name, src string
		params    []uint32
		words     int
	}{
		{"divergent-loop", benchmarkLoopSrc, []uint32{0}, 4 * 256},
		{"mem-idle", benchmarkMemSrc, []uint32{0, 4 * 256 * 4}, 4*256 + 65536},
	}
	for _, k := range replayKernels {
		for _, a := range []Arch{ArchBaseline, ArchSBI, ArchSWI, ArchSBISWI} {
			t.Run("replay/"+k.name+"/"+a.String(), func(t *testing.T) {
				cfg := Configure(a)
				p := assembleFor(t, k.name, k.src, a)
				mk := func() *exec.Launch { return newLaunch(p, 4, 256, k.words, k.params...) }
				tr, _ := recordTrace(t, cfg, mk)
				if !tr.Replayable {
					t.Fatalf("recording flagged the kernel racy: %s", tr.Reason)
				}
				l := mk()
				sess, err := replay.NewSession(tr, 0, l.GridDim)
				if err != nil {
					t.Fatal(err)
				}
				s, err := newSM(cfg, l, 0, l.GridDim, RunOpts{Replay: sess})
				if err != nil {
					t.Fatal(err)
				}
				const maxCycles = int64(1) << 30
				for i := 0; i < 600; i++ {
					done, err := s.step(maxCycles)
					if err != nil {
						t.Fatal(err)
					}
					if done {
						t.Fatalf("kernel finished during warm-up after %d cycles — lengthen it", s.now)
					}
				}
				avg := testing.AllocsPerRun(400, func() {
					if _, err := s.step(maxCycles); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("steady-state replayed step allocates %.2f times per cycle, want 0", avg)
				}
			})
		}
	}
}
