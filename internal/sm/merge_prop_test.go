package sm

import (
	"testing"

	"repro/internal/statcheck"
)

// TestStatsMergeContract checks sm.Stats.Merge exhaustively over every
// field — including the nested memory-system statistics — by
// reflection: a new counter that Merge does not combine is a test
// failure, not a silently dropped number in partitioned device runs.
func TestStatsMergeContract(t *testing.T) {
	problems := statcheck.CheckMerge(
		func() any { return new(Stats) },
		func(dst, src any) { dst.(*Stats).Merge(src.(*Stats)) },
	)
	for _, p := range problems {
		t.Error(p)
	}
}
