package sm

import (
	"math/bits"

	"repro/internal/exec"
	"repro/internal/mem"
)

// execMem performs a memory instruction: per-thread effective addresses,
// intra-wave coalescing into 128-byte transactions (replayed one per
// LSU cycle), L1/DRAM timing, the functional load/store, and — when
// SplitOnMemDivergence is enabled — the DWS-style hit/miss warp split.
// Transaction bookkeeping lives in per-SM scratch buffers (txnBuf,
// txnReady) so the path allocates nothing.
//
//sbwi:hotpath
func (s *SM) execMem(c *candidate) error {
	w, ins := c.w, c.ins

	global := ins.Op.IsGlobal()
	space, image := "global", s.launch.Global
	if !global {
		space, image = "shared", w.block.shared
	}

	// Per-thread addresses. The architectural load is applied only to
	// the threads that advance past the instruction: under
	// memory-divergence splitting the miss threads replay the whole
	// load later, so their registers (including a destination that
	// doubles as the address register) must stay untouched. A replayed
	// run peeks the recorded address stream instead — without
	// consuming: a re-visit of the same load (miss threads under
	// memory-divergence splitting) must see the same address, exactly
	// as recomputing it from untouched registers would.
	var addrs [64]uint32
	if s.rp != nil {
		if global {
			base := s.gtidBase(w)
			for m := c.mask; m != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				a, ok := s.rp.PeekAddr(base + t)
				if !ok {
					return s.replayDesync(c.pc, base+t)
				}
				addrs[t] = a
			}
		}
		// Shared accesses need no addresses when replaying: their
		// timing depends only on the thread mask (lsuWaves), and the
		// shared image is never touched.
	} else {
		for m := c.mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			addrs[t] = exec.EffAddr(ins, &w.regs[t])
		}
	}
	// apply commits the architectural effect for the threads that
	// advance past the instruction. Replaying, the effect is consuming
	// the peeked address-stream entries (global only) — memory and
	// registers stay untouched. Recording additionally logs each
	// advanced access for the race analysis.
	apply := func(mask uint64) error { //sbwi:alloc-ok non-escaping; called directly in this frame (zero-alloc test pins it)
		if s.rp != nil {
			if global {
				base := s.gtidBase(w)
				for m := mask; m != 0; m &= m - 1 {
					s.rp.ConsumeAddr(base + bits.TrailingZeros64(m))
				}
			}
			return nil
		}
		for m := mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			r := &w.regs[t]
			if ins.Op.IsLoad() {
				v, err := exec.Load32(space, image, addrs[t], c.pc)
				if err != nil {
					return err
				}
				r[ins.Dst] = v
			} else if err := exec.Store32(space, image, addrs[t], r[ins.SrcC], c.pc); err != nil {
				return err
			}
		}
		if s.rec != nil {
			base := s.gtidBase(w)
			epoch := int(w.block.epoch)
			for m := mask; m != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				s.rec.Mem(base+t, w.block.cta, epoch, addrs[t], global, !ins.Op.IsLoad())
			}
		}
		return nil
	}

	if !ins.Op.IsGlobal() {
		// Shared memory: one LSU cycle per wave, fixed low latency, no
		// bank-conflict model (documented simplification).
		if err := apply(c.mask); err != nil {
			return err
		}
		waves := int64(s.units.lsuWaves(c.mask))
		s.units.issueLSU(waves, s.now)
		s.stats.Transactions += uint64(waves)
		if ins.Op.IsLoad() {
			s.sb.Issue(w.id, ins, c.slot, c.mask, s.now+s.cfg.SharedLatency+waves-1)
		}
		s.advance(c, c.pc+1)
		return nil
	}

	// Global memory: coalesce per wave, one transaction per LSU cycle.
	blockBytes := uint32(s.cfg.Mem.BlockBytes)
	txnBlocks := s.txnBuf[:0]
	waves := 0
	per := s.cfg.LSUWidth
	for lo := 0; lo < s.cfg.WarpWidth; lo += per {
		before := len(txnBlocks)
		txnBlocks = mem.Coalesce(txnBlocks, addrs[:s.cfg.WarpWidth], c.mask, lo, lo+per, blockBytes)
		if len(txnBlocks) > before {
			waves++
		}
	}
	s.txnBuf = txnBlocks
	txns := int64(len(txnBlocks))
	s.units.issueLSU(txns, s.now)
	s.stats.Transactions += uint64(txns)
	if t := txns - int64(waves); t > 0 {
		s.stats.Replays += uint64(t)
	}

	if !ins.Op.IsLoad() {
		if err := apply(c.mask); err != nil {
			return err
		}
		// Store retire time carries write-buffer back-pressure: when the
		// buffer in front of a modeled lower level is full, the hierarchy
		// accepts the store late and the LSU stays occupied until then.
		// The flat DRAM path always retires at now + HitLatency, leaving
		// the reservation from issueLSU unchanged.
		retire := int64(0)
		for _, b := range txnBlocks {
			if r := s.hier.Store(s.now, b); r > retire {
				retire = r
			}
		}
		if hold := retire - s.cfg.Mem.HitLatency; hold > s.now {
			s.units.holdLSU(hold)
		}
		s.advance(c, c.pc+1)
		return nil
	}

	// Loads: each transaction returns at its own cycle; the split's
	// writeback is the slowest one unless memory-divergence splitting
	// lets hit threads run ahead.
	ready := s.txnReady[:0]
	maxReady := int64(0)
	for _, b := range txnBlocks {
		r := s.hier.Load(s.now, b)
		ready = append(ready, r) //sbwi:alloc-ok fills s.txnReady scratch; cap reaches steady state after warm-up
		if r > maxReady {
			maxReady = r
		}
	}
	s.txnReady = ready

	if s.cfg.SplitOnMemDivergence {
		hitBound := s.now + s.cfg.Mem.HitLatency
		var hitMask, missMask uint64
		hitReady := int64(0)
		for m := c.mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			r := txnReadyOf(txnBlocks, ready, addrs[t]&^(blockBytes-1))
			if r <= hitBound {
				hitMask |= 1 << uint(t)
				if r > hitReady {
					hitReady = r
				}
			} else {
				missMask |= 1 << uint(t)
			}
		}
		if hitMask != 0 && missMask != 0 {
			// Hit threads advance with their fast writeback; miss
			// threads stay at the load with registers untouched and
			// replay it (by then the lines are in flight or filled, so
			// the replay is cheap).
			if err := apply(hitMask); err != nil {
				return err
			}
			s.stats.MemSplits++
			s.sb.Issue(w.id, ins, c.slot, hitMask, hitReady)
			s.mutateHeap(w, func() { w.heap.Diverge(c.pc, c.pc+1, c.pc, hitMask, s.now) }) //sbwi:alloc-ok non-escaping argument to mutateHeap
			return nil
		}
	}

	if err := apply(c.mask); err != nil {
		return err
	}
	s.sb.Issue(w.id, ins, c.slot, c.mask, maxReady)
	s.advance(c, c.pc+1)
	return nil
}

// txnReadyOf returns the data-return cycle of the transaction covering
// block (the coalescer guarantees every active lane's block is in the
// list, so the scan always finds it).
//
//sbwi:hotpath
func txnReadyOf(blocks []uint32, ready []int64, block uint32) int64 {
	for i, b := range blocks {
		if b == block {
			return ready[i]
		}
	}
	return 0
}
