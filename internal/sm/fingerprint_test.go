package sm

import (
	"reflect"
	"testing"
)

// TestFingerprintCoversEveryField walks Config reflectively, perturbs
// each leaf field of a table-2 configuration in turn, and asserts the
// fingerprint moves. This is the cache-key soundness guarantee: a
// future Config field that could change simulation results cannot be
// added without the fingerprint picking it up (the reflection walk
// inside Fingerprint sees it automatically, and this test documents
// the contract).
func TestFingerprintCoversEveryField(t *testing.T) {
	base := Configure(ArchSBISWI)
	ref := base.Fingerprint()
	n := perturbLeaves(t, reflect.ValueOf(&base).Elem(), "Config", func(path string) {
		if got := base.Fingerprint(); got == ref {
			t.Errorf("perturbing %s did not change the fingerprint", path)
		}
	})
	if n < 20 {
		t.Fatalf("only %d leaves perturbed — reflection walk is broken", n)
	}
}

// perturbLeaves visits every settable leaf of v, applies a minimal
// perturbation, invokes check, and restores the original value.
func perturbLeaves(t *testing.T, v reflect.Value, path string, check func(string)) int {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			n += perturbLeaves(t, v.Field(i), path+"."+f.Name, check)
		}
		return n
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
		return 1
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
		return 1
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
		return 1
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 1)
		check(path)
		v.SetFloat(old)
		return 1
	default:
		t.Fatalf("%s: unhandled kind %s — extend the fingerprint test (and check fingerprint.Hash supports it)", path, v.Kind())
		return 0
	}
}

// TestFingerprintSplit pins the functional/timing digest split the
// trace cache keys on: together the two digests cover every Config
// field (perturbing any leaf moves exactly one of them), and each
// field lands in the digest functionalFields assigns it to. A new
// Config field automatically lands in the timing digest; if it changes
// functional behavior it must be added to functionalFields, and this
// test documents which digest reacts.
func TestFingerprintSplit(t *testing.T) {
	base := Configure(ArchSBISWI)
	refFunc := base.FunctionalFingerprint()
	refTiming := base.TimingFingerprint()

	v := reflect.ValueOf(&base).Elem()
	total := 0
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		wantFunctional := functionalFields[name]
		total += perturbLeaves(t, v.Field(i), "Config."+name, func(path string) {
			funcMoved := base.FunctionalFingerprint() != refFunc
			timingMoved := base.TimingFingerprint() != refTiming
			if funcMoved != wantFunctional {
				t.Errorf("perturbing %s: functional digest moved = %v, want %v", path, funcMoved, wantFunctional)
			}
			if timingMoved == wantFunctional {
				t.Errorf("perturbing %s: timing digest moved = %v, want %v", path, timingMoved, !wantFunctional)
			}
		})
	}
	if total < 20 {
		t.Fatalf("only %d leaves perturbed — reflection walk is broken", total)
	}

	// The split must separate the program variants: the baseline runs
	// un-instrumented code, so its traces may not alias the
	// thread-frontier architectures'.
	b, s := Configure(ArchBaseline), Configure(ArchSBISWI)
	if b.FunctionalFingerprint() == s.FunctionalFingerprint() {
		t.Error("Baseline and SBI+SWI share a functional fingerprint")
	}
}

func TestFingerprintDistinguishesArchitectures(t *testing.T) {
	seen := map[uint64]Arch{}
	for _, a := range Architectures() {
		cfg := Configure(a)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", prev, a)
		}
		seen[fp] = a
	}
	cfg := Configure(ArchSBISWI)
	if cfg.Fingerprint() != cfg.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
}
