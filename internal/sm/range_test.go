package sm

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/kernels"
)

// TestRunRangeCoversGrid: per-thread committed instruction counts are
// purely functional, so disjoint sub-range runs must sum to the
// whole-grid run, and their memory effects must compose to the same
// final image (Histogram CTAs write disjoint outputs).
func TestRunRangeCoversGrid(t *testing.T) {
	b, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	cfg := Configure(ArchSBISWI)

	whole, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(cfg, whole)
	if err != nil {
		t.Fatal(err)
	}

	parts, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	mid := parts.GridDim / 2
	var sum Stats
	for _, r := range [][2]int{{0, mid}, {mid, parts.GridDim}} {
		res, err := RunRange(context.Background(), cfg, parts, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		sum.Merge(&res.Stats)
	}
	if sum.ThreadInstrs != full.Stats.ThreadInstrs {
		t.Errorf("sub-range ThreadInstrs %d != whole-grid %d", sum.ThreadInstrs, full.Stats.ThreadInstrs)
	}
	if sum.BlocksRun != full.Stats.BlocksRun {
		t.Errorf("sub-range BlocksRun %d != whole-grid %d", sum.BlocksRun, full.Stats.BlocksRun)
	}
	if !reflect.DeepEqual(parts.Global, whole.Global) {
		t.Error("sequential sub-range runs produced a different memory image")
	}
}

// TestRunRangeSeesFullGrid: %ncta must report the launch grid even
// for a sub-range run, keeping kernels position-independent.
func TestRunRangeSeesFullGrid(t *testing.T) {
	prog := assembleFor(t, "ncta", `
	mov  r1, %ncta
	mov  r2, %ctaid
	shl  r2, r2, 2
	mov  r3, %p0
	iadd r3, r3, r2
	st.g [r3], r1
	exit
`, ArchSBISWI)
	l := &exec.Launch{Prog: prog, GridDim: 6, BlockDim: 1, Global: make([]byte, 6*4)}
	cfg := Configure(ArchSBISWI)
	if _, err := RunRange(context.Background(), cfg, l, 4, 6); err != nil {
		t.Fatal(err)
	}
	for _, cta := range []int{4, 5} {
		got := uint32(l.Global[cta*4]) | uint32(l.Global[cta*4+1])<<8
		if got != 6 {
			t.Errorf("cta %d saw %%nctaid = %d, want 6", cta, got)
		}
	}
}

func TestRunRangeValidation(t *testing.T) {
	b, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	l, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Configure(ArchSBISWI)
	for _, r := range [][2]int{{-1, 2}, {0, l.GridDim + 1}, {3, 3}, {4, 2}} {
		if _, err := RunRange(context.Background(), cfg, l, r[0], r[1]); err == nil {
			t.Errorf("range %v must be rejected", r)
		}
	}
}

func TestRunRangeCancellation(t *testing.T) {
	prog := assembleFor(t, "spin", `
	mov  r1, 0
	mov  r2, 500000
loop:
	iadd r1, r1, 1
	isetp.lt r3, r1, r2
	bra  r3, loop
	exit
`, ArchSBISWI)
	l := &exec.Launch{Prog: prog, GridDim: 16, BlockDim: 256}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunRange(ctx, Configure(ArchSBISWI), l, 0, l.GridDim); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
