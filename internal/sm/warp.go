package sm

import (
	"math/bits"

	"repro/internal/exec"
	"repro/internal/reconv"
)

// block is one resident thread block. live and arrived are maintained
// incrementally (warp completion in refreshWarp, barrier arrival in
// execBar) so the per-cycle retire and barrier sweeps cost O(blocks)
// instead of O(blocks × warps).
type block struct {
	cta     int
	warps   []*warp
	shared  []byte
	live    int // warps with unfinished threads
	arrived int // live warps waiting at the block barrier

	// epoch counts the block's barrier releases; the trace recorder
	// logs it with every memory access, because two intra-block
	// accesses are ordered exactly when their epochs differ (package
	// replay's race analysis).
	epoch int32
}

// barrierReady reports whether every live warp has arrived at the block
// barrier.
func (b *block) barrierReady() bool {
	return b.live > 0 && b.arrived == b.live
}

// warp is one resident warp's architectural and micro-architectural
// state. Exactly one of stack/heap is non-nil, per the configuration.
type warp struct {
	id    int // SM-local warp index (also the scoreboard index)
	block *block
	base  int // first thread index within the block

	valid uint64
	regs  []exec.Regs
	envs  []exec.Env

	stack *reconv.Stack
	heap  *reconv.Heap

	// laneOf maps tid -> physical lane under the configured shuffle;
	// identity marks the trivial permutation so laneMask can skip the
	// bit-by-bit transpose on the hot path.
	laneOf   []int
	identity bool

	// laneCache memoizes the last transposed mask for non-identity
	// shuffles: between divergence events the same split masks are
	// probed cycle after cycle.
	laneCacheMask uint64
	laneCacheLane uint64
	laneCacheOK   bool

	// atBarrier marks a warp whose full-mask split issued BAR and now
	// waits for the rest of the block.
	atBarrier bool

	// deadCounted marks that the warp's completion has been folded into
	// its block's live counter.
	deadCounted bool

	// lastIssue is the warp-level issue guard for the stack model (the
	// heap model tracks it per context).
	lastIssue int64
}

// done reports whether all of the warp's threads exited (an unallocated
// warp is done).
//
//sbwi:hotpath
func (w *warp) done() bool {
	switch {
	case w.block == nil:
		return true
	case w.heap != nil:
		return w.heap.Done()
	default:
		return w.stack.Done()
	}
}

// laneMask transposes a thread mask into lane space.
//
//sbwi:hotpath
func (w *warp) laneMask(mask uint64) uint64 {
	if w.identity {
		return mask
	}
	if w.laneCacheOK && w.laneCacheMask == mask {
		return w.laneCacheLane
	}
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		tid := bits.TrailingZeros64(m)
		out |= 1 << uint(w.laneOf[tid])
	}
	w.laneCacheMask, w.laneCacheLane, w.laneCacheOK = mask, out, true
	return out
}
