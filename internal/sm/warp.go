package sm

import (
	"math/bits"

	"repro/internal/exec"
	"repro/internal/reconv"
)

// block is one resident thread block.
type block struct {
	cta    int
	warps  []*warp
	shared []byte
}

// liveWarps counts warps with unfinished threads.
func (b *block) liveWarps() int {
	n := 0
	for _, w := range b.warps {
		if !w.done() {
			n++
		}
	}
	return n
}

// barrierReady reports whether every live warp has arrived at the block
// barrier.
func (b *block) barrierReady() bool {
	live := 0
	for _, w := range b.warps {
		if w.done() {
			continue
		}
		live++
		if !w.atBarrier {
			return false
		}
	}
	return live > 0
}

// warp is one resident warp's architectural and micro-architectural
// state. Exactly one of stack/heap is non-nil, per the configuration.
type warp struct {
	id    int // SM-local warp index (also the scoreboard index)
	block *block
	base  int // first thread index within the block

	valid uint64
	regs  []exec.Regs
	envs  []exec.Env

	stack *reconv.Stack
	heap  *reconv.Heap

	// laneOf maps tid -> physical lane under the configured shuffle.
	laneOf []int

	// atBarrier marks a warp whose full-mask split issued BAR and now
	// waits for the rest of the block.
	atBarrier bool

	// lastIssue is the warp-level issue guard for the stack model (the
	// heap model tracks it per context).
	lastIssue int64
}

// done reports whether all of the warp's threads exited (an unallocated
// warp is done).
func (w *warp) done() bool {
	switch {
	case w.block == nil:
		return true
	case w.heap != nil:
		return w.heap.Done()
	default:
		return w.stack.Done()
	}
}

// laneMask transposes a thread mask into lane space.
func (w *warp) laneMask(mask uint64) uint64 {
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		tid := bits.TrailingZeros64(m)
		out |= 1 << uint(w.laneOf[tid])
	}
	return out
}
