package sm

import (
	"context"
	"errors"
	"fmt"
)

// The typed failure surface of a simulation: runs that exceed their
// modeled-cycle bound (livelock) and runs aborted by the device layer's
// wall-clock watchdog. Both carry the dumpState snapshot of the SM at
// the moment of the abort, so a stuck kernel is diagnosable from the
// error alone — per-warp PCs, barrier states and the CTA frontier —
// without re-running anything.

// ErrLaunchTimeout is the sentinel cause of a wall-clock watchdog
// abort. The device layer cancels a launch's context with a cause
// wrapping it; errors.Is(err, ErrLaunchTimeout) identifies a timed-out
// launch through every layer of wrapping, including the *TimeoutError
// the SM poll loop builds around it.
var ErrLaunchTimeout = errors.New("launch exceeded its wall-clock watchdog")

// LivelockError reports a run that exceeded its modeled-cycle bound
// (Config.MaxCycles): the kernel is livelocked, or the bound is too
// tight for it. State holds the dumpState partial-state snapshot.
type LivelockError struct {
	Prog  string
	Arch  Arch
	Limit int64 // the cycle bound that was exceeded
	Cycle int64 // the modeled cycle at abort
	State string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sm: %s on %s: cycle limit %d exceeded at cycle %d (livelock?)\n%s",
		e.Prog, e.Arch, e.Limit, e.Cycle, e.State)
}

// TimeoutError reports a run aborted by the device layer's wall-clock
// watchdog (WithLaunchTimeout). Cycle and State are the partial
// simulation state at the abort — unlike LivelockError's modeled-cycle
// bound, the watchdog fires on host time, so the snapshot shows
// wherever the simulation happened to be.
type TimeoutError struct {
	Prog  string
	Arch  Arch
	Cycle int64
	State string
	cause error // the watchdog cause, wrapping ErrLaunchTimeout
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("sm: %s on %s: %v at cycle %d; partial state:\n%s",
		e.Prog, e.Arch, e.cause, e.Cycle, e.State)
}

// Unwrap exposes the watchdog cause, so errors.Is(err,
// ErrLaunchTimeout) holds.
func (e *TimeoutError) Unwrap() error { return e.cause }

// abortErr converts an observed context abort into the run's error: a
// watchdog cancellation (cause wrapping ErrLaunchTimeout) becomes a
// TimeoutError carrying the partial-state diagnostic; anything else
// stays the plain context error, exactly as before the watchdog
// existed.
func (s *SM) abortErr(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil && errors.Is(cause, ErrLaunchTimeout) {
		return &TimeoutError{
			Prog:  s.prog.Name,
			Arch:  s.cfg.Arch,
			Cycle: s.now,
			State: s.dumpState(),
			cause: cause,
		}
	}
	return ctx.Err()
}
