package sm

import (
	"context"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/reconv"
	"repro/internal/replay"
	"repro/internal/sched"
)

// SM is one simulated Streaming Multiprocessor mid-run.
type SM struct {
	cfg    Config
	launch *exec.Launch
	prog   *isa.Program
	hier   *mem.Hierarchy
	sb     *sched.Scoreboard
	lookup *sched.Lookup
	rng    *sched.XorShift64
	units  *units

	warps   []*warp
	blocks  []*block
	nextCTA int
	ctaEnd  int
	now     int64

	// Incrementally maintained scheduler state (see schedfast.go):
	// readySet holds exactly the warps the per-cycle rescan would probe
	// past its pre-scoreboard checks, slotOf their primary front-end
	// slot. Both are refreshed at the events that change eligibility —
	// issue, barrier release, block launch and retire — instead of being
	// re-derived from every warp context each cycle.
	readySet warpBits
	slotOf   []int8
	setBits  []warpBits // SWI: per-buddy-set warp masks
	memberOf []int      // SWI: buddy-set index containing each warp
	nextPoll int64      // next context-poll cycle

	// srcsOf caches each instruction's source-register list, indexed by
	// PC — static per program, recomputed by the seed on every probe.
	srcsOf [][]isa.Reg

	// Reusable scratch buffers: the steady-state issue path performs no
	// heap allocation (enforced by TestSteadyStateZeroAllocs).
	swiTies  []candidate
	freeBuf  []*warp
	txnBuf   []uint32
	txnReady []int64
	idleBuf  []idleCand

	// rec / rp wire the trace-replay engine (package replay): with rec,
	// this full simulation additionally streams per-thread branch
	// outcomes and memory addresses into a recording; with rp, the
	// functional layer is skipped entirely and those streams are read
	// back instead — the scheduler, scoreboard, reconvergence and
	// memory-timing machinery still run for real, which is what keeps
	// replayed Stats bit-identical. At most one of the two is non-nil.
	rec *replay.Sink
	rp  *replay.Session

	stats Stats
	trace *Trace
}

// Result is the outcome of one simulation.
type Result struct {
	Stats Stats
	Trace *Trace

	// Waves holds the per-wave statistics when a Device partitioned the
	// launch into CTA waves simulated on independent SM instances; it is
	// nil for a plain single-SM Run. Stats is the deterministic merge of
	// the wave entries (wave order) plus, when the device models the
	// shared memory system, the L2/NoC counters of the one shared L2 and
	// crossbar every wave accessed inline (Stats.Mem.L2 and
	// Stats.Mem.NoC, zero in every per-wave entry). Without the modeled
	// memory system, merged Stats are identical for any SM or worker
	// count; with it, the waves contend on one shared clock, so Stats
	// depend on the configured SM count (the physical packing) but never
	// on the host worker count.
	Waves []Stats

	// SMCycles is the per-SM busy-cycle total under the device's
	// round-robin wave assignment (wave j runs on SM j mod N). Unlike
	// Stats, it depends on the configured SM count: more SMs spread the
	// same waves wider — and when the device models the shared L2 and
	// interconnect, each wave's cycles already include the contention
	// its accesses met on the shared clock. Nil for a plain single-SM
	// Run.
	SMCycles []int64

	// NoCPorts holds the per-SM interconnect port counters when the
	// device models the shared memory system (port i belongs to SM i;
	// length 1 for an unpartitioned single-SM run). Taken live from the
	// crossbar the waves accessed, so the per-port split reflects the
	// device's wave-to-SM packing. Nil under the flat-latency DRAM
	// model.
	NoCPorts []noc.Stats

	// Replayed reports that the result was produced by the trace-replay
	// engine (device.WithTraceReplay) instead of a full simulation;
	// Stats are bit-identical either way, but a replayed run leaves the
	// launch's global memory untouched.
	Replayed bool
}

// DeviceCycles returns the modeled device wall-clock: the busiest SM's
// cycle total, or Stats.Cycles when the launch ran on a single SM.
func (r *Result) DeviceCycles() int64 {
	if len(r.SMCycles) == 0 {
		return r.Stats.Cycles
	}
	var m int64
	for _, c := range r.SMCycles {
		if c > m {
			m = c
		}
	}
	return m
}

// candidate is an issueable (warp, split) pair resolved by a scheduler.
// It is passed by pointer into scratch storage, never heap-allocated on
// the issue path.
type candidate struct {
	w    *warp
	slot int // hot-context slot for heap configs; 0 for the stack
	pc   int
	mask uint64
	lane uint64
	ins  *isa.Instruction
}

// Run simulates the launch to completion on an SM configured by cfg and
// returns the statistics. The launch's global memory is mutated in
// place; callers needing the initial image should use CloneGlobal.
func Run(cfg Config, l *exec.Launch) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return RunRange(context.Background(), cfg, l, 0, l.GridDim)
}

// ResidentCTAs returns how many CTAs of the launch are co-resident on
// one SM: the warp contexts divided by the warps one block needs. It is
// the wave size a Device uses to partition a grid across SM instances.
func ResidentCTAs(cfg Config, l *exec.Launch) int {
	warpsPerBlock := (l.BlockDim + cfg.WarpWidth - 1) / cfg.WarpWidth
	if warpsPerBlock <= 0 || warpsPerBlock > cfg.NumWarps {
		return 0
	}
	return cfg.NumWarps / warpsPerBlock
}

// RunOpts carries per-run wiring that is not part of the modeled
// micro-architecture (Config): how the SM's L1 talks to the rest of
// the device's memory system.
type RunOpts struct {
	// Lower, when non-nil, services the L1's miss fills and
	// write-through stores in place of the flat-latency DRAM port —
	// the device wires an interconnect port backed by the shared L2
	// here. The Lower is called from the simulation goroutine at the
	// cycle each transaction leaves the L1, so a shared Lower must only
	// ever see one access stream at a time — the device interleaves
	// concurrent waves onto a shared Lower through one serial driver
	// (see sm.Runner and package device).
	Lower mem.Lower

	// Record, when non-nil, streams this full simulation's per-thread
	// branch outcomes and memory addresses into a trace recording (one
	// sink per SM instance; see replay.Recorder). Functional execution
	// is unchanged.
	Record *replay.Sink

	// Replay, when non-nil, replaces functional execution with the
	// recorded streams: no operand decode, no ALU evaluation, no
	// load/store — global memory stays untouched — while all scheduling
	// and timing machinery runs for real. The run fails loudly if the
	// replayed execution diverges from the recording (the configuration
	// left the trace's validity domain). Mutually exclusive with
	// Record.
	Replay *replay.Session
}

// RunRange simulates the CTA sub-range [ctaStart, ctaEnd) of the launch
// on a fresh SM. The SM model is re-entrant: independent RunRange calls
// over disjoint sub-ranges of one launch may run concurrently as long
// as each operates on its own global-memory image (see the Launch
// write-sharing contract in package exec). Thread environments still
// see the full grid (%nctaid is l.GridDim), so functional behavior is
// position-independent. The context is polled about every 1k cycles;
// cancellation aborts the simulation with ctx.Err().
func RunRange(ctx context.Context, cfg Config, l *exec.Launch, ctaStart, ctaEnd int) (*Result, error) {
	return RunRangeOpts(ctx, cfg, l, ctaStart, ctaEnd, RunOpts{})
}

// RunRangeOpts is RunRange with explicit memory-system wiring.
func RunRangeOpts(ctx context.Context, cfg Config, l *exec.Launch, ctaStart, ctaEnd int, opts RunOpts) (*Result, error) {
	s, err := newSM(cfg, l, ctaStart, ctaEnd, opts)
	if err != nil {
		return nil, err
	}
	if err := s.run(ctx); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// newSM validates the configuration and launch and builds a fresh SM
// with every scratch buffer preallocated, ready to simulate the CTA
// sub-range [ctaStart, ctaEnd).
func newSM(cfg Config, l *exec.Launch, ctaStart, ctaEnd int, opts RunOpts) (*SM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if ctaStart < 0 || ctaEnd > l.GridDim || ctaStart >= ctaEnd {
		return nil, fmt.Errorf("sm: %s: CTA range [%d, %d) outside grid of %d",
			l.Prog.Name, ctaStart, ctaEnd, l.GridDim)
	}
	warpsPerBlock := (l.BlockDim + cfg.WarpWidth - 1) / cfg.WarpWidth
	if warpsPerBlock > cfg.NumWarps {
		return nil, fmt.Errorf("sm: block of %d threads needs %d warps, SM has %d",
			l.BlockDim, warpsPerBlock, cfg.NumWarps)
	}
	if !cfg.usesHeap() {
		for pc := range l.Prog.Code {
			ins := &l.Prog.Code[pc]
			if ins.Conditional() && ins.RecPC < 0 {
				return nil, fmt.Errorf("sm: %s: pc %d: stack architecture needs RecPC annotations (run cfg.AnnotateReconvergence)", l.Prog.Name, pc)
			}
		}
	}

	s := &SM{
		cfg:     cfg,
		launch:  l,
		prog:    l.Prog,
		hier:    mem.NewHierarchy(cfg.Mem),
		sb:      sched.NewScoreboard(cfg.DepMode, cfg.NumWarps, cfg.ScoreboardEntries),
		rng:     sched.NewXorShift64(cfg.Seed),
		units:   newUnits(&cfg),
		warps:   make([]*warp, cfg.NumWarps),
		nextCTA: ctaStart,
		ctaEnd:  ctaEnd,
	}
	lk, err := sched.NewLookup(cfg.NumWarps, cfg.Assoc)
	if err != nil {
		return nil, err
	}
	s.lookup = lk
	if opts.Record != nil && opts.Replay != nil {
		return nil, fmt.Errorf("sm: %s: a run cannot both record and replay a trace", l.Prog.Name)
	}
	if opts.Record != nil && !opts.Record.Matches(l.GridDim, l.BlockDim) {
		return nil, fmt.Errorf("sm: %s: trace recorder sized for a different launch geometry", l.Prog.Name)
	}
	if opts.Replay != nil && !opts.Replay.Matches(l.GridDim, l.BlockDim, ctaStart, ctaEnd) {
		return nil, fmt.Errorf("sm: %s: replay session covers a different launch geometry or CTA range", l.Prog.Name)
	}
	s.rec, s.rp = opts.Record, opts.Replay
	s.hier.SetLower(opts.Lower)
	for i := range s.warps {
		s.warps[i] = &warp{id: i}
	}
	if cfg.TraceCap > 0 {
		s.trace = &Trace{cap: cfg.TraceCap}
	}

	flat := make([]isa.Reg, 0, 3*l.Prog.Len()) // SrcRegs appends at most 3, so flat never reallocates
	s.srcsOf = make([][]isa.Reg, l.Prog.Len())
	for pc := 0; pc < l.Prog.Len(); pc++ {
		start := len(flat)
		flat = l.Prog.At(pc).SrcRegs(flat)
		s.srcsOf[pc] = flat[start:len(flat):len(flat)]
	}

	s.readySet = newWarpBits(cfg.NumWarps)
	s.slotOf = make([]int8, cfg.NumWarps)
	s.swiTies = make([]candidate, 0, cfg.NumWarps)
	s.freeBuf = make([]*warp, 0, cfg.NumWarps)
	s.idleBuf = make([]idleCand, 0, cfg.NumWarps)
	s.txnBuf = make([]uint32, 0, cfg.WarpWidth)
	s.txnReady = make([]int64, 0, cfg.WarpWidth)
	if cfg.Arch == ArchSWI || cfg.Arch == ArchSBISWI {
		ns := lk.NumSets()
		s.setBits = make([]warpBits, ns)
		s.memberOf = make([]int, cfg.NumWarps)
		for si := 0; si < ns; si++ {
			m := newWarpBits(cfg.NumWarps)
			for _, wid := range lk.SetWarps(si) {
				m.set(wid)
				s.memberOf[wid] = si
			}
			s.setBits[si] = m
		}
	}
	return s, nil
}

// run drives the simulation to completion (or error), polling the
// context about every 1k cycles.
func (s *SM) run(ctx context.Context) error {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}
	for {
		if s.now >= s.nextPoll {
			select {
			case <-ctx.Done():
				return s.abortErr(ctx)
			default:
			}
			s.nextPoll = (s.now &^ 1023) + 1024
		}
		done, err := s.step(maxCycles)
		if err != nil {
			return err
		}
		if done {
			return s.finishReplay()
		}
	}
}

// finishReplay verifies, at completion of a replayed run, that every
// covered thread consumed its recorded streams exactly — the backstop
// against a timing configuration that silently left the trace's
// validity domain. No-op for normal runs.
func (s *SM) finishReplay() error {
	if s.rp == nil {
		return nil
	}
	if err := s.rp.Finish(); err != nil {
		return fmt.Errorf("sm: %s: %w", s.prog.Name, err)
	}
	return nil
}

// step advances the simulation by one front-end iteration: block
// retire/launch, barrier release, one scheduling cycle, and — when the
// cycle issued nothing — the idle-span fast-forward. It reports whether
// the sub-range has completed. Exposed inside the package so tests can
// drive and measure the hot loop directly.
//
//sbwi:hotpath
func (s *SM) step(maxCycles int64) (bool, error) {
	s.retireBlocks()
	s.launchBlocks()
	if s.done() {
		return true, nil
	}
	s.releaseBarriers()
	issued, err := s.cycle()
	if err != nil {
		return false, err
	}
	s.now++
	if s.now > maxCycles {
		return false, s.livelockErr(maxCycles)
	}
	if !issued {
		if err := s.fastForward(maxCycles); err != nil {
			return false, err
		}
	}
	return false, nil
}

func (s *SM) livelockErr(maxCycles int64) error {
	return &LivelockError{
		Prog:  s.prog.Name,
		Arch:  s.cfg.Arch,
		Limit: maxCycles,
		Cycle: s.now,
		State: s.dumpState(),
	}
}

// result finalizes and packages the run statistics.
func (s *SM) result() *Result {
	s.stats.Cycles = s.now
	s.stats.ScoreboardChecks = s.sb.Stats.Checks
	s.stats.ScoreboardStalls = s.sb.Stats.Stalls
	s.stats.StructuralStalls = s.sb.Stats.Structural
	s.stats.Mem = s.hier.Stats
	s.collectHeapStats()
	return &Result{Stats: s.stats, Trace: s.trace}
}

// collectHeapStats folds per-warp reconvergence statistics of the still
// resident warps into the run statistics (retired warps fold in
// retireBlocks).
func (s *SM) collectHeapStats() {
	for _, w := range s.warps {
		s.foldWarpStats(w)
	}
}

func (s *SM) foldWarpStats(w *warp) {
	if w.heap != nil {
		st := w.heap.Stats
		s.stats.Merges += st.Merges
		s.stats.DegradedInserts += st.DegradedInser
		s.stats.CCTOverflows += st.CCTOverflows
		if st.MaxSplits > s.stats.MaxSplits {
			s.stats.MaxSplits = st.MaxSplits
		}
		w.heap.Stats = reconv.HeapStats{}
	}
	if w.stack != nil {
		if d := w.stack.MaxDepth(); d > s.stats.MaxStackDepth {
			s.stats.MaxStackDepth = d
		}
	}
}

// done reports whether every CTA of the sub-range has been run to
// completion.
//
//sbwi:hotpath
func (s *SM) done() bool {
	return s.nextCTA >= s.ctaEnd && len(s.blocks) == 0
}

// dumpState renders a one-line-per-warp summary for livelock reports.
func (s *SM) dumpState() string {
	var out strings.Builder
	fmt.Fprintf(&out, "  cycle %d, next CTA %d of [., %d)\n", s.now, s.nextCTA, s.ctaEnd)
	for _, w := range s.warps {
		if w.block == nil {
			continue
		}
		fmt.Fprintf(&out, "  warp %d (cta %d) atBarrier=%v: ", w.id, w.block.cta, w.atBarrier)
		if w.heap != nil {
			for i := 0; i < reconv.HotContexts; i++ {
				if c := w.heap.Slot(i); c != nil {
					fmt.Fprintf(&out, "slot%d{pc=%d mask=%x wait=%d parked=%v} ",
						i, c.PC, c.Mask, c.WaitDiv, c.Parked)
				}
			}
			out.WriteString(w.heap.String())
		} else if pc, mask, ok := w.stack.Active(); ok {
			fmt.Fprintf(&out, "stack{pc=%d mask=%x}", pc, mask)
		}
		out.WriteByte('\n')
	}
	return out.String()
}

// retireBlocks frees the warps of completed blocks.
//
//sbwi:hotpath
func (s *SM) retireBlocks() {
	out := s.blocks[:0]
	for _, b := range s.blocks {
		if b.live > 0 {
			out = append(out, b) //sbwi:alloc-ok compacts live blocks in place into s.blocks[:0]
			continue
		}
		for _, w := range b.warps {
			s.foldWarpStats(w)
			w.block = nil
			s.refreshWarp(w)
		}
		s.stats.BlocksRun++
	}
	s.blocks = out
}

// launchBlocks assigns pending CTAs to free warp contexts.
//
//sbwi:hotpath
func (s *SM) launchBlocks() {
	warpsPerBlock := (s.launch.BlockDim + s.cfg.WarpWidth - 1) / s.cfg.WarpWidth
	for s.nextCTA < s.ctaEnd {
		free := s.freeBuf[:0]
		for _, w := range s.warps {
			if w.block == nil {
				free = append(free, w) //sbwi:alloc-ok fills s.freeBuf scratch sized to the warp contexts
				if len(free) == warpsPerBlock {
					break
				}
			}
		}
		if len(free) < warpsPerBlock {
			return
		}
		s.startBlock(s.nextCTA, free)
		s.nextCTA++
	}
}

// startBlock initializes warp state for one CTA. ws may be scratch; the
// block keeps its own copy. A replayed run skips the per-thread
// register and environment setup (and the shared-memory image): the
// functional layer never executes, so none of it would be read.
func (s *SM) startBlock(cta int, ws []*warp) {
	b := &block{cta: cta, warps: append([]*warp(nil), ws...)}
	if s.rp == nil {
		b.shared = make([]byte, s.prog.SharedMem)
	}
	b.live = len(b.warps)
	for wi, w := range b.warps {
		w.block = b
		w.base = wi * s.cfg.WarpWidth
		w.valid = 0
		w.atBarrier = false
		w.deadCounted = false
		w.lastIssue = -1
		if w.laneOf == nil {
			w.laneOf = s.cfg.Shuffle.Permutation(w.id, s.cfg.WarpWidth, s.cfg.NumWarps)
			w.identity = true
			for i, l := range w.laneOf {
				if l != i {
					w.identity = false
					break
				}
			}
		}
		if s.rp != nil {
			for t := 0; t < s.cfg.WarpWidth; t++ {
				if w.base+t < s.launch.BlockDim {
					w.valid |= 1 << uint(t)
				}
			}
			if s.cfg.usesHeap() {
				w.heap = reconv.NewHeap(w.valid, s.cfg.CCTCap)
				w.stack = nil
			} else {
				w.stack = reconv.NewStack(w.valid)
				w.heap = nil
			}
			s.refreshWarp(w)
			continue
		}
		if cap(w.regs) < s.cfg.WarpWidth {
			w.regs = make([]exec.Regs, s.cfg.WarpWidth)
			w.envs = make([]exec.Env, s.cfg.WarpWidth)
		}
		w.regs = w.regs[:s.cfg.WarpWidth]
		w.envs = w.envs[:s.cfg.WarpWidth]
		for t := 0; t < s.cfg.WarpWidth; t++ {
			tid := w.base + t
			w.regs[t] = exec.Regs{}
			if tid >= s.launch.BlockDim {
				continue
			}
			w.valid |= 1 << uint(t)
			w.envs[t] = exec.Env{
				Tid:    uint32(tid),
				NTid:   uint32(s.launch.BlockDim),
				Ctaid:  uint32(cta),
				NCta:   uint32(s.launch.GridDim),
				Params: &s.launch.Params,
			}
		}
		if s.cfg.usesHeap() {
			w.heap = reconv.NewHeap(w.valid, s.cfg.CCTCap)
			w.stack = nil
		} else {
			w.stack = reconv.NewStack(w.valid)
			w.heap = nil
		}
		s.refreshWarp(w)
	}
	s.blocks = append(s.blocks, b)
}

// releaseBarriers opens block barriers once every live warp arrived.
//
//sbwi:hotpath
func (s *SM) releaseBarriers() {
	for _, b := range s.blocks {
		if !b.barrierReady() {
			continue
		}
		for _, w := range b.warps {
			if w.done() || !w.atBarrier {
				continue
			}
			w.atBarrier = false
			if w.heap != nil {
				if c := w.heap.Slot(0); c != nil {
					next := c.PC + 1
					s.mutateHeap(w, func() { w.heap.Advance(0, next, s.now) }) //sbwi:alloc-ok non-escaping argument to mutateHeap
				}
			} else {
				w.stack.Advance()
			}
			s.refreshWarp(w)
		}
		b.arrived = 0
		b.epoch++ // accesses after the release are barrier-ordered against those before
	}
}

// mutateHeap wraps a heap mutation with the slot-transition update of
// the dependency-matrix scoreboard (§3.4). Composing one transition per
// mutation is equivalent to the hardware's one matrix per cycle, and
// keeps the rows consistent with slot numbering for intra-cycle
// secondary scheduling.
//
//sbwi:hotpath
func (s *SM) mutateHeap(w *warp, f func()) {
	if s.sb.Mode() != sched.DepMatrix {
		f()
		return
	}
	pre := w.heap.SlotMasks()
	f()
	s.sb.Transition(w.id, sched.Transition(pre, w.heap.SlotMasks()))
}

// cycle performs one scheduling cycle: every pool issues a primary
// instruction, then the secondary slot (if the architecture has one)
// fills the gap per §3/§4. It reports whether anything issued — when
// nothing did, every scheduler-visible input is frozen until the next
// wake-up event and the caller may fast-forward.
//
//sbwi:hotpath
func (s *SM) cycle() (bool, error) {
	var prim candidate
	if s.cfg.Arch == ArchBaseline {
		issued := false
		for pool := 0; pool < s.cfg.pools(); pool++ {
			if s.selectPrimary(pool, &prim) {
				if err := s.issue(&prim, false, provNone); err != nil {
					return issued, err
				}
				issued = true
			}
		}
		return issued, nil
	}

	if !s.selectPrimary(0, &prim) {
		// No primary: the secondary scheduler substitutes itself (§4),
		// searching one buddy set selected round-robin.
		if s.cfg.Arch == ArchSWI || s.cfg.Arch == ArchSBISWI {
			var sub candidate
			if s.swiSecondary(int(s.now)%s.lookup.NumSets(), nil, isa.UnitCTRL, 0, &sub) {
				return true, s.issue(&sub, true, provSWI)
			}
		}
		return false, nil
	}

	// Snapshot the other hot split before the primary issue mutates the
	// heap: the hardware's two front-ends select from the same
	// cycle-start instruction-buffer state.
	pw := prim.w
	primPC, primMask, primIns := prim.pc, prim.mask, prim.ins
	var secPC int
	var secMask uint64
	haveSec := false
	if s.cfg.hotSlots() == 2 && pw.heap != nil {
		other := 1 - prim.slot
		if pw.heap.Eligible(other) {
			if c2 := pw.heap.Slot(other); c2 != nil && c2.LastIssue < s.now {
				secPC, secMask, haveSec = c2.PC, c2.Mask, true
			}
		}
	}

	if err := s.issue(&prim, false, provNone); err != nil {
		return true, err
	}
	if !s.cfg.hasSecondary() {
		return true, nil
	}

	var sec candidate
	// (a) SBI: the warp's own secondary split, if it survived the
	// primary's heap mutation un-merged.
	if haveSec {
		if s.sbiCandidate(pw, secPC, secMask, s.divergenceCapable(primIns), &sec) {
			return true, s.issue(&sec, true, provSBI)
		}
	}
	// (b) SWI: another warp from the buddy set.
	if s.cfg.Arch == ArchSWI || s.cfg.Arch == ArchSBISWI {
		primLane := pw.laneMask(primMask)
		if s.swiSecondary(s.lookup.SetOf(pw.id), pw, primIns.Op.Unit(), primLane, &sec) {
			return true, s.issue(&sec, true, provSWI)
		}
	}
	// (c) Sequential fallback: next instruction of the primary split to
	// a distinct unit group.
	if s.cfg.Arch == ArchSBI || s.cfg.Arch == ArchSBISWI {
		if s.seqCandidate(pw, primIns, primPC, primMask, &sec) {
			return true, s.issue(&sec, true, provSeq)
		}
	}
	return true, nil
}

// prov is the provenance of a secondary issue, for statistics.
type prov uint8

const (
	provNone prov = iota
	provSBI
	provSWI
	provSeq
)

// primarySlot returns the hot slot the primary front-end follows for a
// warp: the minimal-PC context, falling through to the next one when it
// is architecturally suspended (parked at a partial barrier or waiting
// on a selective synchronization barrier).
//
//sbwi:hotpath
func (s *SM) primarySlot(w *warp) int {
	if w.heap == nil {
		return 0
	}
	if w.heap.Suspended(0) {
		return 1
	}
	return 0
}

// selectPrimary picks the least-recently-issued ready (warp, split) in
// the pool (oldest-first, §2) into out. pool is a parity filter for the
// baseline and 0 for single-pool architectures. The walk covers only
// the incrementally maintained issuable set, in ascending warp order —
// the order the seed's full rescan visited warps — so scoreboard
// counters and tie-breaking draws match the original loop exactly.
//
//sbwi:hotpath
func (s *SM) selectPrimary(pool int, out *candidate) bool {
	parity := s.cfg.pools() == 2
	found := false
	var bestAge int64
	var cur candidate
	for base, word := range s.readySet {
		for ; word != 0; word &= word - 1 {
			id := base<<6 | bits.TrailingZeros64(word)
			if parity && id&1 != pool {
				continue
			}
			w := s.warps[id]
			slot := int(s.slotOf[id])
			if !s.probe(w, slot, &cur) {
				continue
			}
			age := s.lastIssueOf(w, slot)
			if !found || age < bestAge {
				*out, bestAge, found = cur, age, true
			}
		}
	}
	return found
}

// lastIssueOf returns the age key used for oldest-first selection.
//
//sbwi:hotpath
func (s *SM) lastIssueOf(w *warp, slot int) int64 {
	if w.heap != nil {
		if c := w.heap.Slot(slot); c != nil {
			return c.LastIssue
		}
	}
	return w.lastIssue
}

// probe builds the candidate for a warp taken from the issuable set:
// the cached eligibility already holds, leaving only the per-cycle
// checks — the once-per-cycle issue guard, the scoreboard query and the
// unit capacity.
//
//sbwi:hotpath
func (s *SM) probe(w *warp, slot int, out *candidate) bool {
	var pc int
	var mask uint64
	if w.heap != nil {
		c := w.heap.Slot(slot)
		if c.LastIssue >= s.now {
			return false
		}
		pc, mask = c.PC, c.Mask
	} else {
		if w.lastIssue >= s.now {
			return false
		}
		pc, mask, _ = w.stack.Active()
	}
	return s.finishCandidate(w, slot, pc, mask, out)
}

// finishCandidate applies the scoreboard and unit checks shared by all
// schedulers, filling out on success.
//
//sbwi:hotpath
func (s *SM) finishCandidate(w *warp, slot int, pc int, mask uint64, out *candidate) bool {
	ins := s.prog.At(pc)
	qnow := s.now - s.cfg.IssueDelay
	if s.sb.ReadyAt(w.id, ins, s.srcsOf[pc], slot, mask, qnow) > qnow {
		return false
	}
	lane := w.laneMask(mask)
	if !s.units.canIssue(ins.Op.Unit(), lane, s.now) {
		return false
	}
	*out = candidate{w: w, slot: slot, pc: pc, mask: mask, lane: lane, ins: ins}
	return true
}

// divergenceCapable reports whether executing ins can create a new
// warp-split: a conditional branch, or a global load when DWS-style
// memory-divergence splitting is enabled. The HCT sorter accepts at
// most one new split per warp per cycle (§3.4), so two such
// instructions of one warp must not co-issue.
//
//sbwi:hotpath
func (s *SM) divergenceCapable(ins *isa.Instruction) bool {
	return ins.Conditional() || (s.cfg.SplitOnMemDivergence && ins.Op == isa.OpLdG)
}

// sbiCandidate re-locates the snapshotted secondary split after the
// primary issue. If it merged with the primary split (the primary
// advanced into its PC) co-issue is skipped: the merged warp-split
// issues whole next cycle. Any instruction class may issue from the
// second front-end — including the SYNC a waiting split must execute
// to evaluate its selective barrier — except that two
// divergence-capable instructions of one warp cannot share a cycle.
//
//sbwi:hotpath
func (s *SM) sbiCandidate(w *warp, pc int, mask uint64, primDiverges bool, out *candidate) bool {
	if w.heap == nil || w.atBarrier {
		return false
	}
	slot := -1
	for i := 0; i < reconv.HotContexts; i++ {
		if c := w.heap.Slot(i); c != nil && c.PC == pc && c.Mask == mask && c.LastIssue < s.now {
			slot = i
			break
		}
	}
	if slot < 0 || !w.heap.Eligible(slot) {
		return false
	}
	if primDiverges && s.divergenceCapable(s.prog.At(pc)) {
		return false
	}
	return s.finishCandidate(w, slot, pc, mask, out)
}

// seqCandidate dual-issues the next sequential instruction of the
// just-issued primary split when it targets a different unit group and
// its dependencies (including on the primary instruction itself, whose
// scoreboard entry is already visible) allow.
//
//sbwi:hotpath
func (s *SM) seqCandidate(w *warp, primIns *isa.Instruction, primPC int, primMask uint64, out *candidate) bool {
	if w.heap == nil || w.atBarrier || primIns.Op.Unit() == isa.UnitCTRL {
		return false
	}
	next := primPC + 1
	if next >= s.prog.Len() {
		return false
	}
	// Locate the split: it advanced to next with the same mask (if it
	// merged, was resorted away, or parked at the load under
	// memory-divergence splitting, skip).
	slot := -1
	for i := 0; i < reconv.HotContexts; i++ {
		if c := w.heap.Slot(i); c != nil && c.PC == next && c.Mask == primMask {
			slot = i
			break
		}
	}
	if slot < 0 || !w.heap.Eligible(slot) {
		return false
	}
	// The pair must target distinct unit groups; control instructions
	// occupy no unit so they always qualify (the primary is never
	// divergence-capable on this path, so a conditional branch is fine).
	ins := s.prog.At(next)
	if ins.Op.Unit() == primIns.Op.Unit() {
		return false
	}
	return s.finishCandidate(w, slot, next, primMask, out)
}

// swiSecondary searches buddy set setIdx for the best-fitting ready
// instruction whose lane mask does not conflict with the primary issue:
// disjoint masks when sharing the MAD row, any mask when targeting a
// free distinct unit (§4). Best fit maximizes occupied lanes; ties
// break pseudo-randomly. The bitset walk visits warps in ascending id —
// the order the seed's rescan used — so the tie list, and therefore the
// PRNG draw sequence, matches the original loop.
//
//sbwi:hotpath
func (s *SM) swiSecondary(setIdx int, exclude *warp, primUnit isa.Unit, primLane uint64, out *candidate) bool {
	ties := s.swiTies[:0]
	bestFit := -1
	var cur candidate
	set := s.setBits[setIdx]
	for base, word := range set {
		word &= s.readySet[base]
		for ; word != 0; word &= word - 1 {
			id := base<<6 | bits.TrailingZeros64(word)
			w := s.warps[id]
			if w == exclude || w.heap == nil {
				continue
			}
			slot := int(s.slotOf[id])
			c := w.heap.Slot(slot)
			if c.LastIssue >= s.now {
				continue
			}
			fit, ok := s.swiProbe(w, slot, c.PC, c.Mask, primUnit, primLane, &cur)
			if !ok {
				continue
			}
			switch {
			case fit > bestFit:
				ties, bestFit = append(ties[:0], cur), fit //sbwi:alloc-ok reuses s.swiTies scratch
			case fit == bestFit:
				ties = append(ties, cur) //sbwi:alloc-ok reuses s.swiTies scratch
			}
		}
	}
	s.swiTies = ties
	switch len(ties) {
	case 0:
		return false
	case 1:
		*out = ties[0]
	default:
		*out = ties[s.rng.Intn(len(ties))]
	}
	return true
}

// swiProbe applies the §4 secondary constraints to one buddy-set
// candidate — the MAD-row lane-collision filter happens before the
// scoreboard probe, exactly as in hardware (and so before the
// scoreboard counters tick) — and returns its lane fit.
//
//sbwi:hotpath
func (s *SM) swiProbe(w *warp, slot, pc int, mask uint64, primUnit isa.Unit, primLane uint64, out *candidate) (int, bool) {
	ins := s.prog.At(pc)
	unit := ins.Op.Unit()
	lane := w.laneMask(mask)
	if unit == isa.UnitMAD && primUnit == isa.UnitMAD && lane&primLane != 0 {
		return 0, false // would collide on the shared row
	}
	if !s.finishCandidate(w, slot, pc, mask, out) {
		return 0, false
	}
	return popcount(lane), true
}

// issue commits a candidate: functional execution, timing bookkeeping,
// and control-state mutation. The warp's cached schedulability is
// refreshed afterwards — issuing is one of the events that change it.
//
//sbwi:hotpath
func (s *SM) issue(c *candidate, secondary bool, p prov) error {
	w, ins := c.w, c.ins
	active := popcount(c.mask)

	s.stats.IssueSlots++
	if secondary {
		s.stats.SecondaryIssues++
		switch p {
		case provSBI:
			s.stats.SBIPairs++
		case provSWI:
			s.stats.SWIPairs++
		case provSeq:
			s.stats.SeqPairs++
		}
	} else {
		s.stats.PrimaryIssues++
	}
	if s.trace != nil {
		s.trace.add(IssueEvent{
			Cycle: s.now, Warp: w.id, Slot: boolInt(secondary),
			PC: c.pc, Mask: c.mask, Lane: c.lane, Op: ins.Op, Unit: ins.Op.Unit(),
		})
	}
	s.markIssued(w, c.slot)

	var err error
	switch {
	case ins.Op == isa.OpSync:
		s.stats.SyncThreadInstrs += uint64(active)
		s.execSync(c)
	case ins.Op == isa.OpNop:
		s.advance(c, c.pc+1)
	case ins.Op == isa.OpExit:
		s.countInstr(ins, active)
		s.execExit(c)
	case ins.Op == isa.OpBar:
		s.countInstr(ins, active)
		err = s.execBar(c)
	case ins.Op == isa.OpBra:
		s.countInstr(ins, active)
		err = s.execBranch(c)
	case ins.Op.IsMemory():
		s.countInstr(ins, active)
		err = s.execMem(c)
	default:
		s.countInstr(ins, active)
		s.units.issue(ins.Op.Unit(), c.lane, s.now)
		s.execALU(c)
	}
	s.refreshWarp(w)
	return err
}

//sbwi:hotpath
func (s *SM) countInstr(ins *isa.Instruction, active int) {
	s.stats.ThreadInstrs += uint64(active)
	s.stats.UnitThreadInstrs[ins.Op.Unit()] += uint64(active)
}

// markIssued stamps the split's issue guard.
//
//sbwi:hotpath
func (s *SM) markIssued(w *warp, slot int) {
	if w.heap != nil {
		if c := w.heap.Slot(slot); c != nil {
			c.LastIssue = s.now
		}
		return
	}
	w.lastIssue = s.now
}

// advance moves the candidate's split to nextPC.
//
//sbwi:hotpath
func (s *SM) advance(c *candidate, nextPC int) {
	if c.w.heap != nil {
		s.mutateHeap(c.w, func() { c.w.heap.Advance(c.slot, nextPC, s.now) }) //sbwi:alloc-ok non-escaping argument to mutateHeap
		return
	}
	if nextPC == c.pc+1 {
		c.w.stack.Advance()
	} else {
		c.w.stack.Jump(nextPC)
	}
}

// execALU evaluates a MAD- or SFU-class instruction for the active
// threads and schedules its writeback. A replayed run skips the
// per-lane evaluation — ALU results only feed later branch outcomes
// and addresses, which the trace already holds — and keeps the
// identical scoreboard and control bookkeeping.
//
//sbwi:hotpath
func (s *SM) execALU(c *candidate) {
	w, ins := c.w, c.ins
	if s.rp == nil {
		for m := c.mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			w.regs[t][ins.Dst] = exec.EvalALU(ins, &w.regs[t], &w.envs[t])
		}
	}
	s.sb.Issue(w.id, ins, c.slot, c.mask, s.now+s.cfg.ExecLatency)
	s.advance(c, c.pc+1)
}

// gtidBase returns the warp's first global thread id — the index space
// of the trace-replay streams.
//
//sbwi:hotpath
func (s *SM) gtidBase(w *warp) int {
	return w.block.cta*s.launch.BlockDim + w.base
}

// replayDesync builds the error for a replayed execution that asked
// for more stream entries than the recording holds.
func (s *SM) replayDesync(pc, tid int) error {
	return fmt.Errorf("sm: %s: pc %d: replay stream exhausted for thread %d — execution diverged from the recording (configuration outside the trace's validity domain)",
		s.prog.Name, pc, tid)
}

// execBranch resolves a branch; a divergent outcome is the cycle's
// single warp-split creation event. Conditional outcomes come from the
// per-lane predicate evaluation, or — replaying — from the recorded
// per-thread outcome stream; recording logs each evaluated outcome.
//
//sbwi:hotpath
func (s *SM) execBranch(c *candidate) error {
	w, ins := c.w, c.ins
	if ins.SrcA == isa.RegNone {
		s.advance(c, ins.Target)
		return nil
	}
	var taken uint64
	if s.rp != nil {
		base := s.gtidBase(w)
		for m := c.mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			bit, ok := s.rp.Branch(base + t)
			if !ok {
				return s.replayDesync(c.pc, base+t)
			}
			if bit {
				taken |= 1 << uint(t)
			}
		}
	} else {
		for m := c.mask; m != 0; m &= m - 1 {
			t := bits.TrailingZeros64(m)
			if exec.BranchTaken(ins, &w.regs[t]) {
				taken |= 1 << uint(t)
			}
		}
		if s.rec != nil {
			base := s.gtidBase(w)
			for m := c.mask; m != 0; m &= m - 1 {
				t := bits.TrailingZeros64(m)
				s.rec.Branch(base+t, taken>>uint(t)&1 == 1)
			}
		}
	}
	switch {
	case taken == c.mask:
		s.advance(c, ins.Target)
	case taken == 0:
		s.advance(c, c.pc+1)
	default:
		s.stats.Divergences++
		if w.heap != nil {
			s.mutateHeap(w, func() { w.heap.Diverge(c.pc, ins.Target, c.pc+1, taken, s.now) }) //sbwi:alloc-ok non-escaping argument to mutateHeap
		} else {
			w.stack.Diverge(c.pc, ins.Target, ins.RecPC, taken)
		}
	}
	return nil
}

// execSync applies the selective synchronization barrier (§3.3).
//
//sbwi:hotpath
func (s *SM) execSync(c *candidate) {
	w := c.w
	if w.heap != nil && s.cfg.Constraints && w.heap.SyncBlockedAt(c.slot, c.ins.Target) {
		s.stats.SyncWaits++
		w.heap.Wait(c.slot, c.ins.Target)
		return
	}
	s.advance(c, c.pc+1)
}

// execExit retires the split's threads.
//
//sbwi:hotpath
func (s *SM) execExit(c *candidate) {
	if c.w.heap != nil {
		s.mutateHeap(c.w, func() { c.w.heap.Exit(c.slot, s.now) }) //sbwi:alloc-ok non-escaping argument to mutateHeap
		return
	}
	c.w.stack.Exit(c.mask)
}

// execBar handles the block barrier: a full-warp split joins the block
// rendezvous; a partial split parks until reconvergence completes it
// (only possible under the heap model — the stack guarantees
// reconvergence before the barrier for structured code).
//
//sbwi:hotpath
func (s *SM) execBar(c *candidate) error {
	w := c.w
	s.stats.BarrierWaits++
	if w.heap != nil {
		if c.mask == w.heap.Alive() {
			w.atBarrier = true
			w.block.arrived++
			return nil
		}
		w.heap.Park(c.slot) // masks unchanged: no scoreboard transition
		return nil
	}
	if alive := w.stack.Alive(); c.mask != alive {
		return fmt.Errorf("sm: %s: pc %d: divergent barrier (mask %#x, alive %#x)", //sbwi:alloc-ok cold path: a divergent barrier aborts the run
			s.prog.Name, c.pc, c.mask, alive)
	}
	w.atBarrier = true
	w.block.arrived++
	return nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
