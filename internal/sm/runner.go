package sm

import (
	"context"

	"repro/internal/exec"
)

// Runner exposes a single SM's simulation as an incrementally steppable
// process, so the device layer can interleave several SMs against one
// shared memory-system clock: the driver repeatedly steps the SM whose
// local clock maps to the earliest device time, and each Step's memory
// traffic enters the shared L2/NoC (through RunOpts.Lower) at exactly
// that moment. A Runner is not safe for concurrent use; the device's
// interleaver drives every Runner of a launch from one goroutine, which
// is what makes the shared access order — and therefore all contention
// counters — a pure function of the configuration.
type Runner struct {
	s    *SM
	max  int64
	done bool
}

// NewRunner builds a steppable SM over the CTA sub-range
// [ctaStart, ctaEnd), validating the configuration and launch exactly
// like RunRangeOpts.
func NewRunner(cfg Config, l *exec.Launch, ctaStart, ctaEnd int, opts RunOpts) (*Runner, error) {
	s, err := newSM(cfg, l, ctaStart, ctaEnd, opts)
	if err != nil {
		return nil, err
	}
	max := cfg.MaxCycles
	if max <= 0 {
		max = defaultMaxCycles
	}
	return &Runner{s: s, max: max}, nil
}

// Now returns the SM's local clock. During idle spans the fast-forward
// inside Step advances it without emitting memory traffic, so the
// device-time of the *next* possible access never precedes offset+Now().
//
//sbwi:hotpath
func (r *Runner) Now() int64 { return r.s.now }

// Done reports whether the sub-range has completed.
func (r *Runner) Done() bool { return r.done }

// Step advances the simulation by one front-end iteration (one
// scheduling cycle plus any idle fast-forward). It reports completion;
// further Steps after completion are no-ops.
//
//sbwi:hotpath
func (r *Runner) Step() (bool, error) {
	if r.done {
		return true, nil
	}
	done, err := r.s.step(r.max)
	if err != nil {
		return false, err
	}
	if done {
		if err := r.s.finishReplay(); err != nil {
			return false, err
		}
	}
	r.done = done
	return done, nil
}

// Result finalizes and returns the run statistics. Call once, after
// Done.
func (r *Runner) Result() *Result { return r.s.result() }

// Diagnose converts an externally observed context abort into the same
// typed error a self-running SM produces: the interleaving driver
// (device memsys) polls the context between Steps, and on abort calls
// Diagnose so a watchdog cancellation still yields a TimeoutError with
// this SM's partial-state snapshot instead of a bare context error.
func (r *Runner) Diagnose(ctx context.Context) error { return r.s.abortErr(ctx) }
