package sm

import (
	"fmt"

	"repro/internal/mem"
)

// Stats aggregates one simulation run.
type Stats struct {
	Cycles int64

	// ThreadInstrs counts committed per-thread instructions, excluding
	// the thread-frontier SYNC markers and NOPs so IPC is comparable
	// between the baseline binary and the SYNC-instrumented binary.
	ThreadInstrs uint64

	// SyncThreadInstrs counts the per-thread SYNC executions excluded
	// from ThreadInstrs.
	SyncThreadInstrs uint64

	// IssueSlots counts scheduler issues (warp instructions, including
	// SYNCs); the §5.1 constraints experiment reports its reduction.
	IssueSlots uint64

	PrimaryIssues   uint64
	SecondaryIssues uint64

	// Secondary-issue provenance: a second warp-split of the same warp
	// (SBI), another warp (SWI), or the next sequential instruction of
	// the primary split (dual-issue to a distinct unit group).
	SBIPairs uint64
	SWIPairs uint64
	SeqPairs uint64

	// UnitThreadInstrs breaks ThreadInstrs down by unit class
	// (indexed by isa.Unit).
	UnitThreadInstrs [4]uint64

	// SyncWaits counts SYNC executions that suspended a split
	// (constraints enabled and another split inside [PCdiv, PCrec)).
	SyncWaits uint64

	// MemSplits counts DWS-style memory-divergence warp splits.
	MemSplits uint64

	// Divergences / Merges / MaxSplits aggregate reconvergence activity.
	Divergences   uint64
	Merges        uint64
	MaxSplits     int
	MaxStackDepth int

	DegradedInserts uint64
	CCTOverflows    uint64

	ScoreboardChecks uint64
	ScoreboardStalls uint64
	StructuralStalls uint64

	// Transactions counts LSU memory transactions; Replays the
	// transactions beyond one per wave (intra-warp memory divergence).
	Transactions uint64
	Replays      uint64

	BarrierWaits uint64
	BlocksRun    int

	Mem mem.Stats
}

// Merge folds another run's statistics into s. Counters add; peak
// trackers (MaxSplits, MaxStackDepth, and the memory system's peaks)
// take the maximum. Cycles add too: the merged value is the aggregate
// SM-busy cycle count across the merged runs, not device wall-clock
// (Result.SMCycles and DeviceCycles model that). Merging is commutative
// and associative over these fields, so a device merging per-wave
// statistics in wave order produces identical totals for any SM or
// worker count.
func (s *Stats) Merge(o *Stats) {
	s.Cycles += o.Cycles
	s.ThreadInstrs += o.ThreadInstrs
	s.SyncThreadInstrs += o.SyncThreadInstrs
	s.IssueSlots += o.IssueSlots
	s.PrimaryIssues += o.PrimaryIssues
	s.SecondaryIssues += o.SecondaryIssues
	s.SBIPairs += o.SBIPairs
	s.SWIPairs += o.SWIPairs
	s.SeqPairs += o.SeqPairs
	for i := range s.UnitThreadInstrs {
		s.UnitThreadInstrs[i] += o.UnitThreadInstrs[i]
	}
	s.SyncWaits += o.SyncWaits
	s.MemSplits += o.MemSplits
	s.Divergences += o.Divergences
	s.Merges += o.Merges
	if o.MaxSplits > s.MaxSplits {
		s.MaxSplits = o.MaxSplits
	}
	if o.MaxStackDepth > s.MaxStackDepth {
		s.MaxStackDepth = o.MaxStackDepth
	}
	s.DegradedInserts += o.DegradedInserts
	s.CCTOverflows += o.CCTOverflows
	s.ScoreboardChecks += o.ScoreboardChecks
	s.ScoreboardStalls += o.ScoreboardStalls
	s.StructuralStalls += o.StructuralStalls
	s.Transactions += o.Transactions
	s.Replays += o.Replays
	s.BarrierWaits += o.BarrierWaits
	s.BlocksRun += o.BlocksRun
	s.Mem.Merge(&o.Mem)
}

// IPC returns committed thread instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ThreadInstrs) / float64(s.Cycles)
}

// IssueIPC returns warp-instruction issues per cycle (front-end load).
func (s *Stats) IssueIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.IssueSlots) / float64(s.Cycles)
}

// SecondaryShare returns the fraction of issues that came from the
// secondary slot.
func (s *Stats) SecondaryShare() float64 {
	if s.IssueSlots == 0 {
		return 0
	}
	return float64(s.SecondaryIssues) / float64(s.IssueSlots)
}

func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d ipc=%.2f issues=%d (sec %.0f%%: sbi=%d swi=%d seq=%d) div=%d merge=%d",
		s.Cycles, s.IPC(), s.IssueSlots, 100*s.SecondaryShare(), s.SBIPairs, s.SWIPairs, s.SeqPairs,
		s.Divergences, s.Merges)
}
