package sm

// This file holds the incrementally maintained scheduler state and the
// idle-cycle fast-forward. Together they replace the seed's per-cycle
// full rescan of every warp context with event-driven bookkeeping:
//
//   - readySet / slotOf cache, per warp, whether the front-end's
//     pre-scoreboard checks pass (resident, not at a barrier, primary
//     slot exists and is not suspended) and which hot slot the primary
//     front-end follows. The cache is refreshed at exactly the events
//     that can change it — an issue on the warp (heap mutation, barrier
//     arrival, thread exit), a barrier release, a block launch or
//     retire — so per-cycle scheduling walks only live candidates.
//   - fastForward advances s.now across spans in which no candidate can
//     issue. During such a span every scheduler-visible input is frozen
//     (issues are the only events, and none happen), so the wake-up
//     cycle is computable in closed form from the scoreboard writeback
//     times and the unit free times, and the scoreboard counters the
//     skipped probes would have incremented are reproduced arithmetically.
//
// Both layers are cycle- and statistics-exact with the seed's rescan
// loop by construction: they probe the same candidates in the same
// ascending-warp order, so scoreboard counters and tie-breaking draws
// are identical. (The retained reference loop that used to pin this
// equivalence in-tree was retired once its history was established;
// the golden-stats fixture still pins absolute results.)

import (
	"math"
	"math/bits"
)

// warpBits is a bitset over the SM's warp contexts, iterated in
// ascending warp order — the order the reference rescan visits warps,
// which oldest-first selection and tie-breaking depend on.
type warpBits []uint64

func newWarpBits(n int) warpBits { return make(warpBits, (n+63)/64) }

func (b warpBits) set(i int)   { b[i>>6] |= 1 << uint(i&63) }
func (b warpBits) clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// refreshWarp recomputes the cached schedulability of one warp after an
// event that may have changed it. The invariant maintained: a warp's
// readySet bit is set if and only if the reference scheduler's
// pre-scoreboard checks would pass for it this cycle, and slotOf holds
// its primary front-end slot. Everything the checks read — block
// residency, barrier state, the warp's own heap or stack — is local to
// the warp, so refreshing on the warp's own events suffices.
//
//sbwi:hotpath
func (s *SM) refreshWarp(w *warp) {
	if w.block != nil && !w.deadCounted && w.done() {
		// First observation of the warp's completion: fold it into the
		// block's live counter for the O(blocks) retire/barrier sweeps.
		w.deadCounted = true
		w.block.live--
	}
	slot := 0
	ok := false
	if w.block != nil && !w.atBarrier {
		if w.heap != nil {
			if !w.heap.Done() {
				slot = s.primarySlot(w)
				ok = w.heap.Eligible(slot)
			}
		} else if _, _, live := w.stack.Active(); live {
			ok = true
		}
	}
	s.slotOf[w.id] = int8(slot)
	if ok {
		s.readySet.set(w.id)
	} else {
		s.readySet.clear(w.id)
	}
}

// idleCand summarizes one schedulable (warp, slot) candidate during an
// idle span. With all scheduler inputs frozen, each per-cycle probe's
// outcome is a step function of the cycle t:
//
//	t <  hazT:            the scoreboard reports a data-hazard stall
//	hazT <= t < structT:  the entry table is structurally full (counted
//	                      as both a stall and a structural stall)
//	t >= stallT:          the scoreboard is clear; only the target
//	                      unit's busy time holds the candidate back
//
// where stallT = max(hazT, structT) and wake folds in the unit.
type idleCand struct {
	hazT    int64
	structT int64
	stallT  int64
	wake    int64
	residue int64 // substitute-probe residue mod numSets; -1 when none
}

// negInf is a sentinel "always in the past" threshold, kept far from
// the int64 edge so adding IssueDelay cannot overflow.
const negInf = math.MinInt64 / 4

// fastForward is called after a cycle that issued nothing. It computes
// the earliest cycle at which any candidate can issue, accounts the
// scoreboard counters the skipped per-cycle probes would have
// incremented, and jumps s.now there. When nothing can ever wake
// (no schedulable candidate exists and no issue will create one), it
// reproduces the reference loop's livelock abort at the cycle limit.
//
//sbwi:hotpath
func (s *SM) fastForward(maxCycles int64) error {
	d := s.cfg.IssueDelay
	qf := s.now - d - 1 // scoreboard entries written back by qf are dead for the whole span
	swi := s.cfg.Arch == ArchSWI || s.cfg.Arch == ArchSBISWI
	numSets := int64(1)
	if swi {
		numSets = int64(s.lookup.NumSets())
	}

	cands := s.idleBuf[:0]
	wake := int64(math.MaxInt64)
	for base, word := range s.readySet {
		for ; word != 0; word &= word - 1 {
			id := base<<6 | bits.TrailingZeros64(word)
			w := s.warps[id]
			slot := int(s.slotOf[id])
			var pc int
			var mask uint64
			if w.heap != nil {
				c := w.heap.Slot(slot)
				pc, mask = c.PC, c.Mask
			} else {
				pc, mask, _ = w.stack.Active()
			}
			ins := s.prog.At(pc)
			hazWB, hasHaz, structWB, hasStruct := s.sb.Horizon(w.id, ins, s.srcsOf[pc], slot, mask, qf)

			hazT := int64(negInf)
			if hasHaz {
				hazT = hazWB + d
			}
			structT := hazT // empty structural window by default
			if hasStruct {
				structT = structWB + d
			}
			stallT := hazT
			if structT > stallT {
				stallT = structT
			}
			wakeC := stallT
			if u := s.units.freeAt(ins.Op.Unit()); u > wakeC {
				wakeC = u
			}
			if wakeC < s.now {
				wakeC = s.now
			}
			residue := int64(-1)
			if swi {
				residue = int64(s.memberOf[id])
			}
			cands = append(cands, idleCand{hazT: hazT, structT: structT, stallT: stallT, wake: wakeC, residue: residue}) //sbwi:alloc-ok fills s.idleBuf scratch; cap reaches steady state after warm-up
			if wakeC < wake {
				wake = wakeC
			}
		}
	}
	s.idleBuf = cands

	// The reference loop would burn idle cycles one at a time until the
	// wake-up — or until the cycle limit trips with s.now just past it.
	if wake > maxCycles+1 {
		wake = maxCycles + 1
	}
	if wake <= s.now {
		return nil
	}
	s.accountIdle(cands, s.now, wake-1, numSets)
	s.now = wake
	if s.now > maxCycles {
		return s.livelockErr(maxCycles)
	}
	return nil
}

// accountIdle reproduces, arithmetically, the scoreboard counters the
// reference loop would have incremented over the idle cycles [a, b]:
// each cycle the primary scheduler probes every schedulable candidate
// once, and — on the SWI architectures, with no primary found — the
// substitute secondary probes the candidates of buddy set (cycle mod
// numSets) a second time.
//
//sbwi:hotpath
func (s *SM) accountIdle(cands []idleCand, a, b int64, numSets int64) {
	st := &s.sb.Stats
	for i := range cands {
		c := &cands[i]
		stallHi := min(b, c.stallT-1)
		structLo := max(a, c.hazT)
		structHi := min(b, c.structT-1)

		st.Checks += count(a, b)
		st.Stalls += count(a, stallHi)
		st.Structural += count(structLo, structHi)

		if c.residue >= 0 {
			st.Checks += countResidue(a, b, c.residue, numSets)
			st.Stalls += countResidue(a, stallHi, c.residue, numSets)
			st.Structural += countResidue(structLo, structHi, c.residue, numSets)
		}
	}
}

// count returns the number of integers in [lo, hi] (0 when empty).
//
//sbwi:hotpath
func count(lo, hi int64) uint64 {
	if hi < lo {
		return 0
	}
	return uint64(hi - lo + 1)
}

// countResidue returns the number of integers t in [lo, hi] with
// t mod m == r (lo >= 0, 0 <= r < m).
//
//sbwi:hotpath
func countResidue(lo, hi, r, m int64) uint64 {
	if hi < lo {
		return 0
	}
	if m == 1 {
		return uint64(hi - lo + 1)
	}
	first := lo + (r-lo%m+m)%m
	if first > hi {
		return 0
	}
	return uint64((hi-first)/m + 1)
}
