package sm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/progen"
	"repro/internal/replay"
	"repro/internal/sched"
)

// recordTrace runs one full simulation of the launch builder's kernel
// under cfg while recording, and returns the finalized trace with the
// recording run's statistics.
func recordTrace(t *testing.T, cfg Config, mk func() *exec.Launch) (*replay.Trace, Stats) {
	t.Helper()
	l := mk()
	rec := replay.NewRecorder(l.GridDim, l.BlockDim)
	res, err := RunRangeOpts(context.Background(), cfg, l, 0, l.GridDim, RunOpts{Record: rec.Sink()})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Finalize(), res.Stats
}

// replayTrace re-times the launch from tr under cfg.
func replayTrace(t *testing.T, cfg Config, mk func() *exec.Launch, tr *replay.Trace) Stats {
	t.Helper()
	l := mk()
	s, err := replay.NewSession(tr, 0, l.GridDim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRangeOpts(context.Background(), cfg, l, 0, l.GridDim, RunOpts{Replay: s})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

// timingMutations enumerates in-domain configuration changes: every
// one re-times the kernel without touching what threads compute.
func timingMutations(arch Arch) []struct {
	name string
	mut  func(*Config)
} {
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"exec-latency-1", func(c *Config) { c.ExecLatency = 1 }},
		{"exec-latency-32", func(c *Config) { c.ExecLatency = 32 }},
		{"shared-latency-9", func(c *Config) { c.SharedLatency = 9 }},
		{"issue-delay", func(c *Config) { c.IssueDelay += 2 }},
		{"scoreboard-2", func(c *Config) { c.ScoreboardEntries = 2 }},
		{"sfu-lsu-narrow", func(c *Config) { c.SFUWidth, c.LSUWidth = 2, 8 }},
		{"mem-latency", func(c *Config) { c.Mem.MemLatency = 700; c.Mem.BytesPerCycle = 2 }},
		{"l1-tiny", func(c *Config) { c.Mem.L1Bytes = 4096; c.Mem.L1Ways = 2 }},
		{"seed", func(c *Config) { c.Seed = 0xDEADBEEF }},
	}
	if arch != ArchBaseline {
		muts = append(muts, struct {
			name string
			mut  func(*Config)
		}{"mem-split", func(c *Config) { c.SplitOnMemDivergence = true }})
	}
	return muts
}

// TestReplayMatchesFullSimulation records each test kernel once per
// architecture and asserts that replaying the trace under mutated
// timing configurations produces statistics bit-identical to full
// simulations of those configurations.
func TestReplayMatchesFullSimulation(t *testing.T) {
	kernelsUnderTest := []struct {
		name, src string
		params    []uint32
		words     int
	}{
		{"divergent-loop", benchmarkLoopSrc, []uint32{0}, 4 * 256},
		{"mem-idle", benchmarkMemSrc, []uint32{0, 4 * 256 * 4}, 4*256 + 65536},
	}
	for _, k := range kernelsUnderTest {
		for _, a := range []Arch{ArchBaseline, ArchSBISWI} {
			k, a := k, a
			t.Run(k.name+"/"+a.String(), func(t *testing.T) {
				t.Parallel()
				base := Configure(a)
				p := assembleFor(t, k.name, k.src, a)
				mk := func() *exec.Launch { return newLaunch(p, 4, 256, k.words, k.params...) }

				tr, recStats := recordTrace(t, base, mk)
				if !tr.Replayable {
					t.Fatalf("race-free kernel recorded as non-replayable: %s", tr.Reason)
				}
				if got := replayTrace(t, base, mk, tr); got != recStats {
					t.Fatalf("same-config replay diverged\nreplay: %+v\nfull:   %+v", got, recStats)
				}
				for _, m := range timingMutations(a) {
					cfg := Configure(a)
					m.mut(&cfg)
					full := mk()
					res, err := RunRangeOpts(context.Background(), cfg, full, 0, full.GridDim, RunOpts{})
					if err != nil {
						t.Fatalf("%s: %v", m.name, err)
					}
					if got := replayTrace(t, cfg, mk, tr); got != res.Stats {
						t.Errorf("%s: replay diverged from full simulation\nreplay: %+v\nfull:   %+v",
							m.name, got, res.Stats)
					}
				}
			})
		}
	}
}

// TestReplayLeavesMemoryUntouched pins the central replay property: a
// replayed run never reads or writes the global image.
func TestReplayLeavesMemoryUntouched(t *testing.T) {
	cfg := Configure(ArchSBISWI)
	p := assembleFor(t, "divergent-loop", benchmarkLoopSrc, ArchSBISWI)
	mk := func() *exec.Launch { return newLaunch(p, 4, 256, 4*256, 0) }
	tr, _ := recordTrace(t, cfg, mk)

	l := mk()
	for i := range l.Global {
		l.Global[i] = 0xAB
	}
	s, err := replay.NewSession(tr, 0, l.GridDim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRangeOpts(context.Background(), cfg, l, 0, l.GridDim, RunOpts{Replay: s}); err != nil {
		t.Fatal(err)
	}
	for i, b := range l.Global {
		if b != 0xAB {
			t.Fatalf("replay wrote global memory at byte %d", i)
		}
	}
}

// racyReduceSrc makes every thread store a thread-varying value to one
// shared global word: classic unordered write sharing, so the trace
// must be rejected by the race analysis.
const racyReduceSrc = `
	mov  r1, %tid
	mov  r2, %p0
	st.g [r2], r1
	exit
`

func TestRecordFlagsRacyKernel(t *testing.T) {
	cfg := Configure(ArchSBISWI)
	p := assembleFor(t, "racy-reduce", racyReduceSrc, ArchSBISWI)
	mk := func() *exec.Launch { return newLaunch(p, 2, 64, 16, 0) }
	tr, _ := recordTrace(t, cfg, mk)
	if tr.Replayable {
		t.Fatal("racy kernel recorded as replayable")
	}
	if !strings.Contains(tr.Reason, "written") {
		t.Fatalf("unhelpful race reason: %q", tr.Reason)
	}
	if _, err := replay.NewSession(tr, 0, 2); err == nil {
		t.Fatal("session over the racy trace accepted")
	}
}

// TestReplayDesyncIsLoud replays a trace against a different kernel:
// the stream cursors must detect the divergence and fail, never return
// statistics silently computed from the wrong table.
func TestReplayDesyncIsLoud(t *testing.T) {
	cfg := Configure(ArchSBISWI)
	pRec := assembleFor(t, "mem-idle", benchmarkMemSrc, ArchSBISWI)
	mkRec := func() *exec.Launch { return newLaunch(pRec, 4, 256, 4*256+65536, 0, 4*256*4) }
	tr, _ := recordTrace(t, cfg, mkRec)

	pOther := assembleFor(t, "divergent-loop", benchmarkLoopSrc, ArchSBISWI)
	l := newLaunch(pOther, 4, 256, 4*256, 0)
	s, err := replay.NewSession(tr, 0, l.GridDim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRangeOpts(context.Background(), cfg, l, 0, l.GridDim, RunOpts{Replay: s}); err == nil {
		t.Fatal("replaying the wrong kernel's trace succeeded silently")
	}
}

func TestRunOptsValidation(t *testing.T) {
	cfg := Configure(ArchSBISWI)
	p := assembleFor(t, "divergent-loop", benchmarkLoopSrc, ArchSBISWI)
	l := newLaunch(p, 4, 256, 4*256, 0)

	rec := replay.NewRecorder(4, 256)
	tr, _ := recordTrace(t, cfg, func() *exec.Launch { return newLaunch(p, 4, 256, 4*256, 0) })
	s, err := replay.NewSession(tr, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRangeOpts(context.Background(), cfg, l, 0, 4, RunOpts{Record: rec.Sink(), Replay: s}); err == nil {
		t.Fatal("recording and replaying at once accepted")
	}
	wrong := replay.NewRecorder(8, 128)
	if _, err := RunRangeOpts(context.Background(), cfg, l, 0, 4, RunOpts{Record: wrong.Sink()}); err == nil {
		t.Fatal("recorder with wrong geometry accepted")
	}
	if _, err := RunRangeOpts(context.Background(), cfg, l, 0, 2, RunOpts{Replay: s}); err == nil {
		t.Fatal("session over the wrong CTA range accepted")
	}
}

// TestReplayFuzz is the property test over random structured kernels:
// for each generated program and each architecture, record once, then
// assert replay under random in-domain timing mutations reproduces the
// full simulation's statistics bit-for-bit. Generated programs write
// only out[gid], so every trace must pass the race analysis.
func TestReplayFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	muts := []func(*Config){
		func(c *Config) { c.ExecLatency = 3 },
		func(c *Config) { c.IssueDelay = 4; c.ScoreboardEntries = 2 },
		func(c *Config) { c.Mem.MemLatency = 41; c.Mem.HitLatency = 9 },
		func(c *Config) { c.Seed = 0x1234; c.Shuffle = sched.ShuffleXorRev },
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		gen := progen.New(seed)
		if _, err := gen.Program("fuzz", 6); err != nil {
			t.Fatal(err)
		}
		src := gen.Source()
		for _, a := range []Arch{ArchBaseline, ArchSBI, ArchSBISWI} {
			p := assembleFor(t, "fuzz", src, a)
			const grid, block = 2, 192
			mk := func() *exec.Launch {
				return &exec.Launch{Prog: p, GridDim: grid, BlockDim: block, Global: make([]byte, grid*block*4)}
			}
			base := Configure(a)
			tr, recStats := recordTrace(t, base, mk)
			if !tr.Replayable {
				t.Fatalf("seed %d on %s: generated kernel flagged racy: %s\n%s", seed, a, tr.Reason, gen.Source())
			}
			if got := replayTrace(t, base, mk, tr); got != recStats {
				t.Fatalf("seed %d on %s: same-config replay diverged\n%s", seed, a, gen.Source())
			}
			mut := muts[int(seed)%len(muts)]
			cfg := Configure(a)
			mut(&cfg)
			full := mk()
			res, err := RunRangeOpts(context.Background(), cfg, full, 0, grid, RunOpts{})
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, a, err)
			}
			if got := replayTrace(t, cfg, mk, tr); got != res.Stats {
				t.Fatalf("seed %d on %s: replay diverged from full simulation under mutation\n%s",
					seed, a, gen.Source())
			}
		}
	}
}

// TestReplayFuzzRacy mutates generated programs into racy ones (every
// thread also stores to word 0) and asserts the recorder always flags
// them — an out-of-domain kernel must never replay silently.
func TestReplayFuzzRacy(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		gen := progen.New(seed)
		if _, err := gen.Program("fuzz", 4); err != nil {
			t.Fatal(err)
		}
		// Every thread additionally stores its (thread-varying) checksum
		// to global word 0 just before exiting.
		src := strings.Replace(gen.Source(), "\texit",
			"\tmov r15, %p0\n\tst.g [r15], r13\n\texit", 1)
		p := assembleFor(t, "racy-fuzz", src, ArchSBISWI)
		cfg := Configure(ArchSBISWI)
		mk := func() *exec.Launch {
			return &exec.Launch{Prog: p, GridDim: 2, BlockDim: 192, Global: make([]byte, 2*192*4)}
		}
		tr, _ := recordTrace(t, cfg, mk)
		if tr.Replayable {
			t.Fatalf("seed %d: racy variant recorded as replayable", seed)
		}
	}
}
