package sm

import (
	"testing"

	"repro/internal/isa"
)

func testUnits(coIssue bool) *units {
	cfg := Configure(ArchSBI)
	cfg.CoIssueMAD = coIssue
	return newUnits(&cfg)
}

func TestMADRowSharing(t *testing.T) {
	u := testUnits(true)
	if !u.canIssue(isa.UnitMAD, 0x0F, 10) {
		t.Fatal("empty row must accept")
	}
	u.issue(isa.UnitMAD, 0x0F, 10)
	if !u.canIssue(isa.UnitMAD, 0xF0, 10) {
		t.Error("disjoint mask must share the row")
	}
	if u.canIssue(isa.UnitMAD, 0x18, 10) {
		t.Error("overlapping mask must be rejected")
	}
	u.issue(isa.UnitMAD, 0xF0, 10)
	if u.canIssue(isa.UnitMAD, 0xF00, 10) {
		// The single group is busy and row sharing already merged two
		// masks; a third disjoint one may still blend in this model.
		// What must never pass is an overlap:
		_ = 0
	}
	if u.canIssue(isa.UnitMAD, 0x80, 10) {
		t.Error("second co-issue overlap must be rejected")
	}
	// Next cycle the row clears.
	if !u.canIssue(isa.UnitMAD, 0xFF, 11) {
		t.Error("row must clear next cycle")
	}
}

func TestMADNoSharingWithoutCoIssue(t *testing.T) {
	u := testUnits(false)
	u.issue(isa.UnitMAD, 0x0F, 10)
	if u.canIssue(isa.UnitMAD, 0xF0, 10) {
		t.Error("without CoIssueMAD the single group must serialize")
	}
}

func TestBaselineTwoMADGroups(t *testing.T) {
	cfg := Configure(ArchBaseline)
	u := newUnits(&cfg)
	u.issue(isa.UnitMAD, 0xFFFFFFFF, 5)
	if !u.canIssue(isa.UnitMAD, 0xFFFFFFFF, 5) {
		t.Error("second MAD group must be free")
	}
	u.issue(isa.UnitMAD, 0xFFFFFFFF, 5)
	if u.canIssue(isa.UnitMAD, 1, 5) {
		t.Error("both groups busy")
	}
	if !u.canIssue(isa.UnitMAD, 1, 6) {
		t.Error("groups must free next cycle")
	}
}

func TestSFUWaves(t *testing.T) {
	u := testUnits(true)
	// Lanes 0 and 63: two 8-lane groups -> 2 cycles.
	if got := u.sfuWaves(1 | 1<<63); got != 2 {
		t.Errorf("sfuWaves = %d, want 2", got)
	}
	// All lanes of a 64-wide warp: 8 waves.
	if got := u.sfuWaves(^uint64(0)); got != 8 {
		t.Errorf("full sfuWaves = %d, want 8", got)
	}
	// Empty mask still costs one cycle.
	if got := u.sfuWaves(0); got != 1 {
		t.Errorf("empty sfuWaves = %d, want 1", got)
	}
	u.issue(isa.UnitSFU, ^uint64(0), 10)
	if u.canIssue(isa.UnitSFU, 1, 15) {
		t.Error("SFU must stay busy for 8 cycles")
	}
	if !u.canIssue(isa.UnitSFU, 1, 18) {
		t.Error("SFU must free after the waves")
	}
}

func TestLSUOccupancy(t *testing.T) {
	u := testUnits(true)
	u.issueLSU(5, 10)
	if u.canIssue(isa.UnitLSU, 1, 14) {
		t.Error("LSU busy for 5 transactions")
	}
	if !u.canIssue(isa.UnitLSU, 1, 15) {
		t.Error("LSU must free at 15")
	}
	// Zero transactions still occupy one cycle.
	u2 := testUnits(true)
	u2.issueLSU(0, 10)
	if u2.canIssue(isa.UnitLSU, 1, 10) {
		t.Error("LSU min occupancy is one cycle")
	}
}

func TestLSUWaves(t *testing.T) {
	u := testUnits(true)
	if got := u.lsuWaves(1 | 1<<63); got != 2 {
		t.Errorf("lsuWaves = %d, want 2", got)
	}
	if got := u.lsuWaves(0xFFFF); got != 1 {
		t.Errorf("lsuWaves = %d, want 1", got)
	}
}

func TestCTRLAlwaysIssues(t *testing.T) {
	u := testUnits(true)
	u.issue(isa.UnitMAD, ^uint64(0), 10)
	u.issueLSU(100, 10)
	u.issue(isa.UnitSFU, ^uint64(0), 10)
	if !u.canIssue(isa.UnitCTRL, ^uint64(0), 10) {
		t.Error("control instructions occupy no back-end unit")
	}
}

// Cycle counts must reproduce exactly across runs for every
// architecture on a divergent loop kernel (the determinism the whole
// experiment harness relies on).
func TestCycleCountReproducibility(t *testing.T) {
	src := `
	mov  r1, %tid
	and  r2, r1, 3
	mov  r3, 0
loop:
	imad r3, r3, 5, r1
	iadd r2, r2, -1
	isetp.ge r4, r2, 0
	bra  r4, loop
	shl  r5, r1, 2
	mov  r6, %p0
	iadd r6, r6, r5
	st.g [r6], r3
	exit
`
	for _, arch := range Architectures() {
		run := func() int64 {
			p := assembleFor(t, "golden", src, arch)
			l := newLaunch(p, 4, 256, 4*256, 0)
			res, err := Run(Configure(arch), l)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats.Cycles
		}
		first, second := run(), run()
		if first != second || first <= 0 {
			t.Errorf("%s: cycles %d vs %d", arch, first, second)
		}
	}
}
