// Package faultinject is the simulator's deterministic fault-injection
// plane: a seeded, reproducible schedule of induced failures at named
// sites of the device stack, for chaos-testing the hardened layers
// (panic isolation, watchdog aborts, retry, cache poisoning rules).
//
// A Plan is compiled once from a Spec — a list of Rules, each binding a
// fault Kind (panic, transient error, delay, cancellation) to a Site
// with a trigger (exact hit indices, a period, or a probability) — and
// then armed on a device with WithFaultPlan. Every instrumented site
// calls Plan.Fire on each pass; the plan decides, from nothing but the
// seed and its per-rule hit counters, whether this pass fails. Two runs
// with the same seed, spec and site visit order therefore inject the
// same faults at the same hits: a failing chaos schedule is replayable
// from its seed alone.
//
// The package is test infrastructure by design: a nil *Plan (the
// production state) never fires, and the only cost a disarmed site pays
// is one nil check. It deliberately lives outside the
// determinism-critical package set — delays sleep on the host wall
// clock and probabilities draw from per-rule seeded PRNGs, neither of
// which may ever reach modeled cycles.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Site names one instrumented point of the device stack.
type Site string

// The instrumented sites, in the order a launch meets them.
const (
	// SiteStreamDispatch fires when a stream operation leaves the FIFO
	// chain and starts executing.
	SiteStreamDispatch Site = "stream-dispatch"

	// SiteSuiteWorker fires when a suite worker picks up a batch entry.
	SiteSuiteWorker Site = "suite-worker"

	// SiteCacheFill fires inside a SimCache fill, after in-flight
	// deduplication decided this caller computes the entry.
	SiteCacheFill Site = "cache-fill"

	// SiteQueueAcquire fires before a simulation asks the run queue for
	// an admission slot.
	SiteQueueAcquire Site = "queue-acquire"

	// SiteMemAccess fires on every L1-miss/store access entering the
	// modeled NoC/L2 hierarchy. The call site cannot return an error, so
	// error-class faults at this site are raised as panics (MustFire).
	SiteMemAccess Site = "mem-access"

	// SiteWaveMerge fires before a partitioned launch's per-wave memory
	// images are merged back into the live image.
	SiteWaveMerge Site = "wave-merge"

	// SiteReplayFallback fires at the start of a trace-replay attempt,
	// exercising the loud fall-back-to-full-simulation path.
	SiteReplayFallback Site = "replay-fallback"
)

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// KindPanic raises a panic with an *Error value, exercising the
	// recover boundaries of the device layer.
	KindPanic Kind = iota + 1

	// KindError returns a transient-class *Error — the retry-eligible
	// failure class (IsTransient reports true for it).
	KindError

	// KindDelay stalls the site on the host wall clock (Rule.Delay,
	// default 1ms) and then proceeds normally. Delays must never change
	// what a simulation computes — only when — which the chaos suite
	// asserts.
	KindDelay

	// KindCancel returns an error wrapping context.Canceled, so the
	// site's failure is classified exactly like a caller cancellation.
	KindCancel
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "transient error"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Rule binds one failure mode to one site. Exactly one trigger applies,
// checked in this order: a non-empty Hits list is exhaustive (inject on
// exactly those 1-based hit indices), else a positive Every injects on
// every Every-th hit, else a positive Prob injects each hit with that
// probability from the rule's seeded PRNG. A rule with no trigger
// injects on every hit.
type Rule struct {
	Site  Site
	Kind  Kind
	Hits  []uint64
	Every uint64
	Prob  float64
	Delay time.Duration // KindDelay stall; default 1ms
}

// Spec is a fault schedule: the rule list a Plan is compiled from.
type Spec []Rule

// Error is an injected fault surfaced as (or inside) an error value.
// KindPanic faults panic with an *Error, so a recover boundary that
// converts panics to errors keeps the classification visible to
// errors.As.
type Error struct {
	Site Site
	Kind Kind
	Hit  uint64 // 1-based index of the site hit that injected
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s (hit %d)", e.Kind, e.Site, e.Hit)
}

// Transient reports whether the fault is retry-eligible; see
// IsTransient.
func (e *Error) Transient() bool { return e.Kind == KindError }

// Unwrap makes a KindCancel fault satisfy errors.Is(err,
// context.Canceled), so injected cancellations flow through the exact
// error-classification paths a real caller cancellation would.
func (e *Error) Unwrap() error {
	if e.Kind == KindCancel {
		return context.Canceled
	}
	return nil
}

// IsInjected reports whether err originated from a fault plan.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsTransient reports whether err is transient-class: a failure whose
// re-execution may legitimately succeed (the device's WithRetry policy
// retries exactly this class). The classification looks through
// wrapping — including a panic-to-error conversion whose Unwrap exposes
// the panic value — for any error implementing Transient() bool.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Plan is a compiled, armed fault schedule. All methods are safe for
// concurrent use; a nil *Plan never fires.
type Plan struct {
	seed uint64

	mu       sync.Mutex
	disarmed bool                  //sbwi:guardedby mu
	rules    map[Site][]*armedRule //sbwi:guardedby mu
}

// armedRule is one rule plus its firing state. The counters are
// mutable shared state guarded by the owning Plan's mu — a foreign
// struct's mutex //sbwi:guardedby cannot name — advanced only inside
// Fire's locked region (matches and next run under that lock).
type armedRule struct {
	Rule
	//sbwi:nolock guarded by the owning Plan's mu; advanced only under Fire's locked region
	hits uint64 // times the site was visited (1-based at match time)
	//sbwi:nolock guarded by the owning Plan's mu; advanced only under Fire's locked region
	injected uint64 // times this rule injected
	//sbwi:nolock guarded by the owning Plan's mu; stepped only by next under Fire's locked region
	rng uint64 // xorshift64 state for Prob triggers
}

// NewPlan compiles spec into an armed plan. The seed fixes every
// probabilistic trigger: per rule, the PRNG is seeded from (seed, site,
// rule index), so adding a rule never perturbs another rule's draws.
// NewPlan panics on a malformed rule (unknown kind, empty site) — a
// fault schedule is test code, and a silently dropped rule would make a
// chaos run vacuously green.
func NewPlan(seed uint64, spec Spec) *Plan {
	p := &Plan{seed: seed, rules: make(map[Site][]*armedRule)}
	for i, r := range spec {
		if r.Site == "" {
			panic(fmt.Sprintf("faultinject: rule %d has no site", i))
		}
		if r.Kind < KindPanic || r.Kind > KindCancel {
			panic(fmt.Sprintf("faultinject: rule %d for %s has invalid kind %d", i, r.Site, r.Kind))
		}
		for _, h := range r.Hits {
			if h == 0 {
				panic(fmt.Sprintf("faultinject: rule %d for %s schedules hit 0; hit indices are 1-based", i, r.Site))
			}
		}
		a := &armedRule{Rule: r, rng: ruleSeed(seed, r.Site, i)}
		p.rules[r.Site] = append(p.rules[r.Site], a)
	}
	return p
}

// ruleSeed derives a non-zero xorshift state from the plan seed, the
// site name and the rule's position in the spec.
func ruleSeed(seed uint64, site Site, index int) uint64 {
	// FNV-1a over the site name, folded with the seed and index.
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	h ^= seed + uint64(index)*0x9E3779B97F4A7C15
	if h == 0 {
		h = 0x9E3779B97F4A7C15
	}
	return h
}

// Fire visits the site: every armed rule for it advances its hit
// counter, and the first rule whose trigger matches injects its fault —
// KindPanic panics with an *Error, KindDelay sleeps and returns nil,
// KindError/KindCancel return the *Error. A nil or disarmed plan (and
// any site without matching rules) returns nil.
func (p *Plan) Fire(site Site) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.disarmed {
		p.mu.Unlock()
		return nil
	}
	var fault *Error
	var delay time.Duration
	for _, r := range p.rules[site] {
		r.hits++
		if fault == nil && r.matches() {
			r.injected++
			fault = &Error{Site: site, Kind: r.Kind, Hit: r.hits}
			delay = r.Delay
		}
	}
	p.mu.Unlock()
	if fault == nil {
		return nil
	}
	switch fault.Kind {
	case KindDelay:
		if delay <= 0 {
			delay = time.Millisecond
		}
		time.Sleep(delay)
		return nil
	case KindPanic:
		panic(fault)
	default:
		return fault
	}
}

// MustFire is Fire for sites that cannot return an error (the hot
// memory-access path): an injected error-class fault is raised as a
// panic instead, keeping its transient classification visible through
// the panic-to-error conversion at the recover boundary.
func (p *Plan) MustFire(site Site) {
	if err := p.Fire(site); err != nil {
		panic(err)
	}
}

// matches decides, under the plan lock, whether the rule injects on its
// current (already advanced) hit counter.
func (r *armedRule) matches() bool {
	switch {
	case len(r.Hits) > 0:
		for _, h := range r.Hits {
			if h == r.hits {
				return true
			}
		}
		return false
	case r.Every > 0:
		return r.hits%r.Every == 0
	case r.Prob > 0:
		return r.next() < r.Prob
	default:
		return true
	}
}

// next draws a uniform float64 in [0,1) from the rule's xorshift64
// state.
func (r *armedRule) next() float64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return float64(x>>11) / (1 << 53)
}

// Disarm stops all injection permanently: later Fire calls return nil
// without advancing counters. Chaos tests disarm the plan after the
// fault storm to prove the device is still fully usable.
func (p *Plan) Disarm() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.disarmed = true
	p.mu.Unlock()
}

// Hits returns how many times the site has been visited (the maximum
// over its rules' counters, since every rule counts every visit).
func (p *Plan) Hits(site Site) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, r := range p.rules[site] {
		if r.hits > n {
			n = r.hits
		}
	}
	return n
}

// Injected returns how many faults the plan injected at the site.
func (p *Plan) Injected(site Site) uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, r := range p.rules[site] {
		n += r.injected
	}
	return n
}

// TotalInjected returns how many faults the plan injected across all
// sites.
func (p *Plan) TotalInjected() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, rs := range p.rules {
		for _, r := range rs {
			n += r.injected
		}
	}
	return n
}

// String summarizes the plan's state per site, sorted by site name.
func (p *Plan) String() string {
	if p == nil {
		return "faultinject: no plan"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sites := make([]string, 0, len(p.rules))
	for s := range p.rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	fmt.Fprintf(&b, "faultinject: plan seed=%d", p.seed)
	if p.disarmed {
		b.WriteString(" (disarmed)")
	}
	for _, s := range sites {
		var hits, injected uint64
		for _, r := range p.rules[Site(s)] {
			if r.hits > hits {
				hits = r.hits
			}
			injected += r.injected
		}
		fmt.Fprintf(&b, "\n  %s: %d hits, %d injected", s, hits, injected)
	}
	return b.String()
}
