package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fireAll visits the site n times and returns, per hit, whether a fault
// was injected (error or panic; panics are recovered and count).
func fireAll(p *Plan, site Site, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = func() (injected bool) {
			defer func() {
				if recover() != nil {
					injected = true
				}
			}()
			return p.Fire(site) != nil
		}()
	}
	return out
}

func TestHitsTriggerIsExact(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteCacheFill, Kind: KindError, Hits: []uint64{2, 5}}})
	got := fireAll(p, SiteCacheFill, 6)
	want := []bool{false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: injected=%v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if n := p.Injected(SiteCacheFill); n != 2 {
		t.Fatalf("Injected = %d, want 2", n)
	}
	if n := p.Hits(SiteCacheFill); n != 6 {
		t.Fatalf("Hits = %d, want 6", n)
	}
}

func TestEveryTrigger(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteSuiteWorker, Kind: KindError, Every: 3}})
	got := fireAll(p, SiteSuiteWorker, 7)
	want := []bool{false, false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: injected=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestProbTriggerIsSeedDeterministic(t *testing.T) {
	spec := Spec{{Site: SiteQueueAcquire, Kind: KindError, Prob: 0.4}}
	a := fireAll(NewPlan(42, spec), SiteQueueAcquire, 200)
	b := fireAll(NewPlan(42, spec), SiteQueueAcquire, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	var hitsA int
	for _, v := range a {
		if v {
			hitsA++
		}
	}
	if hitsA == 0 || hitsA == len(a) {
		t.Fatalf("Prob=0.4 injected %d/%d times; PRNG looks broken", hitsA, len(a))
	}
	c := fireAll(NewPlan(43, spec), SiteQueueAcquire, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-hit schedule")
	}
}

func TestKindPanicPanicsWithTypedError(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteStreamDispatch, Kind: KindPanic}})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Fire did not panic for KindPanic")
		}
		fe, ok := v.(*Error)
		if !ok {
			t.Fatalf("panic value is %T, want *Error", v)
		}
		if fe.Site != SiteStreamDispatch || fe.Kind != KindPanic || fe.Hit != 1 {
			t.Fatalf("panic value = %+v", fe)
		}
	}()
	p.Fire(SiteStreamDispatch)
}

func TestKindCancelWrapsContextCanceled(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteStreamDispatch, Kind: KindCancel}})
	err := p.Fire(SiteStreamDispatch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KindCancel error %v does not wrap context.Canceled", err)
	}
	if IsTransient(err) {
		t.Fatal("a cancellation must not be transient-class")
	}
}

func TestKindDelayStallsAndSucceeds(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteMemAccess, Kind: KindDelay, Delay: 5 * time.Millisecond}})
	start := time.Now()
	if err := p.Fire(SiteMemAccess); err != nil {
		t.Fatalf("KindDelay returned error %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay fault returned after %v, want >= 5ms", d)
	}
}

func TestTransientClassification(t *testing.T) {
	fault := &Error{Site: SiteCacheFill, Kind: KindError, Hit: 3}
	if !IsTransient(fault) {
		t.Fatal("KindError must be transient")
	}
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", fault))
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient must look through wrapping")
	}
	if !IsInjected(wrapped) {
		t.Fatal("IsInjected must look through wrapping")
	}
	if IsTransient(errors.New("plain")) || IsInjected(errors.New("plain")) {
		t.Fatal("plain errors misclassified")
	}
	if IsTransient(&Error{Site: SiteCacheFill, Kind: KindPanic, Hit: 1}) {
		t.Fatal("KindPanic must not be transient")
	}
}

func TestMustFirePanicsOnError(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteMemAccess, Kind: KindError}})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("MustFire did not panic for an error-class fault")
		}
		err, ok := v.(error)
		if !ok || !IsTransient(err) {
			t.Fatalf("MustFire panic value %v (%T) lost the transient classification", v, v)
		}
	}()
	p.MustFire(SiteMemAccess)
}

func TestDisarmStopsInjection(t *testing.T) {
	p := NewPlan(1, Spec{{Site: SiteCacheFill, Kind: KindError}})
	if p.Fire(SiteCacheFill) == nil {
		t.Fatal("armed plan did not inject")
	}
	p.Disarm()
	for i := 0; i < 5; i++ {
		if err := p.Fire(SiteCacheFill); err != nil {
			t.Fatalf("disarmed plan injected: %v", err)
		}
	}
	if n := p.Injected(SiteCacheFill); n != 1 {
		t.Fatalf("Injected = %d after disarm, want 1", n)
	}
}

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if err := p.Fire(SiteCacheFill); err != nil {
		t.Fatalf("nil plan fired: %v", err)
	}
	p.MustFire(SiteMemAccess)
	p.Disarm()
	if p.Hits(SiteCacheFill) != 0 || p.Injected(SiteCacheFill) != 0 || p.TotalInjected() != 0 {
		t.Fatal("nil plan reported non-zero counters")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	p := NewPlan(1, Spec{
		{Site: SiteCacheFill, Kind: KindError, Hits: []uint64{1}},
		{Site: SiteCacheFill, Kind: KindCancel},
	})
	err := p.Fire(SiteCacheFill)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindError {
		t.Fatalf("hit 1: got %v, want the first rule's transient error", err)
	}
	err = p.Fire(SiteCacheFill)
	if !errors.As(err, &fe) || fe.Kind != KindCancel {
		t.Fatalf("hit 2: got %v, want the second rule's cancellation", err)
	}
	if got := p.TotalInjected(); got != 2 {
		t.Fatalf("TotalInjected = %d, want 2", got)
	}
}

func TestNewPlanRejectsMalformedRules(t *testing.T) {
	for name, spec := range map[string]Spec{
		"no site":      {{Kind: KindError}},
		"invalid kind": {{Site: SiteCacheFill}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewPlan did not panic", name)
				}
			}()
			NewPlan(1, spec)
		}()
	}
}
