package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// ifElse is a single structured if/then/else:
//
//	0: isetp.lt r1, r0, 5
//	1: bra r1, else        (divergent)
//	2: mov r2, 1           (then)
//	3: bra join
//	4: mov r2, 2           (else)
//	5: iadd r3, r2, 1      (join)
//	6: exit
const ifElse = `
    isetp.lt r1, r0, 5
    bra r1, else
    mov r2, 1
    bra join
else:
    mov r2, 2
join:
    iadd r3, r2, 1
    exit
`

func mustProg(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBuildBlocks(t *testing.T) {
	p := mustProg(t, ifElse)
	g, err := Build(p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Blocks: [0,2) cond; [2,4) then; [4,5) else; [5,7) join+exit.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %+v", len(g.Blocks), g.Blocks)
	}
	b0 := g.Blocks[0]
	if b0.Start != 0 || b0.End != 2 || len(b0.Succs) != 2 {
		t.Errorf("entry block: %+v", b0)
	}
	join := g.BlockOf(p.Labels["join"])
	if len(g.Blocks[join].Preds) != 2 {
		t.Errorf("join preds = %v", g.Blocks[join].Preds)
	}
	if len(g.Blocks[join].Succs) != 0 {
		t.Errorf("join should be an exit block: %+v", g.Blocks[join])
	}
}

func TestDominatorsIfElse(t *testing.T) {
	p := mustProg(t, ifElse)
	g, _ := Build(p)
	idom := g.Dominators()
	// Entry dominates everything; then/else/join all idom'd by entry.
	if idom[0] != -1 {
		t.Errorf("entry idom = %d", idom[0])
	}
	for b := 1; b < len(g.Blocks); b++ {
		if idom[b] != 0 {
			t.Errorf("block %d idom = %d, want 0", b, idom[b])
		}
	}
}

func TestPostDominatorsIfElse(t *testing.T) {
	p := mustProg(t, ifElse)
	g, _ := Build(p)
	ipdom := g.PostDominators()
	join := g.BlockOf(p.Labels["join"])
	// then and else and entry are postdominated by join.
	for _, b := range []int{0, 1, 2} {
		if ipdom[b] != join {
			t.Errorf("block %d ipdom = %d, want %d", b, ipdom[b], join)
		}
	}
	if ipdom[join] != -1 {
		t.Errorf("join ipdom = %d, want -1 (virtual exit)", ipdom[join])
	}
}

func TestAnnotateReconvergence(t *testing.T) {
	p := mustProg(t, ifElse)
	if err := AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	bra := &p.Code[1]
	if bra.RecPC != p.Labels["join"] {
		t.Errorf("RecPC = %d, want %d", bra.RecPC, p.Labels["join"])
	}
}

func TestAnnotateLoop(t *testing.T) {
	p := mustProg(t, `
    mov r0, 0
loop:
    iadd r0, r0, 1
    isetp.lt r1, r0, 10
    bra r1, loop
    exit
`)
	if err := AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	bra := &p.Code[3]
	// The loop-back branch reconverges at the loop exit (pc 4).
	if bra.RecPC != 4 {
		t.Errorf("loop RecPC = %d, want 4", bra.RecPC)
	}
}

func TestReconvergenceAtExit(t *testing.T) {
	// Divergent paths that never rejoin except by exiting.
	p := mustProg(t, `
    isetp.lt r1, r0, 5
    bra r1, other
    exit
other:
    exit
`)
	if err := AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	bra := &p.Code[1]
	if bra.RecPC != len(p.Code) {
		t.Errorf("RecPC = %d, want exit sentinel %d", bra.RecPC, len(p.Code))
	}
}

func TestInsertSyncsIfElse(t *testing.T) {
	p := mustProg(t, ifElse)
	tp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.SyncInserted {
		t.Error("SyncInserted not set")
	}
	if len(tp.Code) != len(p.Code)+1 {
		t.Fatalf("code len = %d, want %d", len(tp.Code), len(p.Code)+1)
	}
	// The sync lands at the old join PC; join label moves one down.
	joinOld := p.Labels["join"]
	sync := tp.Code[joinOld]
	if sync.Op != isa.OpSync {
		t.Fatalf("instruction at %d is %s, want sync", joinOld, sync.Op)
	}
	// PCdiv payload = the divergent branch (old pc 1; unshifted since the
	// sync is inserted after it).
	if sync.Target != 1 {
		t.Errorf("sync PCdiv = %d, want 1", sync.Target)
	}
	// The join label points at the sync: control transfers to the
	// reconvergence point must execute the barrier.
	if tp.Labels["join"] != joinOld {
		t.Errorf("join label = %d, want %d", tp.Labels["join"], joinOld)
	}
	// Branch targets remapped: "bra join" must point at the sync, not
	// past it (the sync is the reconvergence point).
	braJoin := tp.Code[3]
	if braJoin.Op != isa.OpBra || braJoin.Target != joinOld {
		t.Errorf("bra join target = %d, want %d (the sync)", braJoin.Target, joinOld)
	}
	// The original program is untouched.
	for _, ins := range p.Code {
		if ins.Op == isa.OpSync {
			t.Fatal("input program was modified")
		}
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("output invalid: %v", err)
	}
}

func TestInsertSyncsNested(t *testing.T) {
	// Two nested if/else blocks like the paper's Figure 4: A { B | C{D|E}F } G.
	p := mustProg(t, `
    isetp.lt r1, r0, 16
    bra r1, c        // A: outer divergence
    mov r2, 1        // B
    bra g
c:  isetp.lt r3, r0, 24
    bra r3, e        // C: inner divergence
    mov r2, 2        // D
    bra f
e:  mov r2, 3        // E
f:  iadd r2, r2, 10  // F: inner reconvergence
g:  iadd r4, r2, 1   // G: outer reconvergence
    exit
`)
	tp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	var syncs []isa.Instruction
	var syncPCs []int
	for pc, ins := range tp.Code {
		if ins.Op == isa.OpSync {
			syncs = append(syncs, ins)
			syncPCs = append(syncPCs, pc)
		}
	}
	if len(syncs) != 2 {
		t.Fatalf("want 2 syncs (F and G), got %d", len(syncs))
	}
	// First sync guards F: PCdiv = inner branch (bra r3, e).
	fSync := syncs[0]
	if tp.Code[fSync.Target].Op != isa.OpBra {
		t.Errorf("inner sync PCdiv %d is %s, want the inner bra", fSync.Target, tp.Code[fSync.Target].Op)
	}
	// Second sync guards G: PCdiv = outer branch.
	gSync := syncs[1]
	if tp.Code[gSync.Target].Op != isa.OpBra {
		t.Errorf("outer sync PCdiv %d is %s, want the outer bra", gSync.Target, tp.Code[gSync.Target].Op)
	}
	if !(gSync.Target < fSync.Target) {
		t.Errorf("outer PCdiv %d should be above inner PCdiv %d", gSync.Target, fSync.Target)
	}
	if !(syncPCs[0] < syncPCs[1]) {
		t.Errorf("sync order: %v", syncPCs)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("output invalid: %v", err)
	}
}

func TestInsertSyncsLoop(t *testing.T) {
	p := mustProg(t, `
    mov r0, 0
loop:
    iadd r0, r0, 1
    isetp.lt r1, r0, 10
    bra r1, loop
    exit
`)
	tp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	// Loop-back branch reconverges at the exit block; sync inserted there.
	found := false
	for _, ins := range tp.Code {
		if ins.Op == isa.OpSync {
			found = true
			if tp.Code[ins.Target].Op != isa.OpBra {
				t.Errorf("loop sync PCdiv points at %s", tp.Code[ins.Target].Op)
			}
		}
	}
	if !found {
		t.Error("no sync inserted for loop exit")
	}
	// Back-edge still points at the loop header.
	var bra *isa.Instruction
	for pc := range tp.Code {
		if tp.Code[pc].Op == isa.OpBra && tp.Code[pc].SrcA != isa.RegNone {
			bra = &tp.Code[pc]
		}
	}
	if bra == nil || tp.Code[bra.Target].Op != isa.OpIAdd {
		t.Errorf("back edge mis-remapped: %+v", bra)
	}
}

func TestValidateFrontierLayout(t *testing.T) {
	good := mustProg(t, ifElse)
	if err := AnnotateReconvergence(good); err != nil {
		t.Fatal(err)
	}
	if v := ValidateFrontierLayout(good); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}

	// Non-frontier layout: the join block is ABOVE the divergent branch
	// (reached by branching backwards), like TMD1's improper layout.
	bad := mustProg(t, `
    bra start
join:
    iadd r3, r2, 1
    exit
start:
    isetp.lt r1, r0, 5
    bra r1, else
    mov r2, 1
    bra join
else:
    mov r2, 2
    bra join
`)
	if err := AnnotateReconvergence(bad); err != nil {
		t.Fatal(err)
	}
	v := ValidateFrontierLayout(bad)
	if len(v) == 0 {
		t.Fatal("expected layout violation for backward reconvergence")
	}
	// And sync insertion must skip it rather than fail.
	tp, err := InsertSyncs(bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range tp.Code {
		if ins.Op == isa.OpSync {
			t.Error("sync inserted despite layout violation")
		}
	}
}

func TestUnconditionalBranchNoSync(t *testing.T) {
	p := mustProg(t, `
    mov r0, 1
    bra next
next:
    exit
`)
	tp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Code) != len(p.Code) {
		t.Errorf("syncs inserted for non-divergent flow")
	}
}

func TestIfWithoutElse(t *testing.T) {
	p := mustProg(t, `
    isetp.lt r1, r0, 5
    bra r1, skip
    mov r2, 1
skip:
    iadd r3, r2, 1
    exit
`)
	if err := AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	if p.Code[1].RecPC != p.Labels["skip"] {
		t.Errorf("RecPC = %d, want %d", p.Code[1].RecPC, p.Labels["skip"])
	}
	tp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	nsync := 0
	for _, ins := range tp.Code {
		if ins.Op == isa.OpSync {
			nsync++
		}
	}
	if nsync != 1 {
		t.Errorf("syncs = %d, want 1", nsync)
	}
}
