package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// The TMD-style unstructured CFG: two overlapping conditional regions
// sharing a tail block reached both from the loop header and from the
// second region's fall-through. The immediate postdominator of both
// branches is the loop tail, not the shared tail.
const unstructuredSrc = `
	mov  r1, %tid
	mov  r8, 0
	mov  r9, 0
start:
	and  r11, r1, 7
	isetp.eq r12, r11, 0
	bra  r12, t2
	shl  r13, r1, 3
	iadd r9, r9, r13
	and  r14, r9, 48
	isetp.eq r15, r14, 0
	bra  r15, t1
	xor  r9, r9, 23333
t2:
	shr  r16, r9, 9
	xor  r9, r9, r16
t1:
	iadd r8, r8, 1
	isetp.lt r17, r8, 4
	bra  r17, start
	exit
`

func assembleAnnotated(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("unstructured", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := AnnotateReconvergence(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnstructuredReconvergence(t *testing.T) {
	p := assembleAnnotated(t, unstructuredSrc)
	t1 := p.Labels["t1"]
	t2 := p.Labels["t2"]
	if t1 <= t2 {
		t.Fatalf("layout: t1=%d t2=%d", t1, t2)
	}
	// Both conditional branches must reconverge at t1 (their immediate
	// postdominator), NOT at the shared tail t2 that only some paths
	// visit.
	seen := 0
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Conditional() || pc == len(p.Code)-2 { // skip loop-back branch
			continue
		}
		if ins.Target == t2 || ins.Target == t1 {
			seen++
			if ins.RecPC != t1 {
				t.Errorf("branch at %d: RecPC = %d, want t1 = %d", pc, ins.RecPC, t1)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("found %d region branches, want 2", seen)
	}
}

func TestUnstructuredSyncPlacement(t *testing.T) {
	p := assembleAnnotated(t, unstructuredSrc)
	sp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two SYNCs: one guards the shared reconvergence point t1 (PCdiv =
	// the header branch, the last instruction of t1's immediate
	// dominator), one guards the loop exit. Every SYNC payload must be a
	// conditional branch.
	syncs := 0
	for pc := range sp.Code {
		ins := &sp.Code[pc]
		if ins.Op != isa.OpSync {
			continue
		}
		syncs++
		div := &sp.Code[ins.Target]
		if div.Op != isa.OpBra || !div.Conditional() {
			t.Errorf("sync at %d points at %d (%v), want a conditional branch", pc, ins.Target, div.Op)
		}
	}
	if syncs != 2 {
		t.Errorf("inserted %d SYNCs, want 2 (region join + loop exit)", syncs)
	}
	// Branch targets must be remapped consistently: the program still
	// validates and the label map still points at valid PCs.
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, pc := range sp.Labels {
		if pc < 0 || pc >= sp.Len() {
			t.Errorf("label %s out of range after remap: %d", name, pc)
		}
	}
}

// A branch straight to the exit has no reconvergence block before the
// program end; RecPC must be the exit sentinel.
func TestBranchToExitSentinel(t *testing.T) {
	p := assembleAnnotated(t, `
	mov  r1, %tid
	and  r2, r1, 1
	bra  r2, done
	iadd r3, r1, 1
done:
	exit
`)
	// Find the conditional branch.
	for pc := range p.Code {
		ins := &p.Code[pc]
		if ins.Conditional() {
			if ins.RecPC != p.Labels["done"] {
				t.Errorf("RecPC = %d, want %d", ins.RecPC, p.Labels["done"])
			}
		}
	}
}

// Back-to-back loops must each get their own reconvergence points and
// SYNC markers without interfering.
func TestSequentialLoops(t *testing.T) {
	p := assembleAnnotated(t, `
	mov  r1, %tid
	and  r2, r1, 3
	mov  r3, 0
l1:
	iadd r3, r3, 1
	isetp.lt r4, r3, r2
	bra  r4, l1
	mov  r5, 0
l2:
	iadd r5, r5, 2
	isetp.lt r6, r5, r2
	bra  r6, l2
	exit
`)
	sp, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	syncs := 0
	for pc := range sp.Code {
		if sp.Code[pc].Op == isa.OpSync {
			syncs++
		}
	}
	if syncs != 2 {
		t.Errorf("two loops need two SYNCs, got %d", syncs)
	}
	if v := ValidateFrontierLayout(sp); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

// InsertSyncs must be idempotent in effect: re-running it on an
// already-instrumented program cannot corrupt targets (it may add
// redundant SYNCs, but the program must stay valid).
func TestInsertSyncsTwiceStaysValid(t *testing.T) {
	p := assembleAnnotated(t, unstructuredSrc)
	s1, err := InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := InsertSyncs(s1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}
