// Package cfg builds control-flow graphs over assembled programs and
// derives the reconvergence information both execution models need:
//
//   - For the baseline stack model, every conditional branch is annotated
//     with its reconvergence PC (the start of its immediate postdominator
//     block), which the hardware stack pushes on divergence.
//   - For the thread-frontier model of Diamos et al. (used by SBI/SWI),
//     SYNC instructions are inserted at reconvergence points. Each SYNC
//     carries the divergence point PCdiv — the last instruction of the
//     immediate dominator of the reconvergence block — implementing the
//     paper's selective synchronization barrier (§3.3).
//
// The package also validates the thread-frontier code-layout property
// that every reconvergence point lies at a higher address than its
// divergence point; violations (as in the paper's TMD1 benchmark) are
// reported as warnings and the affected SYNCs are skipped.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Block is a basic block: instructions [Start, End) with CFG edges.
type Block struct {
	Start, End int
	Succs      []int // successor block indices; exit blocks have none
	Preds      []int
}

// Graph is the control-flow graph of a program. Block 0 is the entry.
type Graph struct {
	Prog    *isa.Program
	Blocks  []Block
	blockOf []int // pc -> block index
}

// BlockOf returns the index of the block containing pc.
func (g *Graph) BlockOf(pc int) int { return g.blockOf[pc] }

// Build constructs the CFG of p.
func Build(p *isa.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Code)

	// Leaders: entry, branch targets, instructions following branches and
	// exits.
	leader := make([]bool, n)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		ins := &p.Code[pc]
		switch ins.Op {
		case isa.OpBra:
			if ins.Target < n {
				leader[ins.Target] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpExit:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}

	g := &Graph{Prog: p, blockOf: make([]int, n)}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: start, End: pc})
			start = pc
		}
	}
	for bi := range g.Blocks {
		for pc := g.Blocks[bi].Start; pc < g.Blocks[bi].End; pc++ {
			g.blockOf[pc] = bi
		}
	}

	// Edges.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Code[b.End-1]
		switch {
		case last.Op == isa.OpExit:
			// no successors
		case last.Op == isa.OpBra && last.SrcA == isa.RegNone:
			g.addEdge(bi, g.blockOf[last.Target])
		case last.Op == isa.OpBra:
			g.addEdge(bi, g.blockOf[last.Target])
			if b.End < n {
				g.addEdge(bi, g.blockOf[b.End])
			}
		default:
			// Fallthrough. Validate guarantees the last instruction of the
			// program terminates, so b.End < n here.
			g.addEdge(bi, g.blockOf[b.End])
		}
	}
	return g, nil
}

func (g *Graph) addEdge(from, to int) {
	for _, s := range g.Blocks[from].Succs {
		if s == to {
			return
		}
	}
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// Dominators returns the immediate dominator of each block (-1 for the
// entry block and for blocks unreachable from the entry).
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	// dom[i] = bitset of blocks dominating i.
	dom := make([]bitset, n)
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i)
	}
	for i := range dom {
		if i == 0 {
			dom[i] = newBitset(n)
			dom[i].set(0)
		} else {
			dom[i] = full.clone()
		}
	}
	order := g.reversePostOrder()
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			var acc bitset
			first := true
			for _, p := range g.Blocks[b].Preds {
				if first {
					acc = dom[p].clone()
					first = false
				} else {
					acc.intersect(dom[p])
				}
			}
			if first {
				continue // unreachable
			}
			acc.set(b)
			if !acc.equal(dom[b]) {
				dom[b] = acc
				changed = true
			}
		}
	}
	return immediateFrom(dom, 0, g.reachableFromEntry())
}

// PostDominators returns the immediate postdominator of each block.
// A virtual exit postdominates every block that can terminate; blocks
// whose only postdominator is the virtual exit get -1.
func (g *Graph) PostDominators() []int {
	n := len(g.Blocks)
	// Work on the reverse graph with a virtual exit node at index n.
	preds := make([][]int, n+1) // preds in reverse graph = succs in forward
	for i := 0; i < n; i++ {
		if len(g.Blocks[i].Succs) == 0 {
			preds[i] = append(preds[i], n)
		} else {
			preds[i] = append(preds[i], g.Blocks[i].Succs...)
		}
	}
	pdom := make([]bitset, n+1)
	full := newBitset(n + 1)
	for i := 0; i <= n; i++ {
		full.set(i)
	}
	for i := range pdom {
		if i == n {
			pdom[i] = newBitset(n + 1)
			pdom[i].set(n)
		} else {
			pdom[i] = full.clone()
		}
	}
	// Iterate to fixpoint (order: descending PC is a decent reverse
	// topological approximation; fixpoint iteration is correct anyway).
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var acc bitset
			first := true
			for _, s := range preds[i] {
				if first {
					acc = pdom[s].clone()
					first = false
				} else {
					acc.intersect(pdom[s])
				}
			}
			if first {
				continue
			}
			acc.set(i)
			if !acc.equal(pdom[i]) {
				pdom[i] = acc
				changed = true
			}
		}
	}
	reach := make([]bool, n+1)
	for i := range reach {
		reach[i] = true
	}
	ipdom := immediateFrom(pdom, n, reach)
	res := make([]int, n)
	for i := 0; i < n; i++ {
		if ipdom[i] == n {
			res[i] = -1 // virtual exit
		} else {
			res[i] = ipdom[i]
		}
	}
	return res
}

// immediateFrom derives immediate dominators from dominator sets.
// root's idom is -1.
func immediateFrom(dom []bitset, root int, reachable []bool) []int {
	n := len(dom)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	for b := 0; b < n; b++ {
		if b == root || !reachable[b] {
			continue
		}
		// idom(b) = the dominator d != b dominated by all other
		// dominators of b (the one with the largest dominator set).
		best, bestCount := -1, -1
		for d := 0; d < n; d++ {
			if d == b || !dom[b].has(d) {
				continue
			}
			c := dom[d].count()
			if c > bestCount {
				best, bestCount = d, c
			}
		}
		idom[b] = best
	}
	return idom
}

func (g *Graph) reachableFromEntry() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func (g *Graph) reversePostOrder() []int {
	n := len(g.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	// reverse
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// AnnotateReconvergence computes, for every conditional branch, the PC of
// its reconvergence point (start of its immediate postdominator block)
// and stores it in the instruction's RecPC field. Branches whose paths
// only rejoin at thread exit get RecPC = len(code) (the exit sentinel).
func AnnotateReconvergence(p *isa.Program) error {
	g, err := Build(p)
	if err != nil {
		return err
	}
	ipdom := g.PostDominators()
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Code[b.End-1]
		if !last.Conditional() {
			continue
		}
		if ipdom[bi] < 0 {
			last.RecPC = len(p.Code)
		} else {
			last.RecPC = g.Blocks[ipdom[bi]].Start
		}
	}
	return nil
}

// LayoutViolation describes a divergence whose reconvergence point lies
// at or below it in the address order, breaking the thread-frontier
// layout property.
type LayoutViolation struct {
	BranchPC int
	RecPC    int
}

func (v LayoutViolation) String() string {
	return fmt.Sprintf("branch at pc %d reconverges at pc %d (not below it)", v.BranchPC, v.RecPC)
}

// ValidateFrontierLayout reports the conditional branches whose
// reconvergence point is not strictly below the branch. A program in
// thread-frontier order has none. RecPC annotations must be present
// (AnnotateReconvergence).
func ValidateFrontierLayout(p *isa.Program) []LayoutViolation {
	var out []LayoutViolation
	for pc := range p.Code {
		ins := &p.Code[pc]
		if !ins.Conditional() || ins.RecPC < 0 {
			continue
		}
		if ins.RecPC <= pc {
			out = append(out, LayoutViolation{BranchPC: pc, RecPC: ins.RecPC})
		}
	}
	return out
}

// InsertSyncs returns a copy of p with thread-frontier SYNC instructions
// inserted at every reconvergence point reachable from a conditional
// branch, following the paper's §3.3: the SYNC is placed at the start of
// the reconvergence block and its payload is PCdiv, the last instruction
// of the immediate dominator of the reconvergence block. Reconvergence
// points that violate the layout property (PCrec ≤ PCdiv, as in TMD1)
// are skipped, mirroring the paper's observation that improper layout
// forfeits the constraint mechanism.
//
// All branch targets, RecPC annotations and labels are remapped to the
// new addresses. The input program is not modified.
func InsertSyncs(p *isa.Program) (*isa.Program, error) {
	if err := AnnotateReconvergence(p); err != nil {
		return nil, err
	}
	g, err := Build(p)
	if err != nil {
		return nil, err
	}
	idom := g.Dominators()
	ipdom := g.PostDominators()

	// Collect reconvergence blocks: ipdom blocks of conditional-branch
	// blocks. PCdiv for block R = last instruction of idom(R).
	type syncPoint struct {
		atPC  int // old PC where the sync goes (start of reconv block)
		pcDiv int // old PC of the divergence point
	}
	syncAt := map[int]int{} // reconv block -> PCdiv
	for bi := range g.Blocks {
		last := &p.Code[g.Blocks[bi].End-1]
		if !last.Conditional() {
			continue
		}
		r := ipdom[bi]
		if r < 0 {
			continue // reconverges at exit; EXIT handles it
		}
		d := idom[r]
		if d < 0 {
			continue
		}
		pcDiv := g.Blocks[d].End - 1
		pcRec := g.Blocks[r].Start
		if pcRec <= pcDiv {
			continue // layout violation: constraint not applicable
		}
		if old, ok := syncAt[r]; !ok || pcDiv < old {
			// Multiple divergence points can share one reconvergence
			// point (unstructured flow); the immediate dominator is the
			// conservative single choice (paper §3.3), and it is unique
			// per reconvergence block, so this branch is defensive.
			syncAt[r] = pcDiv
		}
	}

	var points []syncPoint
	for r, pcDiv := range syncAt {
		points = append(points, syncPoint{atPC: g.Blocks[r].Start, pcDiv: pcDiv})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].atPC < points[j].atPC })

	// Two old→new PC maps: relocPC says where old instruction i lands;
	// targetPC says where a control transfer to old PC i should go. They
	// differ exactly at sync insertion points: the relocated instruction
	// moves below the sync, while branches to that address must execute
	// the sync (it IS the reconvergence point).
	n := len(p.Code)
	relocPC := make([]int, n+1)
	targetPC := make([]int, n+1)
	shift := 0
	pi := 0
	for pc := 0; pc <= n; pc++ {
		targetPC[pc] = pc + shift
		if pi < len(points) && points[pi].atPC == pc {
			shift++
			pi++
		}
		relocPC[pc] = pc + shift
	}

	out := &isa.Program{
		Name:         p.Name,
		SharedMem:    p.SharedMem,
		Labels:       make(map[string]int, len(p.Labels)),
		SyncInserted: true,
	}
	pi = 0
	for pc := 0; pc < n; pc++ {
		if pi < len(points) && points[pi].atPC == pc {
			out.Code = append(out.Code, isa.Instruction{
				Op:     isa.OpSync,
				Dst:    isa.RegNone,
				SrcA:   isa.RegNone,
				SrcB:   isa.RegNone,
				SrcC:   isa.RegNone,
				RecPC:  -1,
				Target: relocPC[points[pi].pcDiv],
				Line:   p.Code[pc].Line,
			})
			pi++
		}
		ins := p.Code[pc]
		if ins.Op == isa.OpBra {
			ins.Target = targetPC[ins.Target]
		}
		if ins.RecPC >= 0 {
			ins.RecPC = targetPC[ins.RecPC]
		}
		out.Code = append(out.Code, ins)
	}
	for name, pc := range p.Labels {
		out.Labels[name] = targetPC[pc]
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: sync insertion produced invalid program: %w", err)
	}
	return out, nil
}

// bitset is a simple dense bitset over block indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}
