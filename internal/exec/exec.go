// Package exec implements the architectural semantics of the mini-ISA:
// per-thread instruction evaluation, the flat global/shared memory model,
// and kernel launch descriptors shared by the functional reference
// simulator (funcsim.go) and the cycle-level SM model (internal/core).
package exec

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Launch describes one kernel launch: the program, the grid shape, the
// kernel parameters and the global memory image. Both simulators mutate
// Global in place; callers that need the initial image must copy it.
//
// When a launch is partitioned across SM instances (sm.RunRange via a
// Device), its kernel must obey the write-sharing contract documented
// in partition.go: different CTAs may only write the same global
// location if they write the same value. MergeWaves asserts this.
type Launch struct {
	Prog     *isa.Program
	GridDim  int // number of thread blocks
	BlockDim int // threads per block
	Params   [isa.NumParams]uint32
	Global   []byte
}

// Validate checks the launch shape.
func (l *Launch) Validate() error {
	if l.Prog == nil {
		return fmt.Errorf("exec: launch has no program")
	}
	if l.GridDim <= 0 || l.BlockDim <= 0 {
		return fmt.Errorf("exec: launch %q: grid %d x block %d invalid", l.Prog.Name, l.GridDim, l.BlockDim)
	}
	return nil
}

// Env carries the values of special registers for one thread.
type Env struct {
	Tid    uint32
	NTid   uint32
	Ctaid  uint32
	NCta   uint32
	Params *[isa.NumParams]uint32
}

// Special returns the value of special register s for this environment.
func (e *Env) Special(s isa.Special) uint32 {
	switch s {
	case isa.SpecTid:
		return e.Tid
	case isa.SpecNTid:
		return e.NTid
	case isa.SpecCtaid:
		return e.Ctaid
	case isa.SpecNCta:
		return e.NCta
	}
	if i, ok := s.IsParam(); ok {
		return e.Params[i]
	}
	return 0
}

// Regs is one thread's register file.
type Regs [isa.NumRegs]uint32

func (r *Regs) get(reg isa.Reg) uint32 {
	if !reg.Valid() {
		return 0
	}
	return r[reg]
}

// srcB resolves the second operand, honoring an immediate.
func srcB(ins *isa.Instruction, r *Regs) uint32 {
	if ins.HasImm {
		return ins.Imm
	}
	return r.get(ins.SrcB)
}

// MemError reports an out-of-bounds or misaligned access.
type MemError struct {
	Space string // "global" or "shared"
	Addr  uint32
	Size  int
	PC    int
}

func (e *MemError) Error() string {
	return fmt.Sprintf("exec: pc %d: %s access at %#x out of bounds (size %d) or misaligned", e.PC, e.Space, e.Addr, e.Size)
}

// Load32 reads a 4-byte little-endian word from mem.
func Load32(space string, mem []byte, addr uint32, pc int) (uint32, error) {
	if addr%4 != 0 || int(addr)+4 > len(mem) {
		return 0, &MemError{Space: space, Addr: addr, Size: len(mem), PC: pc}
	}
	return uint32(mem[addr]) | uint32(mem[addr+1])<<8 | uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24, nil
}

// Store32 writes a 4-byte little-endian word to mem.
func Store32(space string, mem []byte, addr uint32, v uint32, pc int) error {
	if addr%4 != 0 || int(addr)+4 > len(mem) {
		return &MemError{Space: space, Addr: addr, Size: len(mem), PC: pc}
	}
	mem[addr] = byte(v)
	mem[addr+1] = byte(v >> 8)
	mem[addr+2] = byte(v >> 16)
	mem[addr+3] = byte(v >> 24)
	return nil
}

// EffAddr computes the effective byte address of a memory instruction
// for one thread: SrcA + signed immediate offset.
func EffAddr(ins *isa.Instruction, r *Regs) uint32 {
	return r.get(ins.SrcA) + ins.Imm
}

// BranchTaken evaluates the predicate of a branch for one thread.
// Unconditional branches are always taken.
func BranchTaken(ins *isa.Instruction, r *Regs) bool {
	return ins.SrcA == isa.RegNone || r.get(ins.SrcA) != 0
}

// EvalALU computes the result of a MAD- or SFU-class instruction for one
// thread. It must not be called for memory or control instructions.
func EvalALU(ins *isa.Instruction, r *Regs, env *Env) uint32 {
	a := r.get(ins.SrcA)
	switch ins.Op {
	case isa.OpIAdd:
		return a + srcB(ins, r)
	case isa.OpISub:
		return a - srcB(ins, r)
	case isa.OpIMul:
		return uint32(int32(a) * int32(srcB(ins, r)))
	case isa.OpIMad:
		return uint32(int32(a)*int32(srcB(ins, r))) + r.get(ins.SrcC)
	case isa.OpIMin:
		b := srcB(ins, r)
		if int32(a) < int32(b) {
			return a
		}
		return b
	case isa.OpIMax:
		b := srcB(ins, r)
		if int32(a) > int32(b) {
			return a
		}
		return b
	case isa.OpIDiv:
		b := int32(srcB(ins, r))
		ia := int32(a)
		if b == 0 {
			return 0
		}
		if ia == math.MinInt32 && b == -1 {
			return uint32(ia)
		}
		return uint32(ia / b)
	case isa.OpIMod:
		b := int32(srcB(ins, r))
		ia := int32(a)
		if b == 0 {
			return 0
		}
		if ia == math.MinInt32 && b == -1 {
			return 0
		}
		return uint32(ia % b)
	case isa.OpAnd:
		return a & srcB(ins, r)
	case isa.OpOr:
		return a | srcB(ins, r)
	case isa.OpXor:
		return a ^ srcB(ins, r)
	case isa.OpNot:
		return ^a
	case isa.OpShl:
		return a << (srcB(ins, r) & 31)
	case isa.OpShr:
		return a >> (srcB(ins, r) & 31)
	case isa.OpSar:
		return uint32(int32(a) >> (srcB(ins, r) & 31))
	case isa.OpISetp:
		return boolVal(cmpI(ins.Cmp, int32(a), int32(srcB(ins, r))))
	case isa.OpSelp:
		if r.get(ins.SrcC) != 0 {
			return a
		}
		return srcB(ins, r)
	case isa.OpMov:
		switch {
		case ins.Spec != isa.SpecNone:
			return env.Special(ins.Spec)
		case ins.HasImm:
			return ins.Imm
		default:
			return a
		}

	case isa.OpFAdd:
		return f(ff(a) + ff(srcB(ins, r)))
	case isa.OpFSub:
		return f(ff(a) - ff(srcB(ins, r)))
	case isa.OpFMul:
		return f(ff(a) * ff(srcB(ins, r)))
	case isa.OpFMad:
		// The explicit float32 conversion forbids fusing the multiply and
		// add (Go spec), keeping results identical across platforms.
		return f(float32(ff(a)*ff(srcB(ins, r))) + ff(r.get(ins.SrcC)))
	case isa.OpFMin:
		return f(float32(math.Min(float64(ff(a)), float64(ff(srcB(ins, r))))))
	case isa.OpFMax:
		return f(float32(math.Max(float64(ff(a)), float64(ff(srcB(ins, r))))))
	case isa.OpFSetp:
		return boolVal(cmpF(ins.Cmp, ff(a), ff(srcB(ins, r))))
	case isa.OpFAbs:
		return f(float32(math.Abs(float64(ff(a)))))
	case isa.OpFNeg:
		return f(-ff(a))
	case isa.OpI2F:
		return f(float32(int32(a)))
	case isa.OpF2I:
		return uint32(truncToI32(ff(a)))

	case isa.OpRcp:
		return f(float32(1.0 / float64(ff(a))))
	case isa.OpRsq:
		return f(float32(1.0 / math.Sqrt(float64(ff(a)))))
	case isa.OpSqrt:
		return f(float32(math.Sqrt(float64(ff(a)))))
	case isa.OpSin:
		return f(float32(math.Sin(float64(ff(a)))))
	case isa.OpCos:
		return f(float32(math.Cos(float64(ff(a)))))
	case isa.OpEx2:
		return f(float32(math.Exp2(float64(ff(a)))))
	case isa.OpLg2:
		return f(float32(math.Log2(float64(ff(a)))))
	}
	panic(fmt.Sprintf("exec: EvalALU called for %s", ins.Op))
}

func ff(bits uint32) float32 { return math.Float32frombits(bits) }
func f(v float32) uint32     { return math.Float32bits(v) }

func boolVal(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func truncToI32(v float32) int32 {
	if v != v { // NaN
		return 0
	}
	if v >= math.MaxInt32 {
		return math.MaxInt32
	}
	if v <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

func cmpI(c isa.CmpOp, a, b int32) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

func cmpF(c isa.CmpOp, a, b float32) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}
