package exec

import (
	"errors"
	"reflect"
	"testing"
)

func TestPartitionWaves(t *testing.T) {
	cases := []struct {
		grid, wave int
		want       [][2]int
	}{
		{grid: 8, wave: 4, want: [][2]int{{0, 4}, {4, 8}}},
		{grid: 9, wave: 4, want: [][2]int{{0, 4}, {4, 8}, {8, 9}}},
		{grid: 3, wave: 4, want: [][2]int{{0, 3}}},
		{grid: 1, wave: 1, want: [][2]int{{0, 1}}},
		{grid: 0, wave: 4, want: nil},
		{grid: 4, wave: 0, want: nil},
	}
	for _, c := range cases {
		got := PartitionWaves(c.grid, c.wave)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PartitionWaves(%d, %d) = %v, want %v", c.grid, c.wave, got, c.want)
		}
	}
}

func TestMergeWavesDisjoint(t *testing.T) {
	base := []byte{1, 2, 3, 4}
	w0 := []byte{9, 2, 3, 4} // writes byte 0
	w1 := []byte{1, 2, 8, 4} // writes byte 2
	dst := make([]byte, 4)
	if err := MergeWaves(dst, base, [][]byte{w0, w1}); err != nil {
		t.Fatal(err)
	}
	if want := []byte{9, 2, 8, 4}; !reflect.DeepEqual(dst, want) {
		t.Errorf("merged = %v, want %v", dst, want)
	}
}

func TestMergeWavesSameValueOverlap(t *testing.T) {
	// Two waves writing the same value to the same byte is the
	// order-independent-write case (BFS frontier levels) and must merge.
	base := []byte{0, 0}
	w0 := []byte{7, 0}
	w1 := []byte{7, 5}
	dst := make([]byte, 2)
	if err := MergeWaves(dst, base, [][]byte{w0, w1}); err != nil {
		t.Fatal(err)
	}
	if want := []byte{7, 5}; !reflect.DeepEqual(dst, want) {
		t.Errorf("merged = %v, want %v", dst, want)
	}
}

func TestMergeWavesConflict(t *testing.T) {
	base := []byte{0}
	err := MergeWaves(make([]byte, 1), base, [][]byte{{3}, {4}})
	var conflict *WriteConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("err = %v, want *WriteConflict", err)
	}
	if conflict.Offset != 0 || conflict.A != 3 || conflict.B != 4 {
		t.Errorf("conflict = %+v", conflict)
	}
}

func TestMergeWavesShapeErrors(t *testing.T) {
	if err := MergeWaves(make([]byte, 1), make([]byte, 2), nil); err == nil {
		t.Error("length mismatch must error")
	}
	base := []byte{1}
	if err := MergeWaves(base, base, nil); err == nil {
		t.Error("aliased destination must error")
	}
	if err := MergeWaves(make([]byte, 1), base, [][]byte{{1, 2}}); err == nil {
		t.Error("wave length mismatch must error")
	}
}
