package exec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPartitionWaves checks the wave decomposition invariants over
// arbitrary grid shapes: waves tile [0, grid) exactly — contiguous,
// non-overlapping, each within the wave size — and degenerate inputs
// yield no waves.
func FuzzPartitionWaves(f *testing.F) {
	f.Add(10, 3)
	f.Add(1, 1)
	f.Add(0, 4)
	f.Add(7, -1)
	f.Add(4096, 4)
	f.Add(5, 100)
	f.Fuzz(func(t *testing.T, grid, waveSize int) {
		if grid > 1<<20 || waveSize > 1<<20 || grid < -1<<20 || waveSize < -1<<20 {
			t.Skip("outside the modeled grid range")
		}
		waves := PartitionWaves(grid, waveSize)
		if grid <= 0 || waveSize <= 0 {
			if waves != nil {
				t.Fatalf("PartitionWaves(%d, %d) = %v, want nil", grid, waveSize, waves)
			}
			return
		}
		next := 0
		for i, w := range waves {
			if w[0] != next {
				t.Fatalf("wave %d starts at %d, want %d (gap or overlap)", i, w[0], next)
			}
			if n := w[1] - w[0]; n <= 0 || n > waveSize {
				t.Fatalf("wave %d spans %d CTAs, want 1..%d", i, n, waveSize)
			}
			next = w[1]
		}
		if next != grid {
			t.Fatalf("waves end at %d, want %d", next, grid)
		}
	})
}

// FuzzMergeWaves drives the snapshot merge over random grid shapes and
// payloads: per-wave images writing disjoint CTA-owned ranges must
// round-trip into exactly the union of their writes, and two waves
// disagreeing on a byte must surface a WriteConflict naming it.
func FuzzMergeWaves(f *testing.F) {
	f.Add(10, 3, 4, []byte{1, 2, 3, 4, 5})
	f.Add(1, 1, 1, []byte{0})
	f.Add(9, 2, 2, []byte{0xFF, 0x00, 0x7F})
	f.Add(33, 5, 3, []byte{})
	f.Fuzz(func(t *testing.T, grid, waveSize, bytesPerCTA int, seed []byte) {
		if grid <= 0 || grid > 256 || waveSize <= 0 || waveSize > 64 ||
			bytesPerCTA <= 0 || bytesPerCTA > 16 {
			t.Skip("outside the modeled shape range")
		}
		waves := PartitionWaves(grid, waveSize)

		// Base image: a seed-derived pattern.
		base := make([]byte, grid*bytesPerCTA)
		for i := range base {
			b := byte(i * 31)
			if len(seed) > 0 {
				b ^= seed[i%len(seed)]
			}
			base[i] = b
		}

		// Each wave's image: every CTA in the wave rewrites its own byte
		// range with a CTA-derived value, guaranteed to differ from base.
		images := make([][]byte, len(waves))
		expected := append([]byte(nil), base...)
		for wi, w := range waves {
			img := append([]byte(nil), base...)
			for cta := w[0]; cta < w[1]; cta++ {
				for j := 0; j < bytesPerCTA; j++ {
					off := cta*bytesPerCTA + j
					img[off] = base[off] + 1 + byte(cta%200)
					expected[off] = img[off]
				}
			}
			images[wi] = img
		}

		dst := make([]byte, len(base))
		if err := MergeWaves(dst, base, images); err != nil {
			t.Fatalf("disjoint writes must merge cleanly: %v", err)
		}
		if !bytes.Equal(dst, expected) {
			t.Fatalf("merge round-trip mismatch:\n got %v\nwant %v", dst, expected)
		}

		// Agreement on the same byte is legal (order-independent writes):
		// a second wave writing CTA 0's first byte with the same value.
		if len(waves) >= 2 {
			images[1][0] = images[0][0]
			if err := MergeWaves(dst, base, images); err != nil {
				t.Fatalf("agreeing writes must merge cleanly: %v", err)
			}
			if dst[0] != images[0][0] {
				t.Fatalf("agreed byte = %#x, want %#x", dst[0], images[0][0])
			}

			// Disagreement must be a WriteConflict at that offset.
			images[1][0] = images[0][0] + 1
			if images[1][0] == base[0] {
				images[1][0]++ // stay an observable write
			}
			err := MergeWaves(dst, base, images)
			var conflict *WriteConflict
			if !errors.As(err, &conflict) {
				t.Fatalf("conflicting writes returned %v, want a WriteConflict", err)
			}
			if conflict.Offset != 0 {
				t.Fatalf("conflict at byte %d, want 0", conflict.Offset)
			}
		}
	})
}
