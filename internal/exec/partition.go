package exec

import "fmt"

// Grid partitioning and the global-memory write-sharing contract.
//
// A Device splits a launch's grid into waves of CTAs and simulates each
// wave on an independent SM instance, every wave starting from a
// snapshot of the same pre-launch global image. For the merged result
// to be well defined the kernel must satisfy the same contract a real
// multi-SM GPU imposes on a single kernel launch without grid-wide
// synchronization:
//
//	CTAs of one launch must not communicate through global memory.
//	Writes from different CTAs to the same location are permitted only
//	if every writer stores the same value (order-independent writes,
//	e.g. BFS frontier levels); reads that race such writes must
//	tolerate either the old or the new value.
//
// MergeWaves enforces the writable half of that contract exactly: a
// location written by two waves with different values is reported as a
// conflict instead of being silently resolved by scheduling order.

// WriteConflict reports two CTA waves writing different values to the
// same global-memory byte — a violation of the launch write-sharing
// contract above.
type WriteConflict struct {
	Offset int  // byte offset into Global
	A, B   byte // the two conflicting values
}

func (e *WriteConflict) Error() string {
	return fmt.Sprintf("exec: conflicting global writes at byte %d (%#x vs %#x): CTAs of one launch must write disjoint or identical values", e.Offset, e.A, e.B)
}

// MergeWaves folds per-wave global-memory images back into dst. base is
// the shared, unmodified pre-launch image every wave started from; each
// entry of waves is one wave's private post-run image. A byte a wave
// changed relative to base is committed to dst; two waves changing the
// same byte to different values is a WriteConflict error (several waves
// agreeing on the value is fine — the order-independent-write case).
// dst must not alias base (it may be the launch's live Global slice,
// whose content still equals base because the waves ran on copies).
func MergeWaves(dst, base []byte, waves [][]byte) error {
	if len(dst) != len(base) {
		return fmt.Errorf("exec: merge images differ in length: %d vs %d", len(dst), len(base))
	}
	if len(base) > 0 && &dst[0] == &base[0] {
		return fmt.Errorf("exec: merge destination must not alias the base image")
	}
	copy(dst, base)
	// written marks committed offsets (the committed value lives in
	// dst), so a later wave is checked against the first writer rather
	// than base.
	var written []bool
	for _, w := range waves {
		if len(w) != len(base) {
			return fmt.Errorf("exec: wave image length %d, want %d", len(w), len(base))
		}
		for i := range w {
			if w[i] == base[i] {
				continue // this wave did not (observably) write byte i
			}
			if written == nil {
				written = make([]bool, len(base))
			}
			if written[i] {
				if w[i] != dst[i] {
					return &WriteConflict{Offset: i, A: dst[i], B: w[i]}
				}
				continue
			}
			written[i] = true
			dst[i] = w[i]
		}
	}
	return nil
}

// PartitionWaves splits grid CTAs into contiguous waves of at most
// waveSize blocks: [0,w), [w,2w), ... The decomposition depends only on
// the launch and the SM configuration — never on how many SM instances
// or host workers execute it — which is what makes device results
// reproducible for any parallelism setting.
func PartitionWaves(grid, waveSize int) [][2]int {
	if grid <= 0 || waveSize <= 0 {
		return nil
	}
	waves := make([][2]int, 0, (grid+waveSize-1)/waveSize)
	for start := 0; start < grid; start += waveSize {
		end := start + waveSize
		if end > grid {
			end = grid
		}
		waves = append(waves, [2]int{start, end})
	}
	return waves
}
