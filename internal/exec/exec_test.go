package exec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func alu(t *testing.T, op isa.Opcode, a, b uint32) uint32 {
	t.Helper()
	var r Regs
	r[1], r[2] = a, b
	ins := &isa.Instruction{Op: op, Dst: 0, SrcA: 1, SrcB: 2, SrcC: isa.RegNone}
	return EvalALU(ins, &r, &Env{})
}

func TestIntALU(t *testing.T) {
	if got := alu(t, isa.OpIAdd, 3, 4); got != 7 {
		t.Errorf("iadd = %d", got)
	}
	if got := alu(t, isa.OpISub, 3, 4); int32(got) != -1 {
		t.Errorf("isub = %d", int32(got))
	}
	if got := alu(t, isa.OpIMul, uint32(0xFFFFFFFF), 3); int32(got) != -3 {
		t.Errorf("imul = %d", int32(got))
	}
	if got := alu(t, isa.OpIMin, uint32(0xFFFFFFFF), 1); int32(got) != -1 {
		t.Errorf("imin signed = %d", int32(got))
	}
	if got := alu(t, isa.OpIMax, uint32(0xFFFFFFFF), 1); got != 1 {
		t.Errorf("imax signed = %d", got)
	}
	if got := alu(t, isa.OpIDiv, 7, 2); got != 3 {
		t.Errorf("idiv = %d", got)
	}
	if got := alu(t, isa.OpIDiv, 7, 0); got != 0 {
		t.Errorf("idiv by zero = %d", got)
	}
	minI32 := uint32(0x80000000)
	if got := alu(t, isa.OpIDiv, minI32, 0xFFFFFFFF); got != minI32 {
		t.Errorf("idiv overflow = %d", got)
	}
	if got := alu(t, isa.OpIMod, 7, 3); got != 1 {
		t.Errorf("imod = %d", got)
	}
	if got := alu(t, isa.OpIMod, 7, 0); got != 0 {
		t.Errorf("imod by zero = %d", got)
	}
	if got := alu(t, isa.OpShl, 1, 35); got != 8 {
		t.Errorf("shl wraps = %d", got)
	}
	if got := alu(t, isa.OpShr, 0x80000000, 31); got != 1 {
		t.Errorf("shr = %d", got)
	}
	if got := alu(t, isa.OpSar, 0x80000000, 31); got != 0xFFFFFFFF {
		t.Errorf("sar = %#x", got)
	}
	if got := alu(t, isa.OpNot, 0, 0); got != 0xFFFFFFFF {
		t.Errorf("not = %#x", got)
	}
}

func TestIMad(t *testing.T) {
	var r Regs
	r[1], r[2], r[3] = 3, 4, 5
	ins := &isa.Instruction{Op: isa.OpIMad, Dst: 0, SrcA: 1, SrcB: 2, SrcC: 3}
	if got := EvalALU(ins, &r, &Env{}); got != 17 {
		t.Errorf("imad = %d", got)
	}
}

func TestImmediateOperand(t *testing.T) {
	var r Regs
	r[1] = 10
	ins := &isa.Instruction{Op: isa.OpIAdd, Dst: 0, SrcA: 1, SrcB: isa.RegNone, HasImm: true, Imm: 32}
	if got := EvalALU(ins, &r, &Env{}); got != 42 {
		t.Errorf("iadd imm = %d", got)
	}
}

func fbits(v float32) uint32   { return math.Float32bits(v) }
func fval(bits uint32) float32 { return math.Float32frombits(bits) }

func TestFloatALU(t *testing.T) {
	if got := fval(alu(t, isa.OpFAdd, fbits(1.5), fbits(2.25))); got != 3.75 {
		t.Errorf("fadd = %v", got)
	}
	if got := fval(alu(t, isa.OpFMul, fbits(3), fbits(-2))); got != -6 {
		t.Errorf("fmul = %v", got)
	}
	if got := fval(alu(t, isa.OpFMin, fbits(3), fbits(-2))); got != -2 {
		t.Errorf("fmin = %v", got)
	}
	if got := fval(alu(t, isa.OpFMax, fbits(3), fbits(-2))); got != 3 {
		t.Errorf("fmax = %v", got)
	}
	var r Regs
	r[1] = fbits(2)
	abs := &isa.Instruction{Op: isa.OpFAbs, Dst: 0, SrcA: 1}
	r[1] = fbits(-2.5)
	if got := fval(EvalALU(abs, &r, &Env{})); got != 2.5 {
		t.Errorf("fabs = %v", got)
	}
	neg := &isa.Instruction{Op: isa.OpFNeg, Dst: 0, SrcA: 1}
	if got := fval(EvalALU(neg, &r, &Env{})); got != 2.5 {
		t.Errorf("fneg = %v", got)
	}
}

func TestConversions(t *testing.T) {
	var r Regs
	minus7 := int32(-7)
	r[1] = uint32(minus7)
	i2f := &isa.Instruction{Op: isa.OpI2F, Dst: 0, SrcA: 1}
	if got := fval(EvalALU(i2f, &r, &Env{})); got != -7 {
		t.Errorf("i2f = %v", got)
	}
	r[1] = fbits(-3.7)
	f2i := &isa.Instruction{Op: isa.OpF2I, Dst: 0, SrcA: 1}
	if got := int32(EvalALU(f2i, &r, &Env{})); got != -3 {
		t.Errorf("f2i truncation = %d", got)
	}
	r[1] = fbits(float32(math.NaN()))
	if got := int32(EvalALU(f2i, &r, &Env{})); got != 0 {
		t.Errorf("f2i NaN = %d", got)
	}
	r[1] = fbits(float32(1e30))
	if got := int32(EvalALU(f2i, &r, &Env{})); got != math.MaxInt32 {
		t.Errorf("f2i overflow = %d", got)
	}
}

func TestSFU(t *testing.T) {
	var r Regs
	r[1] = fbits(4)
	for _, c := range []struct {
		op   isa.Opcode
		want float32
	}{
		{isa.OpRcp, 0.25},
		{isa.OpRsq, 0.5},
		{isa.OpSqrt, 2},
		{isa.OpEx2, 16},
		{isa.OpLg2, 2},
	} {
		ins := &isa.Instruction{Op: c.op, Dst: 0, SrcA: 1}
		if got := fval(EvalALU(ins, &r, &Env{})); math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("%s(4) = %v, want %v", c.op, got, c.want)
		}
	}
	r[1] = fbits(0)
	sin := &isa.Instruction{Op: isa.OpSin, Dst: 0, SrcA: 1}
	cos := &isa.Instruction{Op: isa.OpCos, Dst: 0, SrcA: 1}
	if got := fval(EvalALU(sin, &r, &Env{})); got != 0 {
		t.Errorf("sin(0) = %v", got)
	}
	if got := fval(EvalALU(cos, &r, &Env{})); got != 1 {
		t.Errorf("cos(0) = %v", got)
	}
}

func TestCompares(t *testing.T) {
	cases := []struct {
		cmp  isa.CmpOp
		a, b int32
		want uint32
	}{
		{isa.CmpEQ, 1, 1, 1}, {isa.CmpEQ, 1, 2, 0},
		{isa.CmpNE, 1, 2, 1}, {isa.CmpNE, 2, 2, 0},
		{isa.CmpLT, -1, 0, 1}, {isa.CmpLT, 0, -1, 0},
		{isa.CmpLE, 2, 2, 1}, {isa.CmpGT, 3, 2, 1}, {isa.CmpGE, 2, 3, 0},
	}
	for _, c := range cases {
		var r Regs
		r[1], r[2] = uint32(c.a), uint32(c.b)
		ins := &isa.Instruction{Op: isa.OpISetp, Cmp: c.cmp, Dst: 0, SrcA: 1, SrcB: 2}
		if got := EvalALU(ins, &r, &Env{}); got != c.want {
			t.Errorf("isetp.%s(%d,%d) = %d, want %d", c.cmp, c.a, c.b, got, c.want)
		}
	}
	var r Regs
	r[1], r[2] = fbits(1.5), fbits(2.5)
	flt := &isa.Instruction{Op: isa.OpFSetp, Cmp: isa.CmpLT, Dst: 0, SrcA: 1, SrcB: 2}
	if got := EvalALU(flt, &r, &Env{}); got != 1 {
		t.Errorf("fsetp.lt = %d", got)
	}
	// NaN compares false for everything except NE.
	r[2] = fbits(float32(math.NaN()))
	if got := EvalALU(flt, &r, &Env{}); got != 0 {
		t.Errorf("fsetp.lt NaN = %d", got)
	}
}

func TestSelp(t *testing.T) {
	var r Regs
	r[1], r[2], r[3] = 11, 22, 1
	ins := &isa.Instruction{Op: isa.OpSelp, Dst: 0, SrcA: 1, SrcB: 2, SrcC: 3}
	if got := EvalALU(ins, &r, &Env{}); got != 11 {
		t.Errorf("selp true = %d", got)
	}
	r[3] = 0
	if got := EvalALU(ins, &r, &Env{}); got != 22 {
		t.Errorf("selp false = %d", got)
	}
}

func TestMovSpecial(t *testing.T) {
	env := Env{Tid: 5, NTid: 128, Ctaid: 3, NCta: 16, Params: &[isa.NumParams]uint32{7: 99}}
	var r Regs
	cases := []struct {
		spec isa.Special
		want uint32
	}{
		{isa.SpecTid, 5}, {isa.SpecNTid, 128}, {isa.SpecCtaid, 3}, {isa.SpecNCta, 16},
		{isa.SpecParam(7), 99}, {isa.SpecParam(0), 0},
	}
	for _, c := range cases {
		ins := &isa.Instruction{Op: isa.OpMov, Dst: 0, SrcA: isa.RegNone, Spec: c.spec}
		if got := EvalALU(ins, &r, &env); got != c.want {
			t.Errorf("mov %s = %d, want %d", c.spec, got, c.want)
		}
	}
}

func TestMemoryAccess(t *testing.T) {
	mem := make([]byte, 64)
	if err := Store32("global", mem, 8, 0xDEADBEEF, 0); err != nil {
		t.Fatal(err)
	}
	v, err := Load32("global", mem, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("load = %#x", v)
	}
	// Little-endian layout.
	if mem[8] != 0xEF || mem[11] != 0xDE {
		t.Errorf("endianness wrong: % x", mem[8:12])
	}
	if _, err := Load32("global", mem, 62, 3); err == nil {
		t.Error("out-of-bounds load accepted")
	}
	if _, err := Load32("global", mem, 2, 3); err == nil {
		t.Error("misaligned load accepted")
	}
	if err := Store32("shared", mem, 4096, 0, 7); err == nil {
		t.Error("out-of-bounds store accepted")
	}
	var me *MemError
	_, err = Load32("global", mem, 999, 5)
	if e, ok := err.(*MemError); ok {
		me = e
	}
	if me == nil || me.PC != 5 || me.Space != "global" {
		t.Errorf("MemError = %+v", me)
	}
}

func TestEffAddr(t *testing.T) {
	var r Regs
	r[1] = 100
	off := int32(-4)
	ins := &isa.Instruction{Op: isa.OpLdG, Dst: 0, SrcA: 1, Imm: uint32(off)}
	if got := EffAddr(ins, &r); got != 96 {
		t.Errorf("effaddr = %d", got)
	}
}

func TestBranchTaken(t *testing.T) {
	var r Regs
	r[1] = 0
	cond := &isa.Instruction{Op: isa.OpBra, SrcA: 1}
	if BranchTaken(cond, &r) {
		t.Error("pred 0 should not be taken")
	}
	r[1] = 2
	if !BranchTaken(cond, &r) {
		t.Error("pred nonzero should be taken")
	}
	uncond := &isa.Instruction{Op: isa.OpBra, SrcA: isa.RegNone}
	if !BranchTaken(uncond, &r) {
		t.Error("unconditional should be taken")
	}
}

// Property: integer add/sub/xor semantics match Go uint32 arithmetic for
// arbitrary inputs.
func TestQuickIntOps(t *testing.T) {
	f := func(a, b uint32) bool {
		return alu(t, isa.OpIAdd, a, b) == a+b &&
			alu(t, isa.OpISub, a, b) == a-b &&
			alu(t, isa.OpXor, a, b) == a^b &&
			alu(t, isa.OpAnd, a, b) == a&b &&
			alu(t, isa.OpOr, a, b) == a|b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: selp always returns one of its two inputs.
func TestQuickSelp(t *testing.T) {
	f := func(a, b, c uint32) bool {
		var r Regs
		r[1], r[2], r[3] = a, b, c
		ins := &isa.Instruction{Op: isa.OpSelp, Dst: 0, SrcA: 1, SrcB: 2, SrcC: 3}
		got := EvalALU(ins, &r, &Env{})
		return got == a || got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: memory round-trips for aligned in-bounds addresses.
func TestQuickMemoryRoundTrip(t *testing.T) {
	mem := make([]byte, 4096)
	f := func(addr16 uint16, v uint32) bool {
		addr := uint32(addr16) % 4092
		addr &^= 3
		if err := Store32("global", mem, addr, v, 0); err != nil {
			return false
		}
		got, err := Load32("global", mem, addr, 0)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
