package exec

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// buildLaunch assembles src, annotates reconvergence points, and wraps it
// in a launch with the given shape and global memory size.
func buildLaunch(t *testing.T, src string, grid, block, globalBytes int, params ...uint32) *Launch {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := cfg.AnnotateReconvergence(p); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	l := &Launch{Prog: p, GridDim: grid, BlockDim: block, Global: make([]byte, globalBytes)}
	for i, v := range params {
		l.Params[i] = v
	}
	return l
}

func word(t *testing.T, mem []byte, addr int) uint32 {
	t.Helper()
	v, err := Load32("global", mem, uint32(addr), -1)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRefStraightLine(t *testing.T) {
	// out[tid] = tid*2 + ctaid, over 2 blocks of 8 threads.
	l := buildLaunch(t, `
    mov  r0, %tid
    mov  r1, %ctaid
    mov  r2, %ntid
    imad r3, r1, r2, r0    // global thread id
    imul r4, r0, 2
    iadd r4, r4, r1
    shl  r5, r3, 2
    st.g [r5], r4
    exit
`, 2, 8, 2*8*4)
	res, err := RunReference(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cta := 0; cta < 2; cta++ {
		for tid := 0; tid < 8; tid++ {
			want := uint32(tid*2 + cta)
			got := word(t, l.Global, (cta*8+tid)*4)
			if got != want {
				t.Errorf("out[%d,%d] = %d, want %d", cta, tid, got, want)
			}
		}
	}
	// 9 instructions x 16 threads.
	if res.ThreadInstrs != 9*16 {
		t.Errorf("thread instrs = %d, want %d", res.ThreadInstrs, 9*16)
	}
}

func TestRefIfElseDivergence(t *testing.T) {
	// out[tid] = tid < 4 ? 100 : 200 for one warp of 8.
	l := buildLaunch(t, `
    mov r0, %tid
    isetp.lt r1, r0, 4
    bra r1, then
    mov r2, 200
    bra join
then:
    mov r2, 100
join:
    shl r3, r0, 2
    st.g [r3], r2
    exit
`, 1, 8, 8*4)
	if _, err := RunReference(l, 8); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 8; tid++ {
		want := uint32(200)
		if tid < 4 {
			want = 100
		}
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestRefDataDependentLoop(t *testing.T) {
	// out[tid] = sum(1..tid), divergent trip counts inside one warp.
	l := buildLaunch(t, `
    mov r0, %tid
    mov r1, 0      // acc
    mov r2, 0      // i
loop:
    isetp.ge r3, r2, r0
    bra r3, done
    iadd r2, r2, 1
    iadd r1, r1, r2
    bra loop
done:
    shl r4, r0, 2
    st.g [r4], r1
    exit
`, 1, 16, 16*4)
	if _, err := RunReference(l, 16); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 16; tid++ {
		want := uint32(tid * (tid + 1) / 2)
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestRefNestedDivergence(t *testing.T) {
	// Nested if inside if: classify tid into 4 buckets.
	l := buildLaunch(t, `
    mov r0, %tid
    isetp.lt r1, r0, 8
    bra r1, low
    isetp.lt r2, r0, 12
    bra r2, midhigh
    mov r3, 4
    bra join
midhigh:
    mov r3, 3
    bra join
low:
    isetp.lt r2, r0, 4
    bra r2, verylow
    mov r3, 2
    bra join
verylow:
    mov r3, 1
join:
    shl r4, r0, 2
    st.g [r4], r3
    exit
`, 1, 16, 16*4)
	if _, err := RunReference(l, 16); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 16; tid++ {
		var want uint32
		switch {
		case tid < 4:
			want = 1
		case tid < 8:
			want = 2
		case tid < 12:
			want = 3
		default:
			want = 4
		}
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestRefEarlyExitDivergence(t *testing.T) {
	// Half the warp exits early; the rest writes.
	l := buildLaunch(t, `
    mov r0, %tid
    isetp.lt r1, r0, 4
    bra r1, work
    exit
work:
    shl r2, r0, 2
    st.g [r2], r0
    exit
`, 1, 8, 8*4)
	if _, err := RunReference(l, 8); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 8; tid++ {
		want := uint32(0)
		if tid < 4 {
			want = uint32(tid)
		}
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestRefBarrierAndShared(t *testing.T) {
	// Reverse an array within a block through shared memory: thread t
	// stores tid into shared[t], barrier, then reads shared[ntid-1-t].
	l := buildLaunch(t, `
.shared 64
    mov r0, %tid
    mov r1, %ntid
    shl r2, r0, 2
    st.s [r2], r0
    bar
    isub r3, r1, r0
    isub r3, r3, 1
    shl r3, r3, 2
    ld.s r4, [r3]
    st.g [r2], r4
    exit
`, 1, 16, 16*4)
	res, err := RunReference(l, 4) // 4 warps must interleave at the barrier
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 16; tid++ {
		want := uint32(15 - tid)
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
	if res.MaxStackDepth < 1 {
		t.Errorf("stack depth = %d", res.MaxStackDepth)
	}
}

func TestRefGlobalLoads(t *testing.T) {
	// out[tid] = in[tid] + 1 with in at param0, out at param1.
	l := buildLaunch(t, `
    mov r0, %tid
    shl r1, r0, 2
    mov r2, %p0
    iadd r2, r2, r1
    ld.g r3, [r2]
    iadd r3, r3, 1
    mov r4, %p1
    iadd r4, r4, r1
    st.g [r4], r3
    exit
`, 1, 8, 8*4*2, 0, 32)
	for i := 0; i < 8; i++ {
		if err := Store32("global", l.Global, uint32(i*4), uint32(i*10), -1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RunReference(l, 8); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 8; tid++ {
		if got := word(t, l.Global, 32+tid*4); got != uint32(tid*10+1) {
			t.Errorf("out[%d] = %d", tid, got)
		}
	}
}

func TestRefDivergentBarrierError(t *testing.T) {
	l := buildLaunch(t, `
    mov r0, %tid
    isetp.lt r1, r0, 2
    bra r1, skip
    bar
skip:
    exit
`, 1, 4, 16)
	if _, err := RunReference(l, 4); err == nil {
		t.Fatal("divergent barrier not detected")
	}
}

func TestRefMemFault(t *testing.T) {
	l := buildLaunch(t, `
    mov r0, 4096
    ld.g r1, [r0]
    exit
`, 1, 1, 64)
	if _, err := RunReference(l, 1); err == nil {
		t.Fatal("OOB access not detected")
	}
}

func TestRefSyncIsNop(t *testing.T) {
	// The thread-frontier program (with SYNCs) must produce the same
	// result under the stack reference model.
	src := `
    mov r0, %tid
    isetp.lt r1, r0, 4
    bra r1, then
    mov r2, 200
    bra join
then:
    mov r2, 100
join:
    shl r3, r0, 2
    st.g [r3], r2
    exit
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := cfg.InsertSyncs(p)
	if err != nil {
		t.Fatal(err)
	}
	hasSync := false
	for _, ins := range tp.Code {
		if ins.Op == isa.OpSync {
			hasSync = true
		}
	}
	if !hasSync {
		t.Fatal("no sync in TF program")
	}
	l := &Launch{Prog: tp, GridDim: 1, BlockDim: 8, Global: make([]byte, 8*4)}
	if _, err := RunReference(l, 8); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 8; tid++ {
		want := uint32(200)
		if tid < 4 {
			want = 100
		}
		if got := word(t, l.Global, tid*4); got != want {
			t.Errorf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestRefValidation(t *testing.T) {
	if _, err := RunReference(&Launch{}, 32); err == nil {
		t.Error("nil program accepted")
	}
	l := buildLaunch(t, "exit", 1, 1, 0)
	if _, err := RunReference(l, 0); err == nil {
		t.Error("warp width 0 accepted")
	}
	if _, err := RunReference(l, 128); err == nil {
		t.Error("warp width 128 accepted")
	}
}

func TestCloneGlobal(t *testing.T) {
	l := buildLaunch(t, "exit", 1, 1, 8)
	l.Global[3] = 7
	c := l.CloneGlobal()
	c.Global[3] = 9
	if l.Global[3] != 7 {
		t.Error("clone aliases original memory")
	}
}
