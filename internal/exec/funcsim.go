package exec

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// RefResult summarizes a reference (functional) simulation.
type RefResult struct {
	ThreadInstrs  uint64 // dynamic thread-instruction count
	WarpInstrs    uint64 // dynamic warp-instruction issue count
	MaxStackDepth int    // deepest reconvergence stack observed
}

// refStepLimit bounds total warp-instruction steps to catch livelocks in
// malformed kernels.
const refStepLimit = 1 << 28

type refEntry struct {
	pc    int
	mask  uint64
	recPC int // pop when pc reaches recPC; -1 = never
}

type refWarp struct {
	width     int
	base      int // first thread index within the block
	valid     uint64
	alive     uint64
	regs      []Regs
	envs      []Env
	stack     []refEntry
	atBarrier bool
}

func (w *refWarp) done() bool { return len(w.stack) == 0 }

// tosEffective pops exhausted entries and returns the TOS effective mask.
func (w *refWarp) tosEffective() uint64 {
	for len(w.stack) > 0 {
		eff := w.stack[len(w.stack)-1].mask & w.alive
		if eff != 0 {
			return eff
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
	return 0
}

// RunReference executes the launch functionally with a per-warp PDOM
// reconvergence stack (the Tesla-style baseline semantics) and returns
// execution statistics. Global memory in l is updated in place.
//
// Conditional branches must carry RecPC annotations
// (cfg.AnnotateReconvergence); SYNC instructions are treated as no-ops.
func RunReference(l *Launch, warpWidth int) (*RefResult, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if warpWidth <= 0 || warpWidth > 64 {
		return nil, fmt.Errorf("exec: warp width %d out of range (1..64)", warpWidth)
	}
	res := &RefResult{}
	var steps uint64
	for cta := 0; cta < l.GridDim; cta++ {
		if err := runBlockRef(l, cta, warpWidth, res, &steps); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func runBlockRef(l *Launch, cta, warpWidth int, res *RefResult, steps *uint64) error {
	prog := l.Prog
	shared := make([]byte, prog.SharedMem)
	nWarps := (l.BlockDim + warpWidth - 1) / warpWidth

	warps := make([]*refWarp, nWarps)
	for wi := 0; wi < nWarps; wi++ {
		w := &refWarp{
			width: warpWidth,
			base:  wi * warpWidth,
			regs:  make([]Regs, warpWidth),
			envs:  make([]Env, warpWidth),
		}
		for t := 0; t < warpWidth; t++ {
			tid := w.base + t
			if tid >= l.BlockDim {
				break
			}
			w.valid |= 1 << uint(t)
			w.envs[t] = Env{
				Tid:    uint32(tid),
				NTid:   uint32(l.BlockDim),
				Ctaid:  uint32(cta),
				NCta:   uint32(l.GridDim),
				Params: &l.Params,
			}
		}
		w.alive = w.valid
		w.stack = []refEntry{{pc: 0, mask: w.valid, recPC: -1}}
		warps[wi] = w
	}

	for {
		progress := false
		liveWarps := 0
		barrierWarps := 0
		for _, w := range warps {
			if w.done() {
				continue
			}
			liveWarps++
			if w.atBarrier {
				barrierWarps++
				continue
			}
			if err := stepRef(l, prog, shared, w, res); err != nil {
				return err
			}
			*steps++
			if *steps > refStepLimit {
				return fmt.Errorf("exec: %s: step limit exceeded (livelock?)", prog.Name)
			}
			progress = true
		}
		if liveWarps == 0 {
			return nil
		}
		if barrierWarps == liveWarps {
			// Release the barrier.
			for _, w := range warps {
				if !w.done() && w.atBarrier {
					w.atBarrier = false
					advance(w)
				}
			}
			progress = true
		}
		if !progress {
			return fmt.Errorf("exec: %s: no progress (deadlock at barrier?)", prog.Name)
		}
	}
}

// advance moves TOS to the next PC, popping at reconvergence.
func advance(w *refWarp) {
	tos := &w.stack[len(w.stack)-1]
	tos.pc++
	popAtRec(w)
}

// popAtRec pops every TOS entry sitting at its own reconvergence point,
// including entries that jumped there (unconditional branch to the join
// block) and nested regions sharing one reconvergence PC.
func popAtRec(w *refWarp) {
	for len(w.stack) > 0 {
		tos := &w.stack[len(w.stack)-1]
		if tos.recPC < 0 || tos.pc != tos.recPC {
			return
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
}

func stepRef(l *Launch, prog *isa.Program, shared []byte, w *refWarp, res *RefResult) error {
	eff := w.tosEffective()
	if eff == 0 {
		return nil
	}
	if len(w.stack) > res.MaxStackDepth {
		res.MaxStackDepth = len(w.stack)
	}
	tos := &w.stack[len(w.stack)-1]
	pc := tos.pc
	ins := prog.At(pc)
	res.ThreadInstrs += uint64(bits.OnesCount64(eff))
	res.WarpInstrs++

	switch ins.Op {
	case isa.OpExit:
		w.alive &^= eff
		w.tosEffective() // pop exhausted paths
		return nil

	case isa.OpBar:
		full := w.alive & w.valid
		if eff != full {
			return fmt.Errorf("exec: %s: pc %d: divergent barrier (mask %#x, alive %#x)", prog.Name, pc, eff, full)
		}
		w.atBarrier = true
		return nil

	case isa.OpSync, isa.OpNop:
		advance(w)
		return nil

	case isa.OpBra:
		if ins.SrcA == isa.RegNone {
			tos.pc = ins.Target
			popAtRec(w)
			return nil
		}
		var taken uint64
		for t := 0; t < w.width; t++ {
			if eff&(1<<uint(t)) == 0 {
				continue
			}
			if BranchTaken(ins, &w.regs[t]) {
				taken |= 1 << uint(t)
			}
		}
		ntaken := eff &^ taken
		switch {
		case ntaken == 0:
			tos.pc = ins.Target
			popAtRec(w)
		case taken == 0:
			advance(w)
		default:
			if ins.RecPC < 0 {
				return fmt.Errorf("exec: %s: pc %d: divergent branch without RecPC annotation", prog.Name, pc)
			}
			rec := ins.RecPC
			// TOS becomes the reconvergence entry; push the two paths.
			// A path that starts at the reconvergence point is not pushed:
			// its threads simply wait in the reconvergence entry (pushing
			// it would execute the join block twice).
			tos.pc = rec
			if pc+1 != rec {
				w.stack = append(w.stack, refEntry{pc: pc + 1, mask: ntaken, recPC: rec})
			}
			if ins.Target != rec {
				w.stack = append(w.stack, refEntry{pc: ins.Target, mask: taken, recPC: rec})
			}
			popAtRec(w)
		}
		return nil

	case isa.OpLdG, isa.OpLdS, isa.OpStG, isa.OpStS:
		mem := l.Global
		space := "global"
		if !ins.Op.IsGlobal() {
			mem = shared
			space = "shared"
		}
		for t := 0; t < w.width; t++ {
			if eff&(1<<uint(t)) == 0 {
				continue
			}
			r := &w.regs[t]
			addr := EffAddr(ins, r)
			if ins.Op.IsLoad() {
				v, err := Load32(space, mem, addr, pc)
				if err != nil {
					return err
				}
				r[ins.Dst] = v
			} else {
				if err := Store32(space, mem, addr, r[ins.SrcC], pc); err != nil {
					return err
				}
			}
		}
		advance(w)
		return nil

	default:
		for t := 0; t < w.width; t++ {
			if eff&(1<<uint(t)) == 0 {
				continue
			}
			r := &w.regs[t]
			r[ins.Dst] = EvalALU(ins, r, &w.envs[t])
		}
		advance(w)
		return nil
	}
}

// CloneGlobal returns a copy of the launch with a fresh copy of global
// memory, so the same initial image can be run on multiple simulators.
func (l *Launch) CloneGlobal() *Launch {
	c := *l
	c.Global = make([]byte, len(l.Global))
	copy(c.Global, l.Global)
	return &c
}

// CloneWithGlobal returns a copy of the launch whose global memory is
// a fresh copy of img (the shared pre-launch snapshot every partitioned
// CTA wave starts from). img must have the launch's global size.
func (l *Launch) CloneWithGlobal(img []byte) *Launch {
	c := *l
	c.Global = make([]byte, len(img))
	copy(c.Global, img)
	return &c
}
