package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func mkIns(op isa.Opcode, dst, a, b isa.Reg) *isa.Instruction {
	return &isa.Instruction{Op: op, Dst: dst, SrcA: a, SrcB: b, SrcC: isa.RegNone}
}

func srcsOf(ins *isa.Instruction) []isa.Reg { return ins.SrcRegs(nil) }

func TestScoreboardRAW(t *testing.T) {
	sb := NewScoreboard(DepWarp, 4, 6)
	prod := mkIns(isa.OpIAdd, 1, 2, 3)
	sb.Issue(0, prod, 0, 0xF, 100)

	cons := mkIns(isa.OpIMul, 4, 1, 5) // reads r1
	if got := sb.ReadyAt(0, cons, srcsOf(cons), 0, 0xF, 10); got != 100 {
		t.Errorf("RAW ReadyAt = %d, want 100", got)
	}
	// After writeback the dependency clears.
	if got := sb.ReadyAt(0, cons, srcsOf(cons), 0, 0xF, 100); got != 100 {
		t.Errorf("post-WB ReadyAt = %d, want 100", got)
	}
}

func TestScoreboardWAW(t *testing.T) {
	sb := NewScoreboard(DepWarp, 4, 6)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 0xF, 50)
	w := mkIns(isa.OpIMul, 1, 4, 5) // writes r1 again
	if got := sb.ReadyAt(0, w, srcsOf(w), 0, 0xF, 10); got != 50 {
		t.Errorf("WAW ReadyAt = %d, want 50", got)
	}
}

func TestScoreboardIndependentRegsDontStall(t *testing.T) {
	sb := NewScoreboard(DepWarp, 4, 6)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 0xF, 50)
	ind := mkIns(isa.OpIMul, 4, 5, 6)
	if got := sb.ReadyAt(0, ind, srcsOf(ind), 0, 0xF, 10); got != 10 {
		t.Errorf("independent ReadyAt = %d, want 10", got)
	}
}

func TestScoreboardOtherWarpUnaffected(t *testing.T) {
	sb := NewScoreboard(DepWarp, 4, 6)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 0xF, 50)
	cons := mkIns(isa.OpIMul, 4, 1, 5)
	if got := sb.ReadyAt(1, cons, srcsOf(cons), 0, 0xF, 10); got != 10 {
		t.Errorf("other warp ReadyAt = %d, want 10", got)
	}
}

func TestScoreboardStructuralLimit(t *testing.T) {
	sb := NewScoreboard(DepWarp, 1, 2)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 9, 9), 0, 0xF, 30)
	sb.Issue(0, mkIns(isa.OpIAdd, 2, 9, 9), 0, 0xF, 40)
	ind := mkIns(isa.OpIMul, 3, 8, 8)
	// Table is full: must wait for the earliest writeback (30).
	if got := sb.ReadyAt(0, ind, srcsOf(ind), 0, 0xF, 10); got != 30 {
		t.Errorf("structural ReadyAt = %d, want 30", got)
	}
	if sb.Stats.Structural == 0 {
		t.Error("structural stall not counted")
	}
	// Instructions without a destination (stores) need no entry.
	st := &isa.Instruction{Op: isa.OpStG, Dst: isa.RegNone, SrcA: 8, SrcC: 8}
	if got := sb.ReadyAt(0, st, srcsOf(st), 0, 0xF, 10); got != 10 {
		t.Errorf("store ReadyAt = %d, want 10", got)
	}
}

func TestScoreboardMatrixDisjointSplits(t *testing.T) {
	// Producer issued from slot 0; the secondary split (slot 1) holds
	// disjoint threads, so in matrix mode the consumer from slot 1 must
	// NOT stall, while in warp mode it must.
	mk := func(mode DepMode) *Scoreboard {
		sb := NewScoreboard(mode, 1, 6)
		sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 0x0F, 100)
		return sb
	}
	cons := mkIns(isa.OpIMul, 4, 1, 5)

	if got := mk(DepMatrix).ReadyAt(0, cons, srcsOf(cons), 1, 0xF0, 10); got != 10 {
		t.Errorf("matrix: disjoint split ReadyAt = %d, want 10", got)
	}
	if got := mk(DepWarp).ReadyAt(0, cons, srcsOf(cons), 1, 0xF0, 10); got != 100 {
		t.Errorf("warp: ReadyAt = %d, want 100", got)
	}
	if got := mk(DepMask).ReadyAt(0, cons, srcsOf(cons), 1, 0xF0, 10); got != 10 {
		t.Errorf("mask: disjoint ReadyAt = %d, want 10", got)
	}
}

func TestScoreboardMatrixTransitionPropagates(t *testing.T) {
	sb := NewScoreboard(DepMatrix, 1, 6)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 0x0F, 100)

	// The producing split's threads move from slot 0 to slot 1 (e.g. a
	// lower-PC split got promoted to primary).
	var swap Matrix
	swap[0][1] = true
	swap[1][0] = true
	swap[2][2] = true
	sb.Transition(0, swap)

	cons := mkIns(isa.OpIMul, 4, 1, 5)
	if got := sb.ReadyAt(0, cons, srcsOf(cons), 1, 0x0F, 10); got != 100 {
		t.Errorf("after swap, slot-1 consumer ReadyAt = %d, want 100", got)
	}
	if got := sb.ReadyAt(0, cons, srcsOf(cons), 0, 0xF0, 10); got != 10 {
		t.Errorf("after swap, slot-0 consumer ReadyAt = %d, want 10", got)
	}
}

func TestTransitionFromMasks(t *testing.T) {
	pre := [3]uint64{0x0F, 0xF0, 0x00}
	post := [3]uint64{0x03, 0x0C, 0xF0} // slot0 split in two, old slot1 went cold
	tr := Transition(pre, post)
	want := Matrix{
		{true, true, false},
		{false, false, true},
		{false, false, false},
	}
	if tr != want {
		t.Errorf("Transition = %v, want %v", tr, want)
	}
}

func TestRowMulIdentity(t *testing.T) {
	r := Row{true, false, true}
	if got := r.Mul(Identity); got != r {
		t.Errorf("r*I = %v", got)
	}
}

func TestMatrixCompose(t *testing.T) {
	var a, b Matrix
	a[0][1] = true
	b[1][2] = true
	c := a.Compose(b)
	if !c[0][2] {
		t.Error("compose must chain 0->1->2")
	}
	if c[0][1] || c[1][2] {
		t.Error("compose must not keep one-step edges")
	}
}

// The matrix scoreboard must be conservative with respect to the exact
// mask oracle: whenever the oracle reports a dependency, the matrix
// must too. We replay a random warp-split history against both.
func TestQuickMatrixConservative(t *testing.T) {
	f := func(moves []uint16) bool {
		mx := NewScoreboard(DepMatrix, 1, 16)
		or := NewScoreboard(DepMask, 1, 16)

		// Slot masks: three disjoint groups that random moves permute.
		slots := [3]uint64{0x000F, 0x00F0, 0x0F00}
		issueIdx := 0
		for _, mv := range moves {
			switch mv % 3 {
			case 0: // issue from a random slot
				slot := int(mv>>2) % 3
				reg := isa.Reg(mv>>4) % 8
				ins := mkIns(isa.OpIAdd, reg, 30, 30)
				mx.Issue(0, ins, slot, slots[slot], int64(1000+issueIdx))
				or.Issue(0, ins, slot, slots[slot], int64(1000+issueIdx))
				issueIdx++
			case 1: // move some threads between two slots
				from := int(mv>>2) % 3
				to := int(mv>>4) % 3
				if from == to || slots[from] == 0 {
					continue
				}
				pre := slots
				moved := slots[from] & (slots[from] - 1) // drop lowest set bit... keep rest
				moved = slots[from] &^ moved             // lowest set bit only
				slots[from] &^= moved
				slots[to] |= moved
				mx.Transition(0, Transition(pre, slots))
			case 2: // swap two whole slots
				a := int(mv>>2) % 3
				b := int(mv>>4) % 3
				pre := slots
				slots[a], slots[b] = slots[b], slots[a]
				mx.Transition(0, Transition(pre, slots))
			}
			// Probe: every (slot, reg) candidate the oracle blocks, the
			// matrix must block at least as long.
			for slot := 0; slot < 3; slot++ {
				if slots[slot] == 0 {
					continue
				}
				for reg := isa.Reg(0); reg < 8; reg++ {
					cand := mkIns(isa.OpIMul, 20, reg, 21)
					oracle := or.ReadyAt(0, cand, srcsOf(cand), slot, slots[slot], 0)
					matrix := mx.ReadyAt(0, cand, srcsOf(cand), slot, slots[slot], 0)
					if matrix < oracle {
						return false // missed a true dependency
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestScoreboardInFlight(t *testing.T) {
	sb := NewScoreboard(DepWarp, 1, 6)
	sb.Issue(0, mkIns(isa.OpIAdd, 1, 2, 3), 0, 1, 20)
	sb.Issue(0, mkIns(isa.OpIAdd, 2, 2, 3), 0, 1, 40)
	if got := sb.InFlight(0, 10); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	if got := sb.InFlight(0, 30); got != 1 {
		t.Errorf("InFlight after first WB = %d, want 1", got)
	}
	if got := sb.InFlight(0, 50); got != 0 {
		t.Errorf("InFlight after all WB = %d, want 0", got)
	}
}
