package sched

import "fmt"

// Associativity of the SWI secondary scheduler's mask-subset lookup
// (§4, figure 9). A fully-associative lookup searches every warp's
// instruction-buffer entry; a set-associative lookup partitions warps
// into sets and searches only the set selected by the low-order bits of
// the primary warp identifier, trading scheduling opportunities for a
// cheaper, bank-partitioned instruction buffer.
const (
	// AssocFull searches all warps.
	AssocFull = 0
)

// BuddySets partitions numWarps warps into sets of size at most assoc
// (assoc = AssocFull means one set holding everything). Warp w belongs
// to set w mod numSets, so consecutive warps land in different sets —
// matching the paper's "low-order bits of the warp identifier" indexing.
func BuddySets(numWarps, assoc int) ([][]int, error) {
	if numWarps <= 0 {
		return nil, fmt.Errorf("sched: numWarps %d invalid", numWarps)
	}
	if assoc < 0 {
		return nil, fmt.Errorf("sched: associativity %d invalid", assoc)
	}
	if assoc == AssocFull || assoc >= numWarps {
		all := make([]int, numWarps)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	numSets := (numWarps + assoc - 1) / assoc
	sets := make([][]int, numSets)
	for w := 0; w < numWarps; w++ {
		s := w % numSets
		sets[s] = append(sets[s], w)
	}
	return sets, nil
}

// Lookup answers "which warps may the secondary scheduler consider when
// the primary issued warp w" with precomputed set membership.
type Lookup struct {
	assoc   int
	numSets int
	sets    [][]int
	setOf   []int
}

// NewLookup builds the lookup structure for numWarps warps with the
// given associativity.
func NewLookup(numWarps, assoc int) (*Lookup, error) {
	sets, err := BuddySets(numWarps, assoc)
	if err != nil {
		return nil, err
	}
	l := &Lookup{assoc: assoc, numSets: len(sets), sets: sets, setOf: make([]int, numWarps)}
	for si, set := range sets {
		for _, w := range set {
			l.setOf[w] = si
		}
	}
	// Direct-mapped degenerate case: a warp's own set holds only the
	// warp itself, which the secondary scheduler must exclude. Probe the
	// neighboring set instead (still a function of the primary warp's
	// low-order bits), giving every warp one fixed buddy.
	if l.numSets == numWarps {
		for w := range l.setOf {
			l.setOf[w] = (w + 1) % l.numSets
		}
	}
	return l, nil
}

// Candidates returns the warps searched when the primary warp is
// `primary`. The slice is shared; callers must not modify it.
func (l *Lookup) Candidates(primary int) []int {
	return l.sets[l.setOf[primary]]
}

// SetOf returns the index of the set the secondary scheduler probes
// when the primary issued warp `primary`: Candidates(primary) is
// SetWarps(SetOf(primary)). With a direct-mapped lookup this is the
// neighboring set, not the set containing the warp.
func (l *Lookup) SetOf(primary int) int { return l.setOf[primary] }

// SetWarps returns the warps of set index si (used when the secondary
// scheduler substitutes for an idle primary and probes sets
// round-robin). The slice is shared; callers must not modify it.
func (l *Lookup) SetWarps(si int) []int {
	return l.sets[si%l.numSets]
}

// NumSets returns the number of instruction-buffer banks the
// configuration implies.
func (l *Lookup) NumSets() int { return l.numSets }

// Assoc returns the configured associativity (AssocFull = fully
// associative).
func (l *Lookup) Assoc() int { return l.assoc }

// XorShift64 is the pseudo-random tie-breaker used by the secondary
// scheduler's best-fit policy (§4: "pseudo-random tie-breaking"),
// deterministic for reproducible simulations.
type XorShift64 uint64

// NewXorShift64 seeds the generator; a zero seed is replaced by a fixed
// non-zero constant (xorshift has a zero fixed point).
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x := XorShift64(seed)
	return &x
}

// Next returns the next value in the sequence.
func (x *XorShift64) Next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = XorShift64(v)
	return v
}

// Intn returns a value in [0, n).
func (x *XorShift64) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(x.Next() % uint64(n))
}
