package sched

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestShuffleIdentity(t *testing.T) {
	for tid := 0; tid < 64; tid++ {
		if got := ShuffleIdentity.Lane(tid, 5, 64, 16); got != tid {
			t.Fatalf("Identity(%d) = %d", tid, got)
		}
	}
}

func TestShuffleMirrorOdd(t *testing.T) {
	if got := ShuffleMirrorOdd.Lane(0, 1, 64, 16); got != 63 {
		t.Errorf("odd warp tid 0 -> %d, want 63", got)
	}
	if got := ShuffleMirrorOdd.Lane(0, 2, 64, 16); got != 0 {
		t.Errorf("even warp tid 0 -> %d, want 0", got)
	}
}

func TestShuffleMirrorHalf(t *testing.T) {
	if got := ShuffleMirrorHalf.Lane(3, 7, 64, 16); got != 3 {
		t.Errorf("lower-half warp: got %d, want 3", got)
	}
	if got := ShuffleMirrorHalf.Lane(3, 8, 64, 16); got != 60 {
		t.Errorf("upper-half warp: got %d, want 60", got)
	}
}

func TestShuffleXor(t *testing.T) {
	if got := ShuffleXor.Lane(5, 3, 64, 16); got != 5^3 {
		t.Errorf("Xor = %d", got)
	}
}

func TestShuffleXorRevSpreadsLowWarpBits(t *testing.T) {
	// bitrev over 6 bits: wid 1 -> 32, so warp 1's thread 0 maps to lane
	// 32 — adjacent warps get maximally distant lane offsets.
	if got := ShuffleXorRev.Lane(0, 1, 64, 16); got != 32 {
		t.Errorf("XorRev(0, wid=1) = %d, want 32", got)
	}
	if got := ShuffleXorRev.Lane(0, 2, 64, 16); got != 16 {
		t.Errorf("XorRev(0, wid=2) = %d, want 16", got)
	}
}

func TestBitrev(t *testing.T) {
	cases := []struct{ x, n, want int }{
		{0, 6, 0}, {1, 6, 32}, {2, 6, 16}, {3, 6, 48}, {63, 6, 63}, {1, 5, 16},
	}
	for _, c := range cases {
		if got := bitrev(c.x, c.n); got != c.want {
			t.Errorf("bitrev(%d,%d) = %d, want %d", c.x, c.n, got, c.want)
		}
	}
}

// Every policy must be a permutation of [0, width) for every warp:
// otherwise two threads would collide on one lane.
func TestQuickShufflePermutation(t *testing.T) {
	f := func(widRaw uint8, widthSel uint8) bool {
		width := []int{8, 16, 32, 64}[widthSel%4]
		wid := int(widRaw) % 32
		for _, p := range Shuffles() {
			seen := make([]bool, width)
			for tid := 0; tid < width; tid++ {
				l := p.Lane(tid, wid, width, 16)
				if l < 0 || l >= width || seen[l] {
					return false
				}
				seen[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// LaneMask must preserve popcount (it is a permutation of bits).
func TestQuickLaneMaskPreservesPopcount(t *testing.T) {
	f := func(mask uint64, widRaw uint8) bool {
		wid := int(widRaw) % 16
		for _, p := range Shuffles() {
			lm := p.LaneMask(mask, wid, 64, 16)
			if bits.OnesCount64(lm) != bits.OnesCount64(mask) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Same-warp masks keep their disjointness under every policy (lane
// mapping is per-warp, so SBI co-issue is never hurt by shuffling).
func TestQuickLaneMaskSameWarpDisjoint(t *testing.T) {
	f := func(a, b uint64, widRaw uint8) bool {
		b &^= a // force disjoint
		wid := int(widRaw) % 16
		for _, p := range Shuffles() {
			if p.LaneMask(a, wid, 64, 16)&p.LaneMask(b, wid, 64, 16) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The motivating example of §4: thread 0 of every warp busy (a common
// imbalance pattern). Identity collides all warps on lane 0; XorRev
// spreads them across distinct lanes.
func TestXorRevDecorrelatesFirstThreadPattern(t *testing.T) {
	var identityUnion, xorrevUnion uint64
	collideID, collideXR := 0, 0
	for wid := 0; wid < 16; wid++ {
		mask := uint64(1) // only thread 0 active
		id := ShuffleIdentity.LaneMask(mask, wid, 64, 16)
		xr := ShuffleXorRev.LaneMask(mask, wid, 64, 16)
		if identityUnion&id != 0 {
			collideID++
		}
		if xorrevUnion&xr != 0 {
			collideXR++
		}
		identityUnion |= id
		xorrevUnion |= xr
	}
	if collideID != 15 {
		t.Errorf("identity should collide all 15 later warps, got %d", collideID)
	}
	if collideXR != 0 {
		t.Errorf("XorRev should collide never, got %d collisions", collideXR)
	}
}

func TestParseShuffle(t *testing.T) {
	for _, p := range Shuffles() {
		got, err := ParseShuffle(p.String())
		if err != nil || got != p {
			t.Errorf("ParseShuffle(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseShuffle("nope"); err == nil {
		t.Error("want error for unknown policy")
	}
}
