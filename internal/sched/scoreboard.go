package sched

import (
	"math"

	"repro/internal/isa"
)

// DepMode selects how a scoreboard decides whether an in-flight
// instruction and a candidate instruction of the same warp can have
// common threads (and therefore a register dependency).
type DepMode uint8

const (
	// DepWarp is the baseline rule: any two instructions of the same
	// warp conflict. Exact for warps without splits, conservative when
	// thread-frontier splits exist.
	DepWarp DepMode = iota

	// DepMatrix is the paper's §3.4 design: each entry carries a
	// dependency row over {primary, secondary, cold} warp-split slots,
	// updated every cycle by the transition matrix of the
	// divergence-convergence graph. Conservative (transitive closure).
	DepMatrix

	// DepMask is the brute-force oracle the paper rejects for storage
	// cost: each entry stores its exact execution mask. Used as the
	// ground truth in tests and available as an ablation.
	DepMask
)

func (m DepMode) String() string {
	switch m {
	case DepWarp:
		return "warp"
	case DepMatrix:
		return "matrix"
	case DepMask:
		return "mask"
	}
	return "dep(?)"
}

// Row is a dependency row over warp-split slots: Row[j] is set when some
// thread that executed the entry's instruction is now in slot j
// (0 = primary, 1 = secondary, 2 = cold contexts).
type Row [3]bool

// Matrix is a one-cycle slot transition matrix: Matrix[i][j] is set when
// a thread in slot i before the transition is in slot j after it.
type Matrix [3][3]bool

// Identity is the no-movement transition.
var Identity = Matrix{{true, false, false}, {false, true, false}, {false, false, true}}

// Transition derives the transition matrix from the slot masks before
// and after a heap mutation.
func Transition(pre, post [3]uint64) Matrix {
	var t Matrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			t[i][j] = pre[i]&post[j] != 0
		}
	}
	return t
}

// Mul advances a dependency row by one transition: out[j] = OR_i
// (r[i] AND t[i][j]).
func (r Row) Mul(t Matrix) Row {
	var out Row
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if r[i] && t[i][j] {
				out[j] = true
				break
			}
		}
	}
	return out
}

// Compose chains two transitions (a then b).
func (a Matrix) Compose(b Matrix) Matrix {
	var out Matrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				if a[i][k] && b[k][j] {
					out[i][j] = true
					break
				}
			}
		}
	}
	return out
}

// Entry is one in-flight register write tracked by the scoreboard.
type Entry struct {
	Dst  isa.Reg
	WB   int64  // cycle the result is written back (entry frees)
	Row  Row    // DepMatrix state
	Mask uint64 // DepMask state: exact execution mask
}

// Stats counts scoreboard events.
type Stats struct {
	Checks       uint64 // dependency queries
	Stalls       uint64 // queries answered "not yet"
	Structural   uint64 // stalls caused by a full entry table
	FalseSharing uint64 // DepMatrix stalls the DepMask oracle would not take (when tracked)
}

// Scoreboard tracks in-flight destination registers per warp, bounding
// entries per warp as in the paper's table 2 (6 entries per warp).
type Scoreboard struct {
	mode    DepMode
	perWarp int
	entries [][]Entry // ragged: live entries per warp
	horizon []int64   // Horizon scratch: live writeback times, sorted

	Stats Stats
}

// NewScoreboard builds a scoreboard for numWarps warps with perWarp
// in-flight entries each.
func NewScoreboard(mode DepMode, numWarps, perWarp int) *Scoreboard {
	return &Scoreboard{
		mode:    mode,
		perWarp: perWarp,
		entries: make([][]Entry, numWarps),
		horizon: make([]int64, 0, perWarp+2),
	}
}

// Mode returns the dependency mode.
func (s *Scoreboard) Mode() DepMode { return s.mode }

// prune drops entries whose writeback time has passed. The common case
// — every entry still in flight — returns without rewriting the slice,
// since prune runs on every scoreboard query.
func (s *Scoreboard) prune(warp int, now int64) {
	es := s.entries[warp]
	i := 0
	for i < len(es) && es[i].WB > now {
		i++
	}
	if i == len(es) {
		return
	}
	out := es[:i]
	for _, e := range es[i+1:] {
		if e.WB > now {
			out = append(out, e)
		}
	}
	s.entries[warp] = out
}

// depends reports whether entry e and a candidate issuing from slot with
// execution mask mask can share threads.
func (s *Scoreboard) depends(e *Entry, slot int, mask uint64) bool {
	switch s.mode {
	case DepMatrix:
		return e.Row[slot]
	case DepMask:
		return e.Mask&mask != 0
	default:
		return true
	}
}

// ReadyAt returns the earliest cycle at which the candidate instruction
// may issue, considering RAW and WAW hazards against in-flight entries
// and the structural entry limit. A result <= now means "ready now".
// srcs must hold the candidate's source registers (isa.SrcRegs).
func (s *Scoreboard) ReadyAt(warp int, ins *isa.Instruction, srcs []isa.Reg, slot int, mask uint64, now int64) int64 {
	s.prune(warp, now)
	s.Stats.Checks++
	ready := now
	es := s.entries[warp]
	for i := range es {
		e := &es[i]
		if !s.depends(e, slot, mask) {
			continue
		}
		hazard := ins.Op.HasDst() && ins.Dst == e.Dst // WAW
		for _, r := range srcs {
			if r == e.Dst {
				hazard = true // RAW
				break
			}
		}
		if hazard && e.WB > ready {
			ready = e.WB
		}
	}
	if ins.Op.HasDst() && len(es) >= s.perWarp {
		// Structural: must wait for the earliest writeback to free a slot.
		minWB := int64(math.MaxInt64)
		for i := range es {
			if es[i].WB < minWB {
				minWB = es[i].WB
			}
		}
		if minWB > ready {
			ready = minWB
			s.Stats.Structural++
		}
	}
	if ready > now {
		s.Stats.Stalls++
	}
	return ready
}

// Horizon reports, without touching statistics or pruning, the
// quantities that govern a frozen candidate's readiness while no new
// entries are allocated (the SM's idle-span invariant). Entries whose
// writeback time is at or before q are ignored — they are dead for
// every query after q.
//
//   - hazardWB is the latest writeback time among live entries that
//     conflict with the candidate (thread-sharing per the dependency
//     mode and a RAW or WAW register match): a ReadyAt query at q' < q”
//     stalls on a hazard exactly while q” < hazardWB. hasHazard is
//     false when no live entry conflicts.
//   - structWB is the writeback time at which the entry table stops
//     being structurally full for a destination-writing candidate:
//     ReadyAt at q” reports a structural stall exactly while
//     q” < structWB and no hazard stall applies. hasStruct is false
//     when the candidate writes no destination or the table is not
//     full.
func (s *Scoreboard) Horizon(warp int, ins *isa.Instruction, srcs []isa.Reg, slot int, mask uint64, q int64) (hazardWB int64, hasHazard bool, structWB int64, hasStruct bool) {
	es := s.entries[warp]
	live := s.horizon[:0]
	for i := range es {
		e := &es[i]
		if e.WB <= q {
			continue
		}
		live = append(live, e.WB)
		if !s.depends(e, slot, mask) {
			continue
		}
		hazard := ins.Op.HasDst() && ins.Dst == e.Dst // WAW
		for _, r := range srcs {
			if r == e.Dst {
				hazard = true // RAW
				break
			}
		}
		if hazard && (!hasHazard || e.WB > hazardWB) {
			hazardWB, hasHazard = e.WB, true
		}
	}
	s.horizon = live
	if ins.Op.HasDst() && len(live) >= s.perWarp {
		// Insertion sort (allocation-free; at most perWarp+1 entries).
		for i := 1; i < len(live); i++ {
			v := live[i]
			j := i - 1
			for ; j >= 0 && live[j] > v; j-- {
				live[j+1] = live[j]
			}
			live[j+1] = v
		}
		// The table stays full (>= perWarp live entries) until the
		// (n-perWarp+1)-th earliest writeback has passed.
		structWB, hasStruct = live[len(live)-s.perWarp], true
	}
	return hazardWB, hasHazard, structWB, hasStruct
}

// Issue records the candidate's destination write. Instructions without
// a destination register allocate no entry.
func (s *Scoreboard) Issue(warp int, ins *isa.Instruction, slot int, mask uint64, wb int64) {
	if !ins.Op.HasDst() {
		return
	}
	var row Row
	if slot >= 0 && slot < 3 {
		row[slot] = true
	}
	s.entries[warp] = append(s.entries[warp], Entry{Dst: ins.Dst, WB: wb, Row: row, Mask: mask})
}

// Transition advances the dependency rows of a warp's entries by one
// slot-transition matrix (DepMatrix mode; no-op otherwise).
func (s *Scoreboard) Transition(warp int, t Matrix) {
	if s.mode != DepMatrix {
		return
	}
	es := s.entries[warp]
	for i := range es {
		es[i].Row = es[i].Row.Mul(t)
	}
}

// InFlight returns the number of live entries for a warp.
func (s *Scoreboard) InFlight(warp int, now int64) int {
	s.prune(warp, now)
	return len(s.entries[warp])
}
