package sched

import (
	"testing"
	"testing/quick"
)

func TestBuddySetsFull(t *testing.T) {
	sets, err := BuddySets(16, AssocFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 16 {
		t.Errorf("full assoc: %v", sets)
	}
}

func TestBuddySetsDirectMapped(t *testing.T) {
	sets, err := BuddySets(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 16 {
		t.Fatalf("direct mapped should have 16 singleton sets, got %d", len(sets))
	}
	for i, s := range sets {
		if len(s) != 1 || s[0] != i {
			t.Errorf("set %d = %v", i, s)
		}
	}
}

func TestBuddySetsLowOrderBitsInterleave(t *testing.T) {
	// assoc 4 over 16 warps -> 4 sets; warp w in set w%4, so set 0 holds
	// warps {0,4,8,12}: consecutive warps are spread across sets.
	sets, err := BuddySets(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	want := []int{0, 4, 8, 12}
	for i, w := range want {
		if sets[0][i] != w {
			t.Errorf("set0 = %v, want %v", sets[0], want)
		}
	}
}

func TestBuddySetsErrors(t *testing.T) {
	if _, err := BuddySets(0, 4); err == nil {
		t.Error("want error for zero warps")
	}
	if _, err := BuddySets(16, -1); err == nil {
		t.Error("want error for negative associativity")
	}
}

// Sets must partition the warps: every warp in exactly one set, set
// sizes bounded by the associativity.
func TestQuickBuddySetsPartition(t *testing.T) {
	f := func(nRaw, aRaw uint8) bool {
		n := 1 + int(nRaw)%64
		a := 1 + int(aRaw)%16
		sets, err := BuddySets(n, a)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, set := range sets {
			if len(set) > a {
				return false
			}
			for _, w := range set {
				if w < 0 || w >= n || seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupCandidates(t *testing.T) {
	l, err := NewLookup(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 16 warps, assoc 3 -> 6 sets; warp 7 is in set 7%6 = 1 with {1,7,13}.
	got := l.Candidates(7)
	want := []int{1, 7, 13}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
	if l.NumSets() != 6 {
		t.Errorf("NumSets = %d", l.NumSets())
	}
	if l.Assoc() != 3 {
		t.Errorf("Assoc = %d", l.Assoc())
	}
}

func TestLookupDirectMappedProbesBuddy(t *testing.T) {
	l, err := NewLookup(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A direct-mapped lookup must never probe the primary's own
	// singleton set: warp w pairs with a fixed buddy (w+1 mod 16).
	for w := 0; w < 16; w++ {
		got := l.Candidates(w)
		if len(got) != 1 || got[0] != (w+1)%16 {
			t.Errorf("Candidates(%d) = %v, want [%d]", w, got, (w+1)%16)
		}
	}
}

func TestXorShiftDeterministicNonZero(t *testing.T) {
	a := NewXorShift64(42)
	b := NewXorShift64(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("sequences diverge")
		}
		if va == 0 {
			t.Fatal("xorshift must never emit zero")
		}
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	x := NewXorShift64(0)
	if x.Next() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestXorShiftIntn(t *testing.T) {
	x := NewXorShift64(7)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := x.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("value %d never drawn", i)
		}
	}
	if x.Intn(1) != 0 || x.Intn(0) != 0 {
		t.Error("Intn(<=1) must be 0")
	}
}
