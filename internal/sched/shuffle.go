// Package sched provides the scheduling building blocks of the SBI/SWI
// micro-architectures: static lane-shuffling policies (paper table 1),
// the baseline per-warp scoreboard and the dependency-matrix scoreboard
// of §3.4, the set-associative warp-buddy lookup used by the secondary
// SWI scheduler (§4), and the xorshift tie-breaker PRNG.
//
// The cycle-level pipeline in internal/sm composes these pieces; they
// are kept separate so each policy can be tested and ablated on its own.
package sched

import "fmt"

// Shuffle selects a static thread-to-lane mapping (paper table 1).
// Shuffling decorrelates the divergence patterns of different warps so
// the SWI secondary scheduler finds more disjoint-mask pairs. It is a
// pure renaming of lanes: memory addresses still derive from thread IDs,
// so coalescing behavior is unchanged.
type Shuffle uint8

// Lane shuffle policies.
const (
	ShuffleIdentity   Shuffle = iota // lane = tid
	ShuffleMirrorOdd                 // lane = n-tid on odd warps
	ShuffleMirrorHalf                // lane = n-tid on the upper half of warps
	ShuffleXor                       // lane = tid XOR wid
	ShuffleXorRev                    // lane = tid XOR bitrev(wid)

	NumShuffles = 5
)

// Shuffles lists all policies in table order.
func Shuffles() []Shuffle {
	return []Shuffle{ShuffleIdentity, ShuffleMirrorOdd, ShuffleMirrorHalf, ShuffleXor, ShuffleXorRev}
}

// ParseShuffle resolves a policy name (as printed by String).
func ParseShuffle(name string) (Shuffle, error) {
	for _, p := range Shuffles() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown shuffle policy %q", name)
}

func (p Shuffle) String() string {
	switch p {
	case ShuffleIdentity:
		return "Identity"
	case ShuffleMirrorOdd:
		return "MirrorOdd"
	case ShuffleMirrorHalf:
		return "MirrorHalf"
	case ShuffleXor:
		return "Xor"
	case ShuffleXorRev:
		return "XorRev"
	}
	return fmt.Sprintf("Shuffle(%d)", uint8(p))
}

// Lane maps thread tid of warp wid to a physical lane. width must be a
// power of two; numWarps is the number of resident warps (used by
// MirrorHalf). The mapping is a permutation of [0, width) for every wid.
func (p Shuffle) Lane(tid, wid, width, numWarps int) int {
	switch p {
	case ShuffleMirrorOdd:
		if wid%2 == 1 {
			return width - 1 - tid
		}
	case ShuffleMirrorHalf:
		if numWarps > 0 && wid >= numWarps/2 {
			return width - 1 - tid
		}
	case ShuffleXor:
		return tid ^ (wid % width)
	case ShuffleXorRev:
		return tid ^ bitrev(wid, log2(width))
	}
	return tid
}

// Permutation returns the tid->lane table for one warp.
func (p Shuffle) Permutation(wid, width, numWarps int) []int {
	t := make([]int, width)
	for tid := range t {
		t[tid] = p.Lane(tid, wid, width, numWarps)
	}
	return t
}

// LaneMask transposes a thread-activity mask into lane space.
func (p Shuffle) LaneMask(mask uint64, wid, width, numWarps int) uint64 {
	if p == ShuffleIdentity {
		return mask
	}
	var out uint64
	for tid := 0; tid < width; tid++ {
		if mask&(1<<uint(tid)) != 0 {
			out |= 1 << uint(p.Lane(tid, wid, width, numWarps))
		}
	}
	return out
}

// bitrev reverses the low n bits of x (the bit-reversal function of the
// XorRev policy).
func bitrev(x, n int) int {
	r := 0
	for i := 0; i < n; i++ {
		r = r<<1 | (x & 1)
		x >>= 1
	}
	return r
}

// log2 returns floor(log2(x)) for x >= 1.
func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
