package device

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// memsysSuite returns multi-wave benchmarks with enough global-memory
// traffic to exercise the shared L2 and interconnect.
func memsysSuite(t *testing.T) []*kernels.Benchmark {
	t.Helper()
	var out []*kernels.Benchmark
	for _, name := range []string{"Histogram", "BFS", "DWTHaar1D"} {
		b, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestSharedMemSysDeterminism pins the determinism contract of the
// shared-clock path: with the L2 and interconnect modeled, partitioned
// results — merged Stats with all L2/NoC counters, per-wave Stats,
// SMCycles, NoCPorts and DeviceCycles — must be bit-identical across
// host worker counts and repeat runs for each SM count. The SM count
// itself is an architectural parameter (it decides how many waves
// contend for the hierarchy at once), so baselines are per SM count,
// never compared across them. Run under -race in CI, this also proves
// the interleaved wave simulations share no unsynchronized state.
func TestSharedMemSysDeterminism(t *testing.T) {
	suite := memsysSuite(t)
	type snapshot struct {
		stats    sm.Stats
		waves    []sm.Stats
		smCycles []int64
		ports    []noc.Stats
		device   int64
	}
	for _, sms := range []int{1, 2, 8} {
		var baseline []snapshot
		// Two passes per worker count: the second pass of each device
		// repeats the runs, so the loop also pins repeat-run stability.
		for _, workers := range []int{1, 4, 1, 4} {
			dev, err := New(
				WithArch(sm.ArchSBISWI),
				WithSMs(sms),
				WithWorkers(workers),
				WithGridPartition(true),
				WithL2(mem.DefaultL2()),
				WithInterconnect(noc.Default()),
			)
			if err != nil {
				t.Fatal(err)
			}
			results, err := dev.RunSuite(context.Background(), suite)
			if err != nil {
				t.Fatal(err)
			}
			snaps := make([]snapshot, len(results))
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("SMs %d workers %d: %s: %v", sms, workers, r.Name(), r.Err)
				}
				snaps[i] = snapshot{
					stats:    r.Result.Stats,
					waves:    r.Result.Waves,
					smCycles: r.Result.SMCycles,
					ports:    r.Result.NoCPorts,
					device:   r.Result.DeviceCycles(),
				}
			}
			if baseline == nil {
				baseline = snaps
				continue
			}
			for i := range snaps {
				if !reflect.DeepEqual(snaps[i], baseline[i]) {
					t.Errorf("SMs %d workers %d: %s: results differ from this SM count's baseline\n got: %+v\nwant: %+v",
						sms, workers, suite[i].Name, snaps[i], baseline[i])
				}
			}
		}
	}
}

// TestMemSysCountersNonzero asserts the acceptance signal on a
// bandwidth-bound benchmark: partitioned multi-SM runs behind the
// shared L2 produce nonzero L2 hit/miss and NoC queueing counters.
func TestMemSysCountersNonzero(t *testing.T) {
	b, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	dev, err := New(
		WithArch(sm.ArchSBISWI),
		WithSMs(4),
		WithGridPartition(true),
		WithL2(mem.DefaultL2()),
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	l2 := &res.Stats.Mem.L2
	if l2.Hits == 0 || l2.Misses == 0 {
		t.Errorf("L2 hits %d misses %d: both must be nonzero", l2.Hits, l2.Misses)
	}
	if res.Stats.Mem.NoC.Requests == 0 || res.Stats.Mem.NoC.QueueCycles == 0 {
		t.Errorf("NoC stats %+v: requests and queueing must be nonzero", res.Stats.Mem.NoC)
	}
	// Every L2 read is an L1 miss fill arriving inline; misses merged
	// into an outstanding fill (no new transaction) may make the L2 see
	// fewer reads than the L1s counted misses, never more.
	if got, flat := res.Stats.Mem.L2.Loads, res.Stats.Mem.Misses; got == 0 || got > flat {
		t.Errorf("L2 read requests %d: want nonzero and at most the %d merged L1 misses", got, flat)
	}
	// The per-SM port breakdown covers every configured SM and accounts
	// for exactly the shared traffic: every transaction entered the
	// crossbar through its SM's port, so requests and bytes must sum to
	// the merged counters.
	if got, want := len(res.NoCPorts), 4; got != want {
		t.Fatalf("NoCPorts length = %d, want %d (one per SM)", got, want)
	}
	var reqs, bytes uint64
	for _, p := range res.NoCPorts {
		reqs += p.Requests
		bytes += p.Bytes
	}
	if reqs != res.Stats.Mem.NoC.Requests || bytes != res.Stats.Mem.NoC.Bytes {
		t.Errorf("per-SM ports carry %d requests / %d bytes, want the merged %d / %d",
			reqs, bytes, res.Stats.Mem.NoC.Requests, res.Stats.Mem.NoC.Bytes)
	}
}

// TestStoreSaturationStretch is the regression test for the replay
// model's store blindness. WriteStorm issues nothing but stores (48 KB
// of write-through traffic per launch, zero loads), so the retired
// two-pass replay — which computed each wave's contention lag from its
// recorded load fills only — would have reported zero stretch for it.
// The inline model must show the saturation: the L1 write buffers fill,
// stores stall for entries, the LSU back-pressure stretches issue, and
// the partitioned modeled wall-clock ends up above the flat-latency
// run's, which never gates stores at all.
func TestStoreSaturationStretch(t *testing.T) {
	b, ok := kernels.ByName("WriteStorm")
	if !ok {
		t.Fatal("WriteStorm missing")
	}
	run := func(opts ...Option) *sm.Result {
		t.Helper()
		dev, err := New(append([]Option{
			WithArch(sm.ArchSBISWI),
			WithSMs(2),
			WithGridPartition(true),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(l.Global, b.Expected()) {
			t.Fatal("simulation diverged from the reference oracle")
		}
		return res
	}
	flat := run()
	modeled := run(WithL2(mem.DefaultL2()), WithInterconnect(noc.Default()))
	if flat.Stats.Mem.StoreQueueStalls != 0 {
		t.Errorf("flat model charged %d store-queue stall cycles; the write buffer must stay disabled without a lower level",
			flat.Stats.Mem.StoreQueueStalls)
	}
	if modeled.Stats.Mem.StoreQueueStalls == 0 {
		t.Error("store-saturating kernel never stalled for a write-buffer entry")
	}
	if modeled.Stats.Mem.L2.Stores == 0 || modeled.Stats.Mem.NoC.Requests == 0 {
		t.Errorf("store stream never reached the shared hierarchy: %+v", modeled.Stats.Mem)
	}
	if m, f := modeled.DeviceCycles(), flat.DeviceCycles(); m <= f {
		t.Errorf("modeled wall-clock %d not above the flat run's %d: store saturation exerted no stretch", m, f)
	}
}

// recLower reconstructs the retired two-pass model's first pass for
// TestTwoPassVsInlineEquivalence: it services the L1's traffic with the
// same flat-latency DRAM link the seed used — so the SM runs on the
// undisturbed flat schedule — while recording every transaction it is
// shown for a post-hoc contention replay.
type recLower struct {
	port       noc.Link
	blockBytes int
	evs        []recEvent
}

type recEvent struct {
	now   int64
	block uint32
	store bool
}

func (r *recLower) Access(now int64, store bool, block uint32) int64 {
	r.evs = append(r.evs, recEvent{now: now, block: block, store: store})
	return r.port.Reserve(now, r.blockBytes)
}

// TestTwoPassVsInlineEquivalence is the equivalence harness between the
// retired two-pass record/replay contention model and the inline
// shared-clock model that replaced it, over the whole benchmark suite.
// The two-pass side is reconstructed locally: pass one runs the SM on
// the flat-latency schedule while recording its L1→memory transactions
// (recLower), pass two replays the time-sorted record through a fresh
// canonical crossbar+L2 — exactly the shape of the deleted
// modelContention path. The harness then asserts what must agree and
// documents what intentionally diverges:
//
//   - Conservation holds in both models: every L2 access entered
//     through a crossbar port (NoC.Requests == L2 loads + stores, bytes
//     == requests × block size), every L1 store transaction reaches the
//     L2 (the store-blindness fix), and the L2 sees at most the L1's
//     misses as loads, short at most the L1's MSHR merges.
//   - The replay itself is deterministic: replaying the same record
//     twice produces bit-identical canonical counters.
//   - For kernels whose instruction stream is timing-independent, the
//     two models execute identical per-thread work (ThreadInstrs and
//     its per-unit breakdown, including the LSU class).
//
// Intended divergences — logged, never asserted: the canonical L2/NoC
// counters themselves (hits, misses, queue cycles) differ because the
// inline model's contention feeds back into issue timing and MSHR
// merging while the replay observes the flat schedule; L1 transaction
// counts differ even for identical instruction streams because the
// coalescer merges per warp-split and split grouping is itself
// timing-dependent under SWI; and kernels that communicate through
// global memory (BFS's frontier, the TMD task queues) may shift
// instruction counts by a few under any timing change, so nothing
// instruction-derived is comparable for them at all.
func TestTwoPassVsInlineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite equivalence harness")
	}
	cfg := sm.Configure(sm.ArchSBISWI)
	bb := uint64(cfg.Mem.BlockBytes)
	check := func(t *testing.T, model string, l1 *mem.Stats, l2 mem.L2Stats, nc noc.Stats) {
		t.Helper()
		if nc.Requests != l2.Loads+l2.Stores {
			t.Errorf("%s: %d NoC requests, want the %d+%d L2 loads+stores", model, nc.Requests, l2.Loads, l2.Stores)
		}
		if nc.Bytes != nc.Requests*bb {
			t.Errorf("%s: %d NoC bytes, want requests×blockBytes = %d", model, nc.Bytes, nc.Requests*bb)
		}
		if l2.Stores != l1.Stores {
			t.Errorf("%s: L2 saw %d stores, L1 sent %d: store traffic lost below the L1", model, l2.Stores, l1.Stores)
		}
		if l2.Loads > l1.Misses || l2.Loads+l1.MSHRMerges < l1.Misses {
			t.Errorf("%s: L2 saw %d loads for %d L1 misses (%d merges)", model, l2.Loads, l1.Misses, l1.MSHRMerges)
		}
	}
	for _, b := range kernels.All() {
		t.Run(b.Name, func(t *testing.T) {
			// Pass 1 of the retired model: flat-latency schedule, traffic
			// recorded.
			l1, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			rec := &recLower{
				port:       noc.NewLink(cfg.Mem.BytesPerCycle, cfg.Mem.MemLatency),
				blockBytes: cfg.Mem.BlockBytes,
			}
			twoPass, err := sm.RunRangeOpts(context.Background(), cfg, l1, 0, l1.GridDim, sm.RunOpts{Lower: rec})
			if err != nil {
				t.Fatal(err)
			}
			// Pass 2: replay the time-sorted record through the canonical
			// shared hierarchy, twice to pin the replay's own determinism.
			sort.SliceStable(rec.evs, func(i, j int) bool { return rec.evs[i].now < rec.evs[j].now })
			replay := func() (mem.L2Stats, noc.Stats) {
				l2 := mem.NewL2(mem.DefaultL2(), cfg.Mem)
				xbar := noc.New(noc.Default(), 1)
				for _, e := range rec.evs {
					l2.Access(xbar.Send(0, e.now, cfg.Mem.BlockBytes), e.block, e.store)
				}
				return l2.Stats, xbar.Stats()
			}
			rl2, rnc := replay()
			rl2b, rncb := replay()
			if !reflect.DeepEqual(rl2, rl2b) || !reflect.DeepEqual(rnc, rncb) {
				t.Errorf("replay of the same record is not deterministic:\n%+v %+v\n%+v %+v", rl2, rnc, rl2b, rncb)
			}

			// The inline single-pass model on the same launch.
			dev, err := New(WithArch(sm.ArchSBISWI), WithL2(mem.DefaultL2()), WithInterconnect(noc.Default()))
			if err != nil {
				t.Fatal(err)
			}
			l2, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			inline, err := dev.Run(context.Background(), l2)
			if err != nil {
				t.Fatal(err)
			}

			check(t, "two-pass", &twoPass.Stats.Mem, rl2, rnc)
			check(t, "inline", &inline.Stats.Mem, inline.Stats.Mem.L2, inline.Stats.Mem.NoC)

			if twoPass.Stats.ThreadInstrs == inline.Stats.ThreadInstrs {
				if twoPass.Stats.UnitThreadInstrs != inline.Stats.UnitThreadInstrs {
					t.Errorf("identical instruction counts but different per-unit work: two-pass %v, inline %v",
						twoPass.Stats.UnitThreadInstrs, inline.Stats.UnitThreadInstrs)
				}
				if tp, in := &twoPass.Stats.Mem, &inline.Stats.Mem; tp.Loads != in.Loads || tp.Stores != in.Stores {
					t.Logf("intended divergence: L1 transactions two-pass %d/%d, inline %d/%d (loads/stores) — coalescing follows timing-dependent warp-split grouping",
						tp.Loads, tp.Stores, in.Loads, in.Stores)
				}
			} else {
				t.Logf("instruction counts differ (%d vs %d): kernel communicates through global memory, totals not comparable across timing models",
					twoPass.Stats.ThreadInstrs, inline.Stats.ThreadInstrs)
			}
			if rl2.Hits != inline.Stats.Mem.L2.Hits || rnc.QueueCycles != inline.Stats.Mem.NoC.QueueCycles {
				t.Logf("intended divergence: two-pass L2 %d/%d hit/miss, %d queue cycles; inline %d/%d, %d — inline contention feeds back into issue timing",
					rl2.Hits, rl2.Misses, rnc.QueueCycles,
					inline.Stats.Mem.L2.Hits, inline.Stats.Mem.L2.Misses, inline.Stats.Mem.NoC.QueueCycles)
			}
		})
	}
}

// TestDeviceCyclesMonotoneInBandwidth sweeps the interconnect port
// bandwidth downward on a partitioned run and asserts the modeled
// wall-clock never shrinks.
func TestDeviceCyclesMonotoneInBandwidth(t *testing.T) {
	b, ok := kernels.ByName("Transpose")
	if !ok {
		t.Fatal("Transpose missing")
	}
	prev := int64(0)
	for _, bw := range []float64{64, 16, 4, 1} {
		ncfg := noc.Default()
		ncfg.BytesPerCycle = bw
		dev, err := New(
			WithArch(sm.ArchSBISWI),
			WithSMs(4),
			WithGridPartition(true),
			WithInterconnect(ncfg),
		)
		if err != nil {
			t.Fatal(err)
		}
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			t.Fatal(err)
		}
		dc := res.DeviceCycles()
		if dc < prev {
			t.Errorf("device cycles %d at %gB/c below %d at the wider port", dc, bw, prev)
		}
		prev = dc
	}
}

// TestInlineMemSysRun checks the unpartitioned path: a single-SM run
// with the memory system modeled routes misses through the NoC+L2
// inline, surfaces the counters, and runs no faster than the same
// launch under the flat model plus the pure wire latency.
func TestInlineMemSysRun(t *testing.T) {
	b, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	run := func(opts ...Option) *sm.Result {
		t.Helper()
		dev, err := New(append([]Option{WithArch(sm.ArchSBISWI)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(l.Global, b.Expected()) {
			t.Fatal("simulation diverged from the reference oracle")
		}
		return res
	}
	flat := run()
	modeled := run(WithL2(mem.DefaultL2()))
	if modeled.Stats.Mem.L2.Loads == 0 || modeled.Stats.Mem.NoC.Requests == 0 {
		t.Errorf("inline run surfaced no L2/NoC traffic: %+v", modeled.Stats.Mem)
	}
	if flat.Stats.Mem.L2.Loads != 0 || flat.Stats.Mem.NoC.Requests != 0 {
		t.Errorf("flat run must keep L2/NoC counters zero: %+v", flat.Stats.Mem)
	}
	if flat.NoCPorts != nil {
		t.Errorf("flat run must carry no per-SM port breakdown, got %v", flat.NoCPorts)
	}
	if len(modeled.NoCPorts) != 1 || modeled.NoCPorts[0] != modeled.Stats.Mem.NoC {
		t.Errorf("inline single-SM run: NoCPorts = %v, want exactly the merged counters %v",
			modeled.NoCPorts, modeled.Stats.Mem.NoC)
	}
	// No instruction-derived counter is compared across the two models:
	// BFS warps communicate through global memory (frontier reads race
	// benignly with sibling writes), so a timing change can move a
	// relaxation by an iteration and shift instruction and transaction
	// counts by a few. The oracle check in run() pins the functional
	// result for both models instead.
}
