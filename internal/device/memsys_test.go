package device

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// memsysSuite returns multi-wave benchmarks with enough global-memory
// traffic to exercise the shared L2 and interconnect.
func memsysSuite(t *testing.T) []*kernels.Benchmark {
	t.Helper()
	var out []*kernels.Benchmark
	for _, name := range []string{"Histogram", "BFS", "DWTHaar1D"} {
		b, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestSharedMemSysDeterminism pins the determinism contract of the new
// shared state: with the L2 and interconnect modeled, RunSuite over
// partitioned launches must produce bit-identical merged statistics —
// including the L2/NoC counters — for every SM and worker count. Run
// under -race in CI, this also proves the wave simulations and the
// device-level replay share no unsynchronized state.
func TestSharedMemSysDeterminism(t *testing.T) {
	suite := memsysSuite(t)
	type combo struct{ sms, workers int }
	combos := []combo{{1, 1}, {1, 4}, {2, 1}, {2, 4}, {8, 1}, {8, 4}}
	var baseline []sm.Stats
	for _, c := range combos {
		dev, err := New(
			WithArch(sm.ArchSBISWI),
			WithSMs(c.sms),
			WithWorkers(c.workers),
			WithGridPartition(true),
			WithL2(mem.DefaultL2()),
			WithInterconnect(noc.Default()),
		)
		if err != nil {
			t.Fatal(err)
		}
		results, err := dev.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]sm.Stats, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("SMs %d workers %d: %s: %v", c.sms, c.workers, r.Name(), r.Err)
			}
			stats[i] = r.Result.Stats
		}
		if baseline == nil {
			baseline = stats
			continue
		}
		for i := range stats {
			if !reflect.DeepEqual(stats[i], baseline[i]) {
				t.Errorf("SMs %d workers %d: %s: merged stats differ from the %d-SM/%d-worker baseline\n got: %+v\nwant: %+v",
					c.sms, c.workers, suite[i].Name, combos[0].sms, combos[0].workers,
					stats[i].Mem, baseline[i].Mem)
			}
		}
	}
}

// TestMemSysCountersNonzero asserts the acceptance signal on a
// bandwidth-bound benchmark: partitioned multi-SM runs behind the
// shared L2 produce nonzero L2 hit/miss and NoC queueing counters.
func TestMemSysCountersNonzero(t *testing.T) {
	b, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	dev, err := New(
		WithArch(sm.ArchSBISWI),
		WithSMs(4),
		WithGridPartition(true),
		WithL2(mem.DefaultL2()),
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	l2 := &res.Stats.Mem.L2
	if l2.Hits == 0 || l2.Misses == 0 {
		t.Errorf("L2 hits %d misses %d: both must be nonzero", l2.Hits, l2.Misses)
	}
	if res.Stats.Mem.NoC.Requests == 0 || res.Stats.Mem.NoC.QueueCycles == 0 {
		t.Errorf("NoC stats %+v: requests and queueing must be nonzero", res.Stats.Mem.NoC)
	}
	// Every replayed L2 read came from a recorded L1 miss fill; misses
	// merged into an outstanding fill (no new transaction) may make the
	// L2 see fewer reads than the L1 counted misses, never more.
	if got, flat := res.Stats.Mem.L2.Loads, res.Stats.Mem.Misses; got == 0 || got > flat {
		t.Errorf("L2 read requests %d: want nonzero and at most the %d merged L1 misses", got, flat)
	}
	// The per-SM port breakdown covers every configured SM and accounts
	// for exactly the canonical traffic: the device-time replay routes
	// the same events, only through per-SM ports on a different
	// timeline, so requests and bytes must sum to the merged counters
	// (queue cycles legitimately differ between the two passes).
	if got, want := len(res.NoCPorts), 4; got != want {
		t.Fatalf("NoCPorts length = %d, want %d (one per SM)", got, want)
	}
	var reqs, bytes uint64
	for _, p := range res.NoCPorts {
		reqs += p.Requests
		bytes += p.Bytes
	}
	if reqs != res.Stats.Mem.NoC.Requests || bytes != res.Stats.Mem.NoC.Bytes {
		t.Errorf("per-SM ports carry %d requests / %d bytes, want the merged %d / %d",
			reqs, bytes, res.Stats.Mem.NoC.Requests, res.Stats.Mem.NoC.Bytes)
	}
}

// TestDeviceCyclesMonotoneInBandwidth sweeps the interconnect port
// bandwidth downward on a partitioned run and asserts the modeled
// wall-clock never shrinks.
func TestDeviceCyclesMonotoneInBandwidth(t *testing.T) {
	b, ok := kernels.ByName("Transpose")
	if !ok {
		t.Fatal("Transpose missing")
	}
	prev := int64(0)
	for _, bw := range []float64{64, 16, 4, 1} {
		ncfg := noc.Default()
		ncfg.BytesPerCycle = bw
		dev, err := New(
			WithArch(sm.ArchSBISWI),
			WithSMs(4),
			WithGridPartition(true),
			WithInterconnect(ncfg),
		)
		if err != nil {
			t.Fatal(err)
		}
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			t.Fatal(err)
		}
		dc := res.DeviceCycles()
		if dc < prev {
			t.Errorf("device cycles %d at %gB/c below %d at the wider port", dc, bw, prev)
		}
		prev = dc
	}
}

// TestInlineMemSysRun checks the unpartitioned path: a single-SM run
// with the memory system modeled routes misses through the NoC+L2
// inline, surfaces the counters, and runs no faster than the same
// launch under the flat model plus the pure wire latency.
func TestInlineMemSysRun(t *testing.T) {
	b, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	run := func(opts ...Option) *sm.Result {
		t.Helper()
		dev, err := New(append([]Option{WithArch(sm.ArchSBISWI)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), l)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run()
	modeled := run(WithL2(mem.DefaultL2()))
	if modeled.Stats.Mem.L2.Loads == 0 || modeled.Stats.Mem.NoC.Requests == 0 {
		t.Errorf("inline run surfaced no L2/NoC traffic: %+v", modeled.Stats.Mem)
	}
	if flat.Stats.Mem.L2.Loads != 0 || flat.Stats.Mem.NoC.Requests != 0 {
		t.Errorf("flat run must keep L2/NoC counters zero: %+v", flat.Stats.Mem)
	}
	if flat.NoCPorts != nil {
		t.Errorf("flat run must carry no per-SM port breakdown, got %v", flat.NoCPorts)
	}
	if len(modeled.NoCPorts) != 1 || modeled.NoCPorts[0] != modeled.Stats.Mem.NoC {
		t.Errorf("inline single-SM run: NoCPorts = %v, want exactly the merged counters %v",
			modeled.NoCPorts, modeled.Stats.Mem.NoC)
	}
	// Functional results are oracle-checked by RunSuite elsewhere; here
	// pin that the instruction stream is identical and only timing moved.
	if modeled.Stats.ThreadInstrs != flat.Stats.ThreadInstrs {
		t.Errorf("modeled memory system changed the instruction count: %d vs %d",
			modeled.Stats.ThreadInstrs, flat.Stats.ThreadInstrs)
	}
}
