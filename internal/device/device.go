// Package device implements the device-level simulation engine: a GPU
// of N independent streaming multiprocessors fed from one CTA queue,
// an asynchronous stream/event launch API, and a batch runner that
// executes whole benchmark suites concurrently on a bounded worker
// pool.
//
// # Admission: the device-global run queue
//
// Everything the device simulates is admitted by one RunQueue — a
// counting semaphore granting slots longest-job-first (see queue.go).
// Device.Run, stream launches (stream.go), RunSuite entries and the
// CTA waves of partitioned grids all acquire a slot there for the
// duration of their SM simulation, so interactive streams and batch
// suites share a single fairness/cost policy and one host-parallelism
// bound. Run itself is sugar for a one-launch stream:
//
//	func (d *Device) Run(ctx, l) { return d.NewStream().Launch(ctx, l).Wait() }
//
// The queue decides only when a simulation starts — never what it
// computes — so every result stays bit-identical to a serial run.
//
// # Execution model
//
// By default a launch runs whole on one SM instance, cycle-exact with
// the classic sm.Run path — Stats are bit-identical to it for every
// kernel, whatever the SM or worker count, which keeps the paper
// reproduction stable while RunSuite fans independent launches out
// across the worker pool.
//
// With WithGridPartition the grid is instead split into waves of
// contiguous CTAs, each wave sized to fill one SM's warp contexts
// (sm.ResidentCTAs), and dispatched across the device's SMs. Every wave
// is simulated on a fresh, independent SM instance starting from a
// snapshot of the pre-launch global image; the per-wave memory images
// are then folded back with exec.MergeWaves, which asserts the
// write-sharing contract (different CTAs may only write the same
// location with the same value), and the per-wave statistics are merged
// in wave order with Stats.Merge. Under the default flat-latency
// memory model the wave decomposition depends only on the launch and
// the SM configuration — never on the SM count or the host worker pool
// — so partitioned Stats are bit-identical for any WithSMs/WithWorkers
// setting; relative to the unpartitioned path they trade the
// cross-wave pipelining of one big SM run for wave-level parallel
// scaling (each wave starts on a cold SM), leaving functional results
// untouched. The SM count decides the modeled wall-clock: wave j runs
// on SM j mod N, and Result.SMCycles/DeviceCycles report how the waves
// pack onto the configured SMs.
//
// # Batch scheduling and memoization
//
// RunSuite claims its entries longest-job-first, weighting each by its
// memoized measured cost (modeled cycles from an earlier run in this
// process) or the calibrated static estimate before one exists (see
// calibration.go), and every entry acquires a run-queue slot for its
// simulation — keeping a batch's wall-clock near max(heaviest entry,
// total/workers) instead of tail-bound by whichever heavy kernel a
// naive schedule dispatched last, while the batch shares the pool
// with concurrent streams. With
// WithAutoPartition the heavy tail itself is decomposed: entries whose
// static cost exceeds the batch mean and whose grids span several CTA
// waves run through the partitioned engine, so even a single dominant
// kernel spreads across the pool. With WithSimCache, oracle-validated
// entries are memoized by (benchmark, configuration fingerprint,
// partitioning, memory system, SM count) and shared across passes and
// devices. All three mechanisms are result-neutral by construction:
// dispatch order and worker count never influence statistics, the
// cache key is sound (sm.Config.Fingerprint digests every
// configuration field), and the partition plan is a pure function of
// the batch.
//
// # Shared memory system
//
// WithL2 / WithInterconnect replace the seed's flat-latency DRAM model
// with a modeled hierarchy: every SM's L1 misses and write-through
// stores cross a crossbar port (package noc) into a banked,
// MSHR-backed shared L2 (mem.L2) in front of the single DRAM port —
// inline, at the cycle each transaction leaves its L1, with the
// returned ready time flowing straight back into scoreboard wake-up.
// Unpartitioned runs wire the single SM to a one-port crossbar;
// partitioned runs interleave every CTA wave against one shared
// memory-system clock on a single driving goroutine, so all waves
// contend for the same L2/NoC/DRAM state as they execute (see
// memsys.go for the interleaver and its determinism argument).
// Contention-aware results — Stats.Mem.L2, Stats.Mem.NoC, per-wave
// Stats, SMCycles and DeviceCycles — are bit-identical across host
// worker counts and repeat runs; they depend on the SM count, which is
// an architectural parameter deciding how many waves share the
// hierarchy at once. Both options are off by default, keeping every
// default-path number seed-exact.
package device

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/replay"
	"repro/internal/sm"
)

// Device is an N-SM simulation engine. It is immutable after New and
// safe for concurrent use: every Run gets fresh SM instances (and,
// when the shared memory system is modeled, fresh L2/NoC instances);
// the only shared state is the device-wide worker semaphore and the
// optional simulation cache, both concurrency-safe.
type Device struct {
	cfg       sm.Config
	sms       int
	workers   int
	partition bool
	autoPart  bool

	// queue admits every simulation the device performs (see queue.go);
	// it is private unless WithRunQueue shared one across devices.
	queue *RunQueue

	// streamDepth, when positive, bounds each stream's
	// enqueued-but-incomplete launches (WithStreamQueueDepth).
	streamDepth int

	// inflight tracks outstanding asynchronous operations for
	// Synchronize.
	inflight inflight

	// cache, when non-nil, memoizes oracle-validated RunSuite entries
	// across passes and devices (WithSimCache).
	cache *SimCache

	// traceReplay routes suite entries through the record-once /
	// replay-per-point engine (WithTraceReplay); diag receives every
	// degradation diagnostic — replay fallbacks and transient retries
	// alike — serialized by diagMu (see Device.degradef).
	traceReplay bool
	diag        io.Writer //sbwi:guardedby diagMu
	diagMu      sync.Mutex

	// faults, launchTimeout and retries are the hardened failure plane:
	// the armed fault-injection plan (nil in production), the wall-clock
	// watchdog bound, and the transient-retry budget for suite entries
	// (guard.go).
	faults        *faultinject.Plan
	launchTimeout time.Duration
	retries       int

	// cfgFP / memsysFP are the precomputed cache-key digests of the SM
	// configuration and the modeled memory system; funcFP is the
	// functional half of cfgFP — the trace-cache key (see
	// sm.Config.FunctionalFingerprint).
	cfgFP    uint64
	memsysFP uint64
	funcFP   uint64

	// memsys enables the modeled L1→NoC→L2→DRAM hierarchy; l2cfg and
	// noccfg are its validated parameters.
	memsys bool
	l2cfg  mem.L2Config
	noccfg noc.Config
}

// Option configures a Device. Options are applied in order; later
// options override earlier ones.
type Option func(*settings)

// settings is the mutable bag New threads through the options.
type settings struct {
	arch          sm.Arch
	base          *sm.Config // explicit full config (WithConfig) overrides arch
	modifier      []func(*sm.Config)
	sms           int
	workers       int
	partition     bool
	autoPart      bool
	cache         *SimCache
	l2            *mem.L2Config
	noc           *noc.Config
	queue         *RunQueue
	streamDepth   int
	traceReplay   bool
	replayLog     io.Writer
	faults        *faultinject.Plan
	launchTimeout time.Duration
	retries       int
}

// WithArch selects the modeled micro-architecture (default SBI+SWI) and
// bases the configuration on its paper table-2 parameters.
func WithArch(a sm.Arch) Option {
	return func(s *settings) { s.arch = a; s.base = nil }
}

// WithConfig replaces the whole base configuration, for callers that
// already hold a tuned sm.Config. Field options applied after it still
// modify the supplied configuration.
func WithConfig(cfg sm.Config) Option {
	return func(s *settings) { c := cfg; s.base = &c }
}

// WithSMs sets the number of streaming multiprocessors (default 1).
// More SMs shorten the modeled device wall-clock (Result.DeviceCycles)
// and widen host-side parallelism. Under the default flat-latency
// memory model the SM count never changes merged statistics; with the
// modeled shared memory system (WithL2/WithInterconnect) it decides how
// many waves contend for the hierarchy at once, so contention counters
// and timing legitimately shift with it.
func WithSMs(n int) Option {
	return func(s *settings) { s.sms = n }
}

// WithWorkers bounds the host goroutines simulating concurrently across
// everything the device runs (stream launches, waves and suite entries
// alike). Default: GOMAXPROCS. Worker count never changes results.
// Ignored when WithRunQueue shares a queue — the queue's slot count is
// the bound then.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithRunQueue makes the device admit its simulations through a shared
// queue instead of a private one, so several devices' combined load —
// streams and suites alike — stays bounded by one worker pool under
// one longest-job-first policy. The experiments runner shares one
// queue across every device it builds. Grant order never changes
// results; a nil queue keeps the default private queue.
func WithRunQueue(q *RunQueue) Option {
	return func(s *settings) { s.queue = q }
}

// WithStreamQueueDepth bounds how many enqueued-but-incomplete
// launches each stream of the device may hold: Stream.Launch blocks
// once its stream is n launches deep, giving producers backpressure
// instead of an unbounded queue. 0 (the default) means unbounded;
// negative is rejected by New.
func WithStreamQueueDepth(n int) Option {
	return func(s *settings) { s.streamDepth = n }
}

// WithGridPartition enables intra-launch parallelism: the grid is split
// into SM-sized CTA waves dispatched across the device's SMs (see the
// package comment for the exact semantics and the write-sharing
// contract it relies on). Off by default, which keeps Run cycle-exact
// with the classic single-SM path.
func WithGridPartition(on bool) Option {
	return func(s *settings) { s.partition = on }
}

// WithAutoPartition lets RunSuite route individual heavy entries
// through the wave-partitioned engine on its own: an entry whose
// static cost estimate exceeds the batch mean and whose grid
// decomposes into at least two CTA waves is simulated as parallel
// waves (exactly as under WithGridPartition), while light entries keep
// the whole-grid path. The decision is a pure function of the batch —
// never of the worker count, the SM count or measured timings — so
// RunSuite results remain bit-identical across every parallelism
// setting and across passes. Off by default: the default suite path
// stays cycle-exact with the seed (the golden fixture pins it), and
// auto-partitioned entries carry the partitioned timing model's
// numbers (each wave starts on a cold SM). Device.Run is unaffected.
func WithAutoPartition(on bool) Option {
	return func(s *settings) { s.autoPart = on }
}

// WithSimCache attaches a simulation cache to the device: RunSuite
// entries are memoized by (benchmark, configuration fingerprint,
// partitioning, memory system, SM count) and served without
// re-simulating on later passes — by this device or any other device
// sharing the cache. Cached results were oracle-validated when first
// computed; callers must treat results served from the cache as
// read-only. A nil cache disables memoization (the default).
func WithSimCache(c *SimCache) Option {
	return func(s *settings) { s.cache = c }
}

// WithL2 puts a shared, banked L2 (and the interconnect reaching it —
// noc.Default unless WithInterconnect overrides) between every SM's L1
// and global memory. Off by default, which keeps the flat-latency DRAM
// model and the seed-exact numbers; see the package comment for how
// the modeled hierarchy affects partitioned and unpartitioned runs.
func WithL2(cfg mem.L2Config) Option {
	return func(s *settings) { c := cfg; s.l2 = &c }
}

// WithInterconnect sets the SM↔L2 crossbar parameters and enables the
// modeled memory hierarchy (with mem.DefaultL2 unless WithL2 overrides
// the cache itself). Narrower port bandwidth means more queueing and a
// longer modeled device wall-clock.
func WithInterconnect(cfg noc.Config) Option {
	return func(s *settings) { c := cfg; s.noc = &c }
}

// WithModifier registers a configuration tweak applied after the base
// architecture configuration is built. The public facade wraps this
// into the typed options (WithShuffle, WithTrace, ...).
func WithModifier(f func(*sm.Config)) Option {
	return func(s *settings) { s.modifier = append(s.modifier, f) }
}

// New builds a Device. The zero option set models one SBI+SWI SM with
// the paper's table-2 parameters.
func New(opts ...Option) (*Device, error) {
	st := settings{arch: sm.ArchSBISWI, sms: 1}
	for _, o := range opts {
		o(&st)
	}
	cfg := sm.Configure(st.arch)
	if st.base != nil {
		cfg = *st.base
	}
	for _, f := range st.modifier {
		f(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	if st.sms <= 0 {
		return nil, fmt.Errorf("device: SM count %d must be positive", st.sms)
	}
	if st.streamDepth < 0 {
		return nil, fmt.Errorf("device: stream queue depth %d must be non-negative (0 = unbounded)", st.streamDepth)
	}
	if st.launchTimeout < 0 {
		return nil, fmt.Errorf("device: launch timeout %v must be non-negative (0 = no watchdog)", st.launchTimeout)
	}
	if st.retries < 0 {
		return nil, fmt.Errorf("device: retry budget %d must be non-negative (0 = no retry)", st.retries)
	}
	if st.workers <= 0 {
		st.workers = runtime.GOMAXPROCS(0)
	}
	queue := st.queue
	if queue == nil {
		queue = NewRunQueue(st.workers)
	}
	d := &Device{
		cfg:           cfg,
		sms:           st.sms,
		workers:       queue.Workers(),
		partition:     st.partition,
		autoPart:      st.autoPart,
		cache:         st.cache,
		queue:         queue,
		streamDepth:   st.streamDepth,
		faults:        st.faults,
		launchTimeout: st.launchTimeout,
		retries:       st.retries,
	}
	if st.l2 != nil || st.noc != nil {
		d.memsys = true
		d.l2cfg = mem.DefaultL2()
		if st.l2 != nil {
			d.l2cfg = *st.l2
		}
		d.noccfg = noc.Default()
		if st.noc != nil {
			d.noccfg = *st.noc
		}
		if err := d.l2cfg.Validate(cfg.Mem.BlockBytes); err != nil {
			return nil, fmt.Errorf("device: %w", err)
		}
		if err := d.noccfg.Validate(); err != nil {
			return nil, fmt.Errorf("device: %w", err)
		}
	}
	d.traceReplay = st.traceReplay
	d.diag = st.replayLog
	if d.diag == nil {
		d.diag = os.Stderr
	}
	if d.traceReplay && d.cache == nil {
		// Trace replay only pays off when traces outlive one entry; give
		// the device a private cache when the caller didn't share one.
		d.cache = NewSimCache()
	}
	d.cfgFP = d.cfg.Fingerprint()
	d.memsysFP = d.memsysFingerprint()
	d.funcFP = d.cfg.FunctionalFingerprint()
	return d, nil
}

// Config returns a copy of the device's SM configuration.
func (d *Device) Config() sm.Config { return d.cfg }

// SMs returns the configured SM count.
func (d *Device) SMs() int { return d.sms }

// Workers returns the host worker-pool bound: the device's run-queue
// slot count.
func (d *Device) Workers() int { return d.workers }

// Run simulates the launch to completion on the device and returns the
// result (merged across CTA waves when grid partitioning is enabled).
// It is sugar for a one-launch stream — enqueue, then wait — so
// concurrent Run calls interleave with streams and suites under the
// run queue's single admission policy. Global memory is mutated in
// place, exactly like sm.Run. The context cancels the simulation
// promptly (the SM model polls it about every 1k cycles); a cancelled
// partitioned run leaves the launch's memory image unchanged, while
// the unpartitioned path may have partially mutated it just as sm.Run
// would.
func (d *Device) Run(ctx context.Context, l *exec.Launch) (*sm.Result, error) {
	return d.NewStream().Launch(ctx, l).Wait()
}

// run simulates one launch with the wave-partitioning decision made
// explicit (RunSuite routes heavy entries through the partitioned
// engine under WithAutoPartition while light entries keep the
// whole-grid path) and the admission cost chosen by the caller: raw
// thread count for ad-hoc launches, measured-or-calibrated estimates
// for suite entries.
func (d *Device) run(ctx context.Context, l *exec.Launch, partition bool, cost int64) (*sm.Result, error) {
	return d.runTraced(ctx, l, partition, cost, nil, nil)
}

// waveOpts threads the trace-replay machinery into one CTA range's SM
// run: a fresh recorder sink when recording, a cursor session over the
// range's threads when replaying (see package replay). Both nil is the
// ordinary full simulation.
func waveOpts(rec *replay.Recorder, tr *replay.Trace, ctaStart, ctaEnd int) (sm.RunOpts, error) {
	var o sm.RunOpts
	if rec != nil {
		o.Record = rec.Sink()
	}
	if tr != nil {
		s, err := replay.NewSession(tr, ctaStart, ctaEnd)
		if err != nil {
			return o, err
		}
		o.Replay = s
	}
	return o, nil
}

// runTraced is run with the trace-replay machinery made explicit: with
// rec the full simulation additionally records per-thread traces; with
// tr the functional layer is replaced by the recorded streams — global
// memory is neither read nor written (so wave snapshots and the merge
// are skipped) while every timing path runs exactly as in a full
// simulation. At most one of rec/tr may be non-nil.
func (d *Device) runTraced(ctx context.Context, l *exec.Launch, partition bool, cost int64, rec *replay.Recorder, tr *replay.Trace) (*sm.Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if d.launchTimeout > 0 {
		// The watchdog bounds this launch end to end: queueing, admission
		// and simulation (guard.go).
		var stop func()
		ctx, stop = watchdogCtx(ctx, d.launchTimeout)
		defer stop()
	}
	wave := sm.ResidentCTAs(d.cfg, l)
	var waves [][2]int
	if partition {
		waves = exec.PartitionWaves(l.GridDim, wave)
	}
	if !partition || wave <= 0 || len(waves) <= 1 {
		// Unpartitioned launch, a grid that fits in a single wave, or an
		// over-subscribed block the SM will reject with its precise
		// error: run whole on one SM over the live image, cycle-exact
		// with the classic one-SM path. With the memory system modeled,
		// the single SM's L1 talks to the L2 through its NoC port
		// inline — one goroutine, so timing stays deterministic.
		if err := d.acquireSlot(ctx, cost); err != nil {
			return nil, err
		}
		defer d.queue.release()
		opts, err := waveOpts(rec, tr, 0, l.GridDim)
		if err != nil {
			return nil, err
		}
		if !d.memsys {
			return sm.RunRangeOpts(ctx, d.cfg, l, 0, l.GridDim, opts)
		}
		l2 := mem.NewL2(d.l2cfg, d.cfg.Mem)
		xbar := noc.New(d.noccfg, 1)
		opts.Lower = &l2Port{xbar: xbar, port: 0, l2: l2, blockBytes: d.cfg.Mem.BlockBytes, faults: d.faults}
		res, err := sm.RunRangeOpts(ctx, d.cfg, l, 0, l.GridDim, opts)
		if err != nil {
			return nil, err
		}
		res.Stats.Mem.L2 = l2.Stats
		res.Stats.Mem.NoC = xbar.Stats()
		res.NoCPorts = []noc.Stats{xbar.PortStats(0)}
		return res, nil
	}

	if d.memsys {
		// Waves share one L2/NoC/DRAM pipeline inline on a single
		// driving goroutine; see memsys.go.
		return d.runWavesShared(ctx, l, waves, cost, rec, tr)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// A replayed launch never touches memory, so the waves share the
	// launch as-is instead of each cloning the pre-launch image.
	var base []byte
	if tr == nil {
		base = make([]byte, len(l.Global))
		copy(base, l.Global)
	}

	type waveRun struct {
		res    *sm.Result
		global []byte
		err    error
	}
	runs := make([]waveRun, len(waves))
	var wg sync.WaitGroup
	for i, w := range waves {
		wg.Add(1)
		i, start, end := i, w[0], w[1]
		op := fmt.Sprintf("CTA wave %d of %s", i, l.Prog.Name)
		go guarded(op, nil, func() {
			defer wg.Done()
			// Recover before wg.Done runs (defers are LIFO): a panicking
			// wave must have failed itself — and cancelled its siblings —
			// by the time wg.Wait returns.
			defer func() {
				if v := recover(); v != nil {
					runs[i].err = newPanicError(op, v)
					cancel()
				}
			}()
			// Each wave competes in the run queue at its share of the
			// launch's admission cost.
			waveCost := cost * int64(end-start) / int64(l.GridDim)
			if err := d.acquireSlot(ctx, waveCost); err != nil {
				runs[i].err = err
				return
			}
			defer d.queue.release()
			opts, err := waveOpts(rec, tr, start, end)
			if err != nil {
				runs[i].err = err
				cancel()
				return
			}
			wl := l
			if tr == nil {
				wl = l.CloneWithGlobal(base)
			}
			res, err := sm.RunRangeOpts(ctx, d.cfg, wl, start, end, opts)
			if err != nil {
				runs[i].err = err
				cancel()
				return
			}
			runs[i] = waveRun{res: res, global: wl.Global}
		})()
	}
	wg.Wait()

	// Surface the first error in wave order so failures are
	// deterministic too; prefer a real simulation error over the
	// cancellations it triggered in sibling waves.
	var firstErr error
	for _, r := range runs {
		if r.err == nil {
			continue
		}
		if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(r.err)) {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	if tr == nil {
		if err := d.fire(faultinject.SiteWaveMerge); err != nil {
			return nil, err
		}
		images := make([][]byte, len(runs))
		for i := range runs {
			images[i] = runs[i].global
		}
		if err := exec.MergeWaves(l.Global, base, images); err != nil {
			return nil, fmt.Errorf("device: %s: %w", l.Prog.Name, err)
		}
	}

	out := &sm.Result{
		Trace:    runs[0].res.Trace, // wave clocks are independent; keep the first wave's trace
		Waves:    make([]sm.Stats, len(runs)),
		SMCycles: make([]int64, d.sms),
	}
	for i, r := range runs {
		out.Waves[i] = r.res.Stats
		out.Stats.Merge(&r.res.Stats)
		out.SMCycles[i%d.sms] += r.res.Stats.Cycles
	}
	return out, nil
}

// SuiteResult is the outcome of one benchmark within a RunSuite batch.
type SuiteResult struct {
	Bench  *kernels.Benchmark
	Result *sm.Result
	Err    error
}

// Name returns the benchmark name.
func (r *SuiteResult) Name() string { return r.Bench.Name }

// RunSuite simulates every benchmark on the device concurrently and
// validates each final memory image against the benchmark's Go
// reference oracle — an oracle mismatch is reported in that entry's
// Err, never a silent wrong number. Results are returned in input
// order regardless of completion order, and are bit-identical for
// every worker and SM count. The returned error is non-nil only for
// whole-batch failures (context cancellation); per-benchmark failures
// live in the entries.
//
// Dispatch is cost-aware longest-job-first: entries are claimed by the
// batch's puller goroutines in descending order of estimated
// simulation cost (measured modeled cycles once a cell has run in this
// process, the calibrated static estimate before — the sort is stable,
// so a cold batch dispatches deterministically), and every entry then
// acquires a device-global run-queue slot for its simulation, so suite
// batches share the worker pool — and the queue's cost policy — with
// any streams running on the device. Dispatch order can never change
// results — only which worker simulates what, when.
//
// With WithAutoPartition, heavy entries additionally run as parallel
// CTA waves (see the option's comment); with WithSimCache, entries are
// memoized across passes and devices.
func (d *Device) RunSuite(ctx context.Context, suite []*kernels.Benchmark) ([]*SuiteResult, error) {
	results := make([]*SuiteResult, len(suite))
	for i, b := range suite {
		results[i] = &SuiteResult{Bench: b}
	}
	partitioned := d.partitionPlan(suite)

	// Longest-job-first claim order: descending estimated cost, input
	// order on ties. Claiming in sorted order (rather than submitting
	// everything and leaving admission to the queue's grant policy)
	// keeps the cold dispatch deterministic: a freshly idle queue
	// grants its free slots first-come, so the heaviest entries must be
	// the first to ask.
	order := make([]int, len(suite))
	for i := range order {
		order[i] = i
	}
	cost := make([]int64, len(suite))
	for i, b := range suite {
		cost[i] = estimatedCost(b, d.cfgFP)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost[order[a]] > cost[order[b]]
	})

	// One inflight token covers the batch, so a concurrent Synchronize
	// drains it like any stream work.
	d.inflight.add()
	defer d.inflight.finish()

	workers := d.workers
	if workers > len(suite) {
		workers = len(suite)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var workerPanic atomic.Pointer[PanicError]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go guarded("suite worker", nil, func() {
			defer wg.Done()
			// A panic escaping an entry's safeRun means the claim loop
			// itself broke; record it before wg.Done (defers are LIFO) so
			// the post-Wait sweep below sees it.
			defer func() {
				if v := recover(); v != nil {
					workerPanic.CompareAndSwap(nil, newPanicError("suite worker", v))
				}
			}()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(order) {
					return
				}
				r := results[order[n]]
				if err := ctx.Err(); err != nil {
					r.Err = err
					continue
				}
				// safeRun fails only the panicking entry; this worker keeps
				// claiming the rest of the batch.
				r.Result, r.Err = safeRun("suite entry "+r.Bench.Name, func() (*sm.Result, error) {
					return d.runSuiteEntry(ctx, r.Bench, partitioned[order[n]])
				})
			}
		})()
	}
	wg.Wait()
	if pe := workerPanic.Load(); pe != nil {
		// A dead worker abandons its unclaimed entries; a nil/nil entry
		// would read as a silent success, so fail them explicitly.
		for _, r := range results {
			if r.Result == nil && r.Err == nil {
				r.Err = fmt.Errorf("device: suite entry %s not run: %w", r.Bench.Name, pe)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// partitionPlan decides, per suite entry, whether it runs through the
// wave-partitioned engine. With WithGridPartition everything does;
// with WithAutoPartition exactly the heavy tail does: entries whose
// static cost estimate exceeds the batch mean and whose grid spans at
// least two CTA waves. The plan reads only static batch properties —
// never worker or SM counts, never measured timings — so identical
// batches partition identically on every host, pass and parallelism
// setting.
func (d *Device) partitionPlan(suite []*kernels.Benchmark) []bool {
	plan := make([]bool, len(suite))
	if d.partition {
		for i := range plan {
			plan[i] = true
		}
		return plan
	}
	if !d.autoPart || len(suite) == 0 {
		return plan
	}
	var total int64
	for _, b := range suite {
		total += staticCost(b)
	}
	mean := total / int64(len(suite))
	for i, b := range suite {
		if staticCost(b) <= mean {
			continue
		}
		wave := sm.ResidentCTAs(d.cfg, &exec.Launch{BlockDim: b.Block})
		plan[i] = wave > 0 && b.Grid > wave
	}
	return plan
}

// runSuiteEntry runs one suite entry through the cache (when attached)
// and records its measured cost for future scheduling. With trace
// replay enabled the fill itself goes through the record-once /
// replay-per-point engine (replay.go); the result cache in front of it
// still keys on the full configuration, so each sweep point simulates
// (or replays) at most once. The whole attempt — including the cache
// interaction, so a follower of a transiently failed leader re-runs
// rather than inheriting — sits under the WithRetry transient-retry
// policy (guard.go).
func (d *Device) runSuiteEntry(ctx context.Context, b *kernels.Benchmark, partition bool) (*sm.Result, error) {
	op := "suite entry " + b.Name
	return d.retry(ctx, op, func() (*sm.Result, error) {
		// Convert panics per attempt, inside the retry loop: a panic
		// carrying a transient fault (the hot memory-access site raises
		// error-class faults as panics) stays retry-eligible.
		return safeRun(op, func() (*sm.Result, error) {
			return d.suiteAttempt(ctx, b, partition)
		})
	})
}

// suiteAttempt is one try of one suite entry: fault sites, cache
// interaction and the simulation itself.
func (d *Device) suiteAttempt(ctx context.Context, b *kernels.Benchmark, partition bool) (*sm.Result, error) {
	if err := d.fire(faultinject.SiteSuiteWorker); err != nil {
		return nil, err
	}
	if d.cache == nil {
		return d.runBenchmark(ctx, b, partition)
	}
	fill := func() (*sm.Result, error) {
		if err := d.fire(faultinject.SiteCacheFill); err != nil {
			return nil, err
		}
		if d.traceReplay {
			return d.runBenchmarkTraced(ctx, b, partition)
		}
		return d.runBenchmark(ctx, b, partition)
	}
	return d.cache.getOrRun(ctx, d.simKeyFor(b, partition), fill)
}

// runBenchmark builds the benchmark's launch for the device's
// architecture, runs it (partitioned into CTA waves when asked), and
// checks the oracle. Admission is weighted by the entry's estimated
// cost — measured cycles after the cell has run once in this process,
// the calibrated static estimate cold.
func (d *Device) runBenchmark(ctx context.Context, b *kernels.Benchmark, partition bool) (*sm.Result, error) {
	l, err := b.NewLaunch(d.cfg.Arch != sm.ArchBaseline)
	if err != nil {
		return nil, err
	}
	res, err := d.run(ctx, l, partition, estimatedCost(b, d.cfgFP))
	if err != nil {
		return nil, fmt.Errorf("device: %s on %s: %w", b.Name, d.cfg.Arch, err)
	}
	if !bytes.Equal(l.Global, b.Expected()) {
		return nil, fmt.Errorf("device: %s on %s: simulation diverged from reference", b.Name, d.cfg.Arch)
	}
	recordCost(b, d.cfgFP, res)
	return res, nil
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
