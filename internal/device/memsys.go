package device

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/replay"
	"repro/internal/sm"
)

// The modeled shared memory system (WithL2 / WithInterconnect).
//
// Every run that models the hierarchy times it inline: an SM's L1
// misses and write-through stores enter a crossbar port (package noc),
// cross into the banked, MSHR-backed shared L2 (mem.L2) and the single
// DRAM port behind it at the cycle they leave the L1, and the returned
// ready time flows straight back into scoreboard wake-up — contention
// feeds back into issue timing instead of being estimated post-hoc
// from recorded traces.
//
// Unpartitioned runs wire the single SM's L1 to port 0 of a
// one-port crossbar (l2Port below); one goroutine drives the whole
// system, so timing is naturally deterministic.
//
// Partitioned runs interleave all CTA waves against one shared
// memory-system clock: wave j runs on SM j mod N, waves on one SM
// execute back-to-back (each wave's SM-local start offset is the sum of
// its predecessors' cycles), and a single goroutine drives the N
// resident wave simulations as steppable sm.Runner instances, always
// advancing the SM whose local clock maps to the earliest device time
// (runWavesShared below). Each SM's l2Port carries that device-time
// offset, so the shared L2 and crossbar observe one globally ordered,
// non-decreasing access stream — the idle fast-forward inside a step
// emits no traffic, so single-step granularity cannot reorder accesses
// across SMs. Because the driver is serial and its pick rule is a pure
// function of the configuration — minimum device time, lowest SM index
// on ties — the access order, every contention counter and all merged
// Stats are bit-identical across host worker counts and repeat runs.
// They do (intentionally) depend on the SM count: how many waves share
// the hierarchy at once is an architectural parameter, and more SMs
// mean more interleaved traffic, more queueing and different hit/miss
// interleavings. The default flat-latency path never enters this file
// and stays seed-exact.

// l2Port is the mem.Lower an SM's L1 talks to: one crossbar port in
// front of the shared L2. offset maps the driving SM's wave-local clock
// onto the shared device clock (zero for unpartitioned runs); the port
// translates outgoing cycles into device time and returned ready times
// back, so the SM never observes the shared clock directly.
type l2Port struct {
	xbar       *noc.Crossbar
	port       int
	l2         *mem.L2
	blockBytes int
	offset     int64

	// faults, when armed, fires the mem-access fault site on every
	// access. Access cannot return an error, so error-class faults are
	// raised as panics (faultinject.Plan.MustFire) and recovered at the
	// owning launch's guard boundary.
	faults *faultinject.Plan
}

//sbwi:hotpath
func (p *l2Port) Access(now int64, store bool, block uint32) int64 {
	if p.faults != nil {
		p.faults.MustFire(faultinject.SiteMemAccess)
	}
	deliver := p.xbar.Send(p.port, now+p.offset, p.blockBytes)
	return p.l2.Access(deliver, block, store) - p.offset
}

// smSlot is one SM's place in the shared-clock interleaver: the wave
// currently simulating on it, the crossbar port its L1 uses, and the
// device cycle at which that wave started (the sum of its predecessors'
// cycles on this SM).
type smSlot struct {
	run    *sm.Runner
	port   *l2Port
	global []byte
	wave   int   // index into waves of the running wave
	offset int64 // device-time start of the running wave
}

// runWavesShared simulates a partitioned launch against the shared
// memory system: one goroutine interleaves every CTA wave on the
// configured SMs so all of them contend for one L2/crossbar/DRAM
// pipeline inline. See the file comment for the model and the
// determinism argument. rec/tr thread the trace-replay machinery into
// every wave (see Device.runTraced): a replayed run skips the per-wave
// image snapshots and the final merge because no wave touches memory.
func (d *Device) runWavesShared(ctx context.Context, l *exec.Launch, waves [][2]int, cost int64, rec *replay.Recorder, tr *replay.Trace) (*sm.Result, error) {
	// The driver is one goroutine however many SMs it interleaves, so it
	// occupies a single run-queue slot at the launch's full cost.
	if err := d.acquireSlot(ctx, cost); err != nil {
		return nil, err
	}
	defer d.queue.release()

	var base []byte
	if tr == nil {
		base = make([]byte, len(l.Global))
		copy(base, l.Global)
	}

	l2 := mem.NewL2(d.l2cfg, d.cfg.Mem)
	xbar := noc.New(d.noccfg, d.sms)

	type waveRun struct {
		res    *sm.Result
		global []byte
	}
	runs := make([]waveRun, len(waves))

	slots := make([]smSlot, d.sms)
	start := func(sl *smSlot, w int) error {
		wl := l
		if tr == nil {
			wl = l.CloneWithGlobal(base)
		}
		sl.port.offset = sl.offset
		opts, err := waveOpts(rec, tr, waves[w][0], waves[w][1])
		if err != nil {
			return err
		}
		opts.Lower = sl.port
		run, err := sm.NewRunner(d.cfg, wl, waves[w][0], waves[w][1], opts)
		if err != nil {
			return err
		}
		sl.run, sl.global, sl.wave = run, wl.Global, w
		return nil
	}
	for i := range slots {
		slots[i].port = &l2Port{xbar: xbar, port: i, l2: l2, blockBytes: d.cfg.Mem.BlockBytes, faults: d.faults}
		if i < len(waves) {
			if err := start(&slots[i], i); err != nil {
				return nil, err
			}
		}
	}

	remaining := len(waves)
	for steps := 0; remaining > 0; steps++ {
		if steps&1023 == 0 {
			select {
			case <-ctx.Done():
				return nil, diagnoseAbort(ctx, slots)
			default:
			}
		}
		// Advance the SM whose local clock maps to the earliest device
		// time; strict < makes ties resolve to the lowest SM index.
		best := -1
		var bestT int64
		for i := range slots {
			sl := &slots[i]
			if sl.run == nil {
				continue
			}
			if t := sl.offset + sl.run.Now(); best < 0 || t < bestT {
				best, bestT = i, t
			}
		}
		sl := &slots[best]
		done, err := sl.run.Step()
		if err != nil {
			return nil, err
		}
		if !done {
			continue
		}
		res := sl.run.Result()
		runs[sl.wave] = waveRun{res: res, global: sl.global}
		sl.offset += res.Stats.Cycles
		sl.run = nil
		remaining--
		if next := sl.wave + d.sms; next < len(waves) {
			if err := start(sl, next); err != nil {
				return nil, err
			}
		}
	}

	if tr == nil {
		if err := d.fire(faultinject.SiteWaveMerge); err != nil {
			return nil, err
		}
		images := make([][]byte, len(runs))
		for i := range runs {
			images[i] = runs[i].global
		}
		if err := exec.MergeWaves(l.Global, base, images); err != nil {
			return nil, fmt.Errorf("device: %s: %w", l.Prog.Name, err)
		}
	}

	out := &sm.Result{
		Trace:    runs[0].res.Trace, // wave clocks overlap; keep the first wave's trace
		Waves:    make([]sm.Stats, len(runs)),
		SMCycles: make([]int64, d.sms),
		NoCPorts: make([]noc.Stats, d.sms),
	}
	for i := range runs {
		out.Waves[i] = runs[i].res.Stats
		out.Stats.Merge(&runs[i].res.Stats)
	}
	for i := range slots {
		out.SMCycles[i] = slots[i].offset
		out.NoCPorts[i] = xbar.PortStats(i)
	}
	out.Stats.Mem.L2 = l2.Stats
	out.Stats.Mem.NoC = xbar.Stats()
	return out, nil
}

// diagnoseAbort renders an abort observed by the interleaving driver
// through the first still-live SM, so a watchdog cancellation carries
// that SM's partial-state snapshot (sm.Runner.Diagnose) instead of a
// bare context error.
func diagnoseAbort(ctx context.Context, slots []smSlot) error {
	for i := range slots {
		if slots[i].run != nil {
			return slots[i].run.Diagnose(ctx)
		}
	}
	return ctx.Err()
}
