package device

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// The modeled shared memory system (WithL2 / WithInterconnect).
//
// Unpartitioned runs route the single SM's L1 misses through an
// interconnect port into the shared L2 inline (l2Port below): one
// goroutine drives the whole system, so timing is naturally
// deterministic and Stats.Cycles itself reflects the L1→NoC→L2→DRAM
// path.
//
// Partitioned runs keep the wave simulations embarrassingly parallel
// — each wave records its DRAM-bound transaction stream while running
// under the seed's flat-latency model — and the device then replays
// the recorded streams through the shared L2 and crossbar in two
// single-threaded passes:
//
//  1. A canonical pass in (wave-local cycle, wave index) order, with
//     one crossbar port per wave, produces the L2/NoC counters merged
//     into Result.Stats. Its ordering never references the SM count or
//     the host workers, so merged statistics stay bit-identical for
//     any WithSMs/WithWorkers setting — the determinism contract the
//     rest of the engine already honors.
//  2. A timing pass in device-time order — wave j runs on SM j mod N,
//     waves on one SM execute back-to-back, so each wave's transactions
//     shift by its SM-local start offset — stretches every SM's busy
//     time by the worst lag of its load data behind the recorded
//     flat-latency schedule (modeled NoC queue + L2 bank + shared DRAM
//     port return time, minus the return time the wave simulation
//     assumed). Taking the maximum rather than the sum models the
//     memory-level parallelism the SM pipeline already exploits:
//     overlapping delays do not add, while under sustained bandwidth
//     saturation the lag of the last transaction grows with the whole
//     stream's overflow, which yields the correct
//     traffic/shared-bandwidth asymptote. The per-SM stretches land in
//     Result.SMCycles, making DeviceCycles contention-aware: narrower
//     ports or more SMs sharing the L2 mean more queueing and a longer
//     modeled wall-clock.
//
// The split is a deliberate modeling choice, not an accident: the
// reference stream (what is fetched, in program order) is kept
// SM-count independent, and the SM count only reshapes time.

// l2Port is the mem.Lower an inline run's L1 talks to: one crossbar
// port in front of the shared L2.
type l2Port struct {
	xbar       *noc.Crossbar
	port       int
	l2         *mem.L2
	blockBytes int
}

func (p *l2Port) Access(now int64, store bool, block uint32) int64 {
	deliver := p.xbar.Send(p.port, now, p.blockBytes)
	return p.l2.Access(deliver, block, store)
}

// replayEvent is one recorded transaction placed on the replay
// timeline.
type replayEvent struct {
	at   int64 // replay-order arrival cycle
	port int   // crossbar port (wave index or SM index, per pass)
	seq  int   // tie-break: global sequence in (wave, intra-wave) order
	ev   mem.Access
	base int64 // flat-latency return time on the same timeline (loads)
}

// sortEvents orders a replay timeline deterministically.
func sortEvents(events []replayEvent) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].seq < events[j].seq
	})
}

// replay drives events (already sorted) through a fresh crossbar and
// L2, returning both and each port's schedule stretch: the worst lag
// of a load's modeled return time behind its flat-latency baseline,
// never negative (data arriving early cannot compress a schedule that
// already consumed it on time).
func (d *Device) replay(events []replayEvent, ports int) (*noc.Crossbar, *mem.L2, []int64) {
	xbar := noc.New(d.noccfg, ports)
	l2 := mem.NewL2(d.l2cfg, d.cfg.Mem)
	stretch := make([]int64, ports)
	for _, e := range events {
		deliver := xbar.Send(e.port, e.at, d.cfg.Mem.BlockBytes)
		ready := l2.Access(deliver, e.ev.Block, e.ev.Store)
		if !e.ev.Store {
			if lag := ready - e.base; lag > stretch[e.port] {
				stretch[e.port] = lag
			}
		}
	}
	return xbar, l2, stretch
}

// modelContention fills the merged result's shared-memory-system
// counters and re-times SMCycles from the waves' recorded transaction
// streams; see the file comment for the model.
func (d *Device) modelContention(out *sm.Result, traces [][]mem.Access) {
	// Pass 1: canonical reference stream, one port per wave, ordered by
	// (wave-local cycle, wave index) — independent of SMs and workers.
	var events []replayEvent
	seq := 0
	for w, tr := range traces {
		for _, ev := range tr {
			events = append(events, replayEvent{at: ev.Cycle, port: w, seq: seq, ev: ev})
			seq++
		}
	}
	// seq increments in (wave, intra-wave) order, so same-cycle ties
	// resolve canonically by wave index.
	sortEvents(events)
	xbar, l2, _ := d.replay(events, len(traces))
	out.Stats.Mem.L2 = l2.Stats
	out.Stats.Mem.NoC = xbar.Stats()

	// Pass 2: device-time replay across the configured SMs. Wave j runs
	// on SM j mod N starting at the sum of its predecessors' cycles on
	// that SM (the same packing SMCycles already models).
	offsets := make([]int64, len(traces))
	smBusy := make([]int64, d.sms)
	for w := range traces {
		smID := w % d.sms
		offsets[w] = smBusy[smID]
		smBusy[smID] += out.Waves[w].Cycles
	}
	timed := events[:0] // reuse the backing array; same length
	seq = 0
	for w, tr := range traces {
		for _, ev := range tr {
			timed = append(timed, replayEvent{
				at:   offsets[w] + ev.Cycle,
				port: w % d.sms,
				seq:  seq,
				ev:   ev,
				base: offsets[w] + ev.Ready,
			})
			seq++
		}
	}
	sortEvents(timed)
	xbar2, _, stretch := d.replay(timed, d.sms)
	for i := range out.SMCycles {
		out.SMCycles[i] += stretch[i]
	}
	// Surface the device-time pass's per-SM port counters: how each
	// SM's share of the recorded traffic queued on its injection port
	// under the configured packing. The totals (requests, bytes) match
	// the canonical Stats.Mem.NoC counters — same events, different
	// port mapping — while the queueing columns show the per-SM skew.
	out.NoCPorts = make([]noc.Stats, d.sms)
	for i := range out.NoCPorts {
		out.NoCPorts[i] = xbar2.PortStats(i)
	}
}
