package device

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/sm"
)

// streamSuite picks a spread of cheap suite kernels for the
// interleaving tests: multi-wave irregulars and single-wave regulars.
func streamSuite(t *testing.T) []*kernels.Benchmark {
	t.Helper()
	var out []*kernels.Benchmark
	for _, name := range []string{"Histogram", "BFS", "DWTHaar1D", "MatrixMul", "Transpose", "BlackScholes"} {
		b, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestStreamInterleavingDeterminism is the stream API's acceptance
// contract: N launches submitted across 1, 2 and 8 streams, under 1
// and 4 workers (run with -race in CI), produce per-launch Stats
// bit-identical to what sequential synchronous Device.Run produces,
// and final memory images that still match each benchmark's oracle.
func TestStreamInterleavingDeterminism(t *testing.T) {
	leakcheck.Check(t)
	suite := streamSuite(t)
	ctx := context.Background()

	// Sequential reference: one synchronous Run per benchmark.
	ref := make(map[string]sm.Stats, len(suite))
	refDev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range suite {
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := refDev.Run(ctx, l)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		ref[b.Name] = res.Stats
	}

	// Two rounds over the suite, round-robined across the streams.
	launches := append(append([]*kernels.Benchmark{}, suite...), suite...)
	for _, nStreams := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			streams := make([]*Stream, nStreams)
			for i := range streams {
				streams[i] = dev.NewStream()
			}
			type sub struct {
				bench   *kernels.Benchmark
				launch  *exec.Launch
				pending *Pending
			}
			subs := make([]sub, len(launches))
			for i, b := range launches {
				l, err := b.NewLaunch(true)
				if err != nil {
					t.Fatal(err)
				}
				subs[i] = sub{bench: b, launch: l, pending: streams[i%nStreams].Launch(ctx, l)}
			}
			if err := dev.Synchronize(ctx); err != nil {
				t.Fatal(err)
			}
			for _, s := range subs {
				res, err := s.pending.Wait()
				if err != nil {
					t.Fatalf("streams=%d workers=%d: %s: %v", nStreams, workers, s.bench.Name, err)
				}
				if !reflect.DeepEqual(res.Stats, ref[s.bench.Name]) {
					t.Errorf("streams=%d workers=%d: %s: stream stats differ from the synchronous path",
						nStreams, workers, s.bench.Name)
				}
				if !bytes.Equal(s.launch.Global, s.bench.Expected()) {
					t.Errorf("streams=%d workers=%d: %s: final memory diverged from the oracle",
						nStreams, workers, s.bench.Name)
				}
			}
		}
	}
}

// counterProgram builds a one-warp kernel that increments the 32-bit
// word at %p0 — FIFO-observable state shared between launches.
func counterProgram(t *testing.T) *exec.Launch {
	t.Helper()
	prog := mustProgram(t, "counter", `
	mov  r1, %p0
	ld.g r2, [r1]
	iadd r2, r2, 1
	st.g [r1], r2
	exit
`)
	return &exec.Launch{Prog: prog, GridDim: 1, BlockDim: 32, Global: make([]byte, 4)}
}

// TestStreamFIFOOrder: launches on one stream execute strictly in
// enqueue order even with idle workers. Every launch increments the
// same global counter through a shared memory image; concurrent or
// reordered execution would race on the slice (caught by -race) and
// miss increments.
func TestStreamFIFOOrder(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	base := counterProgram(t)
	s := dev.NewStream()
	const n = 16
	pendings := make([]*Pending, n)
	for i := range pendings {
		l := &exec.Launch{Prog: base.Prog, GridDim: 1, BlockDim: 32, Global: base.Global}
		pendings[i] = s.Launch(context.Background(), l)
	}
	for i, p := range pendings {
		if _, err := p.Wait(); err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
	}
	if got := binary.LittleEndian.Uint32(base.Global); got != n {
		t.Errorf("counter = %d after %d FIFO launches, want %d", got, n, n)
	}
}

// spinLaunch builds a launch that simulates long enough to cancel
// mid-flight.
func spinLaunch(t *testing.T) *exec.Launch {
	t.Helper()
	prog := mustProgram(t, "spin", `
	mov  r1, 0
	mov  r2, 1000000
loop:
	iadd r1, r1, 1
	isetp.lt r3, r1, r2
	bra  r3, loop
	exit
`)
	return &exec.Launch{Prog: prog, GridDim: 64, BlockDim: 256}
}

// TestStreamCancellationMidStream pins the failure semantics: a launch
// cancelled mid-simulation completes with ctx.Err(), every entry
// enqueued after it on the same stream fails fast without simulating
// (the poison wraps the original cancellation so errors.Is still sees
// it), and other streams on the device are unaffected.
func TestStreamCancellationMidStream(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	poisoned := dev.NewStream()
	p1 := poisoned.Launch(ctx, spinLaunch(t))
	b, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	mkBFS := func() *exec.Launch {
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Enqueued after the doomed launch, with their own live contexts:
	// must fail fast by poison, not run.
	p2 := poisoned.Launch(context.Background(), mkBFS())
	p3 := poisoned.Launch(context.Background(), mkBFS())

	healthy := dev.NewStream()
	q1 := healthy.Launch(context.Background(), mkBFS())

	time.Sleep(20 * time.Millisecond)
	cancel()

	if _, err := p1.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled launch returned %v, want context.Canceled", err)
	}
	start := time.Now()
	for i, p := range []*Pending{p2, p3} {
		res, err := p.Wait()
		if res != nil {
			t.Errorf("poisoned entry %d returned a result — it must not simulate", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("poisoned entry %d error = %v, want it to wrap context.Canceled", i, err)
		}
		if err == nil || !strings.Contains(err.Error(), "earlier stream operation failed") {
			t.Errorf("poisoned entry %d error = %v, want the poison wrap", i, err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("poisoned entries took %v to fail, want fail-fast", d)
	}

	// Poison is sticky: work enqueued after the failure fails too, and
	// an event recorded on the poisoned stream reports the failure.
	if _, err := poisoned.Launch(context.Background(), mkBFS()).Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("post-failure launch error = %v, want sticky poison", err)
	}
	if err := poisoned.Record().Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("event on poisoned stream waited to %v, want the recorded failure", err)
	}

	// The sibling stream is unaffected.
	if _, err := q1.Wait(); err != nil {
		t.Errorf("healthy stream: %v", err)
	}
}

// TestEventCrossStreamDependency: WaitEvent orders work across
// streams. Stream A writes a value to shared memory; stream B waits on
// A's recorded event before reading it — without the edge the two
// launches would race on the shared image (-race would flag it).
func TestEventCrossStreamDependency(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	writer := mustProgram(t, "writer", `
	mov  r1, %p0
	mov  r2, 42
	st.g [r1], r2
	exit
`)
	reader := mustProgram(t, "reader", `
	mov  r1, %p0
	ld.g r2, [r1]
	iadd r3, r1, 4
	st.g [r3], r2
	exit
`)
	global := make([]byte, 8)
	ctx := context.Background()

	a, bStream := dev.NewStream(), dev.NewStream()
	a.Launch(ctx, &exec.Launch{Prog: writer, GridDim: 1, BlockDim: 32, Global: global})
	ev := a.Record()
	bStream.WaitEvent(ev)
	rp := bStream.Launch(ctx, &exec.Launch{Prog: reader, GridDim: 1, BlockDim: 32, Global: global})
	if _, err := rp.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(global[4:]); got != 42 {
		t.Errorf("reader saw %d, want the writer's 42 — event edge did not order the streams", got)
	}
	if err := ev.Wait(ctx); err != nil {
		t.Errorf("completed event waits to %v", err)
	}
	if err := dev.NewStream().Record().Wait(ctx); err != nil {
		t.Errorf("event on an empty stream must complete immediately, got %v", err)
	}
}

// TestDeviceSynchronize: Synchronize returns only once everything in
// flight — across streams — has completed, and honors its context.
func TestDeviceSynchronize(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	var pendings []*Pending
	for i := 0; i < 3; i++ {
		l, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, dev.NewStream().Launch(context.Background(), l))
	}
	if err := dev.Synchronize(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		select {
		case <-p.Done():
		default:
			t.Errorf("launch %d still pending after Synchronize", i)
		}
	}

	// A spinning launch keeps the device busy: Synchronize must give up
	// with the context's error, and drain cleanly once the spin is
	// cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	spin := dev.NewStream().Launch(ctx, spinLaunch(t))
	short, cancelShort := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelShort()
	if err := dev.Synchronize(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Synchronize on a busy device returned %v, want deadline exceeded", err)
	}
	cancel()
	if err := dev.Synchronize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := spin.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("spin launch returned %v, want context.Canceled", err)
	}
}

// TestStreamQueueDepthBackpressure: with WithStreamQueueDepth(1) a
// second Launch blocks until the stream drains; a context expiring
// during the block yields an already-failed Pending.
func TestStreamQueueDepthBackpressure(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(1), WithStreamQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := dev.NewStream()
	p1 := s.Launch(ctx, spinLaunch(t))

	short, cancelShort := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelShort()
	p2 := s.Launch(short, spinLaunch(t))
	if _, err := p2.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("backpressured launch returned %v, want deadline exceeded", err)
	}
	select {
	case <-p1.Done():
		t.Error("first launch completed before its cancellation")
	default:
	}
	cancel()
	if _, err := p1.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("first launch returned %v, want context.Canceled", err)
	}
	if err := dev.Synchronize(context.Background()); err != nil {
		t.Fatal(err)
	}

	// New creation-time validation: a negative depth is rejected.
	if _, err := New(WithStreamQueueDepth(-1)); err == nil {
		t.Error("negative stream queue depth must be rejected")
	}
}

// TestRunQueueGrantOrder pins the admission policy: a freed slot goes
// to the highest-cost waiter, equal costs FIFO.
func TestRunQueueGrantOrder(t *testing.T) {
	leakcheck.Check(t)
	q := NewRunQueue(1)
	ctx := context.Background()
	if err := q.acquire(ctx, 0); err != nil { // occupy the only slot
		t.Fatal(err)
	}
	costs := []int64{1, 100, 10, 100}
	var mu sync.Mutex
	var got []int64
	var wg sync.WaitGroup
	for i, c := range costs {
		wg.Add(1)
		go func(c int64) {
			defer wg.Done()
			if err := q.acquire(ctx, c); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got = append(got, c)
			mu.Unlock()
			q.release()
		}(c)
		// Register waiters one at a time so arrival order (the FIFO
		// tie-break) is deterministic.
		for q.waiting() != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	q.release() // start the cascade
	wg.Wait()
	want := []int64{100, 100, 10, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grant order = %v, want %v (LJF, FIFO ties)", got, want)
	}
}

// TestRunQueueCancelledWaiter: a waiter abandoning the queue neither
// blocks later grants nor leaks its would-be slot.
func TestRunQueueCancelledWaiter(t *testing.T) {
	leakcheck.Check(t)
	q := NewRunQueue(1)
	if err := q.acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() { errc <- q.acquire(ctx, 99) }()
	for q.waiting() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	q.release()
	// The slot must be free again for an uncontended acquire.
	done := make(chan struct{})
	go func() {
		if err := q.acquire(context.Background(), 0); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slot leaked: acquire after release never returned")
	}
	q.release()
}
