package device

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/sm"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(WithSMs(0)); err == nil {
		t.Error("zero SMs must be rejected")
	}
	bad := sm.Configure(sm.ArchSBI)
	bad.NumWarps = -1
	if _, err := New(WithConfig(bad)); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestOptionOrder(t *testing.T) {
	// Field modifiers apply on top of whichever base is selected,
	// regardless of position relative to WithArch.
	dev, err := New(
		WithModifier(func(c *sm.Config) { c.Seed = 42 }),
		WithArch(sm.ArchSWI),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dev.Config()
	if cfg.Arch != sm.ArchSWI || cfg.Seed != 42 {
		t.Errorf("cfg = arch %v seed %d", cfg.Arch, cfg.Seed)
	}
	if dev.SMs() != 1 || dev.Workers() <= 0 {
		t.Errorf("defaults: sms %d workers %d", dev.SMs(), dev.Workers())
	}
}

func TestRunSuiteReportsOracleMismatch(t *testing.T) {
	leakcheck.Check(t)
	good, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	// A benchmark whose oracle disagrees with its kernel: RunSuite must
	// flag it instead of returning silently wrong statistics.
	bad := &kernels.Benchmark{
		Name: "BadOracle", Grid: 1, Block: 32,
		Source: `
	mov  r1, %tid
	shl  r2, r1, 2
	mov  r3, %p0
	iadd r3, r3, r2
	st.g [r3], r1
	exit
`,
		Setup: func(*kernels.Benchmark) ([]byte, [isa.NumParams]uint32) {
			return make([]byte, 32*4), [isa.NumParams]uint32{}
		},
		Reference: func(_ *kernels.Benchmark, global []byte, _ [isa.NumParams]uint32) {
			global[0] = 0xFF // deliberately wrong
		},
		FrontierLayout: true,
	}
	dev, err := New(WithArch(sm.ArchSBISWI))
	if err != nil {
		t.Fatal(err)
	}
	results, err := dev.RunSuite(context.Background(), []*kernels.Benchmark{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("Histogram: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "diverged from reference") {
		t.Errorf("BadOracle err = %v, want oracle mismatch", results[1].Err)
	}
}

func TestPartitionedRunMatchesFunctionally(t *testing.T) {
	// The partitioned engine must produce the same memory image as the
	// whole-grid run, and its per-wave stats must sum to the merged
	// stats.
	b, ok := kernels.ByName("BFS")
	if !ok {
		t.Fatal("BFS missing")
	}
	whole, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Run(sm.Configure(sm.ArchSBISWI), whole); err != nil {
		t.Fatal(err)
	}

	dev, err := New(WithArch(sm.ArchSBISWI), WithSMs(3), WithGridPartition(true))
	if err != nil {
		t.Fatal(err)
	}
	part, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), part)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(part.Global, whole.Global) {
		t.Error("partitioned memory image differs from the whole-grid run")
	}
	var sum sm.Stats
	for i := range res.Waves {
		sum.Merge(&res.Waves[i])
	}
	if !reflect.DeepEqual(sum, res.Stats) {
		t.Error("merged stats are not the fold of the per-wave stats")
	}
	var smSum int64
	for _, c := range res.SMCycles {
		smSum += c
	}
	if smSum != res.Stats.Cycles {
		t.Errorf("SMCycles sum %d != aggregate cycles %d", smSum, res.Stats.Cycles)
	}
}

func TestPartitionedRunDetectsWriteConflicts(t *testing.T) {
	// Every CTA writes a CTA-dependent value to the same global word —
	// the contract violation the merge must catch.
	prog := mustProgram(t, "conflict", `
	mov  r1, %ctaid
	iadd r1, r1, 1
	mov  r2, %p0
	st.g [r2], r1
	exit
`)
	// block 256 -> 4 warps per CTA -> 4 resident CTAs, so grid 8 spans
	// two waves whose CTAs write different values to the same word.
	l := &exec.Launch{Prog: prog, GridDim: 8, BlockDim: 256, Global: make([]byte, 64)}
	dev, err := New(WithArch(sm.ArchSBISWI), WithSMs(2), WithGridPartition(true))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.Run(context.Background(), l)
	var conflict *exec.WriteConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("err = %v, want a WriteConflict", err)
	}
}

func mustProgram(t *testing.T, name, src string) *isa.Program {
	t.Helper()
	b := &kernels.Benchmark{
		Name: name, Grid: 1, Block: 1, Source: src,
		Setup: func(*kernels.Benchmark) ([]byte, [isa.NumParams]uint32) {
			return nil, [isa.NumParams]uint32{}
		},
		Reference:      func(*kernels.Benchmark, []byte, [isa.NumParams]uint32) {},
		FrontierLayout: true,
	}
	p, err := b.Program(true)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
