package device

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// TestTraceReplaySuiteSweepEquivalence is the end-to-end acceptance
// test for the trace-replay engine: a timing sweep routed through
// WithTraceReplay — one shared SimCache, so the first point records and
// later points replay — must produce statistics bit-identical to fresh
// full-simulation devices at every sweep point, while the racy
// benchmarks (BFS) fall back to full simulation with the reason logged
// exactly once per benchmark.
func TestTraceReplaySuiteSweepEquivalence(t *testing.T) {
	suite := kernels.Irregular()
	cache := NewSimCache()
	var log bytes.Buffer
	lats := []int64{2, 8, 32}
	if testing.Short() {
		lats = []int64{2, 32}
	}
	replayed := 0
	for _, lat := range lats {
		cfg := sm.Configure(sm.ArchSBISWI)
		cfg.ExecLatency = lat
		traced, err := New(WithConfig(cfg), WithSimCache(cache), WithTraceReplay(true), WithReplayLog(&log))
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := traced.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := full.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rt {
			if rt[i].Err != nil || rf[i].Err != nil {
				t.Fatalf("lat %d: %s: traced err %v, full err %v", lat, rt[i].Name(), rt[i].Err, rf[i].Err)
			}
			if rt[i].Result.Stats != rf[i].Result.Stats {
				t.Errorf("lat %d: %s: replay-routed stats diverged from full simulation\n got: %+v\nwant: %+v",
					lat, rt[i].Name(), rt[i].Result.Stats, rf[i].Result.Stats)
			}
			if rt[i].Result.Replayed {
				replayed++
				if rt[i].Name() == "BFS" {
					t.Errorf("lat %d: racy BFS was replayed", lat)
				}
			}
		}
	}
	if replayed == 0 {
		t.Error("no sweep point was served by replay — the engine never engaged")
	}
	if n := strings.Count(log.String(), "outside the trace-replay validity domain"); n != 1 {
		t.Errorf("fallback reason logged %d times, want exactly once (per benchmark, per trace key):\n%s", n, log.String())
	}
	if !strings.Contains(log.String(), "BFS") {
		t.Errorf("fallback log does not name the racy benchmark:\n%s", log.String())
	}
}

// TestTraceReplayMemsysEquivalence pins replay equivalence on the
// heaviest timing path: partitioned multi-SM waves against the shared
// inline L2/NoC clock, swept over interconnect bandwidth. Stats and the
// modeled device wall-clock must match full simulation bit-for-bit.
// Run under -race in CI, this also proves replaying waves may share the
// launch read-only.
func TestTraceReplayMemsysEquivalence(t *testing.T) {
	suite := memsysSuite(t)
	cache := NewSimCache()
	var log bytes.Buffer
	for _, bw := range []float64{32, 8} {
		nc := noc.Default()
		nc.BytesPerCycle = bw
		opts := []Option{
			WithArch(sm.ArchSBISWI),
			WithSMs(4),
			WithGridPartition(true),
			WithL2(mem.DefaultL2()),
			WithInterconnect(nc),
		}
		traced, err := New(append([]Option{WithSimCache(cache), WithTraceReplay(true), WithReplayLog(&log)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := traced.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := full.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rt {
			if rt[i].Err != nil || rf[i].Err != nil {
				t.Fatalf("bw %g: %s: traced err %v, full err %v", bw, rt[i].Name(), rt[i].Err, rf[i].Err)
			}
			if rt[i].Result.Stats != rf[i].Result.Stats {
				t.Errorf("bw %g: %s: replay-routed stats diverged from full simulation", bw, rt[i].Name())
			}
			if got, want := rt[i].Result.DeviceCycles(), rf[i].Result.DeviceCycles(); got != want {
				t.Errorf("bw %g: %s: replayed DeviceCycles %d != full simulation's %d", bw, rt[i].Name(), got, want)
			}
		}
	}
}

// TestRunTraceReplay exercises the one-launch entry point: a race-free
// launch records, replays, passes the internal stats backstop and
// returns Replayed with the recording run's memory image; a racy launch
// returns the full simulation's result with the reason logged.
func TestRunTraceReplay(t *testing.T) {
	b, ok := kernels.ByName("Transpose")
	if !ok {
		t.Fatal("Transpose missing")
	}
	var log bytes.Buffer
	dev, err := New(WithArch(sm.ArchSBISWI), WithReplayLog(&log))
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunTraceReplay(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed {
		t.Error("race-free launch was not replayed")
	}
	if !bytes.Equal(l.Global, b.Expected()) {
		t.Error("recording run left a wrong memory image")
	}

	racy := mustProgram(t, "racy", `
	mov  r1, %tid
	mov  r2, %p0
	st.g [r2], r1
	exit
`)
	rl := &exec.Launch{Prog: racy, GridDim: 2, BlockDim: 64, Global: make([]byte, 64)}
	res, err = dev.RunTraceReplay(context.Background(), rl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed {
		t.Error("racy launch reported as replayed")
	}
	if !strings.Contains(log.String(), "outside the trace-replay validity domain") {
		t.Errorf("racy launch's fallback reason not logged:\n%s", log.String())
	}
}
