package device

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sm"
)

// Panic isolation, the wall-clock watchdog and the transient-retry
// policy: the hardened failure plane of the device layer.
//
// # Panic isolation
//
// A panicking kernel, a misuse of the option surface, or a bug in any
// layer below must fail only the launch (or stream, or suite entry)
// that triggered it — never the Device, the RunQueue or sibling
// streams. Every goroutine the device spawns therefore runs a
// guarded(...) body (enforced statically by the sbwi-lint goguard
// analyzer), and every spawn site recovers panics inline, converting
// them into a typed *PanicError before its completion bookkeeping runs:
// a Pending must be completed before the inflight counter drops, or
// Synchronize could observe an idle device while a future is still
// unresolved. guarded itself is the last-resort backstop for a panic
// escaping a site's own recovery (a bug in the recovery path): it keeps
// the process alive and reports to stderr.
//
// # Watchdog
//
// WithLaunchTimeout(d) bounds each launch's host wall-clock time —
// queueing, admission and simulation. The watchdog cancels the launch's
// context with a cause wrapping sm.ErrLaunchTimeout; the SM poll loop
// (and the memsys interleaver via sm.Runner.Diagnose) converts that
// cause into a *sm.TimeoutError carrying the dumpState partial-state
// snapshot. Wall-clock state never reaches modeled cycles: the watchdog
// can only abort a simulation, not change what it computes.
//
// # Transient retry
//
// WithRetry(n) re-runs a failed suite entry up to n extra times when
// its failure is transient-class (faultinject.IsTransient — an error
// chain exposing Transient() bool true, including through a
// panic-to-error conversion), with exponential backoff between
// attempts. Only suite entries retry: each attempt builds a fresh
// launch from the benchmark generator, so a retry can never observe a
// partially mutated image. Raw Device.Run / stream launches mutate the
// caller's global image in place and are never retried.

// PanicError is a panic converted to an error at a device goroutine
// boundary: what was running (including the launch identity when
// known), the recovered value, and the panicking goroutine's stack.
type PanicError struct {
	Op    string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("device: panic in %s: %v", e.Op, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so errors.Is/
// errors.As — and the transient-fault classification behind WithRetry —
// see through the panic-to-error conversion.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

func newPanicError(op string, v any) *PanicError {
	return &PanicError{Op: op, Value: v, Stack: debug.Stack()}
}

// guarded wraps fn as a panic-isolated goroutine body; every device
// goroutine spawns one:
//
//	go guarded(op, catch, fn)()
//
// The form is enforced by the sbwi-lint goguard analyzer. If a panic
// escapes fn it is converted to a *PanicError and handed to catch; with
// a nil catch it is reported to stderr — the process survives either
// way. Spawn sites whose recovery must be ordered before their
// completion bookkeeping (see the file comment) recover inline within
// fn and use guarded purely as the backstop.
func guarded(op string, catch func(*PanicError), fn func()) func() {
	return func() {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			pe := newPanicError(op, v)
			if catch != nil {
				catch(pe)
				return
			}
			fmt.Fprintf(os.Stderr, "device: unhandled panic in %s: %v\n%s", op, pe.Value, pe.Stack)
		}()
		fn()
	}
}

// safeRun invokes fn with panics converted to a *PanicError result, so
// a panicking suite entry fails only itself while its worker goroutine
// keeps claiming the rest of the batch.
func safeRun(op string, fn func() (*sm.Result, error)) (res *sm.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, newPanicError(op, v)
		}
	}()
	return fn()
}

// WithFaultPlan arms the device with a compiled fault-injection
// schedule (faultinject.NewPlan(seed, spec)): every instrumented site —
// queue acquire, stream dispatch, suite worker, wave merge, cache fill,
// memory access, replay fallback — fires the plan on each pass. Nil
// (the default) disarms injection entirely; a disarmed site costs one
// nil check. This is chaos-test infrastructure: the hardening it
// exercises is always on, the faults are strictly opt-in.
func WithFaultPlan(p *faultinject.Plan) Option {
	return func(s *settings) { s.faults = p }
}

// WithLaunchTimeout bounds each launch's host wall-clock time —
// queueing, admission and simulation together. A launch exceeding d is
// aborted with a *sm.TimeoutError (errors.Is(err, sm.ErrLaunchTimeout))
// carrying a partial-state snapshot of the stuck SM, instead of hanging
// its Pending and every Synchronize behind it. 0 (the default) means no
// watchdog. The watchdog never changes what a surviving simulation
// computes — wall-clock time can only abort a run, not retime it.
func WithLaunchTimeout(d time.Duration) Option {
	return func(s *settings) { s.launchTimeout = d }
}

// WithRetry lets RunSuite/SubmitBenchmark entries re-run after
// transient-class failures (faultinject.IsTransient) up to n extra
// attempts, with exponential backoff starting at 1ms between attempts.
// Each attempt is a fresh launch built from the benchmark's generator,
// so retries never observe partial state. Non-transient failures —
// cancellations, oracle mismatches, livelocks, panics that were not
// themselves transient faults — surface immediately. 0 (the default)
// disables retry.
func WithRetry(n int) Option {
	return func(s *settings) { s.retries = n }
}

// fire triggers the device's fault plan at site; nil plan, nil error.
func (d *Device) fire(site faultinject.Site) error {
	if d.faults == nil {
		return nil
	}
	return d.faults.Fire(site)
}

// acquireSlot admits one simulation through the device's run queue,
// with the queue-acquire fault site in front and watchdog-cause mapping
// behind: a slot wait aborted by the launch watchdog reports the
// timeout, not a bare cancellation.
func (d *Device) acquireSlot(ctx context.Context, cost int64) error {
	if err := d.fire(faultinject.SiteQueueAcquire); err != nil {
		return err
	}
	if err := d.queue.acquire(ctx, cost); err != nil {
		return watchdogErr(ctx, err)
	}
	return nil
}

// watchdogErr upgrades a bare context error to the context's
// cancellation cause when that cause is the launch watchdog, so a
// launch that timed out before reaching an SM (still queued, still
// waiting on a predecessor) keeps its timeout identity.
func watchdogErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && errors.Is(cause, sm.ErrLaunchTimeout) {
		return cause
	}
	return err
}

// watchdogCtx derives a launch's watchdog context: after d of host
// wall-clock time it cancels the context with a cause wrapping
// sm.ErrLaunchTimeout, which the SM poll loop (or the memsys
// interleaver via Runner.Diagnose) converts into a partial-state
// *sm.TimeoutError. stop releases the timer and must be deferred.
func watchdogCtx(ctx context.Context, d time.Duration) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(ctx)
	//sbwi:wallclock-ok the watchdog bounds host wall-clock only; it aborts a launch, it never reaches modeled cycles
	t := time.AfterFunc(d, func() {
		cancel(fmt.Errorf("device: launch ran longer than the %v watchdog: %w", d, sm.ErrLaunchTimeout))
	})
	return ctx, func() {
		t.Stop()
		cancel(nil)
	}
}

// retryBaseBackoff is the first wait of the transient-retry policy;
// each further attempt doubles it.
const retryBaseBackoff = time.Millisecond

// retry applies the WithRetry policy around one suite-entry attempt:
// re-run fn after a transient-class failure, up to d.retries extra
// attempts, doubling the backoff each time. Cancellation during the
// backoff wait surfaces the context error immediately. Every retry is
// reported to the diagnostics log — degradations are loud.
func (d *Device) retry(ctx context.Context, what string, fn func() (*sm.Result, error)) (*sm.Result, error) {
	res, err := fn()
	if d.retries <= 0 {
		return res, err
	}
	backoff := retryBaseBackoff
	for attempt := 1; err != nil && attempt <= d.retries && faultinject.IsTransient(err) && ctx.Err() == nil; attempt++ {
		d.degradef("device: %s: transient failure, retry %d/%d after %v: %v", what, attempt, d.retries, backoff, err)
		//sbwi:wallclock-ok retry backoff delays the host-side re-execution of a failed attempt; it never reaches modeled cycles
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, watchdogErr(ctx, ctx.Err())
		}
		backoff *= 2
		res, err = fn()
	}
	return res, err
}

// degradef reports a degradation event — work the device completed (or
// will re-attempt) by falling back or retrying instead of failing — to
// the diagnostics log (WithReplayLog; default stderr). Degradations are
// always loud: a silent fallback would be indistinguishable from a
// clean result produced by the intended path. Concurrent suite workers
// degrade independently, so writes are serialized here rather than
// asking every Writer to be concurrency-safe.
func (d *Device) degradef(format string, args ...any) {
	d.diagMu.Lock()
	defer d.diagMu.Unlock()
	fmt.Fprintf(d.diag, format+"\n", args...)
}
