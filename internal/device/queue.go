package device

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
)

// RunQueue is the device-global admission queue: a counting semaphore
// whose waiters are granted slots in descending estimated-cost order
// (longest job first, FIFO on ties) instead of arrival order. Every
// simulation the device performs — a Device.Run launch, a stream
// launch, a RunSuite entry, an individual CTA wave of a partitioned
// grid — acquires one slot for the duration of its SM simulation, so
// suite batches and interactive streams share a single fairness/cost
// policy and a single host-parallelism bound.
//
// The queue only ever decides *when* a simulation starts, never what
// it computes: results are bit-identical for every slot count and
// every grant order, which the determinism suites assert. A queue is
// private to its device by default; WithRunQueue shares one across
// several devices so their combined load stays bounded by one worker
// pool (the experiments runner does this for all its figures).
type RunQueue struct {
	mu      sync.Mutex
	free    int        //sbwi:guardedby mu
	waiters waiterHeap //sbwi:guardedby mu
	seq     uint64     //sbwi:guardedby mu
	//sbwi:nolock written only in NewRunQueue, immutable afterwards
	slots int
}

// waiter is one goroutine queued for a slot. granted and gone are
// mutable shared state, but their mutex lives in the owning RunQueue —
// a relationship //sbwi:guardedby cannot name across structs.
type waiter struct {
	cost  int64
	seq   uint64
	grant chan struct{}
	//sbwi:nolock guarded by the owning RunQueue's mu, a foreign struct's mutex
	granted bool
	//sbwi:nolock guarded by the owning RunQueue's mu; popped lazily by releaseLocked
	gone bool // abandoned by cancellation; skipped on pop
}

// waiterHeap orders waiters by descending cost, ascending sequence on
// ties (FIFO among equal-cost submissions).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost > h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewRunQueue builds a queue with the given number of concurrent
// simulation slots; workers <= 0 means GOMAXPROCS.
func NewRunQueue(workers int) *RunQueue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &RunQueue{free: workers, slots: workers}
}

// Workers returns the queue's slot count — the bound on concurrently
// running SM simulations.
func (q *RunQueue) Workers() int { return q.slots }

// acquire blocks until the caller is granted a slot or ctx is done.
// Among blocked callers, the one with the highest cost is granted
// first; equal costs are served in acquisition order.
func (q *RunQueue) acquire(ctx context.Context, cost int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q.mu.Lock()
	if q.free > 0 {
		q.free--
		q.mu.Unlock()
		return nil
	}
	w := &waiter{cost: cost, seq: q.seq, grant: make(chan struct{})}
	q.seq++
	heap.Push(&q.waiters, w)
	q.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot we will
			// not use, so pass it straight on.
			q.releaseLocked()
		} else {
			w.gone = true // popped lazily by releaseLocked
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a slot, handing it to the highest-cost live waiter
// if any.
func (q *RunQueue) release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

// releaseLocked is the locked helper behind release: every caller
// holds q.mu (release and the grant/cancel race arm of acquire).
func (q *RunQueue) releaseLocked() {
	for q.waiters.Len() > 0 { //sbwi:nolock caller holds q.mu (locked helper of release/acquire)
		w := heap.Pop(&q.waiters).(*waiter) //sbwi:nolock caller holds q.mu (locked helper of release/acquire)
		if w.gone {
			continue
		}
		w.granted = true
		close(w.grant)
		return
	}
	q.free++ //sbwi:nolock caller holds q.mu (locked helper of release/acquire)
}

// waiting returns the number of live queued waiters (test hook).
func (q *RunQueue) waiting() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, w := range q.waiters {
		if !w.gone {
			n++
		}
	}
	return n
}
