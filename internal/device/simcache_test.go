package device

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/sm"
)

// cacheSuite returns a small multi-wave subset cheap enough to simulate
// repeatedly.
func cacheSuite(t *testing.T) []*kernels.Benchmark {
	t.Helper()
	var out []*kernels.Benchmark
	for _, name := range []string{"Histogram", "BFS", "DWTHaar1D"} {
		b, ok := kernels.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

func mustStats(t *testing.T, results []*SuiteResult) []sm.Stats {
	t.Helper()
	out := make([]sm.Stats, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name(), r.Err)
		}
		out[i] = r.Result.Stats
	}
	return out
}

// TestSimCacheConcurrentPasses is the cache's headline contract: many
// concurrent RunSuite passes over one shared cache (run under -race in
// CI) return bit-identical Stats, and after the first pass every cell
// is served from the cache — each (benchmark, configuration) simulates
// exactly once no matter how many passes ask for it.
func TestSimCacheConcurrentPasses(t *testing.T) {
	leakcheck.Check(t)
	suite := cacheSuite(t)
	cache := NewSimCache()
	dev, err := New(WithArch(sm.ArchSBISWI), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm := mustStats(t, mustRunSuite(t, dev, suite))
	if got, want := cache.Misses(), uint64(len(suite)); got != want {
		t.Fatalf("cold pass misses = %d, want %d", got, want)
	}

	const passes = 4
	stats := make([][]sm.Stats, passes)
	var wg sync.WaitGroup
	for p := 0; p < passes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results, err := dev.RunSuite(context.Background(), suite)
			if err != nil {
				t.Error(err)
				return
			}
			s := make([]sm.Stats, len(results))
			for i, r := range results {
				if r.Err != nil {
					t.Errorf("%s: %v", r.Name(), r.Err)
					return
				}
				s[i] = r.Result.Stats
			}
			stats[p] = s
		}(p)
	}
	wg.Wait()
	for p := 0; p < passes; p++ {
		if !reflect.DeepEqual(stats[p], warm) {
			t.Errorf("pass %d stats differ from the first pass", p)
		}
	}
	if got, want := cache.Misses(), uint64(len(suite)); got != want {
		t.Errorf("misses after %d passes = %d, want %d (cells must simulate once)", passes, got, want)
	}
	if got, want := cache.Hits(), uint64(passes*len(suite)); got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
}

// TestSimCacheFingerprintMiss: a deliberately mutated configuration —
// differing in a field the old subset-style cache keys ignored — must
// miss the cache instead of aliasing the original cell.
func TestSimCacheFingerprintMiss(t *testing.T) {
	suite := cacheSuite(t)
	cache := NewSimCache()
	dev, err := New(WithArch(sm.ArchSBISWI), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	mustRunSuite(t, dev, suite)
	base := cache.Misses()

	mutated, err := New(
		WithArch(sm.ArchSBISWI),
		WithModifier(func(c *sm.Config) { c.ExecLatency++ }),
		WithSimCache(cache),
	)
	if err != nil {
		t.Fatal(err)
	}
	mustRunSuite(t, mutated, suite)
	if got, want := cache.Misses()-base, uint64(len(suite)); got != want {
		t.Errorf("mutated config caused %d misses, want %d — cache key aliases configurations", got, want)
	}
	if cache.Hits() != 0 {
		t.Errorf("mutated config hit the cache %d times", cache.Hits())
	}

	// Same fingerprint, different device worker counts: must hit (the
	// worker count never changes results).
	w4, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	mustRunSuite(t, w4, suite)
	if got, want := cache.Hits(), uint64(len(suite)); got != want {
		t.Errorf("worker-count change hit %d cells, want %d", got, want)
	}
}

// TestSimCachePartitionedKeysDistinct: the partitioned path's timing
// model legitimately differs from the whole-grid run, so partitioned
// and unpartitioned cells must occupy distinct cache entries.
func TestSimCachePartitionedKeysDistinct(t *testing.T) {
	suite := cacheSuite(t)
	cache := NewSimCache()
	flat, err := New(WithArch(sm.ArchSBISWI), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	flatStats := mustStats(t, mustRunSuite(t, flat, suite))

	part, err := New(WithArch(sm.ArchSBISWI), WithSMs(2), WithGridPartition(true), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	partStats := mustStats(t, mustRunSuite(t, part, suite))
	if got, want := cache.Misses(), uint64(2*len(suite)); got != want {
		t.Errorf("misses = %d, want %d (partitioned cells must not alias flat cells)", got, want)
	}
	if reflect.DeepEqual(flatStats, partStats) {
		t.Error("expected the partitioned timing model to differ for multi-wave kernels")
	}
}

func mustRunSuite(t *testing.T, d *Device, suite []*kernels.Benchmark) []*SuiteResult {
	t.Helper()
	results, err := d.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name(), r.Err)
		}
	}
	return results
}
