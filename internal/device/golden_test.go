package device

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sm"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulator")

// goldenEntry pins the headline per-benchmark numbers of the default
// configuration (one SBI+SWI SM, flat-latency DRAM — the paper
// reproduction path). Any drift here changes the reproduced figures.
type goldenEntry struct {
	Cycles       int64   `json:"cycles"`
	ThreadInstrs uint64  `json:"threadInstrs"`
	IssueSlots   uint64  `json:"issueSlots"`
	IPC          float64 `json:"ipc"`
	L1Hits       uint64  `json:"l1Hits"`
	L1Misses     uint64  `json:"l1Misses"`
}

func goldenFromStats(s *sm.Stats) goldenEntry {
	return goldenEntry{
		Cycles:       s.Cycles,
		ThreadInstrs: s.ThreadInstrs,
		IssueSlots:   s.IssueSlots,
		IPC:          math.Round(s.IPC()*10000) / 10000,
		L1Hits:       s.Mem.Hits,
		L1Misses:     s.Mem.Misses,
	}
}

const goldenPath = "testdata/golden_stats.json"

// TestGoldenStats simulates the whole suite under the default device
// configuration and compares every benchmark's headline statistics
// against the checked-in fixture. It fails with one readable line per
// drifted number; run with -update to rewrite the fixture after an
// intentional timing-model change.
func TestGoldenStats(t *testing.T) {
	dev, err := New(WithArch(sm.ArchSBISWI))
	if err != nil {
		t.Fatal(err)
	}
	results, err := dev.RunSuite(context.Background(), kernels.All())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]goldenEntry, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name(), r.Err)
		}
		got[r.Name()] = goldenFromStats(&r.Result.Stats)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d benchmarks", goldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	var drift []string
	names := make([]string, 0, len(want))
	for name := range want { //sbwi:unordered names are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := want[name]
		g, ok := got[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: missing from the suite", name))
			continue
		}
		for _, d := range []struct {
			field     string
			got, want interface{}
		}{
			{"cycles", g.Cycles, w.Cycles},
			{"threadInstrs", g.ThreadInstrs, w.ThreadInstrs},
			{"issueSlots", g.IssueSlots, w.IssueSlots},
			{"ipc", g.IPC, w.IPC},
			{"l1Hits", g.L1Hits, w.L1Hits},
			{"l1Misses", g.L1Misses, w.L1Misses},
		} {
			if d.got != d.want {
				drift = append(drift, fmt.Sprintf("%-22s %-13s got %-12v want %v", name, d.field, d.got, d.want))
			}
		}
	}
	gotNames := make([]string, 0, len(got))
	for name := range got { //sbwi:unordered names are sorted before use
		gotNames = append(gotNames, name)
	}
	sort.Strings(gotNames)
	for _, name := range gotNames {
		if _, ok := want[name]; !ok {
			drift = append(drift, fmt.Sprintf("%s: new benchmark not in the fixture (run -update)", name))
		}
	}
	if len(drift) > 0 {
		t.Errorf("default-config statistics drifted from the golden fixture (%d numbers):\n  %s\nIf the change is intentional, regenerate with `go test ./internal/device -run TestGoldenStats -update`.",
			len(drift), strings.Join(drift, "\n  "))
	}
}
