package device

import (
	"sort"
	"testing"

	"repro/internal/kernels"
)

// TestCalibrationCoversSuite keeps the cost table honest: every suite
// benchmark must have a positive calibrated weight (a new benchmark
// added without calibrating would silently fall back to raw thread
// count), and the table must not accumulate entries for benchmarks
// that no longer exist.
func TestCalibrationCoversSuite(t *testing.T) {
	names := make(map[string]bool)
	for _, b := range kernels.All() {
		names[b.Name] = true
		w, ok := calibratedCyclesPerThread[b.Name]
		if !ok {
			t.Errorf("%s: missing from the calibration table — regenerate it (see calibration.go)", b.Name)
			continue
		}
		if w <= 0 {
			t.Errorf("%s: non-positive calibrated weight %g", b.Name, w)
		}
	}
	calibrated := make([]string, 0, len(calibratedCyclesPerThread))
	for name := range calibratedCyclesPerThread { //sbwi:unordered names are sorted before use
		calibrated = append(calibrated, name)
	}
	sort.Strings(calibrated)
	for _, name := range calibrated {
		if !names[name] {
			t.Errorf("%s: calibrated but not in the suite — stale table entry", name)
		}
	}
}

// TestCalibratedCostOrdersTheTail pins the estimate quality the table
// buys: Histogram runs ~74 modeled cycles per thread and dominates the
// suite wall-clock despite launching fewer threads than Transpose
// (~1.2 cycles/thread) — raw grid×block ordered them backwards, the
// calibrated estimate must not.
func TestCalibratedCostOrdersTheTail(t *testing.T) {
	hist, ok := kernels.ByName("Histogram")
	if !ok {
		t.Fatal("Histogram missing")
	}
	tr, ok := kernels.ByName("Transpose")
	if !ok {
		t.Fatal("Transpose missing")
	}
	if hist.Grid*hist.Block >= tr.Grid*tr.Block {
		t.Fatal("test premise broken: Histogram should launch fewer threads than Transpose")
	}
	if staticCost(hist) <= staticCost(tr) {
		t.Errorf("staticCost(Histogram) = %d <= staticCost(Transpose) = %d — calibration lost the true ordering",
			staticCost(hist), staticCost(tr))
	}
	// Unknown benchmarks fall back to plain thread count.
	custom := &kernels.Benchmark{Name: "NotInTable", Grid: 3, Block: 64}
	if got, want := staticCost(custom), int64(3*64); got != want {
		t.Errorf("uncalibrated staticCost = %d, want thread count %d", got, want)
	}
}
