package device

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/sm"
)

// The asynchronous launch API: streams, events and futures.
//
// A Stream is a FIFO lane of work on its device, mirroring the CUDA
// stream model: Launch enqueues without blocking and returns a Pending
// future; operations within one stream execute strictly in enqueue
// order; operations on different streams run concurrently, admitted by
// the device-global run queue. Record/WaitEvent give cross-stream
// dependency edges, and Device.Synchronize drains everything the
// device has in flight.
//
// # Determinism
//
// Streams never change what a simulation computes. Every launch runs
// through exactly the engine Device.Run uses — same SM model, same
// partitioning decision, same memory image handling — so its Stats
// are bit-identical to the synchronous path no matter how launches
// interleave across streams, workers or hosts. The stream layer only
// decides when each simulation is admitted, and the interleaving
// determinism test pins this across 1/2/8 streams and worker counts.
//
// # Failure semantics
//
// A failed operation (simulation error or context cancellation)
// poisons its stream: every operation enqueued after it fails fast
// with an error wrapping the original — errors.Is still sees
// context.Canceled through the wrap — without simulating. Other
// streams are unaffected. A poisoned stream stays poisoned; discard it
// and open a new one (NewStream is cheap).
//
// Like CUDA, cyclic cross-stream waits (A waits on an event of B while
// B waits on an event of A) deadlock those streams; nothing detects
// this for you.

// Pending is the future of one asynchronous operation: a stream
// launch, a stream event-wait marker, or an internal suite entry. It
// completes exactly once.
type Pending struct {
	done chan struct{}
	once sync.Once
	//sbwi:nolock completion-ordered, not mutex-guarded: written once inside once.Do before done closes, read only after <-done
	res *sm.Result
	//sbwi:nolock completion-ordered, not mutex-guarded: written once inside once.Do before done closes, read only after <-done
	err error
}

func newPending() *Pending { return &Pending{done: make(chan struct{})} }

// complete resolves the future exactly once; later calls are no-ops.
// The result fields are written before done is closed, so a waiter can
// never observe a half-written future — the panic-recovery paths rely
// on this being safe to call from any exit of an operation's goroutine.
func (p *Pending) complete(res *sm.Result, err error) {
	p.once.Do(func() {
		p.res, p.err = res, err
		close(p.done)
	})
}

// Done returns a channel closed when the operation has completed
// (successfully or not), for use in select loops.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the operation completes and returns its result.
// Cancellation is carried by the context passed at enqueue time: a
// cancelled launch completes promptly with that context's error, so
// Wait needs no context of its own.
func (p *Pending) Wait() (*sm.Result, error) {
	<-p.done
	return p.res, p.err
}

// failNow completes p immediately with err, before any goroutine runs.
func (p *Pending) failNow(err error) *Pending {
	p.complete(nil, err)
	return p
}

// Stream is a FIFO sequence of asynchronous operations on one device.
// A Stream is safe for concurrent use; operations enqueued from
// several goroutines are serialized in Launch-call order.
type Stream struct {
	dev *Device

	// depth, when non-nil, is the launch-queue bound
	// (WithStreamQueueDepth): one token per enqueued-but-incomplete
	// launch, so Launch applies backpressure once the stream is depth
	// launches deep.
	depth chan struct{}

	mu sync.Mutex
	// tail is the most recently enqueued operation; nil for a fresh
	// stream.
	tail *Pending //sbwi:guardedby mu
}

// NewStream opens a new, independent FIFO stream on the device.
// Streams are cheap: open one per logical sequence of dependent work.
func (d *Device) NewStream() *Stream {
	s := &Stream{dev: d}
	if d.streamDepth > 0 {
		s.depth = make(chan struct{}, d.streamDepth)
	}
	return s
}

// Launch enqueues the launch on the stream and returns its future
// without waiting for execution. The launch runs after every earlier
// operation on this stream has completed (FIFO), concurrently with
// other streams, admitted by the device-global run queue with the
// other work the device is running. ctx bounds this launch: queueing,
// admission and the simulation itself; a cancelled launch's Pending
// returns the context's error and later FIFO entries on this stream
// fail fast (see the failure semantics above).
//
// With WithStreamQueueDepth set, Launch blocks while the stream
// already has that many incomplete launches — backpressure for
// producers that outrun the device — and returns an already-failed
// Pending if ctx is cancelled during the wait.
//
// Global memory is mutated in place exactly as Device.Run mutates it.
// Launches sharing a global slice must be ordered — by one stream or
// by events — or they race just like concurrent Device.Run calls.
func (s *Stream) Launch(ctx context.Context, l *exec.Launch) *Pending {
	p := newPending()
	// A launch whose context is already dead fails before it joins the
	// FIFO chain: deterministic (no race between the depth gate and the
	// cancellation) and poison-free — the stream stays usable.
	if err := ctx.Err(); err != nil {
		return p.failNow(err)
	}
	if s.depth != nil {
		select {
		case s.depth <- struct{}{}:
		case <-ctx.Done():
			return p.failNow(ctx.Err())
		}
	}
	op := "stream launch"
	if l.Prog != nil {
		op = "stream launch of " + l.Prog.Name
	}
	s.enqueue(p, op, func() (*sm.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.dev.fire(faultinject.SiteStreamDispatch); err != nil {
			return nil, err
		}
		return s.dev.run(ctx, l, s.dev.partition, launchCost(l))
	}, ctx, s.depth != nil)
	return p
}

// WaitEvent enqueues a dependency edge: operations enqueued on this
// stream after the call do not start until the work the event recorded
// has completed. A failed recorded prefix poisons this stream exactly
// like a failed launch would.
func (s *Stream) WaitEvent(ev *Event) {
	dep := ev.dep
	s.enqueue(newPending(), "stream event wait", func() (*sm.Result, error) {
		if dep != nil {
			<-dep.done
			if dep.err != nil {
				return nil, fmt.Errorf("device: stream: awaited event's recorded work failed: %w", dep.err)
			}
		}
		return nil, nil
	}, nil, false)
}

// enqueue appends an operation to the stream's FIFO chain and starts
// its goroutine. The goroutine waits for the predecessor, propagates
// poison, then runs fn; ctx (may be nil) aborts the predecessor wait
// early. holdsDepth marks operations that took a launch-queue token. A
// panic anywhere in the operation completes p with a *PanicError —
// poisoning this stream's FIFO successors exactly like an error — while
// the device and its other streams stay fully usable.
func (s *Stream) enqueue(p *Pending, op string, fn func() (*sm.Result, error), ctx context.Context, holdsDepth bool) {
	s.dev.inflight.add()
	s.mu.Lock()
	prev := s.tail
	s.tail = p
	s.mu.Unlock()

	go guarded(op, nil, func() {
		// Declared first so it runs last (defers are LIFO): the future
		// must be complete before the inflight count drops, or a
		// concurrent Synchronize could observe an idle device while p is
		// still unresolved.
		defer func() {
			s.dev.inflight.finish()
			if holdsDepth {
				<-s.depth
			}
		}()
		defer func() {
			if v := recover(); v != nil {
				p.complete(nil, newPanicError(op, v))
			}
		}()
		if prev != nil {
			if ctx != nil {
				select {
				case <-prev.done:
				case <-ctx.Done():
					p.complete(nil, watchdogErr(ctx, ctx.Err()))
					return
				}
			} else {
				<-prev.done
			}
			if prev.err != nil {
				p.complete(nil, fmt.Errorf("device: stream: not run: earlier stream operation failed: %w", prev.err))
				return
			}
		}
		p.complete(fn())
	})()
}

// Record captures the stream's current FIFO position: the returned
// event completes when every operation enqueued on the stream before
// the call has completed. Recording an empty stream yields an
// already-complete event.
func (s *Stream) Record() *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Event{dep: s.tail}
}

// Event marks a point in a stream's FIFO order, for cross-stream
// dependencies (Stream.WaitEvent) and host-side waits (Event.Wait).
type Event struct {
	dep *Pending // nil: recorded on an empty stream, complete immediately
}

// Wait blocks until the recorded work has completed or ctx is done. It
// returns nil on completion, the recorded work's error if that work
// failed, or ctx.Err() on cancellation.
func (e *Event) Wait(ctx context.Context) error {
	if e.dep == nil {
		return nil
	}
	select {
	case <-e.dep.done:
		return e.dep.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Synchronize blocks until every operation in flight on the device —
// stream launches, pending event edges, Run calls, RunSuite entries —
// has completed, or until ctx is done. Work enqueued while Synchronize
// is waiting is waited for too: it returns only after observing a
// fully idle device.
func (d *Device) Synchronize(ctx context.Context) error {
	return d.inflight.wait(ctx)
}

// SubmitBenchmark enqueues one suite benchmark on its own implicit
// stream: the run is admitted by the device-global queue at the
// benchmark's estimated cost, oracle-validated, served from the
// simulation cache when one is attached, and cost-recorded — exactly
// like a one-entry RunSuite batch. Partitioning follows the device's
// WithGridPartition setting (WithAutoPartition is a batch-level
// heuristic and needs RunSuite). The experiments runner submits every
// figure's prefetch matrix through this, overlapping work across
// configurations.
func (d *Device) SubmitBenchmark(ctx context.Context, b *kernels.Benchmark) *Pending {
	return d.submit("submitted benchmark "+b.Name, func() (*sm.Result, error) {
		return d.runSuiteEntry(ctx, b, d.partition)
	})
}

// submit runs fn on its own goroutine, tracked for Synchronize; a panic
// fails only this submission's Pending.
func (d *Device) submit(op string, fn func() (*sm.Result, error)) *Pending {
	p := newPending()
	d.inflight.add()
	go guarded(op, nil, func() {
		// Complete before the inflight count drops; see enqueue.
		defer d.inflight.finish()
		defer func() {
			if v := recover(); v != nil {
				p.complete(nil, newPanicError(op, v))
			}
		}()
		p.complete(fn())
	})()
	return p
}

// inflight counts the device's outstanding asynchronous operations and
// lets Synchronize wait for zero.
type inflight struct {
	mu sync.Mutex
	n  int //sbwi:guardedby mu
	// idle is created when n leaves 0 and closed when it returns.
	idle chan struct{} //sbwi:guardedby mu
}

func (f *inflight) add() {
	f.mu.Lock()
	if f.n == 0 {
		f.idle = make(chan struct{})
	}
	f.n++
	f.mu.Unlock()
}

func (f *inflight) finish() {
	f.mu.Lock()
	f.n--
	if f.n == 0 {
		close(f.idle)
	}
	f.mu.Unlock()
}

func (f *inflight) wait(ctx context.Context) error {
	for {
		f.mu.Lock()
		if f.n == 0 {
			f.mu.Unlock()
			return nil
		}
		ch := f.idle
		f.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// launchCost is the admission weight of a raw launch: its thread
// count. Suite entries go through estimatedCost instead, which knows
// measured cycles and the per-benchmark calibration table.
func launchCost(l *exec.Launch) int64 {
	return int64(l.GridDim) * int64(l.BlockDim)
}
