package device

import "repro/internal/kernels"

// The per-benchmark cost calibration table behind the cold-start
// static estimate.
//
// The batch scheduler's longest-job-first policy only helps if the
// cost estimates rank entries correctly, and raw thread count
// (grid×block) ranks the paper suite badly: Histogram simulates ~74
// modeled cycles per thread while Transpose takes ~1.2, a 60× spread
// the old grid×block estimate was blind to — a cold batch would admit
// six Transpose-sized kernels ahead of the Histogram that actually
// dominates the wall-clock. The table below fixes the cold ordering
// with one measured cycles-per-thread weight per suite benchmark.
//
// The weights were measured as Stats.Cycles / (grid·block) on the
// default SBI+SWI table-2 configuration (the relative ranking is what
// matters, and it is stable across the modeled architectures). To
// regenerate after adding a benchmark or changing the timing model,
// run the suite and print the ratios:
//
//	dev, _ := device.New(device.WithArch(sm.ArchSBISWI))
//	results, _ := dev.RunSuite(context.Background(), kernels.All())
//	for _, r := range results {
//		b := r.Bench
//		fmt.Printf("%q: %.4f,\n", b.Name,
//			float64(r.Result.Stats.Cycles)/float64(b.Grid*b.Block))
//	}
//
// (TestCalibrationCoversSuite fails when a suite benchmark is missing
// from the table, so new benchmarks cannot silently fall back.)
//
// Calibration only ever steers admission order and the auto-partition
// heavy-tail routing — both pure functions of the batch — so a stale
// weight degrades scheduling, never results. Once a cell has run in
// this process its measured cycles replace the estimate entirely
// (estimatedCost in simcache.go).
var calibratedCyclesPerThread = map[string]float64{
	"3DFD":                 0.8436,
	"BFS":                  4.7573,
	"Backprop":             8.2184,
	"BinomialOptions":      4.9614,
	"BlackScholes":         1.2764,
	"ConvolutionSeparable": 2.9762,
	"DWTHaar1D":            13.2051,
	"Eigenvalues":          7.1709,
	"FastWalshTransform":   1.7617,
	"Histogram":            74.0365,
	"Hotspot":              1.2251,
	"LUD":                  3.5801,
	"Mandelbrot":           9.1230,
	"MatrixMul":            7.0488,
	"MonteCarlo":           7.8034,
	"Needleman-Wunsch":     116.9792,
	"SRAD":                 2.5237,
	"SortingNetworks":      9.1895,
	"TMD1":                 11.4116,
	"TMD2":                 5.3486,
	"Transpose":            1.2045,
	"WriteStorm":           1.3281,
}

// staticCost is the pre-measurement cost estimate: the launch's thread
// count scaled by the benchmark's calibrated cycles-per-thread weight.
// Unknown benchmarks (user-defined suites) fall back to weight 1 —
// plain thread count, the pre-calibration behavior. Deliberately a
// pure function of the benchmark: the estimate feeds scheduling and
// the auto-partition plan, both of which must be host- and
// pass-independent.
func staticCost(b *kernels.Benchmark) int64 {
	threads := int64(b.Grid) * int64(b.Block)
	if w, ok := calibratedCyclesPerThread[b.Name]; ok {
		c := int64(float64(threads) * w)
		if c > 0 {
			return c
		}
	}
	return threads
}
