package device

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/replay"
	"repro/internal/sm"
)

// Table-driven trace replay: record a launch once, re-time it for every
// sweep point.
//
// A parameter sweep re-simulates the same benchmark under
// configurations that change only *when* things happen — latencies,
// unit counts, NoC bandwidth, L2 geometry — never *what* the threads
// compute. The first sweep point therefore runs one full simulation
// that records a compact per-thread trace (package replay: one bit per
// conditional branch, one effective address per global memory
// operation); every later point replays the trace through the complete
// scheduling and timing machinery without decoding operands, executing
// ALU ops, or touching global memory. Replayed statistics are
// bit-identical to a full simulation for every configuration inside the
// trace's validity domain — the replay engine runs the *same* timing
// code over the *same* per-thread functional behavior, it only sources
// branch outcomes and addresses from the table instead of the register
// file.
//
// The validity domain is policed at record time: the recorder logs
// every memory access with its block and barrier epoch, and the race
// analysis in replay.Recorder.Finalize marks the trace non-replayable
// when any unordered pair of accesses conflicts (per-thread functional
// behavior is then timing-dependent, e.g. the racy relaxation updates
// of BFS). Non-replayable benchmarks fall back to full simulation with
// the reason logged once — never a silently wrong number. As a second
// line of defense, a replay whose streams desync at runtime (a
// configuration that changes functional behavior despite an equal
// functional fingerprint would do this) fails loudly and falls back
// too.
//
// Traces are cached by (benchmark, functional fingerprint) — see
// sm.Config.FunctionalFingerprint for the functional/timing split —
// so one recording serves every timing configuration of a sweep, on
// every device sharing the SimCache.

// WithTraceReplay routes RunSuite entries through the record-once /
// replay-per-point engine: the first configuration to run a benchmark
// records its per-thread execution trace, and every later timing
// configuration replays the trace instead of re-simulating the
// functional layer — bit-identical statistics at a fraction of the
// cost. Benchmarks whose traces fail the record-time race analysis
// fall back to full simulation with the reason logged (WithReplayLog).
// Off by default. Implies a private SimCache when none is shared, so
// traces outlive single entries.
func WithTraceReplay(on bool) Option {
	return func(s *settings) { s.traceReplay = on }
}

// WithReplayLog directs the trace-replay fallback diagnostics (the
// one-line reasons benchmarks are simulated in full instead of
// replayed) to w. Default: os.Stderr. A nil w keeps the default.
func WithReplayLog(w io.Writer) Option {
	return func(s *settings) { s.replayLog = w }
}

// runBenchmarkTraced is the trace-replay fill for one suite entry:
// record on the first configuration to arrive, replay on every later
// one, full simulation when the benchmark is out of the validity
// domain.
func (d *Device) runBenchmarkTraced(ctx context.Context, b *kernels.Benchmark, partition bool) (*sm.Result, error) {
	tr, res, err := d.cache.traceOrRecord(ctx, traceKey{b.Name, d.funcFP}, func() (*replay.Trace, *sm.Result, error) {
		return d.recordBenchmark(ctx, b, partition)
	})
	if err != nil {
		return nil, err
	}
	if res != nil {
		// This call performed the recording; its full-simulation result
		// is the sweep point's result.
		return res, nil
	}
	if !tr.Replayable {
		// The reason was logged once when the trace was recorded.
		return d.runBenchmark(ctx, b, partition)
	}
	// A panicking replay degrades exactly like a desynced one: safeRun
	// converts the panic, the uniform fallback below re-runs in full.
	res, err = safeRun("trace replay of "+b.Name, func() (*sm.Result, error) {
		return d.replayBenchmark(ctx, b, partition, tr)
	})
	if err != nil {
		if isCtxErr(err) {
			return nil, err
		}
		// A desynced replay means this configuration left the validity
		// domain at runtime — and an injected fault in the replay path is
		// made to look the same way; fall back loudly rather than guess.
		d.degradef("device: trace replay of %s on %s fell back to full simulation: %v", b.Name, d.cfg.Arch, err)
		return d.runBenchmark(ctx, b, partition)
	}
	return res, nil
}

// recordBenchmark runs one full, oracle-checked simulation of the
// benchmark while recording its per-thread trace, and finalizes the
// trace (including the race analysis deciding replayability).
func (d *Device) recordBenchmark(ctx context.Context, b *kernels.Benchmark, partition bool) (*replay.Trace, *sm.Result, error) {
	l, err := b.NewLaunch(d.cfg.Arch != sm.ArchBaseline)
	if err != nil {
		return nil, nil, err
	}
	rec := replay.NewRecorder(l.GridDim, l.BlockDim)
	res, err := d.runTraced(ctx, l, partition, estimatedCost(b, d.cfgFP), rec, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("device: %s on %s: %w", b.Name, d.cfg.Arch, err)
	}
	if !bytes.Equal(l.Global, b.Expected()) {
		return nil, nil, fmt.Errorf("device: %s on %s: simulation diverged from reference", b.Name, d.cfg.Arch)
	}
	recordCost(b, d.cfgFP, res)
	tr := rec.Finalize()
	if !tr.Replayable {
		d.degradef("device: %s on %s is outside the trace-replay validity domain, sweep points run full simulations: %s", b.Name, d.cfg.Arch, tr.Reason)
	}
	return tr, res, nil
}

// replayBenchmark re-times the benchmark from its recorded trace. The
// oracle check is skipped by design: a replay never touches the global
// image (the recording run already validated the functional behavior
// the trace encodes).
func (d *Device) replayBenchmark(ctx context.Context, b *kernels.Benchmark, partition bool, tr *replay.Trace) (*sm.Result, error) {
	if err := d.fire(faultinject.SiteReplayFallback); err != nil {
		return nil, err
	}
	l, err := b.NewLaunch(d.cfg.Arch != sm.ArchBaseline)
	if err != nil {
		return nil, err
	}
	res, err := d.runTraced(ctx, l, partition, estimatedCost(b, d.cfgFP), nil, tr)
	if err != nil {
		return nil, err
	}
	res.Replayed = true
	recordCost(b, d.cfgFP, res)
	return res, nil
}

// RunTraceReplay simulates the launch in full while recording its
// trace, then — when the trace passes the race analysis — replays it
// on the same configuration and checks the replayed statistics are
// bit-identical to the recorded run before returning them (with
// Result.Replayed set). An out-of-domain launch returns the full
// simulation's result, Replayed false, with the reason logged. Global
// memory is mutated by the recording run exactly as Run would; the
// replay never touches it. This is the one-launch entry point behind
// `sbwi run -trace-replay`; sweeps go through RunSuite on a
// WithTraceReplay device instead, where recording happens once per
// benchmark rather than once per call.
func (d *Device) RunTraceReplay(ctx context.Context, l *exec.Launch) (*sm.Result, error) {
	d.inflight.add()
	defer d.inflight.finish()

	rec := replay.NewRecorder(l.GridDim, l.BlockDim)
	res, err := d.runTraced(ctx, l, d.partition, launchCost(l), rec, nil)
	if err != nil {
		return nil, err
	}
	tr := rec.Finalize()
	if !tr.Replayable {
		d.degradef("device: %s is outside the trace-replay validity domain, ran a full simulation: %s", l.Prog.Name, tr.Reason)
		return res, nil
	}
	rres, err := safeRun("trace replay of "+l.Prog.Name, func() (*sm.Result, error) {
		if err := d.fire(faultinject.SiteReplayFallback); err != nil {
			return nil, err
		}
		return d.runTraced(ctx, l, d.partition, launchCost(l), nil, tr)
	})
	if err != nil {
		if isCtxErr(err) {
			return nil, err
		}
		d.degradef("device: trace replay of %s fell back to the full simulation's result: %v", l.Prog.Name, err)
		return res, nil
	}
	if rres.Stats != res.Stats {
		return nil, fmt.Errorf("device: %s: replayed statistics diverged from the recorded run", l.Prog.Name)
	}
	rres.Replayed = true
	return rres, nil
}
