package device

import (
	"context"
	"sync"

	"repro/internal/fingerprint"
	"repro/internal/kernels"
	"repro/internal/replay"
	"repro/internal/sm"
)

// Cross-figure simulation memoization and the cost registry behind the
// batch scheduler.
//
// # Cache key soundness
//
// A cached result may be returned in place of a simulation only if
// every input that can influence the result is part of the key:
//
//   - the benchmark (its generator and kernel are deterministic, so the
//     name identifies the launch),
//   - the full SM configuration, digested by sm.Config.Fingerprint —
//     reflection-exhaustive, so a future Config field cannot silently
//     alias two different configurations,
//   - whether the entry ran through the wave-partitioned path (the
//     partitioned timing model starts every wave on a cold SM, so its
//     Stats legitimately differ from the whole-grid run),
//   - the modeled memory system (L2 + NoC parameters), and the SM
//     count when it shapes the result (partitioned packing and the
//     shared-clock contention model read it; for unpartitioned
//     flat-memory runs it is normalized away, because those results
//     are SM-count independent by construction).
//
// Host-side parallelism (worker count) is deliberately absent: results
// are bit-identical for every worker count, which the determinism
// suite asserts, so caching across worker settings is sound.
type simKey struct {
	bench       string
	cfgFP       uint64
	partitioned bool
	sms         int
	memsysFP    uint64 // 0 under the flat-latency DRAM model
}

// simKeyFor derives the cache key for one suite entry on this device.
func (d *Device) simKeyFor(b *kernels.Benchmark, partitioned bool) simKey {
	k := simKey{
		bench:       b.Name,
		cfgFP:       d.cfgFP,
		partitioned: partitioned,
		sms:         d.sms,
		memsysFP:    d.memsysFP,
	}
	if !partitioned && !d.memsys {
		k.sms = 1 // result provably SM-count independent; widen the hit range
	}
	return k
}

// SimCache memoizes oracle-validated suite simulations across RunSuite
// passes and across devices (pass one cache to several devices via
// WithSimCache — the experiments runner shares one across all its
// figures). It is safe for concurrent use and deduplicates in-flight
// work: concurrent passes asking for the same cell run it once, the
// rest wait for the result. Cached results are shared — callers must
// treat a SuiteResult.Result served from the cache as read-only.
//
// Entries never expire: a key is only ever associated with one value,
// because every key input is part of the key (see the key comment
// above) and the simulator is deterministic. Memory is bounded by the
// number of distinct (benchmark, configuration) cells actually run.
type SimCache struct {
	mu sync.Mutex
	m  map[simKey]*simEntry //sbwi:guardedby mu

	// traces memoizes recorded per-thread execution traces for the
	// trace-replay engine (WithTraceReplay). The key is deliberately
	// coarser than simKey — just the benchmark and the *functional*
	// fingerprint — because a trace is valid for every timing
	// configuration (sm.Config.FunctionalFingerprint documents the
	// split): one recording serves a whole sweep.
	traces map[traceKey]*traceEntry //sbwi:guardedby mu

	hits, misses uint64 //sbwi:guardedby mu
}

type simEntry struct {
	done chan struct{} // closed once the fill attempt finished
	//sbwi:nolock guarded by the owning SimCache's mu; reads also gated by the done close
	res *sm.Result // nil if the fill failed (entry already removed)
}

// traceKey identifies one recorded trace: the benchmark (deterministic
// generator + kernel, so the name pins the launch) and the functional
// configuration fingerprint (the executed program variant).
type traceKey struct {
	bench  string
	funcFP uint64
}

type traceEntry struct {
	done chan struct{} // closed once the recording attempt finished
	//sbwi:nolock guarded by the owning SimCache's mu; reads also gated by the done close
	tr *replay.Trace // nil if the recording failed (entry already removed)
}

// NewSimCache returns an empty simulation cache.
func NewSimCache() *SimCache {
	return &SimCache{m: make(map[simKey]*simEntry), traces: make(map[traceKey]*traceEntry)}
}

// Hits returns how many lookups were served from a completed entry.
func (c *SimCache) Hits() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }

// Misses returns how many lookups started a fill.
func (c *SimCache) Misses() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.misses }

// Len returns the number of completed entries.
func (c *SimCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.m { //sbwi:unordered pure count; result independent of visit order
		select {
		case <-e.done:
			if e.res != nil {
				n++
			}
		default:
		}
	}
	return n
}

// getOrRun returns the cached result for key, or runs fill once and
// caches its result. Concurrent callers with the same key wait for the
// in-flight fill instead of duplicating it; if the fill fails its
// error goes to the filling caller and waiters retry (a failed or
// aborted result is never cached — see fill below, which also holds
// when the filler panics). The returned Result is shared: callers must
// not mutate it.
func (c *SimCache) getOrRun(ctx context.Context, key simKey, fill func() (*sm.Result, error)) (*sm.Result, error) {
	for {
		c.mu.Lock()
		e, ok := c.m[key]
		if !ok {
			e = &simEntry{done: make(chan struct{})}
			c.m[key] = e
			c.misses++
			c.mu.Unlock()
			return c.fill(key, e, fill)
		}
		select {
		case <-e.done:
			if e.res != nil {
				c.hits++
				c.mu.Unlock()
				return e.res, nil
			}
			// The fill we would have waited on failed (its goroutine
			// already removed the entry, unless a new filler replaced
			// it); loop to pick up the replacement or become the new
			// filler ourselves.
			c.mu.Unlock()
			continue
		default:
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			// Loop: either pick up the result or become the new filler.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fill runs one cache fill and publishes its outcome exactly once —
// also when fn panics: the deferred cleanup runs during the unwind,
// removing the entry and closing done so waiters retry (or become the
// next filler) instead of hanging on a never-closed channel, while the
// panic itself keeps propagating to the caller's recover boundary for
// attribution. Failed or aborted results are never stored.
func (c *SimCache) fill(key simKey, e *simEntry, fn func() (*sm.Result, error)) (res *sm.Result, err error) {
	completed := false
	defer func() {
		c.mu.Lock()
		if completed && err == nil {
			e.res = res
		} else {
			delete(c.m, key) // let a waiter (or the next pass) retry
		}
		close(e.done)
		c.mu.Unlock()
	}()
	res, err = fn()
	completed = true
	return res, err
}

// traceOrRecord returns the cached execution trace for key, or calls
// record once to produce it (alongside the recording run's full
// result, which doubles as that sweep point's result). Concurrent
// callers with the same key wait for the in-flight recording instead
// of duplicating it, exactly like getOrRun; a failed recording is not
// cached, so a waiter (or the next pass) retries. On a hit the result
// is (trace, nil, nil) — only the recording caller ever sees a
// non-nil *sm.Result. Note that a non-replayable trace is still a
// cached verdict: later points skip straight to full simulation
// without re-deriving (or re-logging) the reason.
func (c *SimCache) traceOrRecord(ctx context.Context, key traceKey, record func() (*replay.Trace, *sm.Result, error)) (*replay.Trace, *sm.Result, error) {
	for {
		c.mu.Lock()
		e, ok := c.traces[key]
		if !ok {
			e = &traceEntry{done: make(chan struct{})}
			c.traces[key] = e
			c.mu.Unlock()
			return c.record(key, e, record)
		}
		select {
		case <-e.done:
			if e.tr != nil {
				c.mu.Unlock()
				return e.tr, nil, nil
			}
			// The recording we would have waited on failed; loop to pick
			// up a replacement or become the new recorder ourselves.
			c.mu.Unlock()
			continue
		default:
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			// Loop: either pick up the trace or become the new recorder.
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// record is fill's twin for the trace cache: publish exactly once, keep
// failed recordings out of the cache, and survive a panicking recorder
// without stranding waiters.
func (c *SimCache) record(key traceKey, e *traceEntry, fn func() (*replay.Trace, *sm.Result, error)) (tr *replay.Trace, res *sm.Result, err error) {
	completed := false
	defer func() {
		c.mu.Lock()
		if completed && err == nil {
			e.tr = tr
		} else {
			delete(c.traces, key) // let a waiter (or the next pass) retry
		}
		close(e.done)
		c.mu.Unlock()
	}()
	tr, res, err = fn()
	completed = true
	return tr, res, err
}

// The cost registry: measured per-cell simulation costs feed the
// longest-job-first batch scheduler. Costs are modeled cycle counts —
// deterministic and host-independent — so they only ever steer
// dispatch order, never results; the registry is process-wide because
// a better schedule is useful across devices and cache instances (and
// harmless when stale). Before a cell has run once, dispatch falls
// back to a static estimate.
var simCosts sync.Map // costKey -> int64 (Stats.Cycles of a completed run)

// costKey identifies a cell for scheduling purposes: partitioning and
// SM count barely move the host cost of simulating a benchmark, so the
// registry deliberately keys coarser than the result cache.
type costKey struct {
	bench string
	cfgFP uint64
}

// recordCost memoizes a completed run's modeled cycle count.
func recordCost(b *kernels.Benchmark, cfgFP uint64, res *sm.Result) {
	simCosts.Store(costKey{b.Name, cfgFP}, res.Stats.Cycles)
}

// estimatedCost returns the scheduling weight for a suite entry: the
// memoized measured cycles after the cell has run once, otherwise the
// calibrated staticCost estimate (calibration.go).
func estimatedCost(b *kernels.Benchmark, cfgFP uint64) int64 {
	if v, ok := simCosts.Load(costKey{b.Name, cfgFP}); ok {
		return v.(int64)
	}
	return staticCost(b)
}

// memsysFingerprint digests the modeled memory system parameters for
// the cache key; 0 when the flat-latency DRAM model is in effect.
func (d *Device) memsysFingerprint() uint64 {
	if !d.memsys {
		return 0
	}
	fp := fingerprint.Hash(d.l2cfg, d.noccfg)
	if fp == 0 {
		fp = 1 // reserve 0 for "no memory system modeled"
	}
	return fp
}
