package device

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// The hardened failure plane's unit tests: panic conversion, stream
// isolation, the livelock path through the full stack, the wall-clock
// watchdog, and the transient-retry policy. The chaos suite
// (chaos_test.go) exercises the same machinery under randomized
// multi-site fault storms.

func TestSafeRunConvertsPanic(t *testing.T) {
	res, err := safeRun("boom op", func() (*sm.Result, error) { panic("kaboom") })
	if res != nil {
		t.Fatalf("result %v after panic, want nil", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want *PanicError", err, err)
	}
	if pe.Op != "boom op" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Op:%q Value:%v stack:%d bytes}, want op, value and a stack", pe.Op, pe.Value, len(pe.Stack))
	}
}

// TestPanicErrorSeesThroughToErrors pins the unwrap contract the retry
// policy depends on: a panic whose value is an error stays visible to
// errors.Is/As — including the transient classification — through the
// panic-to-error conversion.
func TestPanicErrorSeesThroughToErrors(t *testing.T) {
	inner := &faultinject.Error{Site: faultinject.SiteMemAccess, Kind: faultinject.KindError, Hit: 3}
	_, err := safeRun("mem", func() (*sm.Result, error) { panic(inner) })
	if !faultinject.IsInjected(err) {
		t.Errorf("injected fault invisible through PanicError: %v", err)
	}
	if !faultinject.IsTransient(err) {
		t.Errorf("transient fault lost its class through PanicError: %v", err)
	}
}

// TestStreamPanicIsolation: a panic injected into one stream launch
// fails that launch's future (and poisons its FIFO successors) while
// the device, its queue and fresh streams stay fully usable.
func TestStreamPanicIsolation(t *testing.T) {
	leakcheck.Check(t)
	plan := faultinject.NewPlan(1, faultinject.Spec{
		{Site: faultinject.SiteStreamDispatch, Kind: faultinject.KindPanic, Hits: []uint64{1}},
	})
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s := dev.NewStream()
	victim := s.Launch(ctx, counterProgram(t))
	poisoned := s.Launch(ctx, counterProgram(t))

	var pe *PanicError
	if _, err := victim.Wait(); !errors.As(err, &pe) {
		t.Fatalf("faulted launch: err %v, want *PanicError", err)
	}
	if !faultinject.IsInjected(pe) {
		t.Errorf("panic value should carry the injected fault: %v", pe)
	}
	if _, err := poisoned.Wait(); err == nil || !strings.Contains(err.Error(), "not run") {
		t.Errorf("FIFO successor: err %v, want poison", err)
	} else if !errors.As(err, &pe) {
		t.Errorf("poison should wrap the originating panic: %v", err)
	}

	// The device survives: a fresh stream simulates cleanly (hit 1 was
	// the only scheduled fault) and Synchronize drains to idle.
	fresh := dev.NewStream().Launch(ctx, counterProgram(t))
	if _, err := fresh.Wait(); err != nil {
		t.Errorf("fresh stream after panic: %v", err)
	}
	if err := dev.Synchronize(ctx); err != nil {
		t.Errorf("Synchronize after panic: %v", err)
	}
}

// livelockLaunch builds a kernel that can never retire: the cycle
// bound is the only way out.
func livelockLaunch(t *testing.T) *exec.Launch {
	t.Helper()
	prog := mustProgram(t, "livelock", `
spin:
	bra  spin
	exit
`)
	return &exec.Launch{Prog: prog, GridDim: 1, BlockDim: 32}
}

// TestLivelockFailsOnlyItsLaunch drives the livelock error path
// through the full device stack: Stream.Launch → Pending.Wait surfaces
// a typed *sm.LivelockError carrying the partial-state snapshot, the
// stream poisons its successors, and the device stays usable.
func TestLivelockFailsOnlyItsLaunch(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2),
		WithModifier(func(c *sm.Config) { c.MaxCycles = 2000 }))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s := dev.NewStream()
	victim := s.Launch(ctx, livelockLaunch(t))
	poisoned := s.Launch(ctx, counterProgram(t))

	_, err = victim.Wait()
	var le *sm.LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("livelocked launch: err %v (%T), want *sm.LivelockError", err, err)
	}
	if le.Limit != 2000 || le.Cycle < le.Limit {
		t.Errorf("LivelockError limit/cycle = %d/%d, want cycle >= limit 2000", le.Limit, le.Cycle)
	}
	if le.State == "" {
		t.Error("LivelockError carries no partial-state snapshot")
	}
	if _, err := poisoned.Wait(); err == nil || !strings.Contains(err.Error(), "not run") {
		t.Errorf("FIFO successor of livelock: err %v, want poison", err)
	}
	if _, err := dev.NewStream().Launch(ctx, counterProgram(t)).Wait(); err != nil {
		t.Errorf("fresh stream after livelock: %v", err)
	}
	if err := dev.Synchronize(ctx); err != nil {
		t.Errorf("Synchronize after livelock: %v", err)
	}
}

// TestLivelockNeverCached: suite entries that die on the cycle bound
// must not poison the simulation cache — a later pass with a sane
// configuration (or a follower during the failing pass) re-runs
// instead of inheriting the failure.
func TestLivelockNeverCached(t *testing.T) {
	leakcheck.Check(t)
	suite := []*kernels.Benchmark{mustBench(t, "Transpose"), mustBench(t, "Histogram")}
	cache := NewSimCache()
	ctx := context.Background()

	sick, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2), WithSimCache(cache), WithRetry(2),
		WithModifier(func(c *sm.Config) { c.MaxCycles = 50 }))
	if err != nil {
		t.Fatal(err)
	}
	results, err := sick.RunSuite(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		var le *sm.LivelockError
		if !errors.As(r.Err, &le) {
			t.Fatalf("%s under MaxCycles=50: err %v, want *sm.LivelockError", r.Bench.Name, r.Err)
		}
		if faultinject.IsTransient(r.Err) {
			t.Errorf("%s: livelock classified transient; WithRetry would spin on it", r.Bench.Name)
		}
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after livelocked pass, want 0", n)
	}

	// The same cache serves a healthy device: everything simulates
	// (fresh fills, not inherited failures) and is memoized.
	well, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2), WithSimCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	results, err = well.RunSuite(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s on healthy device sharing the cache: %v", r.Bench.Name, r.Err)
		}
	}
	if n := cache.Len(); n != len(suite) {
		t.Errorf("cache holds %d entries after healthy pass, want %d", n, len(suite))
	}
}

// TestWatchdogTimesOutStuckLaunch: a launch exceeding its wall-clock
// bound completes its Pending with a *sm.TimeoutError carrying the
// stuck SM's partial state, poisons its FIFO successors, and leaves
// the device usable.
func TestWatchdogTimesOutStuckLaunch(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2), WithLaunchTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s := dev.NewStream()
	victim := s.Launch(ctx, spinLaunch(t))
	poisoned := s.Launch(ctx, counterProgram(t))

	_, err = victim.Wait()
	if !errors.Is(err, sm.ErrLaunchTimeout) {
		t.Fatalf("stuck launch: err %v, want errors.Is(err, sm.ErrLaunchTimeout)", err)
	}
	var te *sm.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("stuck launch: err %v (%T), want *sm.TimeoutError", err, err)
	}
	if te.State == "" {
		t.Error("TimeoutError carries no partial-state snapshot")
	}
	if _, err := poisoned.Wait(); err == nil || !strings.Contains(err.Error(), "not run") {
		t.Errorf("FIFO successor of timeout: err %v, want poison", err)
	}
	if _, err := dev.NewStream().Launch(ctx, counterProgram(t)).Wait(); err != nil {
		t.Errorf("fresh stream after timeout: %v", err)
	}
	if err := dev.Synchronize(ctx); err != nil {
		t.Errorf("Synchronize after timeout: %v", err)
	}
}

// TestWatchdogDiagnosesMemsysInterleaver routes the timeout through
// the shared-clock memsys driver: the abort must be rendered through a
// live sm.Runner (Runner.Diagnose), so even the partitioned path
// reports a partial-state snapshot instead of a bare context error.
func TestWatchdogDiagnosesMemsysInterleaver(t *testing.T) {
	leakcheck.Check(t)
	dev, err := New(WithArch(sm.ArchSBISWI), WithSMs(2), WithWorkers(2),
		WithGridPartition(true), WithL2(mem.DefaultL2()), WithInterconnect(noc.Default()),
		WithLaunchTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.Run(context.Background(), spinLaunch(t))
	if !errors.Is(err, sm.ErrLaunchTimeout) {
		t.Fatalf("partitioned memsys launch: err %v, want errors.Is(err, sm.ErrLaunchTimeout)", err)
	}
	var te *sm.TimeoutError
	if !errors.As(err, &te) || te.State == "" {
		t.Fatalf("partitioned memsys launch: err %v, want *sm.TimeoutError with partial state", err)
	}
}

// TestRetryRecoversTransientFault: a transient fault on the first two
// attempts of a suite entry is retried (loudly) and the entry
// ultimately succeeds.
func TestRetryRecoversTransientFault(t *testing.T) {
	leakcheck.Check(t)
	plan := faultinject.NewPlan(7, faultinject.Spec{
		{Site: faultinject.SiteSuiteWorker, Kind: faultinject.KindError, Hits: []uint64{1, 2}},
	})
	var diag bytes.Buffer
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2),
		WithFaultPlan(plan), WithRetry(3), WithReplayLog(&diag))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.SubmitBenchmark(context.Background(), mustBench(t, "Transpose")).Wait()
	if err != nil || res == nil {
		t.Fatalf("entry behind two transient faults: res %v err %v, want success", res, err)
	}
	if got := plan.Injected(faultinject.SiteSuiteWorker); got != 2 {
		t.Errorf("injected %d suite-worker faults, want 2", got)
	}
	if !strings.Contains(diag.String(), "transient failure, retry") {
		t.Errorf("retries were silent; diagnostics: %q", diag.String())
	}
}

// TestRetryBudgetExhaustionSurfaces: a fault that outlives the retry
// budget surfaces as the injected error, still transient-classified.
func TestRetryBudgetExhaustionSurfaces(t *testing.T) {
	leakcheck.Check(t)
	plan := faultinject.NewPlan(7, faultinject.Spec{
		{Site: faultinject.SiteSuiteWorker, Kind: faultinject.KindError, Every: 1},
	})
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2),
		WithFaultPlan(plan), WithRetry(2), WithReplayLog(&bytes.Buffer{}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dev.SubmitBenchmark(context.Background(), mustBench(t, "Transpose")).Wait()
	if !faultinject.IsInjected(err) || !faultinject.IsTransient(err) {
		t.Fatalf("exhausted retries: err %v, want the injected transient fault", err)
	}
	if got := plan.Injected(faultinject.SiteSuiteWorker); got != 3 {
		t.Errorf("injected %d faults, want 3 (first attempt + 2 retries)", got)
	}
}

// TestRetryRecoversMemAccessPanic: the hot memory-access site raises
// error-class faults as panics (Access cannot return an error); the
// panic must convert, classify transient, and retry to success.
func TestRetryRecoversMemAccessPanic(t *testing.T) {
	leakcheck.Check(t)
	plan := faultinject.NewPlan(3, faultinject.Spec{
		{Site: faultinject.SiteMemAccess, Kind: faultinject.KindError, Hits: []uint64{1}},
	})
	var diag bytes.Buffer
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2),
		WithL2(mem.DefaultL2()), WithInterconnect(noc.Default()),
		WithFaultPlan(plan), WithRetry(2), WithReplayLog(&diag))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.SubmitBenchmark(context.Background(), mustBench(t, "Transpose")).Wait()
	if err != nil || res == nil {
		t.Fatalf("entry behind a mem-access fault panic: res %v err %v, want success", res, err)
	}
	if !strings.Contains(diag.String(), "transient failure, retry") {
		t.Errorf("mem-access retry was silent; diagnostics: %q", diag.String())
	}
}

// TestReplayFaultFallsBackLoudly: a fault injected into the replay
// path degrades to full simulation with the fallback logged — never a
// silent wrong (or missing) number.
func TestReplayFaultFallsBackLoudly(t *testing.T) {
	leakcheck.Check(t)
	plan := faultinject.NewPlan(11, faultinject.Spec{
		{Site: faultinject.SiteReplayFallback, Kind: faultinject.KindPanic, Every: 1},
	})
	var diag bytes.Buffer
	dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(2),
		WithTraceReplay(true), WithFaultPlan(plan), WithReplayLog(&diag))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	suite := []*kernels.Benchmark{mustBench(t, "Transpose")}

	// The suite pass records the trace without replaying (the fault
	// site sits on the replay path only). RunTraceReplay then records
	// and replays — every replay attempt panics, so it must fall back
	// to the recorded full simulation and still produce the result.
	first, err := dev.RunSuite(ctx, suite)
	if err != nil || first[0].Err != nil {
		t.Fatalf("recording pass: %v / %v", err, first[0].Err)
	}
	_, err = dev.RunTraceReplay(ctx, mustLaunch(t, "Transpose"))
	if err != nil {
		t.Fatalf("RunTraceReplay with a panicking replay path: %v", err)
	}
	if !strings.Contains(diag.String(), "fell back") {
		t.Errorf("replay degradation was silent; diagnostics: %q", diag.String())
	}
}

// mustBench fetches a suite benchmark by name.
func mustBench(t *testing.T, name string) *kernels.Benchmark {
	t.Helper()
	b, ok := kernels.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return b
}

// mustLaunch builds a fresh launch of a suite benchmark.
func mustLaunch(t *testing.T, name string) *exec.Launch {
	t.Helper()
	l, err := mustBench(t, name).NewLaunch(true)
	if err != nil {
		t.Fatal(err)
	}
	return l
}
