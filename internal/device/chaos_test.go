package device

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/leakcheck"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// The chaos suite: seeded multi-site fault storms against the full
// device stack. Every test follows the same contract:
//
//   - goroutine hygiene: the device drains to idle and the module's
//     goroutine baseline is restored (leakcheck);
//   - fault attribution: an entry either succeeds with statistics
//     bit-identical to the fault-free run, or fails with an error
//     attributable to the storm (injected fault, panic conversion,
//     cancellation, watchdog) — never a silent wrong number;
//   - no poisoning: after Disarm the same device and cache run the
//     whole workload clean, proving failed results never entered the
//     cache and the device survived the storm undamaged.
//
// Schedules are seeded, so a failing storm replays exactly.

// chaosSuite is a cheap 4-benchmark subset: two multi-wave irregulars,
// two single-wave regulars.
func chaosSuite(t *testing.T) []*kernels.Benchmark {
	t.Helper()
	var out []*kernels.Benchmark
	for _, name := range []string{"Transpose", "Histogram", "MatrixMul", "BlackScholes"} {
		out = append(out, mustBench(t, name))
	}
	return out
}

// goldenStats runs the suite fault-free on an equivalent device and
// returns per-benchmark statistics.
func goldenStats(t *testing.T, suite []*kernels.Benchmark, opts ...Option) map[string]sm.Stats {
	t.Helper()
	dev, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := dev.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	golden := make(map[string]sm.Stats, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("fault-free golden run: %s: %v", r.Bench.Name, r.Err)
		}
		golden[r.Bench.Name] = r.Result.Stats
	}
	return golden
}

// stormError reports whether err is attributable to the fault storm:
// an injected fault (seen through any wrapping, including
// panic-to-error conversion), a device panic conversion, a
// cancellation, a watchdog timeout, or stream poison wrapping one of
// those.
func stormError(err error) bool {
	var pe *PanicError
	return faultinject.IsInjected(err) ||
		errors.As(err, &pe) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, sm.ErrLaunchTimeout)
}

// checkEntries asserts the per-entry chaos contract: success is
// bit-identical to golden, failure is attributable to the storm.
func checkEntries(t *testing.T, tag string, results []*SuiteResult, golden map[string]sm.Stats) {
	t.Helper()
	for _, r := range results {
		if r.Err != nil {
			if !stormError(r.Err) {
				t.Errorf("%s: %s failed outside the storm's fault classes: %v", tag, r.Bench.Name, r.Err)
			}
			continue
		}
		if !reflect.DeepEqual(r.Result.Stats, golden[r.Bench.Name]) {
			t.Errorf("%s: %s survived the storm but its statistics diverged from the fault-free run", tag, r.Bench.Name)
		}
	}
}

// TestChaosSuite storms the batch path: transient errors, panics,
// delays and cancellations across the suite-worker, cache-fill and
// queue-acquire sites, under -race in CI, with retry absorbing the
// transient share.
func TestChaosSuite(t *testing.T) {
	leakcheck.Check(t)
	suite := chaosSuite(t)
	golden := goldenStats(t, suite, WithArch(sm.ArchSBISWI), WithWorkers(4))
	ctx := context.Background()

	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		plan := faultinject.NewPlan(seed, faultinject.Spec{
			{Site: faultinject.SiteSuiteWorker, Kind: faultinject.KindError, Prob: 0.3},
			{Site: faultinject.SiteCacheFill, Kind: faultinject.KindPanic, Prob: 0.2},
			{Site: faultinject.SiteQueueAcquire, Kind: faultinject.KindDelay, Prob: 0.3, Delay: time.Millisecond},
			{Site: faultinject.SiteQueueAcquire, Kind: faultinject.KindCancel, Prob: 0.1},
		})
		cache := NewSimCache()
		dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4),
			WithSimCache(cache), WithRetry(2), WithFaultPlan(plan), WithReplayLog(&bytes.Buffer{}))
		if err != nil {
			t.Fatal(err)
		}

		for pass := 0; pass < 2; pass++ {
			results, err := dev.RunSuite(ctx, suite)
			if err != nil {
				t.Fatalf("seed %d pass %d: %v", seed, pass, err)
			}
			checkEntries(t, plan.String(), results, golden)
		}
		if err := dev.Synchronize(ctx); err != nil {
			t.Errorf("seed %d: Synchronize after storm: %v", seed, err)
		}

		// Disarm and re-run on the same device and cache: everything
		// must come back clean and golden — a failed result that had
		// leaked into the cache would surface right here.
		plan.Disarm()
		results, err := dev.RunSuite(ctx, suite)
		if err != nil {
			t.Fatalf("seed %d post-disarm: %v", seed, err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("seed %d post-disarm: %s: %v", seed, r.Bench.Name, r.Err)
			} else if !reflect.DeepEqual(r.Result.Stats, golden[r.Bench.Name]) {
				t.Errorf("seed %d post-disarm: %s diverged from golden", seed, r.Bench.Name)
			}
		}
		if n := cache.Len(); n != len(suite) {
			t.Errorf("seed %d: cache holds %d entries post-disarm, want %d", seed, n, len(suite))
		}
	}
}

// TestChaosStreams storms the asynchronous path: launches spread over
// several streams with panics and cancellations at dispatch and
// admission. Poison must stay inside each stream and the device must
// drain and stay usable.
func TestChaosStreams(t *testing.T) {
	leakcheck.Check(t)
	suite := chaosSuite(t)
	golden := goldenStats(t, suite, WithArch(sm.ArchSBISWI), WithWorkers(4))
	ctx := context.Background()

	for _, seed := range []uint64{1, 2, 3} {
		plan := faultinject.NewPlan(seed, faultinject.Spec{
			{Site: faultinject.SiteStreamDispatch, Kind: faultinject.KindPanic, Prob: 0.25},
			{Site: faultinject.SiteStreamDispatch, Kind: faultinject.KindError, Prob: 0.15},
			{Site: faultinject.SiteQueueAcquire, Kind: faultinject.KindCancel, Prob: 0.1},
		})
		dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4), WithFaultPlan(plan))
		if err != nil {
			t.Fatal(err)
		}

		const streams = 3
		type flight struct {
			bench *kernels.Benchmark
			p     *Pending
		}
		var flights []flight
		ss := make([]*Stream, streams)
		for i := range ss {
			ss[i] = dev.NewStream()
		}
		for round := 0; round < 2; round++ {
			for i, b := range suite {
				l, err := b.NewLaunch(true)
				if err != nil {
					t.Fatal(err)
				}
				flights = append(flights, flight{b, ss[(round*len(suite)+i)%streams].Launch(ctx, l)})
			}
		}
		for _, f := range flights {
			res, err := f.p.Wait()
			if err != nil {
				if !stormError(err) {
					t.Errorf("seed %d: %s failed outside the storm's fault classes: %v", seed, f.bench.Name, err)
				}
				continue
			}
			if !reflect.DeepEqual(res.Stats, golden[f.bench.Name]) {
				t.Errorf("seed %d: %s survived the storm but diverged from golden", seed, f.bench.Name)
			}
		}
		if err := dev.Synchronize(ctx); err != nil {
			t.Errorf("seed %d: Synchronize after storm: %v", seed, err)
		}

		// Fresh streams on the disarmed device replay the whole load
		// clean.
		plan.Disarm()
		for _, b := range suite {
			l, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dev.NewStream().Launch(ctx, l).Wait()
			if err != nil {
				t.Errorf("seed %d post-disarm: %s: %v", seed, b.Name, err)
			} else if !reflect.DeepEqual(res.Stats, golden[b.Name]) {
				t.Errorf("seed %d post-disarm: %s diverged from golden", seed, b.Name)
			}
		}
	}
}

// TestChaosMemsysAndReplay storms the hardest paths: the shared-clock
// partitioned memory system (faults raised as panics on the hot access
// path, plus the wave-merge site) and the trace-replay engine (replay
// faults degrading to full simulation). Retry absorbs the transient
// share; everything else must attribute.
func TestChaosMemsysAndReplay(t *testing.T) {
	leakcheck.Check(t)
	suite := chaosSuite(t)
	base := []Option{
		WithArch(sm.ArchSBISWI), WithSMs(2), WithWorkers(4),
		WithGridPartition(true), WithL2(mem.DefaultL2()), WithInterconnect(noc.Default()),
	}
	golden := goldenStats(t, suite, base...)
	ctx := context.Background()

	for _, seed := range []uint64{1, 2, 3} {
		plan := faultinject.NewPlan(seed, faultinject.Spec{
			{Site: faultinject.SiteMemAccess, Kind: faultinject.KindError, Hits: []uint64{2000, 40000}},
			{Site: faultinject.SiteWaveMerge, Kind: faultinject.KindError, Prob: 0.2},
			{Site: faultinject.SiteReplayFallback, Kind: faultinject.KindPanic, Prob: 0.5},
		})
		cache := NewSimCache()
		opts := append(append([]Option{}, base...),
			WithSimCache(cache), WithTraceReplay(true), WithRetry(2),
			WithFaultPlan(plan), WithReplayLog(&bytes.Buffer{}))
		dev, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}

		for pass := 0; pass < 2; pass++ {
			results, err := dev.RunSuite(ctx, suite)
			if err != nil {
				t.Fatalf("seed %d pass %d: %v", seed, pass, err)
			}
			checkEntries(t, plan.String(), results, golden)
		}
		if err := dev.Synchronize(ctx); err != nil {
			t.Errorf("seed %d: Synchronize after storm: %v", seed, err)
		}

		plan.Disarm()
		results, err := dev.RunSuite(ctx, suite)
		if err != nil {
			t.Fatalf("seed %d post-disarm: %v", seed, err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("seed %d post-disarm: %s: %v", seed, r.Bench.Name, r.Err)
			} else if !reflect.DeepEqual(r.Result.Stats, golden[r.Bench.Name]) {
				t.Errorf("seed %d post-disarm: %s diverged from golden", seed, r.Bench.Name)
			}
		}
	}
}

// TestChaosWatchdog storms the watchdog: injected admission delays
// push some launches past a tight wall-clock bound. Timed-out launches
// must report sm.ErrLaunchTimeout (with poison wrapping it for FIFO
// successors); survivors must be bit-identical to golden; the disarmed
// device runs clean.
func TestChaosWatchdog(t *testing.T) {
	leakcheck.Check(t)
	suite := chaosSuite(t)
	golden := goldenStats(t, suite, WithArch(sm.ArchSBISWI), WithWorkers(4))
	ctx := context.Background()

	for _, seed := range []uint64{1, 2} {
		// The margin between the watchdog bound and the injected delay
		// is deliberately wide: under -race a clean benchmark runs tens
		// of times slower, and it must still finish inside the bound.
		plan := faultinject.NewPlan(seed, faultinject.Spec{
			{Site: faultinject.SiteQueueAcquire, Kind: faultinject.KindDelay, Prob: 0.5, Delay: 3 * time.Second},
		})
		dev, err := New(WithArch(sm.ArchSBISWI), WithWorkers(4),
			WithLaunchTimeout(time.Second), WithFaultPlan(plan))
		if err != nil {
			t.Fatal(err)
		}

		var pendings []*Pending
		for _, b := range suite {
			l, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			pendings = append(pendings, dev.NewStream().Launch(ctx, l))
		}
		for i, p := range pendings {
			res, err := p.Wait()
			if err != nil {
				if !errors.Is(err, sm.ErrLaunchTimeout) {
					t.Errorf("seed %d: %s: err %v, want a watchdog timeout", seed, suite[i].Name, err)
				}
				continue
			}
			if !reflect.DeepEqual(res.Stats, golden[suite[i].Name]) {
				t.Errorf("seed %d: %s survived but diverged from golden", seed, suite[i].Name)
			}
		}
		if err := dev.Synchronize(ctx); err != nil {
			t.Errorf("seed %d: Synchronize after storm: %v", seed, err)
		}

		plan.Disarm()
		for _, b := range suite {
			l, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dev.NewStream().Launch(ctx, l).Wait(); err != nil {
				t.Errorf("seed %d post-disarm: %s: %v", seed, b.Name, err)
			}
		}
	}
}
