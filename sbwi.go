package sbwi

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sched"
	"repro/internal/sm"
)

// Core type aliases: the public API surface of the library.
type (
	// Program is an assembled kernel.
	Program = isa.Program
	// Launch binds a program to a grid, parameters and global memory.
	Launch = exec.Launch
	// Config is a full micro-architecture configuration (paper table 2).
	Config = sm.Config
	// Arch selects one of the modeled micro-architectures.
	Arch = sm.Arch
	// Stats aggregates one simulation (IPC, issues, divergence, memory).
	Stats = sm.Stats
	// Result is a finished simulation: statistics plus optional trace.
	Result = sm.Result
	// Trace is a bounded issue-event recording for visualization.
	Trace = sm.Trace
	// Shuffle is a static lane-shuffling policy (paper table 1).
	Shuffle = sched.Shuffle
	// Benchmark is one entry of the benchmark suite (the paper's 21
	// kernels plus the synthetic WriteStorm store-saturation anchor).
	Benchmark = kernels.Benchmark
	// ExperimentTable is a rendered experiment (text or CSV).
	ExperimentTable = experiments.Table
)

// Failure types: every way a launch can fail carries a typed error, so
// callers branch with errors.Is/errors.As instead of string-matching.
type (
	// PanicError is a panic converted to an error at a device goroutine
	// boundary: the operation (including the launch identity when
	// known), the recovered value, and the panicking goroutine's stack.
	// A panic fails only its owning launch, stream or suite entry — the
	// device and its other streams stay fully usable.
	PanicError = device.PanicError
	// LivelockError reports a simulation that exceeded its cycle bound
	// (Config.MaxCycles), with a partial-state snapshot of the stuck SM.
	LivelockError = sm.LivelockError
	// TimeoutError reports a launch aborted by the WithLaunchTimeout
	// wall-clock watchdog, with a partial-state snapshot;
	// errors.Is(err, ErrLaunchTimeout) matches it.
	TimeoutError = sm.TimeoutError
)

// ErrLaunchTimeout is the sentinel in every watchdog timeout's chain:
// errors.Is(err, ErrLaunchTimeout) identifies a launch aborted by
// WithLaunchTimeout wherever it was caught — still queued, waiting on
// a stream predecessor, or mid-simulation.
var ErrLaunchTimeout = sm.ErrLaunchTimeout

// The modeled architectures (figure 7).
const (
	Baseline = sm.ArchBaseline
	SBI      = sm.ArchSBI
	SWI      = sm.ArchSWI
	SBISWI   = sm.ArchSBISWI
	Warp64   = sm.ArchWarp64
)

// Lane shuffling policies (paper table 1).
const (
	Identity   = sched.ShuffleIdentity
	MirrorOdd  = sched.ShuffleMirrorOdd
	MirrorHalf = sched.ShuffleMirrorHalf
	Xor        = sched.ShuffleXor
	XorRev     = sched.ShuffleXorRev
)

// FullyAssociative selects the unrestricted SWI secondary lookup.
const FullyAssociative = sched.AssocFull

// Assemble parses mini-ISA source and annotates every conditional
// branch with its reconvergence PC, ready for the baseline (stack)
// architecture. Use ThreadFrontier for the SBI/SWI program variant.
func Assemble(name, src string) (*Program, error) {
	p, err := asm.Assemble(name, src)
	if err != nil {
		return nil, err
	}
	if err := cfg.AnnotateReconvergence(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ThreadFrontier returns a copy of p instrumented with the selective
// synchronization SYNC barriers of paper §3.3, the program variant the
// thread-frontier architectures (SBI, SWI, SBI+SWI, Warp64) execute.
func ThreadFrontier(p *Program) (*Program, error) {
	return cfg.InsertSyncs(p)
}

// Architectures lists the modeled architectures in figure-7 order.
func Architectures() []Arch { return sm.Architectures() }

// NewLaunch builds a launch. Params are byte offsets or scalar values
// the kernel reads via %p0..%p15; passing more than the ISA's 16
// parameters is a programming error and panics rather than silently
// dropping the excess.
func NewLaunch(p *Program, grid, block int, global []byte, params ...uint32) *Launch {
	l := &Launch{Prog: p, GridDim: grid, BlockDim: block, Global: global}
	if len(params) > len(l.Params) {
		panic(fmt.Sprintf("sbwi: NewLaunch: %d kernel parameters exceed the ISA's %d (%%p0..%%p%d)",
			len(params), len(l.Params), len(l.Params)-1))
	}
	copy(l.Params[:], params)
	return l
}

// RunReference executes the launch on the functional reference
// simulator (stack-based, warpWidth-wide warps) — the architectural
// oracle for kernel development.
func RunReference(l *Launch, warpWidth int) error {
	_, err := exec.RunReference(l, warpWidth)
	return err
}

// Verify runs a launch functionally on a copy and compares the final
// global memory against a second copy run on a device built from opts
// (for example WithArch(SBISWI)), returning an error on any mismatch.
// It is a convenience for validating custom kernels on every
// architecture.
func Verify(l *Launch, opts ...Option) error {
	ref := l.CloneGlobal()
	if _, err := exec.RunReference(ref, 32); err != nil {
		return fmt.Errorf("sbwi: reference: %w", err)
	}
	dev, err := NewDevice(opts...)
	if err != nil {
		return err
	}
	cyc := l.CloneGlobal()
	if _, err := dev.Run(context.Background(), cyc); err != nil {
		return fmt.Errorf("sbwi: cycle simulation: %w", err)
	}
	for i := range ref.Global {
		if ref.Global[i] != cyc.Global[i] {
			return fmt.Errorf("sbwi: memory differs from reference at byte %d", i)
		}
	}
	return nil
}

// Benchmarks returns the paper's evaluation suite (10 regular + 11
// irregular kernels), each with deterministic inputs and a Go oracle.
func Benchmarks() []*Benchmark { return kernels.All() }

// BenchmarkByName finds a suite kernel.
func BenchmarkByName(name string) (*Benchmark, bool) { return kernels.ByName(name) }

// NewExperiments creates a memoizing experiment runner that regenerates
// the paper's tables and figures; see ExperimentNames.
func NewExperiments() *experiments.Runner { return experiments.NewRunner() }

// ExperimentNames lists the runnable experiments (fig7a..fig9,
// table2..table4).
func ExperimentNames() []string { return experiments.Experiments }
