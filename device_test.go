package sbwi

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/sm"
)

// suiteSubset picks multi-wave kernels cheap enough to simulate
// repeatedly: their grids exceed the 4-CTA residency of the 64-wide
// architectures, so grid partitioning genuinely decomposes them.
func suiteSubset(t *testing.T) []*Benchmark {
	t.Helper()
	var out []*Benchmark
	for _, name := range []string{"Histogram", "BFS", "DWTHaar1D"} {
		b, ok := BenchmarkByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, b)
	}
	return out
}

// TestDeviceMatchesSeedRun asserts the headline compatibility claim:
// an unpartitioned Device.Run produces bit-identical statistics to the
// classic single-SM Run path for every kernel, whatever the SM count.
func TestDeviceMatchesSeedRun(t *testing.T) {
	for _, b := range suiteSubset(t) {
		seedLaunch, err := b.NewLaunch(true)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := sm.Run(sm.Configure(sm.ArchSBISWI), seedLaunch)
		if err != nil {
			t.Fatal(err)
		}
		for _, sms := range []int{1, 2, 8} {
			dev, err := NewDevice(WithArch(SBISWI), WithSMs(sms))
			if err != nil {
				t.Fatal(err)
			}
			l, err := b.NewLaunch(true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dev.Run(context.Background(), l)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Stats, seed.Stats) {
				t.Errorf("%s with %d SMs: stats differ from the seed path\n dev: %v\nseed: %v",
					b.Name, sms, &res.Stats, &seed.Stats)
			}
			if !reflect.DeepEqual(l.Global, seedLaunch.Global) {
				t.Errorf("%s with %d SMs: memory differs from the seed path", b.Name, sms)
			}
		}
	}
}

// TestPartitionedDeterminism asserts the partitioned engine's
// determinism guarantee: byte-identical merged Stats for every SM and
// worker count, with functional results still matching the oracle
// (RunSuite checks it).
func TestPartitionedDeterminism(t *testing.T) {
	suite := suiteSubset(t)
	type combo struct{ sms, workers int }
	combos := []combo{{1, 1}, {2, 1}, {2, 4}, {8, 1}, {8, 4}}
	var baseline []Stats
	for _, c := range combos {
		dev, err := NewDevice(
			WithArch(SBISWI),
			WithSMs(c.sms),
			WithWorkers(c.workers),
			WithGridPartition(true),
		)
		if err != nil {
			t.Fatal(err)
		}
		results, err := dev.RunSuite(context.Background(), suite)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]Stats, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("%s (%d SMs, %d workers): %v", r.Bench.Name, c.sms, c.workers, r.Err)
			}
			stats[i] = r.Result.Stats
			if len(r.Result.Waves) < 2 {
				t.Errorf("%s: expected a multi-wave decomposition, got %d waves",
					r.Bench.Name, len(r.Result.Waves))
			}
			if got, want := len(r.Result.SMCycles), c.sms; got != want {
				t.Errorf("%s: SMCycles length = %d, want %d", r.Bench.Name, got, want)
			}
			if r.Result.DeviceCycles() > r.Result.Stats.Cycles {
				t.Errorf("%s: device wall-clock %d exceeds aggregate cycles %d",
					r.Bench.Name, r.Result.DeviceCycles(), r.Result.Stats.Cycles)
			}
		}
		if baseline == nil {
			baseline = stats
			continue
		}
		if !reflect.DeepEqual(stats, baseline) {
			t.Errorf("stats with %d SMs / %d workers differ from the 1-SM baseline", c.sms, c.workers)
		}
	}
}

// TestLJFDispatchOrderAndDeterminism asserts the batch scheduler's
// contract: longest-job-first dispatch returns results at their input
// index and produces bit-identical statistics for every worker count —
// both on a cold cost registry (static estimates) and a warm one
// (measured cycles), since the suite runs repeatedly within one
// process. Auto-partitioning is enabled so the heavy-tail routing is
// exercised under every worker count too.
func TestLJFDispatchOrderAndDeterminism(t *testing.T) {
	suite := suiteSubset(t)
	var baseline []Stats
	for _, workers := range []int{1, 4, 8} {
		for pass := 0; pass < 2; pass++ { // pass 2 dispatches on measured costs
			dev, err := NewDevice(
				WithArch(SBISWI),
				WithWorkers(workers),
				WithAutoPartition(true),
			)
			if err != nil {
				t.Fatal(err)
			}
			results, err := dev.RunSuite(context.Background(), suite)
			if err != nil {
				t.Fatal(err)
			}
			stats := make([]Stats, len(results))
			for i, r := range results {
				if r.Bench != suite[i] {
					t.Fatalf("workers=%d pass=%d: result %d is %s, want input order preserved",
						workers, pass, i, r.Bench.Name)
				}
				if r.Err != nil {
					t.Fatalf("%s (workers=%d): %v", r.Bench.Name, workers, r.Err)
				}
				stats[i] = r.Result.Stats
			}
			if baseline == nil {
				baseline = stats
				continue
			}
			if !reflect.DeepEqual(stats, baseline) {
				t.Errorf("stats with %d workers (pass %d) differ from the 1-worker baseline", workers, pass)
			}
		}
	}
}

// TestAutoPartitionRoutesExactlyTheTail pins the auto-partition
// policy's semantics: a heavy entry (static cost above the batch mean,
// multi-wave grid) carries the partitioned engine's statistics, while
// light entries stay cycle-exact with the whole-grid path. With the
// calibrated cost table, Histogram (~74 modeled cycles per thread —
// the batch's true wall-clock dominator, which raw grid×block ranked
// lightest) is the only entry above the batch mean.
func TestAutoPartitionRoutesExactlyTheTail(t *testing.T) {
	suite := suiteSubset(t) // Histogram, BFS, DWTHaar1D: only Histogram is above the calibrated mean
	auto, err := NewDevice(WithArch(SBISWI), WithAutoPartition(true))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewDevice(WithArch(SBISWI))
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewDevice(WithArch(SBISWI), WithGridPartition(true))
	if err != nil {
		t.Fatal(err)
	}
	autoRes, err := auto.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := flat.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	partRes, err := part.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range suite {
		if autoRes[i].Err != nil || flatRes[i].Err != nil || partRes[i].Err != nil {
			t.Fatalf("%s: %v / %v / %v", b.Name, autoRes[i].Err, flatRes[i].Err, partRes[i].Err)
		}
		heavy := b.Name == "Histogram"
		want := flatRes[i].Result.Stats
		if heavy {
			want = partRes[i].Result.Stats
		}
		if !reflect.DeepEqual(autoRes[i].Result.Stats, want) {
			t.Errorf("%s (heavy=%v): auto-partitioned stats do not match the expected path", b.Name, heavy)
		}
		if heavy && reflect.DeepEqual(autoRes[i].Result.Stats, flatRes[i].Result.Stats) {
			t.Errorf("%s: expected the partitioned timing model to differ from the whole-grid run", b.Name)
		}
	}
}

// TestPartitionedSingleWaveIsSeedExact: a grid that fits the SM's CTA
// residency is one wave, so even the partitioned path must be
// cycle-exact with the seed Run.
func TestPartitionedSingleWaveIsSeedExact(t *testing.T) {
	prog, err := Assemble("scale", scaleSrc)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Launch {
		global := make([]byte, 4*256*4)
		for i := range global {
			global[i] = byte(i * 5)
		}
		return NewLaunch(tf, 4, 256, global, 0)
	}
	seed, err := sm.Run(sm.Configure(sm.ArchSBISWI), mk())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(WithArch(SBISWI), WithSMs(8), WithGridPartition(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, seed.Stats) {
		t.Errorf("single-wave partitioned stats differ from seed:\n dev: %v\nseed: %v",
			&res.Stats, &seed.Stats)
	}
}

// longRunningLaunch builds a launch that simulates for a long time: a
// large spin loop per thread over many CTAs.
func longRunningLaunch(t *testing.T) *Launch {
	t.Helper()
	prog, err := Assemble("spin", `
	mov  r1, 0
	mov  r2, 1000000
loop:
	iadd r1, r1, 1
	isetp.lt r3, r1, r2
	bra  r3, loop
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := ThreadFrontier(prog)
	if err != nil {
		t.Fatal(err)
	}
	return NewLaunch(tf, 64, 256, nil)
}

func TestRunCancellation(t *testing.T) {
	dev, err := NewDevice(WithArch(SBISWI), WithSMs(2), WithGridPartition(true))
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled context: must not simulate at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dev.Run(ctx, longRunningLaunch(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}

	// Mid-flight cancellation: must return promptly with ctx.Err().
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = dev.Run(ctx, longRunningLaunch(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelled run took %v, want a prompt return", d)
	}
}

func TestRunSuiteCancellation(t *testing.T) {
	dev, err := NewDevice(WithArch(SBISWI))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := dev.RunSuite(ctx, suiteSubset(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSuite on a cancelled context returned %v", err)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: expected a per-benchmark cancellation error", r.Bench.Name)
		}
	}
}

func TestRunSuiteOrderAndValidation(t *testing.T) {
	suite := Benchmarks()
	dev, err := NewDevice(WithArch(SBI))
	if err != nil {
		t.Fatal(err)
	}
	results, err := dev.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(suite) {
		t.Fatalf("results = %d, want %d", len(results), len(suite))
	}
	for i, r := range results {
		if r.Bench != suite[i] {
			t.Errorf("result %d is %s, want input order preserved", i, r.Bench.Name)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Bench.Name, r.Err)
		} else if r.Result.Stats.IPC() <= 0 {
			t.Errorf("%s: empty simulation", r.Bench.Name)
		}
	}
}
