package sbwi

import (
	"io"
	"time"

	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sm"
)

// L2Config sets the shared L2's geometry and timing (capacity,
// associativity, banks, bank latency and bandwidth).
type L2Config = mem.L2Config

// NoCConfig sets the SM↔L2 crossbar timing (per-port bandwidth and
// traversal latency).
type NoCConfig = noc.Config

// NoCStats holds interconnect counters: the merged totals in
// Stats.Mem.NoC, and the per-SM port breakdown in Result.NoCPorts.
type NoCStats = noc.Stats

// DefaultL2Config returns the Fermi-class shared L2 WithL2 models when
// not overridden: 768 KB, 8-way, 8 banks.
func DefaultL2Config() L2Config { return mem.DefaultL2() }

// DefaultNoCConfig returns the crossbar WithInterconnect models when
// not overridden: 20-cycle traversal, 32 B/cycle per SM port.
func DefaultNoCConfig() NoCConfig { return noc.Default() }

// Option configures a Device built by NewDevice. Options apply in
// order; later options override earlier ones. Field options (shuffle,
// associativity, ...) modify the configuration selected by WithArch or
// WithConfig regardless of their position in the option list.
type Option = device.Option

// WithArch selects the modeled micro-architecture and bases the
// device's configuration on that architecture's paper table-2
// parameters. Default: SBISWI.
func WithArch(a Arch) Option { return device.WithArch(a) }

// WithConfig bases the device on a fully spelled-out configuration
// instead of an architecture's defaults — the escape hatch for callers
// that already hold a tuned Config.
func WithConfig(cfg Config) Option { return device.WithConfig(cfg) }

// WithSMs sets the number of streaming multiprocessors the device
// models (default 1). With grid partitioning enabled, a launch's CTA
// waves are dispatched across the SMs round-robin and
// Result.DeviceCycles reports the busiest SM's total; statistics are
// bit-identical for every SM count by construction.
func WithSMs(n int) Option { return device.WithSMs(n) }

// WithWorkers bounds the host goroutines simulating concurrently
// across everything the device runs — stream launches, CTA waves and
// RunSuite entries alike (default: GOMAXPROCS). The worker count never
// changes results, only wall-clock. Ignored when WithRunQueue shares a
// queue: the queue's slot count is the bound then.
func WithWorkers(n int) Option { return device.WithWorkers(n) }

// WithRunQueue admits the device's simulations through a shared
// RunQueue instead of a private one, bounding several devices'
// combined load — streams and suites alike — by one worker pool under
// one longest-job-first policy. Grant order never changes results. A
// nil queue keeps the default private queue.
func WithRunQueue(q *RunQueue) Option { return device.WithRunQueue(q) }

// WithStreamQueueDepth bounds how many enqueued-but-incomplete
// launches each Stream of the device may hold: Stream.Launch blocks
// once its stream is n launches deep, giving producers backpressure
// instead of an unbounded launch queue. 0 (the default) means
// unbounded.
func WithStreamQueueDepth(n int) Option { return device.WithStreamQueueDepth(n) }

// WithGridPartition enables intra-launch parallelism: the grid is
// split into SM-sized CTA waves, each simulated on an independent SM
// instance from a snapshot of global memory and merged back under the
// write-sharing contract (CTAs may only write the same global location
// with the same value). Off by default, which keeps Device.Run
// cycle-exact with the classic single-SM Run path.
func WithGridPartition(on bool) Option { return device.WithGridPartition(on) }

// WithAutoPartition lets Device.RunSuite route heavy suite entries
// through the wave-partitioned engine on its own: entries whose static
// cost estimate exceeds the batch mean and whose grids span several
// CTA waves run as parallel waves, so a batch is no longer tail-bound
// by one dominant kernel. The decision is a pure function of the batch
// — results stay bit-identical for every worker and SM count — but
// auto-partitioned entries carry the partitioned timing model's
// numbers (each wave starts on a cold SM). Off by default, which keeps
// RunSuite statistics cycle-exact with the seed path.
func WithAutoPartition(on bool) Option { return device.WithAutoPartition(on) }

// WithSimCache attaches a simulation cache: RunSuite entries are
// memoized by (benchmark, full configuration fingerprint,
// partitioning, memory system, SM count) and shared across passes and
// across every device built with the same cache. Results served from
// the cache were oracle-validated when first computed and must be
// treated as read-only. See NewSimCache.
func WithSimCache(c *SimCache) Option { return device.WithSimCache(c) }

// WithTraceReplay routes RunSuite entries through the record-once /
// replay-per-point engine: the first configuration to run a benchmark
// records its compact per-thread execution trace (one bit per
// conditional branch, one address per global memory operation), and
// every later timing configuration replays the trace through the full
// scheduling/timing machinery instead of re-simulating the functional
// layer — bit-identical statistics at a fraction of the cost.
// Benchmarks whose record-time race analysis finds timing-dependent
// functional behavior fall back to full simulation with the reason
// logged (WithReplayLog); Result.Replayed reports which path produced
// a result. Off by default. Implies a private SimCache when none is
// shared.
func WithTraceReplay(on bool) Option { return device.WithTraceReplay(on) }

// WithReplayLog directs the trace-replay fallback diagnostics to w
// (default: os.Stderr). A nil w keeps the default.
func WithReplayLog(w io.Writer) Option { return device.WithReplayLog(w) }

// WithLaunchTimeout bounds each launch's host wall-clock time —
// queueing, admission and simulation together. A launch exceeding d
// completes with a *TimeoutError (errors.Is(err, ErrLaunchTimeout))
// carrying a partial-state snapshot of the stuck SM, instead of
// hanging its Pending and every Synchronize behind it. 0 (the
// default) disables the watchdog. The watchdog never changes what a
// surviving simulation computes — wall-clock time can only abort a
// run, never retime it.
func WithLaunchTimeout(d time.Duration) Option { return device.WithLaunchTimeout(d) }

// WithRetry lets RunSuite/SubmitBenchmark entries re-run after
// transient-class failures up to n extra attempts, with exponential
// backoff between attempts. Every attempt builds a fresh launch from
// the benchmark generator, so a retry never observes partial state;
// non-transient failures (cancellations, oracle mismatches,
// livelocks, panics) surface immediately. 0 (the default) disables
// retry.
func WithRetry(n int) Option { return device.WithRetry(n) }

// WithL2 models the shared memory system: a banked, MSHR-backed L2
// between every SM's L1 and global memory, reached over the
// interconnect (DefaultNoCConfig unless WithInterconnect overrides
// it). Off by default — the seed's flat-latency DRAM model — so
// default runs stay cycle-exact with the paper reproduction. With it
// on, every run times L1 misses and write-through stores through NoC
// port, L2 bank and the shared DRAM port inline — partitioned runs
// interleave all waves against one shared memory-system clock —
// surfacing L2/NoC counters in Stats.Mem and folding cross-SM
// contention into issue timing and DeviceCycles.
func WithL2(cfg L2Config) Option { return device.WithL2(cfg) }

// WithInterconnect sets the SM↔L2 crossbar parameters and enables the
// modeled memory hierarchy (with DefaultL2Config unless WithL2
// overrides the cache itself). Narrower port bandwidth means more
// queueing and a longer modeled device wall-clock.
func WithInterconnect(cfg NoCConfig) Option { return device.WithInterconnect(cfg) }

// WithShuffle sets the static lane-shuffling policy (paper table 1).
func WithShuffle(p Shuffle) Option {
	return device.WithModifier(func(c *sm.Config) { c.Shuffle = p })
}

// WithAssoc sets the SWI secondary-lookup associativity
// (FullyAssociative for the unrestricted search).
func WithAssoc(ways int) Option {
	return device.WithModifier(func(c *sm.Config) { c.Assoc = ways })
}

// WithConstraints toggles the selective synchronization barriers of
// paper §3.3.
func WithConstraints(on bool) Option {
	return device.WithModifier(func(c *sm.Config) { c.Constraints = on })
}

// WithTrace records up to n issue events per run for pipeline
// visualization (figure 2). For partitioned launches the trace covers
// the first CTA wave.
func WithTrace(n int) Option {
	return device.WithModifier(func(c *sm.Config) { c.TraceCap = n })
}

// WithSeed seeds the secondary scheduler's tie-breaking PRNG.
func WithSeed(seed uint64) Option {
	return device.WithModifier(func(c *sm.Config) { c.Seed = seed })
}

// WithMaxCycles bounds each SM simulation against livelocked kernels
// (0 keeps the default bound).
func WithMaxCycles(n int64) Option {
	return device.WithModifier(func(c *sm.Config) { c.MaxCycles = n })
}

// WithMemDivergenceSplit enables the DWS-style memory-divergence warp
// splitting extension on thread-frontier architectures.
func WithMemDivergenceSplit(on bool) Option {
	return device.WithModifier(func(c *sm.Config) { c.SplitOnMemDivergence = on })
}
